"""Linear-system generator tests."""

import numpy as np
import pytest

from repro.data.linear_system import random_linear_system, random_pauli_operator


def test_operator_is_hermitian():
    a = random_pauli_operator(3, 4, seed=0)
    dense = a.to_matrix()
    assert np.allclose(dense, dense.conj().T)


def test_identity_shift_improves_conditioning():
    shifted = random_pauli_operator(3, 4, seed=1, identity_weight=3.0)
    bare = random_pauli_operator(3, 4, seed=1, identity_weight=0.0)
    sv_shifted = np.linalg.svd(shifted.to_matrix(), compute_uv=False)
    sv_bare = np.linalg.svd(bare.to_matrix(), compute_uv=False)
    assert sv_shifted[-1] > sv_bare[-1] - 1e-9


def test_locality_restriction():
    a = random_pauli_operator(4, 5, seed=2, locality=2)
    assert a.max_locality() <= 2


def test_too_many_terms_rejected():
    with pytest.raises(ValueError):
        random_pauli_operator(1, 10, seed=0)


def test_system_solution_exact():
    a, b, x_true = random_linear_system(3, 4, seed=5)
    assert np.linalg.norm(b) == pytest.approx(1.0)
    assert np.linalg.norm(a.to_matrix() @ x_true - b) < 1e-8


def test_system_determinism():
    a1, b1, _ = random_linear_system(2, 3, seed=7)
    a2, b2, _ = random_linear_system(2, 3, seed=7)
    assert np.allclose(b1, b2)
    assert np.allclose(a1.to_matrix(), a2.to_matrix())
