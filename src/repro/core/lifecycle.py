"""Lifecycle + configuration behaviour shared by pipeline and model classes.

Every orchestrator that holds an ``executor`` field (``HybridPipeline``,
``PostVariationalRegressor``, ``PostVariationalClassifier``) needs the same
close()/context-manager plumbing -- and the same ownership rule, so it
lives here once.  The same three classes also mirror the
:class:`~repro.api.config.ExecutionConfig` knobs as live attributes;
:class:`ConfigMirrorMixin` holds that sync logic once so pipeline and
model mutation semantics can never drift apart.
"""

from __future__ import annotations

from repro.api.config import CONFIG_FIELDS, ExecutionConfig, values_differ
from repro.hpc.executor import ParallelExecutor

__all__ = ["ExecutorOwnerMixin", "ConfigMirrorMixin"]


class ExecutorOwnerMixin:
    """close()/``with`` support for classes exposing an ``executor`` field.

    Ownership rule: a :class:`ParallelExecutor` facade is released on
    ``close()`` -- that is recoverable, the facade lazily rebuilds its pool
    if the object is used again.  A bare, caller-supplied
    :class:`~repro.hpc.runtime.ExecutionRuntime` is left untouched: its
    shutdown is permanent and it may be shared across consumers, so only
    its owner decides when it dies.
    """

    def close(self) -> None:
        """Release the persistent worker pool of an owned/facade executor."""
        executor = getattr(self, "executor", None)
        if isinstance(executor, ParallelExecutor):
            executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ConfigMirrorMixin(ExecutorOwnerMixin):
    """Live attribute mirrors over a resolved :class:`ExecutionConfig`.

    The orchestrator dataclasses expose every config knob as an attribute
    (``model.estimator``, ``pipe.scheduling_policy``, ...) for
    backward-compatible introspection *and* mutation: the historical
    classes read those attributes at every sweep, so
    :meth:`_current_config` re-syncs before each one.  A wholesale
    ``self.config`` replacement wins (mirrors are refreshed from it);
    otherwise any mutated mirror is folded back in via ``merged`` and
    re-validated -- no deprecation warning, mutation is explicit.

    Swapping ``self.device`` after construction is honored the same way:
    the new device supplies both the config and the runtime on the next
    sweep (setting it to ``None`` keeps the current config/executor --
    there is no prior no-device state to restore).

    Subclasses with a historical spelling for a knob override
    :meth:`_mirror_name` (the pipeline's ``scheduling_policy``).
    """

    def _mirror_name(self, field_name: str) -> str:
        return field_name

    def _default_config(self) -> ExecutionConfig:
        """Defaults applied when ``config`` is reset to None (overridden by
        owners with richer historical defaults, e.g. the pipeline)."""
        return ExecutionConfig()

    def _apply_config(self, cfg: ExecutionConfig) -> None:
        self.config = cfg
        self._resolved_config = cfg
        self._resolved_device = getattr(self, "device", None)
        for name in CONFIG_FIELDS:
            setattr(self, self._mirror_name(name), getattr(cfg, name))

    def _rebind_executor(self, executor) -> None:
        """Swap the executor, releasing a previously *owned* facade's pool.

        The ownership rule again: a ParallelExecutor facade created (or
        adopted) by this orchestrator is ours to close -- and close() is
        recoverable, so an aliased facade elsewhere just rebuilds lazily.
        A bare ExecutionRuntime is never shut down from here.
        """
        old = getattr(self, "executor", None)
        if old is not executor and isinstance(old, ParallelExecutor):
            old.close()
        self.executor = executor

    def _current_config(self) -> ExecutionConfig:
        device = getattr(self, "device", None)
        if device is not self._resolved_device:
            if device is not None:
                self._rebind_executor(device.runtime)
                self._apply_config(device.config)
                return self.config
            self._resolved_device = None
        if self.config is None:
            # A post-construction reset (`obj.config = None`) means "back
            # to this orchestrator's defaults", mirroring construction.
            self._apply_config(self._default_config())
            return self.config
        if self.config is not self._resolved_config:
            self._apply_config(self.config)
            return self.config
        overrides = {
            name: getattr(self, self._mirror_name(name))
            for name in CONFIG_FIELDS
            if values_differ(
                getattr(self, self._mirror_name(name)), getattr(self.config, name)
            )
        }
        if overrides:
            self._apply_config(self.config.merged(**overrides))
        return self.config
