"""Post-variational feature generation -- paper Algorithm 1.

Builds the Q matrix ``Q_ij = tr(O_j rho_theta(x_i))`` (Eq. 26): every data
point is encoded (Fig. 7), pushed through each fixed Ansatz instance of the
strategy, and measured against each observable.  Feature columns are ordered
Ansatz-major: column ``a * q + b`` holds (parameter set a, observable b),
matching Definition 1's (p, q) indexing.

Three estimators exercise the paper's three measurement models:

* ``exact``   -- analytic expectations (ideal simulator, Tables III/IV);
* ``shots``   -- finite-sample direct measurement (Proposition 1 regime);
* ``shadows`` -- classical-shadow estimation, one shadow batch per
  (data point, Ansatz) reused across all q observables (Proposition 2).

The work grid (Ansatz instance x data chunk) is embarrassingly parallel and
is dispatched through the persistent
:class:`repro.hpc.runtime.ExecutionRuntime` (or a
:class:`repro.hpc.executor.ParallelExecutor` facade over one).  Dispatch is
*streaming*: a per-task cost model (chunk size x Ansatz depth x shot
budget, priced by :func:`repro.hpc.cluster.task_costs`) orders submission
via the scheduling policies, and each completed block is scattered into the
preallocated Q matrix as its future resolves -- no end-of-sweep barrier.
:func:`iter_feature_blocks` exposes the same stream to incremental
consumers.

All backends and policies produce identical matrices for ``exact`` and
seed-deterministic matrices otherwise (child RNG streams are derived per
task index, independent of schedule).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.strategies import Strategy
from repro.data.encoding import encode_batch
from repro.hpc.cluster import CircuitTask, task_costs
from repro.hpc.executor import ParallelExecutor
from repro.hpc.partition import chunk_ranges
from repro.hpc.runtime import DispatchReport, ExecutionRuntime, TaskCompletion
from repro.quantum.circuit import Circuit
from repro.quantum.compile import CompiledCircuit, compile_circuit, resolve_fusion_width
from repro.quantum.observables import PauliString, expectation
from repro.quantum.sampling import measure_pauli_batch
from repro.quantum.shadows import collect_shadows, estimate_pauli
from repro.quantum.statevector import run_circuit
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "FeatureJob",
    "feature_jobs",
    "generate_features",
    "evaluate_features",
    "iter_feature_blocks",
    "feature_circuit_tasks",
]

ESTIMATORS = ("exact", "shots", "shadows")


@dataclass(frozen=True)
class FeatureJob:
    """One schedulable unit: Ansatz instance ``a`` on data rows [lo, hi)."""

    ansatz_index: int
    lo: int
    hi: int


def feature_jobs(num_ansatze: int, num_samples: int, chunk_size: int) -> list[FeatureJob]:
    """The sweep's work grid: one job per (Ansatz instance, data chunk).

    The single source of truth for job enumeration -- both the live
    dispatch path and :meth:`HybridPipeline.circuit_tasks`' analytic
    projection build on it, so the two can never silently diverge.
    """
    return [
        FeatureJob(a, lo, hi)
        for a in range(num_ansatze)
        for (lo, hi) in chunk_ranges(num_samples, chunk_size)
    ]


def _bound_ansatz(strategy: Strategy, params: np.ndarray) -> Circuit | None:
    circuit = strategy.ansatz
    if circuit is None or circuit.num_parameters == 0:
        return None
    return circuit.bind(params)


def _ansatz_programs(
    strategy: Strategy, compile: str | int
) -> list[Circuit | CompiledCircuit | None]:
    """One executable program per Ansatz instance, prepared once per sweep.

    Binding (and, when ``compile`` is on, fusion) happens here -- up front
    and once per parameter set -- instead of once per (Ansatz, chunk) job,
    so the Q-matrix sweep reuses each artifact across every data chunk and,
    because :class:`CompiledCircuit` pickles, across process workers too.
    """
    width = resolve_fusion_width(compile)
    programs: list[Circuit | CompiledCircuit | None] = []
    for params in strategy.parameter_sets():
        bound = _bound_ansatz(strategy, params)
        if bound is not None and width is not None:
            bound = compile_circuit(bound, max_width=width)
        programs.append(bound)
    return programs


def _program_ops(program: Circuit | CompiledCircuit | None) -> int:
    """Kernel launches one program costs: gate count, fused-block count, or 0."""
    if program is None:
        return 0
    if isinstance(program, CompiledCircuit):
        return program.num_blocks
    return program.num_gates


def _evolve(states: np.ndarray, program: Circuit | CompiledCircuit | None) -> np.ndarray:
    if program is None:
        return states
    if isinstance(program, CompiledCircuit):
        return program.apply(states)
    return run_circuit(program, state=states)


def _evaluate_block(
    states: np.ndarray,
    program: Circuit | CompiledCircuit | None,
    observables: list[PauliString],
    estimator: str,
    shots: int,
    snapshots: int,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Feature block for one Ansatz instance on a chunk of encoded states.

    Returns (chunk, q).  This is the module-level worker so the process
    executor backend can pickle it via functools.partial-free closures.
    """
    evolved = _evolve(states, program)
    q = len(observables)
    block = np.empty((evolved.shape[0], q))
    if estimator == "exact":
        for b, obs in enumerate(observables):
            block[:, b] = expectation(evolved, obs)
    elif estimator == "shots":
        for b, obs in enumerate(observables):
            block[:, b] = measure_pauli_batch(evolved, obs, shots, rng)
    elif estimator == "shadows":
        for i in range(evolved.shape[0]):
            shadow = collect_shadows(evolved[i], snapshots, rng)
            for b, obs in enumerate(observables):
                block[i, b] = estimate_pauli(shadow, obs)
    else:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    return block


class _BlockWorker:
    """Picklable task callable for the process executor backend."""

    def __init__(
        self,
        strategy: Strategy,
        states: np.ndarray,
        estimator: str,
        shots: int,
        snapshots: int,
        seeds: list[int] | None,
        compile: str | int = "off",
    ):
        self.states = states
        self.observables = strategy.observables()
        # Bind/compile each Ansatz instance exactly once for the whole sweep
        # (not per chunk); compiled programs pickle to process workers.
        self.programs = _ansatz_programs(strategy, compile)
        self.estimator = estimator
        self.shots = shots
        self.snapshots = snapshots
        self.seeds = seeds

    def __call__(self, job_with_index: tuple[int, FeatureJob]) -> tuple[FeatureJob, np.ndarray]:
        task_id, job = job_with_index
        rng = None if self.seeds is None else np.random.default_rng(self.seeds[task_id])
        block = _evaluate_block(
            self.states[job.lo : job.hi],
            self.programs[job.ansatz_index],
            self.observables,
            self.estimator,
            self.shots,
            self.snapshots,
            rng,
        )
        return job, block


def feature_circuit_tasks(
    jobs: list[FeatureJob],
    programs: list[Circuit | CompiledCircuit | None],
    num_qubits: int,
    num_observables: int,
    estimator: str,
    shots: int,
    snapshots: int,
) -> list[CircuitTask]:
    """Cost-model view of the sweep: one :class:`CircuitTask` per job.

    Chunk size, per-circuit shot budget and Ansatz depth (gate/fused-block
    count, scaled by the 2**n statevector size) all enter the cost, so the
    scheduling policies see the same heterogeneity the real execution pays.
    """
    q = num_observables
    dim = 2**num_qubits
    shots_per_circuit = 0 if estimator == "exact" else (
        shots * q if estimator == "shots" else snapshots
    )
    tasks = []
    for job in jobs:
        chunk = job.hi - job.lo
        ops = _program_ops(programs[job.ansatz_index])
        tasks.append(
            CircuitTask(
                num_circuits=chunk,
                shots=shots_per_circuit,
                result_bytes=8 * chunk * q,
                classical_flops=float(chunk * dim * (4 * ops + q)),
            )
        )
    return tasks


def _resolve_runtime(
    executor: ParallelExecutor | ExecutionRuntime | None,
) -> ExecutionRuntime:
    """Accept the facade, a bare runtime, or None (inline serial runtime)."""
    if executor is None:
        return ExecutionRuntime()
    if isinstance(executor, ExecutionRuntime):
        return executor
    return executor.runtime


def _sweep_stream(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str,
    shots: int,
    snapshots: int,
    executor: ParallelExecutor | ExecutionRuntime | None,
    chunk_size: int,
    seed: int | np.random.Generator | None,
    compile: str | int,
    dispatch_policy: str,
    records: list[TaskCompletion] | None = None,
) -> tuple[Iterator[TaskCompletion], np.ndarray, ExecutionRuntime]:
    """Shared sweep setup: completion stream, cost vector, runtime."""
    if estimator not in ESTIMATORS:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    runtime = _resolve_runtime(executor)
    jobs = feature_jobs(strategy.num_ansatze, states.shape[0], chunk_size)
    # Per-task independent RNG streams, keyed by task *index*: results do
    # not depend on the executor backend, policy or completion order.
    if estimator == "exact":
        seeds = None
    else:
        children = spawn_rngs(seed, len(jobs))
        seeds = [int(c.integers(0, 2**63)) for c in children]

    worker = _BlockWorker(strategy, states, estimator, shots, snapshots, seeds, compile)
    costs = task_costs(
        feature_circuit_tasks(
            jobs,
            worker.programs,
            strategy.num_qubits,
            strategy.num_observables,
            estimator,
            shots,
            snapshots,
        )
    )
    stream = runtime.stream(
        worker,
        list(enumerate(jobs)),
        costs=costs,
        policy=dispatch_policy,
        records=records,
    )
    return stream, costs, runtime


def generate_features(
    strategy: Strategy,
    angles: np.ndarray,
    estimator: str = "exact",
    shots: int = 1024,
    snapshots: int = 512,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int = 128,
    seed: int | np.random.Generator | None = 0,
    compile: str | int = "off",
    dispatch_policy: str = "work_stealing",
    out: np.ndarray | None = None,
    return_report: bool = False,
) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
    """Algorithm 1: the full Q matrix for pooled-angle images ``angles``.

    ``angles`` is (d, rows, cols) with cols == strategy.num_qubits; returns
    (d, m).  ``shots``/``snapshots`` apply per (data point, Ansatz,
    observable) and per (data point, Ansatz) respectively.  ``compile``
    selects the circuit engine (``"auto"``/``"off"``/fusion width; see
    :mod:`repro.quantum.compile`) -- the default ``"off"`` keeps the naive
    reference semantics bit-for-bit.  ``dispatch_policy`` orders live task
    submission (see :func:`repro.hpc.scheduler.submission_order`); with
    ``return_report=True`` the measured-vs-projected
    :class:`~repro.hpc.runtime.DispatchReport` is returned alongside Q.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 3:
        raise ValueError("angles must be (d, rows, cols)")
    if angles.shape[2] != strategy.num_qubits:
        raise ValueError(
            f"angles encode {angles.shape[2]} qubits, strategy expects {strategy.num_qubits}"
        )
    states = encode_batch(angles)
    return evaluate_features(
        strategy,
        states,
        estimator=estimator,
        shots=shots,
        snapshots=snapshots,
        executor=executor,
        chunk_size=chunk_size,
        seed=seed,
        compile=compile,
        dispatch_policy=dispatch_policy,
        out=out,
        return_report=return_report,
    )


def evaluate_features(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str = "exact",
    shots: int = 1024,
    snapshots: int = 512,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int = 128,
    seed: int | np.random.Generator | None = 0,
    compile: str | int = "off",
    dispatch_policy: str = "work_stealing",
    out: np.ndarray | None = None,
    return_report: bool = False,
) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
    """Q matrix from pre-encoded statevectors ``states`` (d, 2**n).

    Assembly is streaming: blocks land in the (optionally caller-supplied)
    preallocated ``out`` matrix as their futures resolve, in completion
    order.  ``out`` must be float64 of shape (d, p*q).
    """
    states = np.asarray(states, dtype=np.complex128)
    d = states.shape[0]
    p = strategy.num_ansatze
    q = strategy.num_observables
    if out is None:
        out = np.empty((d, p * q))
    elif out.shape != (d, p * q) or out.dtype != np.float64:
        raise ValueError(f"out must be float64 of shape {(d, p * q)}, got {out.dtype} {out.shape}")

    # Timing records are only collected when a report is requested; they
    # are result-free (index + seconds), so nothing pins completed blocks.
    records: list[TaskCompletion] | None = [] if return_report else None
    stream, costs, runtime = _sweep_stream(
        strategy, states, estimator, shots, snapshots, executor,
        chunk_size, seed, compile, dispatch_policy, records,
    )
    # Timed window covers dispatch + assembly only: binding/compilation,
    # RNG spawning and (via warm()) pool construction are one-time setup
    # the replayed makespan never models, so including them would inflate
    # wall_over_replay.
    runtime.warm()
    start = time.perf_counter()
    for completion in stream:
        job, block = completion.result
        out[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
    wall = time.perf_counter() - start

    if return_report:
        report = DispatchReport.from_records(
            dispatch_policy, runtime.backend, runtime.max_workers, costs, records or (), wall
        )
        return out, report
    return out


def iter_feature_blocks(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str = "exact",
    shots: int = 1024,
    snapshots: int = 512,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int = 128,
    seed: int | np.random.Generator | None = 0,
    compile: str | int = "off",
    dispatch_policy: str = "work_stealing",
) -> Iterator[tuple[FeatureJob, np.ndarray]]:
    """Stream Q-matrix blocks as ``(FeatureJob, (chunk, q) block)`` pairs.

    Blocks arrive in *completion* order (submission order for serial
    runtimes) -- the incremental-consumer view of Algorithm 1: online
    learners, progress reporting, or out-of-core assembly can consume
    features without ever materialising the full matrix.  Every job is
    yielded exactly once; the union of blocks tiles the full Q matrix.
    Identical numerics to :func:`evaluate_features` (same per-task seeds).

    Setup (validation, binding/compilation, cost model) runs eagerly at the
    call, so bad arguments raise here rather than at the first ``next()``.
    """
    states = np.asarray(states, dtype=np.complex128)
    stream, _, _ = _sweep_stream(
        strategy, states, estimator, shots, snapshots, executor,
        chunk_size, seed, compile, dispatch_policy,
    )
    return (completion.result for completion in stream)
