"""Ansatz (Fig. 8) and shift-enumeration (Eq. 16) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ansatz import fig8_ansatz, hardware_efficient_ansatz
from repro.core.shifts import (
    ShiftConfiguration,
    count_shift_configurations,
    enumerate_shift_configurations,
)
from repro.quantum.statevector import run_circuit


def test_fig8_structure():
    """2 alternations of RY layer + circular CNOTs on 4 qubits: k = 8."""
    c = fig8_ansatz()
    assert c.num_qubits == 4
    assert c.num_parameters == 8
    counts = c.gate_counts()
    assert counts == {"ry": 8, "cnot": 8}
    # Ring topology: (0,1),(1,2),(2,3),(3,0) forward, then mirrored so the
    # theta=0 circuit cancels to identity.
    cnots = [op.qubits for op in c if op.gate == "cnot"]
    assert cnots[:4] == [(0, 1), (1, 2), (2, 3), (3, 0)]
    assert cnots[4:] == [(3, 0), (2, 3), (1, 2), (0, 1)]


def test_fig8_identity_at_zero():
    """Sec. VII.A: all parameters 0 => the Ansatz evaluates to identity."""
    c = fig8_ansatz().bind(np.zeros(8))
    rng = np.random.default_rng(0)
    psi = rng.normal(size=16) + 1j * rng.normal(size=16)
    psi /= np.linalg.norm(psi)
    out = run_circuit(c, state=psi)
    assert np.allclose(out, psi, atol=1e-12)


def test_hardware_efficient_variants():
    line = hardware_efficient_ansatz(3, 2, rotation="rx", entangle="line")
    assert line.gate_counts() == {"rx": 6, "cnot": 4}
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(3, 2, rotation="h")
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(3, 2, entangle="star")
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(1, 2)
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(3, 0)


@given(k=st.integers(0, 8), r=st.integers(0, 3))
@settings(max_examples=60)
def test_eq16_count_matches_enumeration(k, r):
    configs = enumerate_shift_configurations(k, r)
    assert len(configs) == count_shift_configurations(k, r)
    # No duplicates.
    keys = {(c.subset, c.signs) for c in configs}
    assert len(keys) == len(configs)


def test_eq16_paper_values():
    """The paper's configuration: k=8, R=1 -> 17, R=2 -> 129 circuits."""
    assert count_shift_configurations(8, 1) == 17
    assert count_shift_configurations(8, 2) == 129


def test_enumeration_order():
    configs = enumerate_shift_configurations(3, 2)
    assert configs[0].subset == ()  # base circuit first
    orders = [c.order for c in configs]
    assert orders == sorted(orders)


def test_shift_vector_values():
    config = ShiftConfiguration(subset=(1, 3), signs=(1, -1), num_parameters=5)
    vec = config.vector()
    expected = np.zeros(5)
    expected[1] = np.pi / 2
    expected[3] = -np.pi / 2
    assert np.allclose(vec, expected)
    base = np.full(5, 0.1)
    assert np.allclose(config.vector(base), base + expected)


def test_shift_label():
    config = ShiftConfiguration(subset=(0, 2), signs=(1, -1), num_parameters=4)
    assert config.label == "d2[+0,-2]"
    assert ShiftConfiguration((), (), 4).label == "d0[]"


def test_shift_base_length_validation():
    config = ShiftConfiguration(subset=(0,), signs=(1,), num_parameters=3)
    with pytest.raises(ValueError):
        config.vector(np.zeros(5))


def test_count_validation():
    with pytest.raises(ValueError):
        enumerate_shift_configurations(-1, 1)
    with pytest.raises(ValueError):
        enumerate_shift_configurations(2, -1)
