"""Evaluation metrics for the experiment tables."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "one_hot"]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) count matrix, rows = true, cols = predicted."""
    y_true = np.asarray(y_true).ravel().astype(int)
    y_pred = np.asarray(y_pred).ravel().astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    out = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(out, (y_true, y_pred), 1)
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """(d, num_classes) one-hot encoding."""
    labels = np.asarray(labels).ravel().astype(int)
    if labels.min(initial=0) < 0 or labels.max(initial=-1) >= num_classes:
        raise ValueError("labels out of range")
    out = np.zeros((labels.size, num_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out
