"""Partitioning tests: every scheme must cover all items exactly once."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.partition import (
    balanced_cost_partition,
    block_partition,
    chunk_ranges,
    cyclic_partition,
)


@given(n=st.integers(0, 200), parts=st.integers(1, 16))
@settings(max_examples=80)
def test_block_partition_covers_exactly(n, parts):
    blocks = block_partition(n, parts)
    assert len(blocks) == parts
    merged = np.concatenate(blocks) if n else np.array([])
    assert np.array_equal(merged, np.arange(n))
    sizes = [len(b) for b in blocks]
    assert max(sizes) - min(sizes) <= 1


@given(n=st.integers(0, 200), parts=st.integers(1, 16))
@settings(max_examples=80)
def test_cyclic_partition_covers_exactly(n, parts):
    blocks = cyclic_partition(n, parts)
    merged = np.sort(np.concatenate(blocks)) if n else np.array([])
    assert np.array_equal(merged, np.arange(n))
    for r, block in enumerate(blocks):
        assert np.all(block % parts == r)


@given(n=st.integers(0, 100), size=st.integers(1, 40))
@settings(max_examples=80)
def test_chunk_ranges_cover(n, size):
    ranges = chunk_ranges(n, size)
    covered = [i for lo, hi in ranges for i in range(lo, hi)]
    assert covered == list(range(n))
    assert all(hi - lo <= size for lo, hi in ranges)


@given(
    costs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60),
    parts=st.integers(1, 8),
)
@settings(max_examples=60)
def test_balanced_cost_partition_covers(costs, parts):
    blocks = balanced_cost_partition(np.array(costs), parts)
    merged = sorted(int(i) for b in blocks for i in b)
    assert merged == list(range(len(costs)))


def test_balanced_beats_block_on_skewed_costs():
    """LPT makespan <= block makespan on a pathological cost vector."""
    costs = np.array([10.0] * 4 + [1.0] * 36)
    lpt = balanced_cost_partition(costs, 4)
    block = block_partition(len(costs), 4)
    lpt_makespan = max(costs[b].sum() for b in lpt)
    block_makespan = max(costs[b].sum() for b in block)
    assert lpt_makespan < block_makespan


def test_validation():
    with pytest.raises(ValueError):
        block_partition(5, 0)
    with pytest.raises(ValueError):
        block_partition(-1, 2)
    with pytest.raises(ValueError):
        cyclic_partition(5, 0)
    with pytest.raises(ValueError):
        chunk_ranges(5, 0)
    with pytest.raises(ValueError):
        balanced_cost_partition(np.array([-1.0]), 2)
