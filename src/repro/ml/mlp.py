"""Two-layer multilayer perceptron -- the paper's strongest classical baseline.

Paper Sec. I and Tables III/IV compare post-variational networks to
"two-layer feedforward classical neural networks"; Sec. V draws the explicit
structural analogy (fixed quantum feature extractors ~ first layer,
measurement ~ activation, classical combination ~ second layer).  This is a
self-contained NumPy implementation: one tanh hidden layer, sigmoid or
softmax output, Adam, full-batch training (the datasets are small).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.losses import bce_loss, cross_entropy_loss, sigmoid, softmax
from repro.ml.optimizers import Adam
from repro.utils.rng import as_rng

__all__ = ["MLPClassifier"]


@dataclass
class MLPClassifier:
    """Two-layer perceptron: ``x -> tanh(x W1 + b1) -> softmax/sigmoid``.

    ``num_classes == 2`` uses a single sigmoid output and BCE; more classes
    use softmax + cross-entropy.  Weight init is Glorot-uniform under the
    supplied seed so runs are exactly reproducible.
    """

    hidden: int = 32
    num_classes: int = 2
    lr: float = 1e-2
    epochs: int = 300
    l2: float = 0.0
    seed: int | None = 0
    w1: np.ndarray | None = field(default=None, repr=False)
    b1: np.ndarray | None = field(default=None, repr=False)
    w2: np.ndarray | None = field(default=None, repr=False)
    b2: np.ndarray | None = field(default=None, repr=False)
    history_: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.hidden < 1:
            raise ValueError("hidden must be >= 1")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")

    # ----------------------------------------------------------------- train
    def fit(self, x: np.ndarray, y: np.ndarray) -> MLPClassifier:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).ravel().astype(int)
        d, m = x.shape
        out_dim = 1 if self.num_classes == 2 else self.num_classes
        rng = as_rng(self.seed)
        limit1 = np.sqrt(6.0 / (m + self.hidden))
        limit2 = np.sqrt(6.0 / (self.hidden + out_dim))
        self.w1 = rng.uniform(-limit1, limit1, size=(m, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = rng.uniform(-limit2, limit2, size=(self.hidden, out_dim))
        self.b2 = np.zeros(out_dim)

        if self.num_classes > 2:
            onehot = np.zeros((d, self.num_classes))
            onehot[np.arange(d), y] = 1.0

        optimizer = Adam(lr=self.lr)
        self.history_ = []
        for _ in range(self.epochs):
            hidden_pre = x @ self.w1 + self.b1
            hidden = np.tanh(hidden_pre)
            logits = hidden @ self.w2 + self.b2
            if self.num_classes == 2:
                probs = sigmoid(logits.ravel())
                self.history_.append(bce_loss(y.astype(float), probs))
                grad_logits = ((probs - y) / d)[:, None]
            else:
                probs = softmax(logits)
                self.history_.append(cross_entropy_loss(onehot, probs))
                grad_logits = (probs - onehot) / d
            g_w2 = hidden.T @ grad_logits + self.l2 * self.w2
            g_b2 = grad_logits.sum(axis=0)
            grad_hidden = (grad_logits @ self.w2.T) * (1.0 - hidden**2)
            g_w1 = x.T @ grad_hidden + self.l2 * self.w1
            g_b1 = grad_hidden.sum(axis=0)
            self.w2 = optimizer.step(self.w2, g_w2, key="w2")
            self.b2 = optimizer.step(self.b2, g_b2, key="b2")
            self.w1 = optimizer.step(self.w1, g_w1, key="w1")
            self.b1 = optimizer.step(self.b1, g_b1, key="b1")
        return self

    # --------------------------------------------------------------- predict
    def _forward(self, x: np.ndarray) -> np.ndarray:
        if self.w1 is None:
            raise RuntimeError("model is not fitted")
        hidden = np.tanh(np.asarray(x, dtype=float) @ self.w1 + self.b1)
        return hidden @ self.w2 + self.b2

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self._forward(x)
        if self.num_classes == 2:
            return sigmoid(logits.ravel())
        return softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        if self.num_classes == 2:
            return (probs >= 0.5).astype(int)
        return np.argmax(probs, axis=1)

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """BCE (binary) or cross-entropy (multiclass), as in Tables III/IV."""
        y = np.asarray(y).ravel().astype(int)
        probs = self.predict_proba(x)
        if self.num_classes == 2:
            return bce_loss(y.astype(float), probs)
        onehot = np.zeros((y.size, self.num_classes))
        onehot[np.arange(y.size), y] = 1.0
        return cross_entropy_loss(onehot, probs)
