"""Parallel execution backends for circuit-ensemble fan-out.

One interface, three backends:

* ``serial``  -- plain loop (reference semantics, zero overhead);
* ``thread``  -- ``ThreadPoolExecutor``: effective here because the simulator
  kernels spend their time inside NumPy (GIL released in BLAS/einsum);
* ``process`` -- ``ProcessPoolExecutor`` for CPU-bound Python-heavy tasks
  (task callables must be picklable module-level functions).

Results preserve task order regardless of completion order, so all backends
are bit-for-bit interchangeable -- the property the tests pin down.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["ParallelExecutor", "ExecutorConfig"]

_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutorConfig:
    """Executor settings; a plain dataclass so pipelines can log/serialise it."""

    backend: str = "serial"
    max_workers: int = 1

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")


class ParallelExecutor:
    """Order-preserving parallel ``map`` over independent tasks."""

    def __init__(self, backend: str = "serial", max_workers: int = 1):
        self.config = ExecutorConfig(backend=backend, max_workers=max_workers)

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def max_workers(self) -> int:
        return self.config.max_workers

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every task; results ordered like ``tasks``."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.config.backend == "serial" or self.config.max_workers == 1:
            return [fn(t) for t in tasks]
        if self.config.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.config.max_workers) as pool:
                return list(pool.map(fn, tasks))
        with ProcessPoolExecutor(max_workers=self.config.max_workers) as pool:
            return list(pool.map(fn, tasks))

    def starmap(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """``map`` with argument tuples unpacked."""
        return self.map(lambda args: fn(*args), list(tasks)) \
            if self.config.backend != "process" \
            else self.map(_Star(fn), list(tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor({self.config.backend}, workers={self.config.max_workers})"


class _Star:
    """Picklable star-unpacking wrapper for the process backend."""

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)
