"""Pauli-string observables and their algebra.

The observable-construction strategy (paper Sec. IV.B) decomposes the target
observable against the Pauli basis ``{I, X, Y, Z}^{\\otimes n}`` truncated to
weight (locality) at most ``L`` -- Eq. 18 counts ``sum_l C(n,l) 3^l`` strings.
This module provides the strings, their products/commutators (needed for the
Baker-Campbell-Hausdorff expansion of Appendix A), dense matrices for
verification, locality metadata for the classical-shadows bounds, and fast
batched expectation kernels.

String convention: character ``i`` of ``"XIZY"`` acts on qubit ``i``; qubit 0
is the most significant bit (consistent with the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

import numpy as np

from repro.quantum.gates import PAULI_MATRICES
from repro.utils.combinatorics import bounded_subsets, count_bounded_subsets, signed_assignments

__all__ = [
    "PauliString",
    "PauliSum",
    "local_pauli_strings",
    "count_local_paulis",
    "expectation",
    "pauli_product",
]

_VALID = frozenset("IXYZ")

# Single-qubit Pauli multiplication table: (a, b) -> (phase, c) with a@b = phase*c.
_MULT: dict[tuple[str, str], tuple[complex, str]] = {}
for _a in "IXYZ":
    _MULT[("I", _a)] = (1.0, _a)
    _MULT[(_a, "I")] = (1.0, _a)
    _MULT[(_a, _a)] = (1.0, "I")
_MULT[("X", "Y")] = (1j, "Z")
_MULT[("Y", "X")] = (-1j, "Z")
_MULT[("Y", "Z")] = (1j, "X")
_MULT[("Z", "Y")] = (-1j, "X")
_MULT[("Z", "X")] = (1j, "Y")
_MULT[("X", "Z")] = (-1j, "Y")


@dataclass(frozen=True)
class PauliString:
    """A tensor product of single-qubit Paulis, e.g. ``XIZ``.

    Immutable and hashable so strings can key caches and sets.
    """

    string: str

    def __post_init__(self) -> None:
        if not self.string or set(self.string) - _VALID:
            raise ValueError(f"invalid Pauli string {self.string!r}")

    # ----------------------------------------------------------- properties
    @property
    def num_qubits(self) -> int:
        return len(self.string)

    @property
    def locality(self) -> int:
        """Number of non-identity sites (paper: |P|, the observable locality)."""
        return sum(1 for c in self.string if c != "I")

    @property
    def support(self) -> tuple[int, ...]:
        """Indices of non-identity sites."""
        return tuple(i for i, c in enumerate(self.string) if c != "I")

    @property
    def is_identity(self) -> bool:
        return self.locality == 0

    def shadow_norm_squared(self) -> float:
        """Pauli-basis shadow-norm bound ``4**locality`` (paper Sec. II.B,
        with spectral norm 1 for Pauli strings)."""
        return float(4**self.locality)

    # ------------------------------------------------------------- algebra
    def __mul__(self, other: PauliString) -> tuple[complex, PauliString]:
        """Product ``self @ other`` as (phase, PauliString)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch in Pauli product")
        phase: complex = 1.0
        chars = []
        for a, b in zip(self.string, other.string, strict=True):
            ph, c = _MULT[(a, b)]
            phase *= ph
            chars.append(c)
        return phase, PauliString("".join(chars))

    def commutes_with(self, other: PauliString) -> bool:
        """True iff the strings commute (even number of anticommuting sites)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        anti = sum(
            1
            for a, b in zip(self.string, other.string, strict=True)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def to_matrix(self) -> np.ndarray:
        """Dense ``(2**n, 2**n)`` matrix (verification/small-n only)."""
        out = np.array([[1.0 + 0j]])
        for c in self.string:
            out = np.kron(out, PAULI_MATRICES[c])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PauliString({self.string})"


def pauli_product(a: PauliString, b: PauliString) -> tuple[complex, PauliString]:
    """Module-level alias for ``a * b`` (phase, string)."""
    return a * b


class PauliSum:
    """A real/complex linear combination of Pauli strings.

    This is the ``O(alpha) = sum_j alpha_j O_j`` object of paper Eq. 7; it
    also represents problem matrices ``A`` in the CQS comparison (Sec. III.E).
    Terms with equal strings are merged; zero terms dropped.
    """

    def __init__(self, terms: Iterable[tuple[complex, PauliString | str]] = ()):
        merged: dict[str, complex] = {}
        n: int | None = None
        for coeff, ps in terms:
            ps = ps if isinstance(ps, PauliString) else PauliString(ps)
            if n is None:
                n = ps.num_qubits
            elif ps.num_qubits != n:
                raise ValueError("mixed qubit counts in PauliSum")
            merged[ps.string] = merged.get(ps.string, 0.0) + complex(coeff)
        self._terms: dict[str, complex] = {
            s: c for s, c in merged.items() if abs(c) > 1e-15
        }
        self._num_qubits = n

    @property
    def num_qubits(self) -> int:
        if self._num_qubits is None:
            raise ValueError("empty PauliSum has no qubit count")
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def items(self) -> Iterator[tuple[complex, PauliString]]:
        for s, c in sorted(self._terms.items()):
            yield c, PauliString(s)

    def coefficient(self, string: str | PauliString) -> complex:
        key = string.string if isinstance(string, PauliString) else string
        return self._terms.get(key, 0.0)

    def __add__(self, other: PauliSum) -> PauliSum:
        return PauliSum(list(self.items()) + list(other.items()))

    def __rmul__(self, scalar: complex) -> PauliSum:
        return PauliSum([(scalar * c, p) for c, p in self.items()])

    def __matmul__(self, other: PauliSum) -> PauliSum:
        """Operator product, expanded term by term."""
        out: list[tuple[complex, PauliString]] = []
        for ca, pa in self.items():
            for cb, pb in other.items():
                phase, pc = pa * pb
                out.append((ca * cb * phase, pc))
        return PauliSum(out)

    def adjoint(self) -> PauliSum:
        """Hermitian adjoint (conjugate coefficients; strings are Hermitian)."""
        return PauliSum([(np.conj(c), p) for c, p in self.items()])

    def to_matrix(self) -> np.ndarray:
        dim = 2**self.num_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for c, p in self.items():
            out += c * p.to_matrix()
        return out

    def max_locality(self) -> int:
        return max((p.locality for _, p in self.items()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " + ".join(f"{c:.3g}*{p.string}" for c, p in self.items())
        return f"PauliSum({inner})"


def local_pauli_strings(num_qubits: int, locality: int) -> list[PauliString]:
    """All Pauli strings on ``num_qubits`` qubits with weight <= ``locality``.

    Enumeration order is deterministic: by weight, then site subset
    (lexicographic), then letter assignment in (X, Y, Z) order -- this fixes
    the feature-column ordering of the observable-construction strategy.
    Paper Eq. 18: the count is ``sum_{l<=L} C(n,l) 3^l``.
    """
    if locality < 0:
        raise ValueError(f"locality={locality} must be >= 0")
    out: list[PauliString] = []
    for subset in bounded_subsets(num_qubits, locality):
        for letters in signed_assignments(subset, "XYZ"):
            chars = ["I"] * num_qubits
            for pos, letter in zip(subset, letters, strict=True):
                chars[pos] = letter
            out.append(PauliString("".join(chars)))
    return out


def count_local_paulis(num_qubits: int, locality: int) -> int:
    """Closed form of paper Eq. 18."""
    return count_bounded_subsets(num_qubits, locality, 3)


# --------------------------------------------------------------------------
# Expectation kernels
# --------------------------------------------------------------------------

def _apply_pauli_batch(states: np.ndarray, pauli: PauliString) -> np.ndarray:
    """Apply a Pauli string to a ``(batch, dim)`` state array.

    Pauli strings permute/phase basis amplitudes, so instead of a generic
    matrix product we compute the permutation and the per-basis-state phase
    directly -- O(batch * dim) with pure NumPy indexing.
    """
    b, dim = states.shape
    n = pauli.num_qubits
    if dim != 2**n:
        raise ValueError(f"state dim {dim} incompatible with {n}-qubit Pauli")
    indices = np.arange(dim)
    flip = 0  # XOR mask from X/Y sites
    phase = np.ones(dim, dtype=np.complex128)
    for i, c in enumerate(pauli.string):
        bit = (indices >> (n - 1 - i)) & 1
        if c == "X":
            flip |= 1 << (n - 1 - i)
        elif c == "Y":
            flip |= 1 << (n - 1 - i)
            # Y|0> = i|1>, Y|1> = -i|0>: phase depends on source bit.
            phase = phase * np.where(bit == 0, 1j, -1j)
        elif c == "Z":
            phase = phase * np.where(bit == 0, 1.0, -1.0)
    # amplitude at index j of P|psi> comes from index j ^ flip of |psi>,
    # with the phase accumulated at the *source* index.
    src = indices ^ flip
    return states[:, src] * phase[src]


def expectation(state: np.ndarray, observable) -> np.ndarray | float:
    """``<psi|O|psi>`` for PauliString, PauliSum, or dense matrix ``O``.

    Batched: a ``(batch, dim)`` state yields a length-``batch`` real vector.
    Values are real for Hermitian observables; the real part is returned.
    """
    arr = np.asarray(state, dtype=np.complex128)
    squeeze = arr.ndim == 1
    batch = arr[None, :] if squeeze else arr

    if isinstance(observable, PauliString):
        applied = _apply_pauli_batch(batch, observable)
        vals = np.einsum("bi,bi->b", batch.conj(), applied).real
    elif isinstance(observable, PauliSum):
        vals = np.zeros(batch.shape[0])
        for coeff, ps in observable.items():
            applied = _apply_pauli_batch(batch, ps)
            vals = vals + (coeff * np.einsum("bi,bi->b", batch.conj(), applied)).real
    else:
        matrix = np.asarray(observable, dtype=np.complex128)
        vals = np.einsum("bi,ij,bj->b", batch.conj(), matrix, batch).real
    return float(vals[0]) if squeeze else vals
