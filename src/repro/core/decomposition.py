"""Appendix A: deconstruction of a variational Ansatz into Pauli observables.

The CQO (classical combination of quantum observables) framework rests on
``O(theta) = U^dag(theta) O U(theta) = sum_j F_j(theta) O_j`` with at most
``4^n`` Hermitian terms (Eqs. 3, A5-A7).  This module computes that
decomposition *exactly* for bound circuits: the Heisenberg-picture
observable as a :class:`~repro.quantum.observables.PauliSum`, plus helpers
to truncate it by locality or coefficient weight and to quantify how much
of the observable the truncation keeps -- the quantitative backing for the
"low-degree approximation" argument of Sec. IV.B.

Cost is O(4^n * poly) dense algebra; intended for the analysis of small
registers (the paper's n=4), not as a simulation path.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import gate_matrix
from repro.quantum.observables import PauliString, PauliSum, local_pauli_strings

__all__ = [
    "circuit_unitary",
    "heisenberg_observable",
    "truncate_by_locality",
    "truncate_by_weight",
    "decomposition_weight_profile",
]


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Dense unitary of a bound circuit (column = image of basis state)."""
    if not circuit.is_bound:
        raise ValueError("circuit_unitary requires a bound circuit")
    from repro.quantum.statevector import apply_matrix_batch

    dim = 2**circuit.num_qubits
    u = np.eye(dim, dtype=np.complex128)
    # Evolve all basis states at once (columns as a batch of kets).
    states = np.ascontiguousarray(u)
    for op in circuit:
        states = apply_matrix_batch(states, gate_matrix(op.gate, op.param), op.qubits)
    return states.T  # row b of batch is U|b>; columns of U are U|b>


def heisenberg_observable(
    circuit: Circuit, observable: PauliString | PauliSum, tol: float = 1e-12
) -> PauliSum:
    """Exact Pauli decomposition of ``U^dag O U`` (Appendix A, Eq. A7).

    Returns a :class:`PauliSum` with real coefficients (Hermiticity is
    preserved by conjugation); terms below ``tol`` are dropped.
    """
    if not circuit.is_bound:
        raise ValueError("heisenberg_observable requires a bound circuit")
    n = circuit.num_qubits
    u = circuit_unitary(circuit)
    o_matrix = (
        observable.to_matrix()
        if isinstance(observable, (PauliString, PauliSum))
        else np.asarray(observable, dtype=np.complex128)
    )
    conjugated = u.conj().T @ o_matrix @ u
    dim = 2**n
    terms: list[tuple[complex, PauliString]] = []
    for pauli in local_pauli_strings(n, n):
        coeff = np.trace(pauli.to_matrix() @ conjugated) / dim
        if abs(coeff) > tol:
            # Hermitian matrix in a Hermitian basis: coefficients are real.
            terms.append((coeff.real, pauli))
    return PauliSum(terms)


def truncate_by_locality(observable: PauliSum, locality: int) -> PauliSum:
    """Keep only terms of weight <= ``locality`` (Sec. IV.B's low-degree
    approximation)."""
    return PauliSum(
        [(c, p) for c, p in observable.items() if p.locality <= locality]
    )


def truncate_by_weight(observable: PauliSum, top_k: int) -> PauliSum:
    """Keep the ``top_k`` largest-|coefficient| terms."""
    if top_k < 0:
        raise ValueError("top_k must be >= 0")
    ranked = sorted(observable.items(), key=lambda cp: -abs(cp[0]))
    return PauliSum(ranked[:top_k])


def decomposition_weight_profile(observable: PauliSum) -> dict[int, float]:
    """Squared-coefficient mass per locality.

    Under the normalised Pauli inner product this is the Fourier-weight
    profile of the observable; ``sum_l profile[l] = ||O||_F^2 / 2^n``.
    The Sec. IV.B heuristic ("most physical observables are local") is
    quantified by how much mass sits at small l.
    """
    profile: dict[int, float] = {}
    for coeff, pauli in observable.items():
        weight = float(abs(coeff) ** 2)
        profile[pauli.locality] = profile.get(pauli.locality, 0.0) + weight
    return dict(sorted(profile.items()))
