"""E9 -- pruning ablation (Eqs. 17 and 25): accuracy vs retained circuits.

Sweeps the pruning threshold on the hybrid 1-order + 1-local strategy,
rebuilding the ensemble with only the surviving shift configurations, and
reports features retained vs train/test accuracy.  The design claim being
ablated: gradient/fidelity pruning discards ensemble members with little
accuracy cost until the threshold starts killing informative circuits.
"""

from __future__ import annotations

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.core.features import generate_features
from repro.core.pruning import apply_pruning, fidelity_prune, gradient_prune
from repro.core.shifts import enumerate_shift_configurations
from repro.core.strategies import HybridStrategy
from repro.data.encoding import encode_batch
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy
from repro.quantum.observables import PauliString


class PrunedHybrid(HybridStrategy):
    """Hybrid strategy restricted to an explicit configuration subset."""

    def __init__(self, configs, locality=1):
        super().__init__(circuit=fig8_ansatz(), order=1, locality=locality)
        self._configs = list(configs)


def run_ablation(split):
    circuit = fig8_ansatz()
    states = encode_batch(split.x_train)
    configs = enumerate_shift_configurations(8, 1)

    thresholds = [0.0, 1e-4, 1e-3, 1e-2, 5e-2]
    rows = []
    for thr in thresholds:
        report = gradient_prune(circuit, states, PauliString("ZIII"), threshold=thr)
        kept = apply_pruning(configs, report.pruned_parameters)
        strategy = PrunedHybrid(kept)
        q_train = generate_features(strategy, split.x_train)
        q_test = generate_features(strategy, split.x_test)
        head = LogisticRegression().fit(q_train, split.y_train)
        rows.append(
            {
                "threshold": thr,
                "pruned_params": report.num_pruned,
                "circuits": len(kept),
                "features": strategy.num_features,
                "train_acc": accuracy(split.y_train, head.predict(q_train)),
                "test_acc": accuracy(split.y_test, head.predict(q_test)),
            }
        )

    fid = fidelity_prune(circuit, states, threshold=1e-3)
    grad = gradient_prune(circuit, states, PauliString("ZIII"), threshold=1e-3)
    return rows, fid, grad


def test_pruning_ablation(benchmark, small_split):
    rows, fid, grad = benchmark.pedantic(
        run_ablation, args=(small_split,), rounds=1, iterations=1
    )

    print("\n=== E9: pruning threshold ablation (hybrid 1-order + 1-local) ===")
    print(f"{'threshold':>10} {'pruned':>7} {'circuits':>9} {'features':>9} "
          f"{'train acc':>9} {'test acc':>9}")
    for r in rows:
        print(
            f"{r['threshold']:>10.0e} {r['pruned_params']:>7} {r['circuits']:>9} "
            f"{r['features']:>9} {r['train_acc']:>9.3f} {r['test_acc']:>9.3f}"
        )
    print(f"fidelity scores:  {np.round(fid.scores, 4)}")
    print(f"gradient scores:  {np.round(grad.scores, 4)}")

    # Zero threshold keeps the full ensemble.
    assert rows[0]["circuits"] == 17
    # Monotone: larger thresholds never keep more circuits.
    circuit_counts = [r["circuits"] for r in rows]
    assert circuit_counts == sorted(circuit_counts, reverse=True)
    # Train accuracy is monotone non-increasing with pruning (more features
    # can only help a convex head in-sample), up to solver tolerance.
    train = [r["train_acc"] for r in rows]
    assert all(b <= a + 0.01 for a, b in zip(train, train[1:], strict=False))
    # The Eq. 23-25 ordering holds on the realised scores.
    assert np.all(fid.scores >= grad.scores - 1e-9)
