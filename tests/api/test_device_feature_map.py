"""QuantumDevice sessions and the sklearn-style QuantumFeatureMap."""

import pickle

import numpy as np
import pytest

from repro.api import ExecutionConfig, QuantumDevice, QuantumFeatureMap
from repro.core.features import generate_features, prepare_states
from repro.core.model import PostVariationalClassifier
from repro.core.strategies import HybridStrategy, ObservableConstruction
from repro.hpc.executor import ParallelExecutor
from repro.quantum.backends import DensityMatrixBackend
from repro.quantum.noise import NoiseModel


@pytest.fixture(scope="module")
def strategy():
    return ObservableConstruction(qubits=4, locality=1)


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(7, 4, 4))


# ------------------------------------------------------------------- device
def test_device_run_and_stream_match_reference(strategy, angles):
    cfg = ExecutionConfig(chunk_size=3, dispatch_policy="lpt")
    reference = generate_features(strategy, angles, config=cfg)
    with QuantumDevice(cfg, pool="thread", max_workers=2) as device:
        q, report = device.run(strategy, angles)
        assert report.policy == "lpt"
        assert report.backend == "thread"
        states = device.prepare(angles)
        assembled = np.empty_like(reference)
        seen = 0
        for job, block in device.stream(strategy, states):
            assembled[
                job.lo : job.hi,
                job.ansatz_index * strategy.num_observables :
                (job.ansatz_index + 1) * strategy.num_observables,
            ] = block
            seen += block.shape[0]
    assert np.array_equal(q, reference)
    assert np.array_equal(assembled, reference)
    assert seen == angles.shape[0] * strategy.num_ansatze


def test_device_pool_reused_across_sweeps(strategy, angles):
    with QuantumDevice(pool="thread", max_workers=2) as device:
        device.run(strategy, angles)
        device.run(strategy, angles)
        assert device.runtime.pools_created == 1


def test_device_close_owned_runtime(strategy, angles):
    device = QuantumDevice()
    device.run(strategy, angles)
    device.close()
    assert device.closed
    with pytest.raises(RuntimeError):
        device.run(strategy, angles)


def test_device_shared_runtime_not_closed():
    executor = ParallelExecutor("thread", max_workers=2)
    runtime = executor.runtime
    with QuantumDevice(runtime=executor):
        pass
    assert not runtime.closed  # ownership rule: shared pools survive
    executor.close()


def test_device_reconfigured_shares_runtime(strategy, angles):
    with QuantumDevice(pool="thread", max_workers=2) as device:
        noisy = device.reconfigured(
            backend=DensityMatrixBackend(NoiseModel.depolarizing(0.01))
        )
        assert noisy.runtime is device.runtime
        assert noisy.config.backend.name == "density"
        assert device.config.backend.name == "statevector"
        noisy.close()  # non-owning: must not tear the shared pool down
        assert not device.runtime.closed
        device.run(strategy, angles)


def test_device_threads_through_model(strategy, angles):
    y = np.arange(7) % 2
    cfg = ExecutionConfig(chunk_size=2)
    reference = PostVariationalClassifier(strategy=strategy, config=cfg).fit(angles, y)
    with QuantumDevice(cfg, pool="thread", max_workers=2) as device:
        via_device = PostVariationalClassifier(strategy=strategy, device=device).fit(
            angles, y
        )
        assert via_device.executor is device.runtime
    assert np.array_equal(reference.q_train_, via_device.q_train_)


def test_device_rejects_bad_config():
    with pytest.raises(TypeError):
        QuantumDevice(config={"estimator": "exact"})


def test_device_rejects_runtime_plus_pool_kwargs():
    # runtime= and pool-construction kwargs are mutually exclusive: silently
    # ignoring the requested pool would run sweeps on the wrong substrate.
    with ParallelExecutor() as executor:
        with pytest.raises(TypeError, match="one or the other"):
            QuantumDevice(runtime=executor, pool="process", max_workers=4)
        with pytest.raises(TypeError, match="one or the other"):
            QuantumDevice(runtime=executor, max_workers=2)


# -------------------------------------------------------------- feature map
def test_feature_map_matches_generate_features(strategy, angles):
    reference = generate_features(strategy, angles)
    with QuantumFeatureMap(strategy) as fmap:
        q = fmap.fit_transform(angles)
        assert np.array_equal(q, reference)
        assert fmap.last_report_ is not None
        assert fmap.n_features_in_ == 16


def test_feature_map_accepts_2d_sklearn_input(strategy, angles):
    flat = angles.reshape(angles.shape[0], -1)
    with QuantumFeatureMap(strategy) as fmap:
        q3 = fmap.fit_transform(angles)
        q2 = fmap.fit_transform(flat)
    assert np.array_equal(q2, q3)


def test_feature_map_transform_requires_fit(strategy, angles):
    fmap = QuantumFeatureMap(strategy)
    with pytest.raises(RuntimeError, match="not fitted"):
        fmap.transform(angles)


def test_feature_map_width_mismatch_rejected(strategy, angles):
    fmap = QuantumFeatureMap(strategy).fit(angles)
    with pytest.raises(ValueError, match="features per sample"):
        fmap.transform(angles[:, :2, :])


def test_feature_map_feature_names(strategy):
    names = QuantumFeatureMap(strategy).get_feature_names_out()
    assert len(names) == strategy.num_features
    assert names[0] == "ansatz0_obs0"
    assert names[-1] == f"ansatz{strategy.num_ansatze - 1}_obs{strategy.num_observables - 1}"


def test_feature_map_sklearn_params_roundtrip(strategy):
    cfg = ExecutionConfig(estimator="shots", shots=8)
    fmap = QuantumFeatureMap(strategy, config=cfg)
    params = fmap.get_params()
    clone = QuantumFeatureMap(params["strategy"]).set_params(config=params["config"])
    assert clone.config == cfg
    with pytest.raises(ValueError):
        fmap.set_params(unknown=1)
    with pytest.raises(ValueError, match="strategy is required"):
        fmap.set_params(strategy=None)
    assert fmap.strategy is strategy  # failed call mutated nothing


def test_feature_map_config_is_picklable(strategy):
    fmap = QuantumFeatureMap(strategy, config=ExecutionConfig(seed=4))
    restored = pickle.loads(pickle.dumps(fmap))
    assert restored.config == fmap.config


def test_feature_map_shared_device_not_closed(strategy, angles):
    with QuantumDevice(pool="thread", max_workers=2) as device:
        fmap = QuantumFeatureMap(strategy, device=device)
        fmap.fit_transform(angles)
        fmap.close()  # shared device is untouched by the map's close()
        assert not device.closed
        device.run(strategy, angles)


def test_feature_map_set_params_rejects_config_plus_device(strategy):
    with QuantumDevice() as device:
        fmap = QuantumFeatureMap(strategy, device=device)
        with pytest.raises(TypeError, match="not both"):
            fmap.set_params(config=ExecutionConfig())
        # The failed call must not have mutated anything (a caller catching
        # the error keeps a consistent transformer).
        assert fmap.config is None
        assert fmap.device is device
        # Swapping the device out for a config is the legitimate path.
        fmap.set_params(device=None, config=ExecutionConfig())
        assert fmap.config is not None


def test_model_device_swap_after_construction_is_live(strategy, angles):
    """Assigning model.device post-construction rebinds config + runtime."""
    from repro.core.model import PostVariationalClassifier

    y = np.arange(7) % 2
    cfg = ExecutionConfig(estimator="shots", shots=8, seed=5)
    with QuantumDevice(cfg, pool="thread", max_workers=2) as device:
        model = PostVariationalClassifier(strategy=strategy)
        model.device = device
        model.fit(angles, y)
        assert model.executor is device.runtime
        assert model.config == cfg
        # The *first* sweep after the swap must already run on the device's
        # pool (the sync happens before the executor argument is read).
        assert device.runtime.pools_created == 1
    reference = PostVariationalClassifier(strategy=strategy, config=cfg).fit(angles, y)
    assert np.array_equal(model.q_train_, reference.q_train_)


def test_feature_map_set_params_config_takes_effect(strategy, angles):
    """A config swapped in via set_params must drive the next transform."""
    fmap = QuantumFeatureMap(strategy, config=ExecutionConfig())
    exact = fmap.fit_transform(angles)
    fmap.set_params(config=ExecutionConfig(estimator="shots", shots=8, seed=1))
    shotty = fmap.transform(angles)
    fmap.close()
    assert not np.array_equal(exact, shotty)
    reference = generate_features(
        strategy, angles, config=ExecutionConfig(estimator="shots", shots=8, seed=1)
    )
    assert np.array_equal(shotty, reference)


def test_feature_map_composes_with_classical_head(angles):
    """The sklearn split: quantum transformer + any classical estimator."""
    from repro.ml.logistic import LogisticRegression

    strategy = HybridStrategy(order=1, locality=1)
    y = np.arange(7) % 2
    with QuantumFeatureMap(strategy, config=ExecutionConfig(compile="auto")) as fmap:
        q = fmap.fit_transform(angles)
        head = LogisticRegression().fit(q, y)
        preds = head.predict(fmap.transform(angles))
    assert preds.shape == y.shape


def test_prepare_states_public_helper(strategy, angles):
    states = prepare_states(None, angles)
    assert states.shape == (7, 16)
    direct = generate_features(strategy, angles)
    from repro.core.features import evaluate_features

    assert np.array_equal(evaluate_features(strategy, states), direct)
