"""CLI smoke tests (capsys-based)."""

import json

import pytest

from repro.cli import main
from repro.api import ExecutionConfig


def test_counts_command(capsys):
    assert main(["counts"]) == 0
    out = capsys.readouterr().out
    assert "R=1: 17" in out
    assert "L=2: 67" in out


def test_budgets_command(capsys):
    assert main(["budgets", "--epsilon", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "asymptotic" in out
    assert "observable_construction" in out
    assert "shadows" in out


def test_scaling_command(capsys):
    assert main(["scaling", "--tasks", "16", "--nodes", "1", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out and "speedup" in out


def test_table3_command_small(capsys):
    assert main(["table3", "--train", "8", "--test", "4", "--epochs", "1"]) == 0
    out = capsys.readouterr().out
    assert "logistic" in out and "observable L=2" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_config_command_prints_resolved_json(capsys):
    assert main([
        "config", "--backend", "noisy", "--chunk-size", "4", "--policy", "lpt",
        "--estimator", "shots", "--shots", "64", "--compile", "auto",
    ]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["estimator"] == "shots"
    assert data["shots"] == 64
    assert data["chunk_size"] == 4
    assert data["dispatch_policy"] == "lpt"
    assert data["compile"] == "auto"
    assert data["backend"]["kind"] == "density"
    assert data["backend"]["noise_model"]["one_qubit"] is not None
    # The printed JSON is the real wire form: it reconstructs a config.
    cfg = ExecutionConfig.from_dict(data)
    assert cfg.dispatch_policy == "lpt"


def test_config_command_mitigated_backend(capsys):
    assert main(["config", "--backend", "mitigated"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["backend"]["kind"] == "mitigated"
    assert data["backend"]["backend"]["kind"] == "density"
    assert ExecutionConfig.from_dict(data).backend.scales == (1, 3, 5)


def test_config_command_ideal_default(capsys):
    assert main(["config"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["backend"] == {"kind": "statevector"}
    assert ExecutionConfig.from_dict(data) == ExecutionConfig()


def test_config_command_rejects_bad_policy():
    with pytest.raises(SystemExit):
        main(["config", "--policy", "bogus"])


def test_config_command_rejects_bad_compile(capsys):
    # A proper argparse error (exit code 2), not a raw ValueError traceback.
    with pytest.raises(SystemExit) as excinfo:
        main(["config", "--compile", "bogus"])
    assert excinfo.value.code == 2
    assert "auto" in capsys.readouterr().err


def test_config_command_accepts_int_compile(capsys):
    assert main(["config", "--compile", "2"]) == 0
    assert json.loads(capsys.readouterr().out)["compile"] == 2


@pytest.mark.parametrize(
    "flags",
    [
        ["--compile", "0"],
        ["--shots", "-5"],
        ["--snapshots", "-1"],
        ["--chunk-size", "0"],
        ["--noise-p1", "1.5", "--backend", "noisy"],
        ["--estimator", "shadows", "--backend", "noisy"],
        ["--seed", "-1"],
        ["--noise-p1", "0.01"],  # noise knob without a noisy backend
    ],
)
def test_out_of_range_execution_flags_are_clean_cli_errors(flags, capsys):
    # Every invalid combination exits 2 with a message, never a traceback.
    with pytest.raises(SystemExit) as excinfo:
        main(["config", *flags])
    assert excinfo.value.code == 2
    assert capsys.readouterr().err.strip()


def test_table3_accepts_execution_flags(capsys):
    assert main([
        "table3", "--train", "6", "--test", "4", "--epochs", "1",
        "--chunk-size", "3", "--policy", "lpt", "--compile", "auto",
    ]) == 0
    out = capsys.readouterr().out
    assert "observable L=2" in out
