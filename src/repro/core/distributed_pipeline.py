"""SPMD (rank-parallel) feature generation and head training.

The production deployment pattern for the hybrid HPC-QC system: every rank
owns a block of the data, drives its own QPU (simulator) through the fixed
ensemble, and the classical head is trained *data-parallel* with gradient
allreduce -- no rank ever materialises the full Q matrix unless asked to.

Two entry points, both collective over a :class:`Communicator`:

* :func:`generate_features_spmd` -- block-partitioned Algorithm 1; returns
  each rank's local block (optionally allgathers the full matrix);
* :func:`fit_logistic_spmd` -- synchronous data-parallel logistic
  regression: local BCE gradients, ``allreduce`` sum, identical updates on
  every rank (deterministic: every rank ends with bit-identical weights).

Verified against the serial implementations in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.config import UNSET, ExecutionConfig, resolve_call
from repro.core.features import generate_features
from repro.core.strategies import Strategy
from repro.hpc.comm import Communicator
from repro.hpc.executor import ParallelExecutor
from repro.hpc.partition import block_partition
from repro.hpc.runtime import ExecutionRuntime
from repro.ml.losses import sigmoid
from repro.quantum.backends import QuantumBackend

__all__ = ["generate_features_spmd", "fit_logistic_spmd", "SpmdFitResult"]


def generate_features_spmd(
    comm: Communicator,
    strategy: Strategy,
    angles: np.ndarray,
    estimator: str = UNSET,
    shots: int = UNSET,
    seed: int = UNSET,
    allgather: bool = False,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    dispatch_policy: str = UNSET,
    backend: QuantumBackend | None = UNSET,
    *,
    config: ExecutionConfig | None = None,
    device=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Collective Algorithm 1: rank r computes rows ``block_partition[r]``.

    Returns ``(row_indices, q_block)`` for this rank; with ``allgather=True``
    every rank instead receives the full ``(arange(d), Q)``.

    Execution is configured by ``config=``/``device=`` exactly as in
    :func:`~repro.core.features.generate_features` (loose kwargs remain as
    deprecated shims); the config must be identical on every rank.  The
    config's ``seed`` must be an int: stochastic estimators derive per-rank
    seeds from it and the block's first global row, making runs
    deterministic for a *fixed* rank count (shot noise realisations differ
    across rank counts, as they would on a real cluster with per-node
    RNGs).  The exact estimator is independent of the rank count.

    ``executor`` (or a device's runtime) lets each rank drive a
    *persistent* node-local runtime (hybrid MPI x pool parallelism): the
    pool survives across repeated collective sweeps instead of being
    rebuilt per call, and ``config.dispatch_policy`` orders the rank-local
    submission queue.
    """
    cfg, executor = resolve_call(
        config,
        device,
        executor,
        dict(
            estimator=estimator,
            shots=shots,
            seed=seed,
            dispatch_policy=dispatch_policy,
            backend=backend,
        ),
        owner="generate_features_spmd",
    )
    if not isinstance(cfg.seed, (int, np.integer)):
        raise ValueError(
            f"generate_features_spmd derives per-rank seeds and needs an int "
            f"config seed, got {cfg.seed!r}"
        )
    angles = np.asarray(angles, dtype=float)
    rows = block_partition(angles.shape[0], comm.size)[comm.rank]
    block = (
        generate_features(
            strategy,
            angles[rows],
            executor=executor,
            config=cfg.merged(seed=int(cfg.seed) + int(rows[0])),
        )
        if rows.size
        else np.empty((0, strategy.num_features))
    )
    if not allgather:
        return rows, block
    gathered = comm.allgather((rows, block))
    d = angles.shape[0]
    full = np.empty((d, strategy.num_features))
    for idx, blk in gathered:
        if idx.size:
            full[idx] = blk
    return np.arange(d), full


@dataclass
class SpmdFitResult:
    """Outcome of a data-parallel head fit (identical on every rank)."""

    coef: np.ndarray
    intercept: float
    iterations: int
    final_loss: float


def fit_logistic_spmd(
    comm: Communicator,
    q_local: np.ndarray,
    y_local: np.ndarray,
    l2: float = 1.0,
    lr: float = 0.5,
    iterations: int = 500,
    tol: float = 1e-8,
) -> SpmdFitResult:
    """Synchronous data-parallel logistic regression (collective).

    Each rank holds rows ``(q_local, y_local)``; the global objective is the
    *sum* NLL + (l2/2)||w||^2, its gradient assembled by one allreduce per
    step.  Plain gradient descent with a fixed step over the 1/4-smooth BCE
    keeps every rank's update bit-identical (no rank-dependent branching).
    """
    q_local = np.asarray(q_local, dtype=float)
    y_local = np.asarray(y_local, dtype=float).ravel()
    m = q_local.shape[1]
    d_total = int(comm.allreduce(q_local.shape[0]))
    if d_total == 0:
        raise ValueError("no training rows across ranks")

    # Lipschitz bound of the summed objective: L <= ||Q||^2/4 + l2;
    # bound ||Q||^2 <= sum of squared entries (cheap, allreduce-able).
    local_sq = float(np.sum(q_local**2))
    total_sq = float(comm.allreduce(local_sq))
    step = lr / (total_sq / 4.0 + l2 + 1.0)

    w = np.zeros(m)
    b = 0.0
    loss = np.inf
    for _it in range(iterations):
        z = q_local @ w + b
        p = sigmoid(z)
        local_grad_w = q_local.T @ (p - y_local)
        local_grad_b = float(np.sum(p - y_local))
        local_nll = float(np.sum(np.logaddexp(0.0, z) - y_local * z))
        grad_w, grad_b, nll = comm.allreduce(
            (local_grad_w, local_grad_b, local_nll),
            op=lambda a, c: (a[0] + c[0], a[1] + c[1], a[2] + c[2]),
        )
        grad_w = grad_w + l2 * w
        new_loss = nll + 0.5 * l2 * float(w @ w)
        w = w - step * grad_w
        b = b - step * grad_b
        if abs(loss - new_loss) < tol * max(1.0, abs(new_loss)):
            loss = new_loss
            break
        loss = new_loss
    return SpmdFitResult(coef=w, intercept=b, iterations=_it + 1, final_loss=float(loss))
