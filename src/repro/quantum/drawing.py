"""ASCII circuit rendering (no matplotlib offline).

Renders circuits as fixed-width wire diagrams, e.g. the Fig. 7 encoder::

    q0: -H--RZ(1.2)--RX(0.4)-
    q1: -H--RZ(0.7)--RX(2.2)-

Used by the examples and handy in test failure output; layout follows the
same greedy ASAP layering as :meth:`Circuit.depth`, so columns correspond
to depth layers.
"""

from __future__ import annotations

from repro.quantum.circuit import Circuit, Operation, Parameter

__all__ = ["draw_circuit"]


def _gate_label(op: Operation) -> str:
    name = op.gate.upper()
    if op.param is None:
        return name
    if isinstance(op.param, Parameter):
        return f"{name}({op.param.name})"
    return f"{name}({float(op.param):.3g})"


def draw_circuit(circuit: Circuit, max_width: int = 120) -> str:
    """Render ``circuit`` as an ASCII diagram (one row per qubit).

    Two-qubit gates draw a vertical connector: control marked ``*``, target
    boxed; long circuits wrap at ``max_width`` columns into stacked panels.
    """
    n = circuit.num_qubits
    # Assign ops to layers (ASAP).
    frontier = [0] * n
    layers: list[list[Operation]] = []
    for op in circuit:
        layer = max(frontier[q] for q in op.qubits)
        while len(layers) <= layer:
            layers.append([])
        layers[layer].append(op)
        for q in op.qubits:
            frontier[q] = layer + 1

    # Build cell grid: one label per (qubit, layer).
    grid: list[list[str]] = [["" for _ in layers] for _ in range(n)]
    for li, layer_ops in enumerate(layers):
        for op in layer_ops:
            label = _gate_label(op)
            if len(op.qubits) == 1:
                grid[op.qubits[0]][li] = label
            else:
                control, target = op.qubits
                grid[control][li] = "*"
                grid[target][li] = label

    widths = [
        max((len(grid[q][li]) for q in range(n)), default=1) for li in range(len(layers))
    ]

    rows = []
    for q in range(n):
        cells = []
        for li, width in enumerate(widths):
            label = grid[q][li]
            pad = width - len(label)
            cell = label + "-" * pad if label else "-" * width
            cells.append(cell)
        rows.append(f"q{q}: -" + "--".join(cells) + "-")

    # Wrap into panels if too wide.
    if not rows or len(rows[0]) <= max_width:
        return "\n".join(rows)
    panels = []
    start = 0
    prefix = len(f"q{n - 1}: -")
    body_width = max_width - prefix
    body = [r[prefix:] for r in rows]
    heads = [r[:prefix] for r in rows]
    while start < len(body[0]):
        chunk = [h + b[start : start + body_width] for h, b in zip(heads, body, strict=True)]
        panels.append("\n".join(chunk))
        start += body_width
    return ("\n" + "." * 8 + "\n").join(panels)
