"""Regression: the model classes honor every execution knob.

Historically ``PostVariationalRegressor``/``PostVariationalClassifier``
accepted no ``chunk_size``/``compile``/``dispatch_policy`` and silently
used defaults even when the surrounding pipeline was configured otherwise
-- the knob drift the unified config fixes by construction.  These tests
pin the fix: under an identical ``ExecutionConfig`` the model and the
pipeline produce *identical* feature matrices, and the once-ignored knobs
demonstrably reach the sweep.
"""

import numpy as np
import pytest

from repro.api import ExecutionConfig
from repro.core.model import PostVariationalClassifier, PostVariationalRegressor
from repro.core.pipeline import HybridPipeline
from repro.core.strategies import ObservableConstruction

CFG = ExecutionConfig(
    estimator="shots", shots=32, seed=11, chunk_size=3,
    compile="auto", dispatch_policy="lpt",
)


@pytest.fixture(scope="module")
def strategy():
    return ObservableConstruction(qubits=4, locality=1)


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(5)
    return rng.uniform(0, 2 * np.pi, size=(8, 4, 4))


def test_model_and_pipeline_features_identical_under_same_config(strategy, angles):
    y = np.arange(8) % 2
    model = PostVariationalClassifier(strategy=strategy, config=CFG).fit(angles, y)
    with HybridPipeline(strategy=strategy, config=CFG) as pipeline:
        pipeline.fit(angles, y)
        pipeline_q = pipeline._features(angles)
    # Same config object -> same seed derivation, chunking, compilation and
    # dispatch policy -> bit-identical Q matrices.
    assert np.array_equal(model.q_train_, pipeline_q)


def test_models_honor_previously_dropped_knobs(strategy, angles):
    """chunk_size/compile/dispatch_policy change the model's execution.

    ``chunk_size`` alters the job grid and therefore the per-task RNG
    streams of stochastic estimators: if the knob were still silently
    dropped (the old bug), both fits would produce the same matrix.
    """
    base = ExecutionConfig(estimator="shots", shots=16, seed=0)
    y = np.arange(8) % 2
    q_default = PostVariationalClassifier(strategy=strategy, config=base).fit(
        angles, y
    ).q_train_
    q_chunked = PostVariationalClassifier(
        strategy=strategy, config=base.merged(chunk_size=1)
    ).fit(angles, y).q_train_
    assert not np.array_equal(q_default, q_chunked)


def test_model_config_resolution_matches_legacy_defaults(strategy, angles):
    """A bare model is bit-identical to its pre-config behaviour."""
    y = np.arange(8) % 2
    bare = PostVariationalClassifier(strategy=strategy).fit(angles, y)
    explicit = PostVariationalClassifier(
        strategy=strategy, config=ExecutionConfig()
    ).fit(angles, y)
    assert np.array_equal(bare.q_train_, explicit.q_train_)
    assert bare.config == ExecutionConfig()


def test_regressor_accepts_config(strategy, angles):
    y = np.linspace(-1, 1, 8)
    reg = PostVariationalRegressor(strategy=strategy, config=CFG).fit(angles, y)
    reg2 = PostVariationalRegressor(strategy=strategy, config=CFG).fit(angles, y)
    assert np.array_equal(reg.q_train_, reg2.q_train_)
    assert np.allclose(reg.predict(angles), reg2.predict(angles))


def test_post_construction_attribute_mutation_is_live(strategy, angles):
    """The historical idiom ``model.estimator = 'shots'`` still works.

    The mirrored attributes are re-synced into the config at every sweep,
    so mutating them after construction changes the features -- the
    pre-config behaviour, preserved.
    """
    y = np.arange(8) % 2
    model = PostVariationalClassifier(strategy=strategy)
    model.estimator = "shots"
    model.shots = 8
    model.fit(angles, y)
    assert model.config.estimator == "shots"
    assert model.config.shots == 8
    reference = PostVariationalClassifier(
        strategy=strategy, config=ExecutionConfig(estimator="shots", shots=8)
    ).fit(angles, y)
    assert np.array_equal(model.q_train_, reference.q_train_)


def test_post_construction_config_replacement_is_live(strategy, angles):
    y = np.arange(8) % 2
    model = PostVariationalClassifier(strategy=strategy)
    model.config = ExecutionConfig(estimator="shots", shots=8, seed=3)
    model.fit(angles, y)
    assert model.estimator == "shots"  # mirrors refreshed from the new config
    reference = PostVariationalClassifier(
        strategy=strategy, config=ExecutionConfig(estimator="shots", shots=8, seed=3)
    ).fit(angles, y)
    assert np.array_equal(model.q_train_, reference.q_train_)


def test_pipeline_attribute_mutation_is_live(strategy, angles):
    y = np.arange(8) % 2
    with HybridPipeline(strategy=strategy) as pipe:
        pipe.estimator = "shots"
        pipe.shots = 8
        pipe.scheduling_policy = "block"
        pipe.fit(angles, y)
        assert pipe.config.estimator == "shots"
        assert pipe.config.dispatch_policy == "block"
        assert pipe.report_.counter.get("shots_fired") > 0


def test_config_reset_to_none_restores_owner_defaults(strategy, angles):
    y = np.arange(8) % 2
    model = PostVariationalClassifier(strategy=strategy, config=CFG)
    model.config = None
    model.fit(angles, y)  # must not crash; back to model defaults
    assert model.config == ExecutionConfig()
    with HybridPipeline(strategy=strategy, config=CFG) as pipe:
        pipe.config = None
        assert pipe._current_config().compile == "auto"  # pipeline defaults


def test_device_swap_releases_owned_pipeline_pool(strategy, angles):
    from repro.api import QuantumDevice

    y = np.arange(8) % 2
    pipe = HybridPipeline(strategy=strategy)
    pipe.fit(angles, y)
    owned = pipe.executor  # the auto-created ParallelExecutor facade
    with QuantumDevice(ExecutionConfig()) as device:
        pipe.device = device
        pipe.fit(angles, y)
        assert pipe.executor is device.runtime
    # The previously owned facade's runtime was released, not orphaned.
    assert owned._runtime is None or owned._runtime.closed


def test_mutated_knob_is_revalidated(strategy):
    model = PostVariationalClassifier(strategy=strategy)
    model.estimator = "bogus"
    with pytest.raises(ValueError, match="unknown estimator"):
        model._current_config()


def test_pipeline_projection_uses_config_chunking(strategy):
    """circuit_tasks reflects the configured chunk_size (not a default)."""
    with HybridPipeline(strategy=strategy, config=CFG.merged(chunk_size=2)) as p:
        tasks = p.circuit_tasks(num_samples=8)
    # 8 samples / chunk 2 = 4 chunks per Ansatz instance.
    assert len(tasks) == 4 * strategy.num_ansatze
    assert all(t.num_circuits == 2 for t in tasks)
