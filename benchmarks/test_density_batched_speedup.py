"""E16 -- vectorized density evolution vs the per-sample Kraus walk.

Noisy sweeps used to be the one regime stuck on sample-at-a-time
execution: every data point re-walked the gate list, inserting Kraus
channels one density matrix at a time.  The batched engine
(:class:`~repro.quantum.density.BatchedDensityProgram`) compiles the
template once and advances the whole batch as one stacked
``(B, 2,..,2 | 2,..,2)`` tensor, so each gate and each Kraus operator is a
single ``(B, 4^n)``-sized kernel pass instead of ``B`` Python walks.

Measured on the reference noisy workload (6 qubits, depth >= 20 bound
Ansatz behind a 4-row encoder, depolarizing noise, batch 32, locality-1
Pauli block) with an acceptance bar of a >= 5x speedup over the per-sample
walk at <= 1e-10 equivalence.  A second section times the mitigated path:
step-level folded programs (the batched counterpart of ZNE's
``fold_circuit``) against the per-sample fold-then-walk oracle.

Smoke mode (``DENSITY_BENCH_SMOKE=1``, the CI perf-guard job) shrinks the
workload and gates on "batched never loses to the per-sample oracle"
instead of the full 5x bar.  Results are written to ``BENCH_density.json``
only when ``BENCH_WRITE=1``.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import best_of, env_flag, write_bench_record
from repro.quantum.batched import extend_template
from repro.quantum.circuit import Circuit
from repro.quantum.density import (
    compile_density_template,
    expectation_density,
    fold_density_program,
    run_batched_density,
    run_circuit_density,
)
from repro.quantum.mitigation import fold_circuit
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import local_pauli_strings
from repro.data.encoding import encoding_template

SMOKE = env_flag("DENSITY_BENCH_SMOKE")

NUM_QUBITS = 4 if SMOKE else 6
ROWS = 2 if SMOKE else 4
TARGET_DEPTH = 8 if SMOKE else 20
BATCH = 8 if SMOKE else 32
REPEATS = 2 if SMOKE else 3
FOLD_SCALES = (1, 3) if SMOKE else (1, 3, 5)
NOISE_P1 = 0.01
LOCALITY = 1


def build_ansatz() -> Circuit:
    """A bound depth>=TARGET_DEPTH hardware-efficient Ansatz instance."""
    rng = np.random.default_rng(0)
    circuit = Circuit(NUM_QUBITS, name="noisy-ansatz")
    while circuit.depth() < TARGET_DEPTH:
        for q in range(NUM_QUBITS):
            circuit.append("ry", q, float(rng.uniform(-np.pi, np.pi)))
            circuit.append("rz", q, float(rng.uniform(-np.pi, np.pi)))
        for q in range(NUM_QUBITS - 1):
            circuit.append("cnot", (q, q + 1))
    return circuit


def run_benchmark():
    rng = np.random.default_rng(1)
    noise = NoiseModel.depolarizing(NOISE_P1)
    template = extend_template(encoding_template(ROWS, NUM_QUBITS), build_ansatz())
    angles = rng.uniform(0, 2 * np.pi, size=(BATCH, ROWS * NUM_QUBITS))
    observables = local_pauli_strings(NUM_QUBITS, LOCALITY)
    obs_matrices = np.stack([o.to_matrix() for o in observables])

    compile_start = time.perf_counter()
    program = compile_density_template(template, noise)
    compile_time = time.perf_counter() - compile_start

    def per_sample_block() -> np.ndarray:
        """Sample-at-a-time walk: bind, evolve with Kraus insertion, measure."""
        block = np.empty((BATCH, len(observables)))
        for i in range(BATCH):
            rho = run_circuit_density(template.bind(angles[i]), noise_model=noise)
            for b, obs in enumerate(observables):
                block[i, b] = expectation_density(rho, obs)
        return block

    def batched_block() -> np.ndarray:
        """One stacked walk + one trace contraction for all expectations."""
        rhos = run_batched_density(program, angles)
        return np.einsum("oij,bji->bo", obs_matrices, rhos).real

    oracle = per_sample_block()
    batched = batched_block()
    max_err = float(np.abs(oracle - batched).max())

    t_per_sample = best_of(per_sample_block, REPEATS)
    t_batched = best_of(batched_block, REPEATS)

    # Mitigated path: the folded-program sweep MitigatedBackend runs per
    # ZNE scale, against the per-sample fold_circuit + walk oracle.
    folded = {s: fold_density_program(program, s) for s in FOLD_SCALES}

    def per_sample_folds() -> np.ndarray:
        out = np.empty((BATCH, len(FOLD_SCALES)), dtype=np.complex128)
        for i in range(BATCH):
            bound = template.bind(angles[i])
            for k, s in enumerate(FOLD_SCALES):
                rho = run_circuit_density(fold_circuit(bound, s), noise_model=noise)
                out[i, k] = rho[0, 0]
        return out

    def batched_folds() -> np.ndarray:
        return np.stack(
            [run_batched_density(folded[s], angles)[:, 0, 0] for s in FOLD_SCALES],
            axis=1,
        )

    fold_err = float(np.abs(per_sample_folds() - batched_folds()).max())
    t_fold_per_sample = best_of(per_sample_folds, REPEATS)
    t_fold_batched = best_of(batched_folds, REPEATS)

    return {
        "benchmark": "density_batched_speedup",
        "workload": {
            "num_qubits": NUM_QUBITS,
            "rows": ROWS,
            "ansatz_depth": template.depth(),
            "template_gates": template.num_gates,
            "angle_slots": program.num_slots,
            "batch": BATCH,
            "observables": len(observables),
            "noise_p1": NOISE_P1,
            "smoke": SMOKE,
        },
        "program": {
            "steps": program.num_steps,
            "kernel_passes": program.num_kernel_passes,
            "compile_time_s": compile_time,
        },
        "t_per_sample_s": t_per_sample,
        "t_batched_s": t_batched,
        "speedup": t_per_sample / t_batched,
        "max_abs_err": max_err,
        "mitigated": {
            "fold_scales": list(FOLD_SCALES),
            "t_per_sample_s": t_fold_per_sample,
            "t_batched_s": t_fold_batched,
            "speedup": t_fold_per_sample / t_fold_batched,
            "max_abs_err": fold_err,
        },
    }


def test_batched_density_beats_per_sample_kraus_walk():
    result = run_benchmark()
    write_bench_record("BENCH_density.json", result)

    print("\n=== E16: vectorized density evolution ===")
    w, prog = result["workload"], result["program"]
    print(
        f"workload: {w['num_qubits']} qubits, depth {w['ansatz_depth']}, "
        f"{w['template_gates']} gates ({w['angle_slots']} angle slots), "
        f"depolarizing p1={w['noise_p1']}, batch {w['batch']}, "
        f"{w['observables']} observables"
    )
    print(
        f"template -> {prog['steps']} steps / {prog['kernel_passes']} kernel "
        f"passes, compiled once in {prog['compile_time_s']*1e3:.1f} ms"
    )
    print(
        f"per-sample {result['t_per_sample_s']*1e3:.1f} ms  "
        f"batched {result['t_batched_s']*1e3:.1f} ms  "
        f"speedup {result['speedup']:.1f}x  "
        f"(max |err| {result['max_abs_err']:.1e})"
    )
    m = result["mitigated"]
    print(
        f"mitigated folds {m['fold_scales']}: "
        f"per-sample {m['t_per_sample_s']*1e3:.1f} ms  "
        f"batched {m['t_batched_s']*1e3:.1f} ms  "
        f"speedup {m['speedup']:.1f}x  (max |err| {m['max_abs_err']:.1e})"
    )

    # Correctness before speed: identical Kraus insertion points.
    assert result["max_abs_err"] < 1e-10
    assert result["mitigated"]["max_abs_err"] < 1e-10
    if SMOKE:
        # The CI perf-guard gate: batched density must never lose to the
        # per-sample Kraus walk.
        assert result["speedup"] >= 1.0
        assert result["mitigated"]["speedup"] >= 1.0
    else:
        # The tentpole acceptance bar on the reference noisy workload.
        assert result["speedup"] >= 5.0
