"""Zero-noise extrapolation (ZNE) -- error mitigation for the ensemble.

The standard NISQ mitigation: evaluate each expectation at amplified noise
levels and Richardson-extrapolate to zero.  Noise amplification uses global
*unitary folding*: the circuit ``C`` becomes ``C (C^dag C)^k``, multiplying
the effective error rate by ``2k + 1`` while preserving the ideal unitary.

Works with the density-matrix simulator and any gate-level
:class:`~repro.quantum.noise.NoiseModel`; the tests confirm that mitigated
expectations land closer to the ideal value than raw noisy ones across the
encoded-image workload.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.density import expectation_density, run_circuit_density
from repro.quantum.noise import NoiseModel

__all__ = ["fold_circuit", "richardson_weights", "richardson_extrapolate", "zne_expectation"]


def fold_circuit(circuit: Circuit, scale: int) -> Circuit:
    """Global unitary folding: ``C -> C (C^dag C)^k`` with scale = 2k + 1.

    ``scale`` must be an odd positive integer; scale 1 returns the circuit
    unchanged.  The folded circuit implements the same unitary but executes
    ``scale`` times the gates, amplifying gate noise proportionally.
    """
    if scale < 1 or scale % 2 == 0:
        raise ValueError(f"scale={scale} must be an odd positive integer")
    if not circuit.is_bound:
        raise ValueError("fold_circuit requires a bound circuit")
    if scale == 1:
        return circuit
    folded = circuit.copy()
    inverse = circuit.inverse()
    for _ in range((scale - 1) // 2):
        folded = folded.compose(inverse).compose(circuit)
    return folded


def richardson_weights(scales: np.ndarray) -> np.ndarray:
    """Extrapolation weights ``w`` with ``w @ values`` the zero-noise value.

    Lagrange basis evaluated at 0: ``w_i = prod_{j != i} (-s_j)/(s_i - s_j)``.
    Separated out so batched consumers (the mitigated backend extrapolating
    whole Q-matrix columns) compute the weights once per sweep.
    """
    scales = np.asarray(scales, dtype=float)
    if scales.ndim != 1 or scales.size < 2:
        raise ValueError("need >= 2 scales")
    if len(set(scales.tolist())) != scales.size:
        raise ValueError("scales must be distinct")
    weights = np.empty(scales.size)
    for i in range(scales.size):
        weight = 1.0
        for j in range(scales.size):
            if j != i:
                weight *= (-scales[j]) / (scales[i] - scales[j])
        weights[i] = weight
    return weights


def richardson_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Zero-noise value from (scale, expectation) pairs.

    Fits the unique degree-(len-1) interpolating polynomial and evaluates at
    scale 0 -- classic Richardson.  Two points give linear extrapolation,
    three quadratic, etc.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.shape != values.shape or scales.size < 2:
        raise ValueError("need >= 2 matching (scale, value) pairs")
    return float(richardson_weights(scales) @ values)


def zne_expectation(
    circuit: Circuit,
    observable,
    noise_model: NoiseModel,
    scales: tuple[int, ...] = (1, 3, 5),
) -> tuple[float, dict[int, float]]:
    """Mitigated expectation of ``observable`` after ``circuit`` under noise.

    Returns ``(zero_noise_estimate, {scale: noisy_value})``.  Exact Kraus
    evolution (no sampling), so the only residual error is the
    extrapolation model mismatch.
    """
    values = {}
    for scale in scales:
        folded = fold_circuit(circuit, scale)
        rho = run_circuit_density(folded, noise_model=noise_model)
        values[scale] = expectation_density(rho, observable)
    estimate = richardson_extrapolate(
        np.array(list(values.keys()), dtype=float),
        np.array(list(values.values())),
    )
    return estimate, values
