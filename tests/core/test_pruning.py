"""Pruning heuristic tests (Eqs. 17, 21-25)."""

import numpy as np
import pytest

from repro.core.ansatz import fig8_ansatz
from repro.core.pruning import apply_pruning, fidelity_prune, gradient_prune
from repro.core.shifts import enumerate_shift_configurations
from repro.data.encoding import encode_batch
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString


@pytest.fixture
def states():
    rng = np.random.default_rng(0)
    return encode_batch(rng.uniform(0, 2 * np.pi, size=(12, 4, 4)))


def test_gradient_scores_shape(states):
    circuit = fig8_ansatz()
    report = gradient_prune(circuit, states, PauliString("ZIII"), threshold=1e-3)
    assert report.scores.shape == (8,)
    assert np.all(report.scores >= 0)


def test_dead_parameter_is_pruned(states):
    """A rotation acting after the measurement support with no entanglement
    has exactly zero gradient: a circuit where parameter 1 acts on qubit 3
    while we measure Z on qubit 0 with no coupling."""
    c = Circuit(4)
    c.append("ry", 0, "live")
    c.append("ry", 3, "dead")
    report = gradient_prune(c, states, PauliString("ZIII"), threshold=1e-10)
    assert 1 in report.pruned_parameters  # 'dead' has index 1
    assert 0 not in report.pruned_parameters


def test_fidelity_bound_dominates_gradient_score(states):
    """Eqs. 23-25: 4(1 - F) upper bounds the squared expectation difference
    for any Pauli observable, so fidelity scores >= gradient scores."""
    circuit = fig8_ansatz()
    grad = gradient_prune(circuit, states, PauliString("ZIII"), threshold=0.0)
    fid = fidelity_prune(circuit, states, threshold=0.0)
    assert np.all(fid.scores >= grad.scores - 1e-9)


def test_fidelity_pruning_is_more_conservative(states):
    """Anything fidelity-pruning keeps includes what it would prune under
    the gradient test at the same threshold (score ordering)."""
    circuit = fig8_ansatz()
    thr = 0.05
    grad = gradient_prune(circuit, states, PauliString("ZIII"), threshold=thr)
    fid = fidelity_prune(circuit, states, threshold=thr)
    assert set(fid.pruned_parameters) <= set(grad.pruned_parameters)


def test_apply_pruning_removes_configs():
    configs = enumerate_shift_configurations(4, 2)
    kept = apply_pruning(configs, pruned_parameters=(1, 3))
    assert all(not ({1, 3} & set(c.subset)) for c in kept)
    # Base circuit survives.
    assert any(c.subset == () for c in kept)
    # Counting: subsets only over the 2 surviving parameters.
    from repro.core.shifts import count_shift_configurations

    assert len(kept) == count_shift_configurations(2, 2)


def test_apply_pruning_empty_is_identity():
    configs = enumerate_shift_configurations(3, 1)
    assert apply_pruning(configs, ()) == configs


def test_threshold_monotonicity(states):
    circuit = fig8_ansatz()
    reports = [
        gradient_prune(circuit, states, PauliString("ZIII"), threshold=t)
        for t in (1e-6, 1e-3, 1e-1)
    ]
    sizes = [r.num_pruned for r in reports]
    assert sizes == sorted(sizes)


def test_report_fields(states):
    report = fidelity_prune(fig8_ansatz(), states, threshold=0.5)
    assert report.threshold == 0.5
    assert report.num_pruned == len(report.pruned_parameters)
