"""Cross-request micro-batching: coalesce, window, flush.

The :class:`MicroBatcher` holds admitted requests grouped by template
identity (the engine's ``group_key``).  A group flushes when its batch
window expires or it fills to ``max_batch_size`` -- whichever comes first
-- and a ``window_s`` of 0 degenerates to per-request flushing (coalescing
off).  Within a flush, requests are drawn from the group's per-tenant
queues by the shared :class:`~repro.serve.fairness.WeightedRoundRobin`
selector, so one flooding tenant cannot monopolise a batch.

Event-loop-confined: every method must run on the service's loop (timers
are ``loop.call_later`` handles, flushes are ``asyncio`` tasks).  The
batcher does not execute anything itself -- the service injects the async
``flush`` callable that bridges to the runtime pool.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Awaitable, Callable
from typing import Any

__all__ = ["PendingRequest", "MicroBatcher"]


class PendingRequest:
    """One admitted request waiting to join a flush."""

    __slots__ = ("tenant", "payload", "cost", "future")

    def __init__(
        self, tenant: str, payload: Any, cost: float, future: asyncio.Future
    ) -> None:
        self.tenant = tenant
        self.payload = payload
        self.cost = cost
        self.future = future


class _GroupState:
    """Pending requests of one coalescing group (per-tenant queues)."""

    __slots__ = ("key", "queues", "count", "timer")

    def __init__(self, key: Any) -> None:
        self.key = key
        self.queues: dict[str, deque[PendingRequest]] = {}
        self.count = 0
        self.timer: asyncio.TimerHandle | None = None


FlushFn = Callable[[Any, list[PendingRequest]], Awaitable[None]]


class MicroBatcher:
    """Coalesces admitted requests per group key and flushes micro-batches."""

    def __init__(
        self,
        *,
        window_s: float,
        max_batch_size: int,
        selector: Any,
        flush: FlushFn,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size={max_batch_size} must be >= 1")
        if window_s < 0:
            raise ValueError(f"window_s={window_s} must be >= 0")
        self.window_s = float(window_s)
        self.max_batch_size = int(max_batch_size)
        self._selector = selector
        self._flush = flush
        self._groups: dict[Any, _GroupState] = {}
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------ inspection
    @property
    def pending(self) -> int:
        """Admitted requests not yet handed to a flush task."""
        return sum(group.count for group in self._groups.values())

    @property
    def inflight_flushes(self) -> int:
        """Flush tasks started and not yet finished."""
        return len(self._tasks)

    # ------------------------------------------------------------- admission
    def add(self, key: Any, request: PendingRequest) -> None:
        """Queue one admitted request under its group, arming the window.

        Flushes immediately when the group fills to ``max_batch_size`` or
        the window is 0; otherwise the group's first request arms a single
        ``call_later`` timer for the whole batch.
        """
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _GroupState(key)
        group.queues.setdefault(request.tenant, deque()).append(request)
        group.count += 1
        if group.count >= self.max_batch_size or self.window_s <= 0:
            self._flush_group(group)
        elif group.timer is None:
            loop = asyncio.get_running_loop()
            group.timer = loop.call_later(self.window_s, self._flush_group, group)

    def discard(self, key: Any, request: PendingRequest) -> bool:
        """Withdraw one still-queued request (deadline hit / client gone).

        Returns ``True`` when the request was waiting in its group and is
        now removed -- it will never join a flush, so its coalesced peers
        flush without it.  ``False`` means the request already left the
        queue (flushed, or never added): the caller's future-level
        handling (cancel / timeout error) is all that applies, and the
        in-flight flush skips resolved futures on its own.
        """
        group = self._groups.get(key)
        if group is None:
            return False
        queue = group.queues.get(request.tenant)
        if not queue:
            return False
        try:
            queue.remove(request)
        except ValueError:
            return False
        group.count -= 1
        if group.count == 0:
            if group.timer is not None:
                group.timer.cancel()
                group.timer = None
            self._groups.pop(group.key, None)
        return True

    # --------------------------------------------------------------- flushing
    def _flush_group(self, group: _GroupState) -> None:
        """Drain one group into flush tasks of <= max_batch_size each."""
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        self._groups.pop(group.key, None)
        while group.count:
            batch = self._select_batch(group)
            if not batch:
                continue  # every drawn request had already been abandoned
            task = asyncio.ensure_future(self._flush(group.key, batch))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    def _select_batch(self, group: _GroupState) -> list[PendingRequest]:
        """Draw up to ``max_batch_size`` requests, WRR-fair across tenants."""
        batch: list[PendingRequest] = []
        while group.count and len(batch) < self.max_batch_size:
            candidates = sorted(t for t, q in group.queues.items() if q)
            winner = self._selector.pick(candidates)
            request = group.queues[winner].popleft()
            group.count -= 1
            # A request whose future already resolved (deadline elapsed,
            # client disconnected) must not stall or skew its flush-mates:
            # drop it here, never shipping it to the flush worker.
            if request.future.done():
                continue
            batch.append(request)
        return batch

    def flush_all(self) -> None:
        """Flush every pending group now (shutdown / drain path)."""
        for group in list(self._groups.values()):
            self._flush_group(group)

    async def drain(self) -> None:
        """Flush everything and wait for every in-flight flush to finish."""
        self.flush_all()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
