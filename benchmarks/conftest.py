"""Shared fixtures and helpers for the experiment benchmarks.

Each benchmark regenerates one paper artifact (table or figure); see
DESIGN.md's experiment index.  Session-scoped dataset fixtures keep the
suite's wall time dominated by the experiments themselves.

The perf benchmarks share one opt-in record contract: results land in a
``BENCH_<name>.json`` at the repo root via :func:`write_bench_record`,
written ONLY under ``BENCH_WRITE=1`` so plain local runs never dirty the
working tree (the CI perf-guard job sets it and uploads the files as
workflow artifacts).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.datasets import binary_coat_vs_shirt, multiclass_fashion

REPO_ROOT = Path(__file__).resolve().parents[1]


def env_flag(name: str) -> bool:
    """True when the environment opts in with ``<name>=1``."""
    return os.environ.get(name, "") == "1"


def write_bench_record(filename: str, result: dict) -> None:
    """Write one benchmark's JSON record to the repo root, opt-in only."""
    if env_flag("BENCH_WRITE"):
        (REPO_ROOT / filename).write_text(json.dumps(result, indent=2) + "\n")


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` calls (the steady-state number)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="session")
def table3_split():
    """The exact Sec. VII.B binary task: 200 train + 50 test per class."""
    return binary_coat_vs_shirt()


@pytest.fixture(scope="session")
def table4_split():
    """The Table IV task: 400 train samples evenly over ten classes."""
    return multiclass_fashion()


@pytest.fixture(scope="session")
def small_split():
    """Reduced split for the ablation benches (pruning, shots)."""
    return binary_coat_vs_shirt(train_per_class=60, test_per_class=20, seed=5)


def flatten_angles(x: np.ndarray) -> np.ndarray:
    """Angles -> unit-scaled design matrix for the classical baselines."""
    return x.reshape(x.shape[0], -1) / (2 * np.pi)
