"""Compiled vs naive feature generation -- Algorithm 1 equivalence.

``generate_features(compile=...)`` must reproduce the uncompiled path: to
float-reassociation tolerance (1e-12) for the ``exact`` estimator, and
seed-identically for ``shots``/``shadows``, across every executor backend.
The process-backend cases also exercise pickled ``CompiledCircuit`` shipping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import generate_features
from repro.core.pipeline import HybridPipeline
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.hpc.executor import ParallelExecutor


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(42)
    return rng.uniform(0, 2 * np.pi, size=(8, 4, 4))


STRATEGIES = [
    pytest.param(ObservableConstruction(qubits=4, locality=1), id="observable"),
    pytest.param(AnsatzExpansion(order=1), id="ansatz"),
    pytest.param(HybridStrategy(order=1, locality=1), id="hybrid"),
]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_exact_estimator_matches_uncompiled(strategy, angles):
    naive = generate_features(strategy, angles)
    compiled = generate_features(strategy, angles, compile="auto")
    assert compiled.shape == naive.shape
    assert np.allclose(compiled, naive, atol=1e-12)


@pytest.mark.parametrize("width", [1, 2, 3])
def test_exact_estimator_all_fusion_widths(width, angles):
    strategy = HybridStrategy(order=1, locality=1)
    naive = generate_features(strategy, angles)
    compiled = generate_features(strategy, angles, compile=width)
    assert np.allclose(compiled, naive, atol=1e-12)


def test_ansatz_free_strategy_is_bit_identical(angles):
    """No Ansatz -> nothing to compile -> literally the same code path."""
    strategy = ObservableConstruction(qubits=4, locality=2)
    assert np.array_equal(
        generate_features(strategy, angles),
        generate_features(strategy, angles, compile="auto"),
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_shots_estimator_seed_identical(strategy, angles):
    naive = generate_features(strategy, angles, estimator="shots", shots=128, seed=7)
    compiled = generate_features(
        strategy, angles, estimator="shots", shots=128, seed=7, compile="auto"
    )
    assert np.array_equal(naive, compiled)


def test_shadows_estimator_seed_identical(angles):
    strategy = HybridStrategy(order=1, locality=1)
    naive = generate_features(strategy, angles, estimator="shadows", snapshots=64, seed=3)
    compiled = generate_features(
        strategy, angles, estimator="shadows", snapshots=64, seed=3, compile="auto"
    )
    assert np.array_equal(naive, compiled)


@pytest.mark.parametrize(
    "executor",
    [
        pytest.param(ParallelExecutor("serial"), id="serial"),
        pytest.param(ParallelExecutor("thread", 4), id="thread"),
        pytest.param(ParallelExecutor("process", 2), id="process"),
    ],
)
def test_compiled_backends_identical(executor, angles):
    """All executor backends agree bit-for-bit under compiled execution."""
    strategy = AnsatzExpansion(order=1)
    reference = generate_features(strategy, angles, compile="auto")
    via_backend = generate_features(
        strategy, angles, compile="auto", executor=executor, chunk_size=3
    )
    assert np.array_equal(reference, via_backend)


def test_compiled_backends_identical_shots(angles):
    """Seeded estimators stay schedule-independent with compilation on."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    kwargs = dict(estimator="shots", shots=64, seed=11, chunk_size=4, compile="auto")
    serial = generate_features(strategy, angles, **kwargs)
    threaded = generate_features(
        strategy, angles, executor=ParallelExecutor("thread", 3), **kwargs
    )
    assert np.array_equal(serial, threaded)


def test_pipeline_compiled_matches_uncompiled(angles):
    """HybridPipeline's default compiled engine changes no prediction."""
    y = (angles[:, 0, 0] > np.pi).astype(int)
    compiled = HybridPipeline(strategy=HybridStrategy(order=1, locality=1))
    assert compiled.compile == "auto"
    naive = HybridPipeline(strategy=HybridStrategy(order=1, locality=1), compile="off")
    compiled.fit(angles, y)
    naive.fit(angles, y)
    assert np.array_equal(compiled.predict(angles), naive.predict(angles))


def test_invalid_compile_knob_rejected(angles):
    strategy = AnsatzExpansion(order=1)
    with pytest.raises(ValueError):
        generate_features(strategy, angles, compile="fast")
