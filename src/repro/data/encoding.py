"""Data-encoding circuit of paper Fig. 7.

"We then encode each column into a single qubit by iterating between RZ and
RX gates": qubit ``c`` carries column ``c`` of the pooled 4x4 image; row 0
enters as RZ, row 1 as RX, row 2 as RZ, row 3 as RX.  An initial Hadamard
layer precedes the rotations so the leading RZ acts non-trivially on |0>
(RZ is diagonal, hence a global phase on |0> -- the H layer is the standard
choice that makes the alternating RZ/RX encoding injective in all angles).

Two code paths produce identical states (tested):

* :func:`encoding_circuit` -- the explicit Fig. 7 :class:`Circuit`, gate for
  gate, for inspection/transpilation;
* :func:`encode_batch` -- a vectorised kernel that prepares all d states in
  one pass using per-sample batched rotations (the HPC-friendly hot path).
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import H, rx_batch, rz_batch
from repro.quantum.statevector import apply_matrix_batch, zero_state

__all__ = [
    "encoding_circuit",
    "encoding_template",
    "encode_batch",
    "encoded_dimension",
]


def encoded_dimension(num_qubits: int) -> int:
    """Hilbert-space dimension of the encoded register."""
    return 2**num_qubits


def encoding_circuit(features: np.ndarray) -> Circuit:
    """Fig. 7 circuit for one pooled image (rows x cols, cols = qubits)."""
    feats = np.asarray(features, dtype=float)
    if feats.ndim != 2:
        raise ValueError("features must be a (rows, cols) array")
    rows, cols = feats.shape
    circuit = Circuit(cols, name="encode")
    for q in range(cols):
        circuit.append("h", q)
    for r in range(rows):
        gate = "rz" if r % 2 == 0 else "rx"
        for q in range(cols):
            circuit.append(gate, q, float(feats[r, q]))
    return circuit


def encoding_template(rows: int, cols: int) -> Circuit:
    """The Fig. 7 circuit with *symbolic* angles: one slot per (row, col).

    Parameter ``r * cols + q`` carries feature ``(r, q)`` -- first-use
    registration order matches the C-order flattening of a
    ``(d, rows, cols)`` angle batch, so
    ``ParametricCompiledCircuit.apply_batch(angles)`` consumes the raw
    batch directly.  This is the shared structure the batched engine
    compiles once per Ansatz instance and reuses for every data chunk.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"encoding template needs rows, cols >= 1, got {rows}x{cols}")
    circuit = Circuit(cols, name="encode")
    for q in range(cols):
        circuit.append("h", q)
    for r in range(rows):
        gate = "rz" if r % 2 == 0 else "rx"
        for q in range(cols):
            circuit.append(gate, q, f"x_{r}_{q}")
    return circuit


def encode_batch(features: np.ndarray) -> np.ndarray:
    """Vectorised Fig. 7 encoding of a whole dataset.

    ``features`` is (d, rows, cols); returns (d, 2**cols) statevectors.
    Equivalent to running :func:`encoding_circuit` per sample but ~d times
    fewer Python-level gate applications (each gate is applied to the whole
    batch with per-sample angles).
    """
    feats = np.asarray(features, dtype=float)
    if feats.ndim != 3:
        raise ValueError("features must be a (d, rows, cols) batch")
    d, rows, cols = feats.shape
    states = zero_state(cols, batch=d)
    for q in range(cols):
        states = apply_matrix_batch(states, H, (q,))
    for r in range(rows):
        maker = rz_batch if r % 2 == 0 else rx_batch
        for q in range(cols):
            states = apply_matrix_batch(states, maker(feats[:, r, q]), (q,))
    return states
