"""Cross-module integration tests: the full paper workflow on small data."""

import numpy as np
import pytest

from repro.core.features import generate_features
from repro.core.model import PostVariationalClassifier
from repro.core.strategies import HybridStrategy, ObservableConstruction
from repro.core.variational import VariationalClassifier
from repro.data.datasets import binary_coat_vs_shirt
from repro.hpc.comm import run_spmd
from repro.hpc.partition import block_partition


@pytest.fixture(scope="module")
def split():
    return binary_coat_vs_shirt(train_per_class=40, test_per_class=10, seed=7)


def test_post_variational_beats_variational(split):
    """The paper's headline Table III ordering on a reduced dataset."""
    pv = PostVariationalClassifier(
        strategy=ObservableConstruction(qubits=4, locality=2)
    ).fit(split.x_train, split.y_train)
    var = VariationalClassifier(epochs=10).fit(split.x_train, split.y_train)
    assert pv.score(split.x_train, split.y_train) > var.score(
        split.x_train, split.y_train
    )


def test_locality_monotone_train_accuracy(split):
    """More local observables => richer features => higher train accuracy."""
    scores = []
    for locality in (1, 2, 3):
        clf = PostVariationalClassifier(
            strategy=ObservableConstruction(qubits=4, locality=locality)
        ).fit(split.x_train, split.y_train)
        scores.append(clf.score(split.x_train, split.y_train))
    assert scores[0] <= scores[1] + 0.02
    assert scores[1] <= scores[2] + 0.02


def test_feature_nesting():
    """L-local feature sets are nested: the first Eq.-18 columns of L=2
    coincide with all of L=1's columns."""
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, size=(6, 4, 4))
    q1 = generate_features(ObservableConstruction(qubits=4, locality=1), angles)
    q2 = generate_features(ObservableConstruction(qubits=4, locality=2), angles)
    assert np.allclose(q2[:, : q1.shape[1]], q1)


def test_hybrid_order0_equals_observable_construction():
    """The base (unshifted) block of a hybrid Q matrix is exactly the
    observable-construction Q matrix (identity Ansatz)."""
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(5, 4, 4))
    hybrid = HybridStrategy(order=1, locality=1)
    q_hybrid = generate_features(hybrid, angles)
    q_obs = generate_features(ObservableConstruction(qubits=4, locality=1), angles)
    q = hybrid.num_observables
    assert np.allclose(q_hybrid[:, :q], q_obs, atol=1e-10)


def test_spmd_feature_generation_matches_serial(split):
    """Rank-parallel Q-matrix assembly via the communicator reproduces the
    serial matrix exactly -- the pattern a real MPI deployment would use."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    angles = split.x_train[:24]
    serial_q = generate_features(strategy, angles)

    def prog(comm):
        rows = block_partition(angles.shape[0], comm.size)[comm.rank]
        local = generate_features(strategy, angles[rows]) if rows.size else None
        gathered = comm.gather((rows, local), root=0)
        if comm.rank != 0:
            return None
        out = np.empty_like(serial_q)
        for idx, block in gathered:
            if block is not None:
                out[idx] = block
        return out

    results = run_spmd(prog, 4)
    assert np.allclose(results[0], serial_q)


def test_shot_noise_budget_controls_loss_shift(split):
    """Theorem 4 in action end to end: a finite-shot Q matrix within the
    eps_H budget keeps the constrained-head loss within epsilon."""
    from repro.core.measurement_budget import theorem4_required_entry_error
    from repro.ml.convex import ConstrainedLeastSquares
    from repro.ml.losses import rmse_loss

    strategy = ObservableConstruction(qubits=4, locality=1)
    angles = split.x_train[:30]
    y = 2.0 * split.y_train[:30].astype(float) - 1.0
    q_exact = generate_features(strategy, angles)
    m = q_exact.shape[1]
    epsilon = 0.5
    eps_h = theorem4_required_entry_error(m, epsilon)
    shots = int(np.ceil(2.0 / eps_h**2 * np.log(2 * m * 30 / 0.05)))
    q_noisy = generate_features(strategy, angles, estimator="shots", shots=shots, seed=3)
    assert np.max(np.abs(q_noisy - q_exact)) < eps_h * 1.5  # sanity on the budget

    alpha_star = ConstrainedLeastSquares().fit(q_exact, y).coef_
    alpha_hat = ConstrainedLeastSquares().fit(q_noisy, y).coef_
    delta = rmse_loss(y, q_exact @ alpha_hat) - rmse_loss(y, q_exact @ alpha_star)
    assert delta < epsilon


def test_noisy_simulation_degrades_gracefully(split):
    """Depolarizing noise shrinks feature magnitudes but the pipeline still
    trains above chance (NISQ robustness story)."""
    from repro.data.encoding import encoding_circuit
    from repro.quantum.density import expectation_density, run_circuit_density
    from repro.quantum.noise import NoiseModel
    from repro.quantum.observables import local_pauli_strings

    angles = split.x_train[:40]
    y = split.y_train[:40]
    noise = NoiseModel.depolarizing(0.02)
    paulis = local_pauli_strings(4, 1)
    q = np.empty((40, len(paulis)))
    for i in range(40):
        rho = run_circuit_density(encoding_circuit(angles[i]), noise_model=noise)
        for j, p in enumerate(paulis):
            q[i, j] = expectation_density(rho, p)
    # Noisy features are contractions of the ideal ones.
    q_ideal = generate_features(ObservableConstruction(qubits=4, locality=1), angles)
    assert np.mean(np.abs(q[:, 1:])) < np.mean(np.abs(q_ideal[:, 1:]))
    from repro.ml.logistic import LogisticRegression

    model = LogisticRegression().fit(q, y)
    assert np.mean(model.predict(q) == y) > 0.5
