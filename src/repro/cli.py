"""Command-line entry point: quick experiment runs without writing code.

Usage::

    python -m repro table3   [--train N] [--test N] [execution flags]
    python -m repro table4   [--train N] [--test N] [execution flags]
    python -m repro scaling  [--nodes 1 2 4 8 ...]
    python -m repro budgets  [--epsilon E] [--delta D]
    python -m repro counts
    python -m repro config   [execution flags]
    python -m repro lint     [paths ...] [--num-qubits N] [--json]
                             [--strict] [--serve [serve flags]]
                             [execution flags]
    python -m repro serve    [--requests N] [--concurrency N] [--samples K]
                             [--templates N] [--tenants N] [--qubits N]
                             [--rows N] [--listen [HOST:PORT]]
                             [serve flags] [execution flags]

Execution flags (``--estimator``, ``--shots``, ``--snapshots``,
``--chunk-size``, ``--policy``, ``--compile``, ``--seed``, ``--backend
{ideal,noisy,mitigated}``, ``--noise-p1``, ``--vectorize {auto,off}``,
``--shards``, ``--array-backend {auto,numpy,cupy,torch}``) build one
:class:`~repro.api.config.ExecutionConfig` shared by every model in the
run; ``repro config`` prints the resolved config as JSON (the same wire
form ``ExecutionConfig.from_json`` accepts).

Serve flags (``--window-ms``, ``--max-batch``, ``--queue-depth``,
``--queue-cost``, ``--tenant-weight NAME=W`` repeatable, ``--no-cache``,
``--cache-size``, ``--cache-ttl``, ``--pool {serial,thread,process}``,
``--workers``) build one :class:`~repro.api.config.ServeConfig` around the
execution flags; transport flags (``--listen [HOST:PORT]``,
``--request-timeout``, ``--max-frame-bytes``, ``--stream-threshold``,
``--no-stream``) nest a :class:`~repro.api.config.TransportConfig` inside
it.  ``repro serve`` runs a multi-tenant load test through the
micro-batching feature service -- in-process by default; with ``--listen``
it starts a real TCP server and drives the same load through a socket
client -- and prints the load report plus the service metrics snapshot as
JSON; ``repro lint --serve`` lints the combined
serve+transport+execution plan (codes RPA11x).

Each experiment subcommand is a reduced-size version of the corresponding
benchmark (see benchmarks/ for the full definitions and assertions).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

__all__ = ["main"]


def _compile_knob(text: str) -> str | int:
    """argparse type for --compile: proper CLI errors instead of tracebacks.

    The knob grammar itself ("auto"/"off"/width >= 1) is owned by
    :func:`repro.quantum.compile.resolve_fusion_width`; this only converts
    digits and rewraps the canonical error for argparse.
    """
    from repro.quantum.compile import resolve_fusion_width

    knob: str | int = text
    if text not in ("auto", "off"):
        # Non-int text falls through for resolve_fusion_width's canonical error.
        with contextlib.suppress(ValueError):
            knob = int(text)
    try:
        resolve_fusion_width(knob)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return knob


def _int_at_least(minimum: int):
    """argparse type factory for bounded integer execution flags."""

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"must be an int >= {minimum}, got {text!r}"
            ) from None
        if value < minimum:
            raise argparse.ArgumentTypeError(f"must be >= {minimum}, got {value}")
        return value

    return parse


def _add_execution_flags(
    parser: argparse.ArgumentParser,
    *,
    vectorize_default: str = "off",
    compile_default: str = "off",
) -> None:
    """The unified execution knobs, one flag per ExecutionConfig field.

    The defaults are the library's reference path (``vectorize=off``,
    ``compile=off``); serving flips both to ``auto`` because coalescing
    without batched execution forfeits the payoff (lint RPA113).
    """
    from repro.hpc.scheduler import SCHEDULING_POLICIES

    group = parser.add_argument_group("execution")
    group.add_argument(
        "--estimator", choices=["exact", "shots", "shadows"], default="exact",
        help="measurement model (default: exact)",
    )
    group.add_argument("--shots", type=_int_at_least(0), default=1024)
    group.add_argument("--snapshots", type=_int_at_least(0), default=512)
    group.add_argument(
        "--chunk-size", type=_int_at_least(1), default=None,
        help="work-grid rows per job (default: backend-appropriate)",
    )
    group.add_argument(
        "--policy", choices=list(SCHEDULING_POLICIES), default="work_stealing",
        help="live dispatch submission order (default: work_stealing)",
    )
    group.add_argument(
        "--compile", type=_compile_knob, default=compile_default,
        help='circuit engine: "auto", "off" or a fusion width '
        f"(default: {compile_default})",
    )
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--backend", choices=["ideal", "noisy", "mitigated"], default="ideal",
        help="execution regime (default: ideal statevector)",
    )
    group.add_argument(
        "--vectorize", choices=["auto", "off"], default=vectorize_default,
        help="batched structure-shared Q-matrix execution where the backend "
        f"supports it (default: {vectorize_default})",
    )
    group.add_argument(
        "--noise-p1", type=float, default=None,
        help="1q depolarizing probability for noisy/mitigated backends "
        "(2q is 10x, the usual hardware ratio; default: 0.002)",
    )
    group.add_argument(
        "--shards", type=_int_at_least(1), default=1,
        help="statevector slab count for sharded distributed execution "
        "(power of two; >1 requires the ideal backend; default: 1)",
    )
    group.add_argument(
        "--array-backend", choices=["auto", "numpy", "cupy", "torch"],
        default="numpy",
        help="array namespace for the hot kernels (repro.xp); auto picks "
        "the best installed accelerator (default: numpy)",
    )


def _tenant_weight(text: str) -> tuple[str, float]:
    """argparse type for --tenant-weight NAME=WEIGHT pairs."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=WEIGHT, got {text!r}"
        )
    try:
        weight = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"weight must be a number, got {raw!r}"
        ) from None
    return (name, weight)


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """The serving knobs, one flag per ServeConfig field."""
    from repro.api.config import SERVE_POOLS

    group = parser.add_argument_group("serving")
    group.add_argument(
        "--window-ms", type=float, default=2.0,
        help="micro-batch coalescing window in ms; 0 disables (default: 2)",
    )
    group.add_argument(
        "--max-batch", type=_int_at_least(1), default=32,
        help="flush a group early at this many coalesced requests "
        "(default: 32)",
    )
    group.add_argument(
        "--queue-depth", type=_int_at_least(1), default=256,
        help="per-tenant admitted-request bound; overflow is rejected with "
        "backpressure (default: 256)",
    )
    group.add_argument(
        "--queue-cost", type=float, default=None,
        help="per-tenant admitted cost-unit bound (default: unbounded)",
    )
    group.add_argument(
        "--tenant-weight", type=_tenant_weight, action="append", default=[],
        metavar="NAME=W",
        help="fairness weight for a named tenant (repeatable; unnamed "
        "tenants get weight 1)",
    )
    group.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    group.add_argument(
        "--cache-size", type=_int_at_least(0), default=1024,
        help="result-cache entries (default: 1024)",
    )
    group.add_argument(
        "--cache-ttl", type=float, default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    group.add_argument(
        "--pool", choices=list(SERVE_POOLS), default="thread",
        help="worker pool the shared device runs on (default: thread)",
    )
    group.add_argument(
        "--workers", type=_int_at_least(1), default=None,
        help="pool size (default: auto)",
    )
    group = parser.add_argument_group("transport")
    group.add_argument(
        "--listen", nargs="?", const="127.0.0.1:0", default=None,
        metavar="HOST:PORT",
        help="serve over TCP and drive the load through a real socket "
        "client (port 0 picks a free port; bare --listen means "
        "127.0.0.1:0)",
    )
    group.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="S",
        help="per-request deadline in seconds; 0 disables (default: 30)",
    )
    group.add_argument(
        "--max-frame-bytes", type=_int_at_least(1), default=16 * 2**20,
        help="wire frame size bound in bytes (default: 16 MiB)",
    )
    group.add_argument(
        "--stream-threshold", type=_int_at_least(1), default=None,
        metavar="ROWS",
        help="stream responses above this many rows as per-ansatz blocks "
        "(default: stream only when a single frame would not fit)",
    )
    group.add_argument(
        "--no-stream", action="store_true",
        help="never stream responses (oversized responses then fail)",
    )


def _listen_address(raw: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` --listen value into its parts."""
    host, sep, port = raw.rpartition(":")
    if not sep or not host:
        print(
            f"repro: --listen expects HOST:PORT, got {raw!r}", file=sys.stderr
        )
        raise SystemExit(2)
    try:
        return host, int(port)
    except ValueError:
        print(f"repro: --listen port must be an int, got {port!r}", file=sys.stderr)
        raise SystemExit(2) from None


def _serve_config_from_args(args: argparse.Namespace):
    """Build the ServeConfig from the serve + execution + transport flags."""
    from repro.api import ServeConfig, TransportConfig

    execution = _config_from_args(args)
    host, port = _listen_address(args.listen) if args.listen else ("127.0.0.1", 0)
    try:
        transport = TransportConfig(
            host=host,
            port=port,
            request_timeout_s=args.request_timeout or None,
            max_frame_bytes=args.max_frame_bytes,
            stream_threshold_rows=args.stream_threshold,
            streaming=not args.no_stream,
        )
        return ServeConfig(
            execution=execution,
            batch_window_ms=args.window_ms,
            max_batch_size=args.max_batch,
            max_queue_depth=args.queue_depth,
            max_queue_cost=args.queue_cost,
            tenant_weights=tuple(args.tenant_weight),
            cache_results=not args.no_cache,
            result_cache_size=args.cache_size,
            result_cache_ttl_s=args.cache_ttl,
            pool=args.pool,
            max_workers="auto" if args.workers is None else args.workers,
            transport=transport,
        )
    except ValueError as exc:
        print(f"repro: invalid serve flags: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _config_from_args(args: argparse.Namespace):
    """Build the run's ExecutionConfig from the execution flags.

    Remaining cross-flag validation (estimator x backend regime,
    noise-probability bounds) lives in ExecutionConfig/NoiseModel; surface
    those as clean CLI errors too, not tracebacks.
    """
    from repro.api import ExecutionConfig
    from repro.quantum.backends import DensityMatrixBackend, MitigatedBackend
    from repro.quantum.noise import NoiseModel

    try:
        backend = None
        if args.backend in ("noisy", "mitigated"):
            p1 = 0.002 if args.noise_p1 is None else args.noise_p1
            noisy = DensityMatrixBackend(NoiseModel.depolarizing(p1))
            backend = MitigatedBackend(noisy) if args.backend == "mitigated" else noisy
        elif args.noise_p1 is not None:
            # Silently running the ideal backend under a "noisy" flag would
            # mislabel a study; fail like every other bad combination.
            raise ValueError(
                "--noise-p1 requires --backend noisy or mitigated"
            )
        return ExecutionConfig(
            estimator=args.estimator,
            shots=args.shots,
            snapshots=args.snapshots,
            chunk_size=args.chunk_size,
            seed=args.seed,
            compile=args.compile,
            dispatch_policy=args.policy,
            backend=backend,
            vectorize=args.vectorize,
            shards=args.shards,
            array_backend=args.array_backend,
        )
    except ValueError as exc:
        print(f"repro: invalid execution flags: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_config(args: argparse.Namespace) -> int:
    print(_config_from_args(args).to_json(indent=2))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: config/plan lint + repo-invariant AST lint.

    With source paths, runs :mod:`repro.analysis.astlint` over them; the
    execution flags are always linted as a plan
    (:func:`repro.analysis.plan.lint_config`), so ``repro lint`` with no
    paths is a pure pre-flight check of a prospective run; ``--serve``
    lints the serve flags too (RPA11x via
    :func:`repro.analysis.plan.lint_serve_config`).  Exit status: 0
    clean, 1 findings at error severity (or any finding under
    ``--strict``), 2 invalid flags.
    """
    from repro.analysis.astlint import lint_paths
    from repro.analysis.plan import lint_config, lint_serve_config

    if args.serve:
        serve_config = _serve_config_from_args(args)
        report = lint_serve_config(serve_config, num_qubits=args.num_qubits)
    else:
        config = _config_from_args(args)
        report = lint_config(config, num_qubits=args.num_qubits)
    if args.paths:
        report = report + lint_paths(args.paths)
    print(report.to_json(indent=2) if args.json else report.render())
    if args.strict:
        return 0 if report.clean else 1
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Multi-tenant load test through the feature service.

    Registers ``--templates`` distinct encodings (observable-construction
    strategies of alternating locality), then drives ``--requests``
    concurrent requests from ``--tenants`` round-robin tenants through the
    micro-batcher -- in-process by default, or through a real TCP server
    plus socket client with ``--listen``.  Prints ``{"load": ...,
    "metrics": ...}`` as JSON -- the CI smoke asserts
    ``metrics.coalesce_ratio > 1`` on this output for both paths.
    """
    import asyncio
    import json

    from repro.core.strategies import strategy_from_name
    from repro.serve import FeatureServer, FeatureService, TcpTransport, run_load

    config = _serve_config_from_args(args)
    service = FeatureService(config)
    for i in range(args.templates):
        strategy = strategy_from_name(
            "observable", num_qubits=args.qubits, locality=1 + i % 2
        )
        service.register(f"template-{i}", strategy, rows=args.rows + i // 2)
    tenants = tuple(f"tenant-{i}" for i in range(args.tenants))
    load_kwargs = dict(
        requests=args.requests,
        concurrency=args.concurrency,
        samples=args.samples,
        tenants=tenants,
        seed=args.seed,
    )

    async def drive():
        async with service:
            report = await run_load(service, **load_kwargs)
            return report, service.metrics(), None

    async def drive_tcp():
        async with service, FeatureServer(service) as server:
            host, port = server.address
            async with await TcpTransport.connect(
                host, port, config=config.transport
            ) as transport:
                report = await run_load(transport, **load_kwargs)
            return report, service.metrics(), {"host": host, "port": port}

    report, metrics, address = asyncio.run(drive_tcp() if args.listen else drive())
    payload = {"load": report.to_dict(), "metrics": metrics.to_dict()}
    if address is not None:
        payload["transport"] = address
    print(json.dumps(payload, indent=2))
    return 0 if report.completed == report.requests else 1


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.core import (
        HybridStrategy,
        ObservableConstruction,
        PostVariationalClassifier,
        VariationalClassifier,
    )
    from repro.data import binary_coat_vs_shirt
    from repro.ml import LogisticRegression, accuracy

    config = _config_from_args(args)
    split = binary_coat_vs_shirt(train_per_class=args.train, test_per_class=args.test)
    flat = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)
    logistic = LogisticRegression().fit(flat, split.y_train)
    print(
        f"logistic        train {accuracy(split.y_train, logistic.predict(flat)):.3f} "
        f"test {accuracy(split.y_test, logistic.predict(flat_test)):.3f}"
    )
    var = VariationalClassifier(epochs=args.epochs).fit(split.x_train, split.y_train)
    print(
        f"variational     train {var.score(split.x_train, split.y_train):.3f} "
        f"test {var.score(split.x_test, split.y_test):.3f}"
    )
    for name, strat in (
        ("observable L=2", ObservableConstruction(qubits=4, locality=2)),
        ("hybrid 1+1", HybridStrategy(order=1, locality=1)),
    ):
        clf = PostVariationalClassifier(strategy=strat, config=config).fit(
            split.x_train, split.y_train
        )
        print(
            f"{name:<15} train {clf.score(split.x_train, split.y_train):.3f} "
            f"test {clf.score(split.x_test, split.y_test):.3f}  (m={strat.num_features})"
        )
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.core import HybridStrategy, PostVariationalClassifier
    from repro.data import multiclass_fashion
    from repro.ml import SoftmaxRegression, accuracy

    config = _config_from_args(args)
    split = multiclass_fashion(train_total=args.train, test_total=args.test)
    flat = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)
    logistic = SoftmaxRegression(num_classes=10).fit(flat, split.y_train)
    print(
        f"logistic   train {accuracy(split.y_train, logistic.predict(flat)):.3f} "
        f"test {accuracy(split.y_test, logistic.predict(flat_test)):.3f}"
    )
    pv = PostVariationalClassifier(
        strategy=HybridStrategy(order=1, locality=2), num_classes=10, config=config
    ).fit(split.x_train, split.y_train)
    print(
        f"PV 1o+2l   train {pv.score(split.x_train, split.y_train):.3f} "
        f"test {pv.score(split.x_test, split.y_test):.3f}"
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.hpc import CircuitTask, NodeSpec, scaling_report, strong_scaling

    tasks = [
        CircuitTask(num_circuits=25, shots=1024, result_bytes=25 * 13 * 8)
        for _ in range(args.tasks)
    ]
    points = strong_scaling(tasks, NodeSpec(shot_rate=1e5), args.nodes)
    print(scaling_report(points))
    return 0


def _cmd_budgets(args: argparse.Namespace) -> int:
    from repro.core import table2_grid

    for label, asym in (("asymptotic", True), ("explicit constants", False)):
        print(f"-- {label} --")
        rows = table2_grid(
            k=8, n=4, d=400, order=1, locality=2,
            epsilon=args.epsilon, delta=args.delta, asymptotic=asym,
        )
        for r in rows:
            print(
                f"{r.strategy:<26} p={r.p:<4} q={r.q:<4} direct={r.direct:.3e} "
                f"shadows={r.shadows:.3e}  -> {r.winner}"
            )
    return 0


def _cmd_counts(_: argparse.Namespace) -> int:
    from repro.core import count_shift_configurations
    from repro.quantum import count_local_paulis

    print("Eq.16 circuits (k=8): " + ", ".join(
        f"R={r}: {count_shift_configurations(8, r)}" for r in range(4)
    ))
    print("Eq.18 observables (n=4): " + ", ".join(
        f"L={loc}: {count_local_paulis(4, loc)}" for loc in range(5)
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    t3 = sub.add_parser("table3", help="reduced Table III run")
    t3.add_argument("--train", type=int, default=60)
    t3.add_argument("--test", type=int, default=20)
    t3.add_argument("--epochs", type=int, default=15)
    _add_execution_flags(t3)
    t3.set_defaults(fn=_cmd_table3)

    t4 = sub.add_parser("table4", help="reduced Table IV run")
    t4.add_argument("--train", type=int, default=100)
    t4.add_argument("--test", type=int, default=50)
    _add_execution_flags(t4)
    t4.set_defaults(fn=_cmd_table4)

    cf = sub.add_parser(
        "config", help="print the resolved ExecutionConfig as JSON"
    )
    _add_execution_flags(cf)
    cf.set_defaults(fn=_cmd_config)

    li = sub.add_parser(
        "lint",
        help="static analysis: plan lint of the execution flags + "
        "repo-invariant AST lint of any given source paths",
    )
    li.add_argument(
        "paths", nargs="*",
        help="files/directories for the AST lint (codes RPA3xx); "
        "omit to lint only the execution flags",
    )
    li.add_argument(
        "--num-qubits", type=_int_at_least(1), default=None,
        help="register width of the intended workload (enables the "
        "shards-vs-2^n check)",
    )
    li.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    li.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on any finding, not just errors",
    )
    li.add_argument(
        "--serve", action="store_true",
        help="lint the serve flags as a ServeConfig plan (codes RPA11x)",
    )
    _add_execution_flags(li)
    _add_serve_flags(li)
    li.set_defaults(fn=_cmd_lint)

    sv = sub.add_parser(
        "serve",
        help="in-process multi-tenant load test of the micro-batching "
        "feature service (JSON load report + metrics)",
    )
    sv.add_argument("--requests", type=_int_at_least(1), default=64)
    sv.add_argument("--concurrency", type=_int_at_least(1), default=16)
    sv.add_argument(
        "--samples", type=_int_at_least(1), default=2,
        help="samples per request (default: 2)",
    )
    sv.add_argument(
        "--templates", type=_int_at_least(1), default=2,
        help="distinct registered templates (default: 2)",
    )
    sv.add_argument(
        "--tenants", type=_int_at_least(1), default=2,
        help="round-robin tenant count (default: 2)",
    )
    sv.add_argument("--qubits", type=_int_at_least(1), default=4)
    sv.add_argument(
        "--rows", type=_int_at_least(1), default=2,
        help="encoding rows per sample (default: 2)",
    )
    _add_serve_flags(sv)
    _add_execution_flags(sv, vectorize_default="auto", compile_default="auto")
    sv.set_defaults(fn=_cmd_serve)

    sc = sub.add_parser("scaling", help="simulated-cluster strong scaling")
    sc.add_argument("--tasks", type=int, default=128)
    sc.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32])
    sc.set_defaults(fn=_cmd_scaling)

    bu = sub.add_parser("budgets", help="Table II measurement budgets")
    bu.add_argument("--epsilon", type=float, default=0.1)
    bu.add_argument("--delta", type=float, default=0.05)
    bu.set_defaults(fn=_cmd_budgets)

    co = sub.add_parser("counts", help="Eq. 16/18 ensemble sizes")
    co.set_defaults(fn=_cmd_counts)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
