"""Multi-tenant feature serving with cross-request micro-batching.

Shows the serving layer end to end:

1. one :class:`FeatureService` over a shared device, two registered
   templates (a locality-2 observable map and a hybrid strategy), exposed
   over a real TCP socket by :class:`FeatureServer`;
2. two tenants with 3:1 fairness weights submitting concurrent bursts
   through transport-agnostic :class:`FeatureClient` handles -- one on
   the in-process transport, one through a socket client speaking the
   length-prefixed wire protocol;
3. requests sharing a template coalesce into stacked flushes (watch
   ``coalesce_ratio``) *across both transports*, repeated inputs hit the
   result cache, and every response stays bit-equal to a standalone
   ``generate_features`` call no matter how it travelled;
4. the metrics snapshot: per-tenant traffic, latency quantiles, cache and
   batcher counters.

Run:  python examples/serve_demo.py
"""

import asyncio
import json

import numpy as np

from repro.api import ExecutionConfig, ServeConfig
from repro.core import HybridStrategy, ObservableConstruction
from repro.core.features import generate_features
from repro.serve import (
    FeatureClient,
    FeatureServer,
    FeatureService,
    InProcessTransport,
    TcpTransport,
)

QUBITS = 4
ROWS = 2


def build_service() -> FeatureService:
    config = ServeConfig(
        batch_window_ms=5.0,          # coalescing window
        max_batch_size=32,
        tenant_weights={"team-a": 3.0, "team-b": 1.0},
        result_cache_size=256,
        pool="thread",
        max_workers=2,
        execution=ExecutionConfig(vectorize="auto", compile="auto", seed=11),
    )
    service = FeatureService(config)
    service.register(
        "fashion-observable",
        ObservableConstruction(qubits=QUBITS, locality=2),
        rows=ROWS,
    )
    service.register(
        "fashion-hybrid",
        HybridStrategy(order=1, locality=1),
        rows=ROWS,
    )
    return service


async def tenant_burst(client: FeatureClient, template: str, n: int, seed: int):
    rng = np.random.default_rng(seed)
    inputs = [rng.uniform(0, np.pi, size=(2, ROWS, QUBITS)) for _ in range(n)]
    responses = await asyncio.gather(
        *(client.features(template, x) for x in inputs)
    )
    return inputs, responses


async def main() -> None:
    service = build_service()
    async with service, FeatureServer(service) as server:
        host, port = server.address
        tcp = await TcpTransport.connect(host, port)
        # Transport-agnostic clients: team-a stays in process, team-b
        # rides the wire protocol -- the call surface is identical.
        team_a = FeatureClient(transport=InProcessTransport(service), tenant="team-a")
        team_b = FeatureClient(transport=tcp, tenant="team-b")

        # Concurrent bursts from both tenants over both templates: requests
        # that share a template fingerprint fuse into one stacked pass,
        # socket and in-process traffic coalescing together.
        (a_in, a_out), (b_in, b_out) = await asyncio.gather(
            tenant_burst(team_a, "fashion-observable", 8, seed=1),
            tenant_burst(team_b, "fashion-observable", 8, seed=2),
        )
        await tenant_burst(team_b, "fashion-hybrid", 4, seed=3)

        # Resubmitting an earlier input is a result-cache hit, bit-equal.
        again = await team_a.features("fashion-observable", a_in[0])
        assert np.array_equal(again, a_out[0])

        # The bit-equality contract: a served response IS the standalone
        # sweep, no matter which requests shared its flush or which
        # transport carried it -- float64 rows travel as raw bytes.
        reference = generate_features(
            ObservableConstruction(qubits=QUBITS, locality=2),
            b_in[0],
            config=service.config.execution,
        )
        assert np.array_equal(b_out[0], reference)
        await tcp.aclose()

        snapshot = service.metrics()
        print("=== service metrics ===")
        print(json.dumps(snapshot.to_dict(), indent=2))
        print(
            f"\ncoalesce ratio {snapshot.coalesce_ratio:.1f} "
            f"({snapshot.flushed_requests_total} requests in "
            f"{snapshot.flushes_total} flushes, largest "
            f"{snapshot.max_flush_size})"
        )
        for name, stats in snapshot.tenants:
            print(
                f"{name}: {stats.requests} requests, "
                f"{stats.cache_hits} cache hits, p50 {stats.p50_ms:.2f} ms"
            )


if __name__ == "__main__":
    asyncio.run(main())
