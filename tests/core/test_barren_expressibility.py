"""Barren-plateau diagnostics and expressibility metric tests."""

import numpy as np
import pytest

from repro.core.ansatz import fig8_ansatz, hardware_efficient_ansatz
from repro.core.barren import barren_plateau_sweep, gradient_variance
from repro.core.expressibility import (
    entangling_capability,
    expressibility_kl,
    haar_fidelity_pdf,
    meyer_wallach_q,
)
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import run_circuit


# ------------------------------------------------------------------ barren
def test_gradient_variance_decays_with_qubits():
    """The McClean et al. signature: Var[dE] shrinks as n grows (global
    cost, random init).  Small n suffice to see a strict decrease."""
    results = barren_plateau_sweep([2, 4, 6], layers=3, samples=30, seed=1)
    variances = [r.variance for r in results]
    assert variances[0] > variances[1] > variances[2]


def test_identity_initialisation_escapes_plateau():
    """Grant et al. [21] / paper Sec. VII.A: at theta=0 the mirrored Fig. 8
    Ansatz gives an O(1) gradient for a local cost where random init has
    tiny variance."""
    from repro.quantum.observables import PauliString
    from repro.quantum.parameter_shift import expectation_function, gradient
    from repro.data.encoding import encode_batch

    rng = np.random.default_rng(0)
    state = encode_batch(rng.uniform(0, 2 * np.pi, (1, 4, 4)))[0]
    f = expectation_function(fig8_ansatz(), PauliString("ZIII"), state=state)
    g = gradient(f, np.zeros(8))
    assert np.max(np.abs(g)) > 1e-2  # non-vanishing at identity init


def test_gradient_variance_at_zero_mode():
    res = gradient_variance(3, 2, samples=5, at_zero=True, seed=0)
    assert res.samples == 1
    assert res.variance == pytest.approx(res.mean_abs**2)


def test_gradient_variance_validation():
    with pytest.raises(ValueError):
        gradient_variance(3, 2, parameter_index=99)


# ---------------------------------------------------------- expressibility
def test_haar_pdf_normalised():
    f = np.linspace(0, 1, 10_001)
    pdf = haar_fidelity_pdf(f, 3)
    integral = np.trapezoid(pdf, f)
    assert integral == pytest.approx(1.0, abs=1e-3)


def test_expressibility_orders_ansaetze():
    """Deeper entangling Ansatz is more expressive (smaller KL) than a
    single non-entangling rotation layer."""
    shallow = Circuit(2)
    shallow.append("ry", 0, "a").append("ry", 1, "b")  # no entanglement
    deep = hardware_efficient_ansatz(2, 3, mirror=False)
    kl_shallow = expressibility_kl(shallow, num_pairs=250, seed=0)
    kl_deep = expressibility_kl(deep, num_pairs=250, seed=0)
    assert kl_deep < kl_shallow


def test_meyer_wallach_product_state_zero():
    psi = np.kron(np.array([1, 0]), np.array([1 / np.sqrt(2), 1 / np.sqrt(2)]))
    assert meyer_wallach_q(psi.astype(complex), 2) == pytest.approx(0.0, abs=1e-10)


def test_meyer_wallach_bell_state_one():
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1))
    psi = run_circuit(c)
    assert meyer_wallach_q(psi, 2) == pytest.approx(1.0, abs=1e-10)


def test_entangling_capability_ordering():
    no_ent = Circuit(2)
    no_ent.append("ry", 0, "a").append("ry", 1, "b")
    ent = hardware_efficient_ansatz(2, 2, mirror=False)
    assert entangling_capability(no_ent, num_samples=40, seed=1) == pytest.approx(0.0, abs=1e-10)
    assert entangling_capability(ent, num_samples=40, seed=1) > 0.2
