"""Synthetic Fashion-MNIST generator tests."""

import numpy as np
import pytest

from repro.data.synthetic_fashion import (
    CLASS_NAMES,
    class_prototype,
    generate_dataset,
    sample_class,
)


def test_ten_classes():
    assert len(CLASS_NAMES) == 10
    assert CLASS_NAMES.index("coat") == 4
    assert CLASS_NAMES.index("shirt") == 6  # Fashion-MNIST label order


def test_prototypes_valid_images():
    for label in range(10):
        img = class_prototype(label)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert img.sum() > 0  # non-empty drawing


def test_prototypes_pairwise_distinct():
    protos = [class_prototype(label).ravel() for label in range(10)]
    for i in range(10):
        for j in range(i + 1, 10):
            assert np.linalg.norm(protos[i] - protos[j]) > 1.0


def test_coat_shirt_most_similar_torso_pair():
    """The engineered hard pair: coat-shirt distance is smaller than
    coat-trouser (a genuinely different silhouette)."""
    coat = class_prototype(CLASS_NAMES.index("coat")).ravel()
    shirt = class_prototype(CLASS_NAMES.index("shirt")).ravel()
    trouser = class_prototype(CLASS_NAMES.index("trouser")).ravel()
    assert np.linalg.norm(coat - shirt) < np.linalg.norm(coat - trouser)


def test_prototype_geometry_jitter():
    rng = np.random.default_rng(0)
    a = class_prototype(4, rng)
    draws = [class_prototype(4, rng) for _ in range(10)]
    assert any(not np.array_equal(a, d) for d in draws)


def test_prototype_label_validation():
    with pytest.raises(ValueError):
        class_prototype(10)
    with pytest.raises(ValueError):
        class_prototype(-1)


def test_sample_class_shapes_and_range():
    imgs = sample_class(4, 5, seed=0)
    assert imgs.shape == (5, 28, 28)
    assert imgs.min() >= 0.0 and imgs.max() <= 1.0


def test_sampling_determinism():
    a = sample_class(6, 4, seed=42)
    b = sample_class(6, 4, seed=42)
    assert np.array_equal(a, b)
    c = sample_class(6, 4, seed=43)
    assert not np.array_equal(a, c)


def test_samples_vary_within_class():
    imgs = sample_class(4, 4, seed=1)
    assert not np.array_equal(imgs[0], imgs[1])


def test_texture_channel_is_mean_free():
    """The coat/shirt texture latent must not shift class means much --
    that's what hides it from linear models."""
    plain = sample_class(4, 200, seed=3, texture=0.0)
    textured = sample_class(4, 200, seed=3, texture=0.5)
    gap = abs(plain.mean() - textured.mean())
    assert gap < 0.02


def test_texture_creates_lr_correlation_signature():
    """Sign of cov(left, right) separates coat (+) from shirt (-)."""

    def lr_cov(label):
        imgs = sample_class(label, 300, seed=9, texture=0.6, texture_flip=0.0)
        left = imgs[:, :, :9].mean(axis=(1, 2))
        right = imgs[:, :, -9:].mean(axis=(1, 2))
        return np.cov(left, right)[0, 1]

    assert lr_cov(CLASS_NAMES.index("coat")) > 0
    assert lr_cov(CLASS_NAMES.index("shirt")) < 0


def test_generate_dataset_balanced_and_shuffled():
    x, y = generate_dataset((4, 6), per_class=20, seed=0)
    assert x.shape == (40, 28, 28)
    assert np.sum(y == 0) == np.sum(y == 1) == 20
    # Shuffled: labels not in two contiguous blocks.
    assert not (np.all(y[:20] == y[0]))


def test_generate_dataset_relabel_flag():
    _, y = generate_dataset((4, 6), per_class=3, seed=0, relabel=False)
    assert set(np.unique(y)) == {4, 6}
