"""CLI smoke tests (capsys-based)."""

import pytest

from repro.cli import main


def test_counts_command(capsys):
    assert main(["counts"]) == 0
    out = capsys.readouterr().out
    assert "R=1: 17" in out
    assert "L=2: 67" in out


def test_budgets_command(capsys):
    assert main(["budgets", "--epsilon", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "asymptotic" in out
    assert "observable_construction" in out
    assert "shadows" in out


def test_scaling_command(capsys):
    assert main(["scaling", "--tasks", "16", "--nodes", "1", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out and "speedup" in out


def test_table3_command_small(capsys):
    assert main(["table3", "--train", "8", "--test", "4", "--epochs", "1"]) == 0
    out = capsys.readouterr().out
    assert "logistic" in out and "observable L=2" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
