"""Persistent asynchronous execution runtime for circuit-ensemble dispatch.

The original :class:`~repro.hpc.executor.ParallelExecutor` rebuilt its
thread/process pool on every ``map`` call and consulted the scheduling
policies only as an after-the-fact analytical projection.  This module is
the live execution layer that replaces that pattern:

* **Persistent pools** -- an :class:`ExecutionRuntime` creates its worker
  pool once, lazily, and reuses it across every subsequent ``submit`` /
  ``map`` / ``stream`` / ``run`` call (every ``fit``/``predict`` sweep of a
  pipeline).  Shutdown is explicit (``shutdown()``) or scoped (context
  manager); a broken process pool is detected and transparently rebuilt.
* **Futures-based dispatch** -- ``submit`` returns a
  :class:`concurrent.futures.Future`; ``stream`` yields
  :class:`TaskCompletion` records in *completion* order so consumers
  (streaming Q-matrix assembly) can scatter results as they resolve, with
  no end-of-sweep barrier.
* **Policy-driven ordering** -- ``stream``/``run`` take a per-task cost
  vector and a scheduling policy name; tasks enter the shared worker queue
  in the order :func:`repro.hpc.scheduler.submission_order` dictates, so
  ``lpt``/``work_stealing`` order *real* execution rather than just the
  makespan projection.
* **Measured reconciliation** -- every task is timed inside the worker;
  ``run`` returns a :class:`DispatchReport` holding predicted costs and
  measured per-task wall-clock so the analytic projection can be
  reconciled against reality (``reconcile()``).

Results stay schedule-independent: ordering only changes *when* a task
runs, never its RNG stream, so all backends and policies remain
bit-for-bit (``exact``) or seed-deterministically (``shots``/``shadows``)
interchangeable -- the contract the property suite pins down.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from collections.abc import Callable, Iterator, Sequence
from typing import Any, NamedTuple

import numpy as np

from repro.hpc.scheduler import Assignment, schedule, submission_order

__all__ = [
    "ExecutorConfig",
    "ExecutionRuntime",
    "TaskCompletion",
    "DispatchReport",
    "resolve_max_workers",
]

_BACKENDS = ("serial", "thread", "process")
_START_METHODS = (None, "fork", "spawn", "forkserver")


def resolve_max_workers(max_workers: int | str | None) -> int:
    """Normalise a worker-count spec: ``None``/``"auto"`` -> ``os.cpu_count()``."""
    if max_workers is None or max_workers == "auto":
        return os.cpu_count() or 1
    if isinstance(max_workers, bool) or not isinstance(max_workers, (int, np.integer)):
        raise ValueError(
            f"max_workers must be an int >= 1, None or 'auto', got {max_workers!r}"
        )
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    return int(max_workers)


@dataclass(frozen=True)
class ExecutorConfig:
    """Executor settings; a plain dataclass so pipelines can log/serialise it.

    ``max_workers`` accepts ``None`` or ``"auto"`` (resolved to
    ``os.cpu_count()`` at construction).  ``start_method`` selects the
    multiprocessing start method for the process backend (``None`` keeps the
    platform default; ``"spawn"`` is what portable production deployments
    use and what the pool-reuse benchmark measures).
    """

    backend: str = "serial"
    max_workers: int | str | None = 1
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        object.__setattr__(self, "max_workers", resolve_max_workers(self.max_workers))
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, got {self.start_method!r}"
            )
        if self.start_method is not None and self.backend != "process":
            raise ValueError(
                f"start_method applies to the process backend only, "
                f"got backend={self.backend!r}"
            )


class TaskCompletion(NamedTuple):
    """One resolved task: original submission index, result, worker seconds."""

    index: int
    result: Any
    seconds: float


def _noop() -> None:
    """Worker warm-up task (picklable)."""


def _timed_call(fn: Callable[[Any], Any], index: int, task: Any) -> TaskCompletion:
    """Worker-side wrapper: run one task and time it where it executes."""
    start = time.perf_counter()
    result = fn(task)
    return TaskCompletion(index, result, time.perf_counter() - start)


@dataclass(frozen=True)
class DispatchReport:
    """Predicted vs measured record of one policy-ordered dispatch.

    ``predicted_costs`` are model units (whatever cost model fed the
    scheduler); ``measured_seconds`` are wall-clock seconds observed inside
    the workers.  ``reconcile()`` compares the analytic projection with an
    analytic *replay* on the measured costs and with the true end-to-end
    wall time.
    """

    policy: str
    backend: str
    num_workers: int
    predicted_costs: tuple[float, ...]
    measured_seconds: tuple[float, ...]
    wall_seconds: float

    @property
    def num_tasks(self) -> int:
        return len(self.predicted_costs)

    def projected(self) -> Assignment:
        """Analytic schedule on the *predicted* costs (the a-priori projection)."""
        return schedule(self.predicted_costs, self.num_workers, self.policy)

    def replayed(self) -> Assignment:
        """Analytic schedule replayed on the *measured* per-task seconds."""
        return schedule(self.measured_seconds, self.num_workers, self.policy)

    def cost_correlation(self) -> float:
        """Pearson correlation between predicted costs and measured seconds."""
        pred = np.asarray(self.predicted_costs)
        meas = np.asarray(self.measured_seconds)
        if pred.size < 2 or float(pred.std()) == 0.0 or float(meas.std()) == 0.0:
            return 0.0
        return float(np.corrcoef(pred, meas)[0, 1])

    def reconcile(self) -> dict[str, float]:
        """Projection vs measurement, condensed to the numbers a log wants."""
        projected = self.projected().makespan if self.num_tasks else 0.0
        replayed = self.replayed().makespan if self.num_tasks else 0.0
        # How well the greedy-queue model predicts reality (1.0 = exact;
        # >1 means real dispatch paid overheads the replay does not see).
        # Real wall time with zero replayed makespan (e.g. a report built
        # from incomplete records) is a degenerate measurement, reported as
        # inf rather than dressed up as a perfect match.
        if replayed > 0:
            wall_over_replay = self.wall_seconds / replayed
        elif self.num_tasks == 0 or self.wall_seconds == 0:
            wall_over_replay = 1.0
        else:
            wall_over_replay = float("inf")
        return {
            "projected_makespan": projected,
            "replayed_makespan_s": replayed,
            "measured_total_s": float(sum(self.measured_seconds)),
            "wall_s": self.wall_seconds,
            "wall_over_replay": wall_over_replay,
            "cost_correlation": self.cost_correlation(),
        }

    @classmethod
    def from_records(
        cls,
        policy: str,
        backend: str,
        num_workers: int,
        predicted_costs: Sequence[float],
        records: Sequence[TaskCompletion],
        wall_seconds: float,
    ) -> DispatchReport:
        seconds = np.zeros(len(predicted_costs))
        for rec in records:
            seconds[rec.index] = rec.seconds
        return cls(
            policy=policy,
            backend=backend,
            num_workers=num_workers,
            predicted_costs=tuple(float(c) for c in predicted_costs),
            measured_seconds=tuple(float(s) for s in seconds),
            wall_seconds=float(wall_seconds),
        )


class ExecutionRuntime:
    """Long-lived futures-based executor over a lazily-created, reused pool.

    Thread-safe for concurrent submission; ``serial`` (or one-worker)
    configurations execute inline with identical semantics, so the runtime
    is the single dispatch layer for every backend.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | str | None = 1,
        start_method: str | None = None,
        *,
        config: ExecutorConfig | None = None,
    ):
        self.config = config if config is not None else ExecutorConfig(
            backend=backend, max_workers=max_workers, start_method=start_method
        )
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._warmed_pool: object | None = None  # last pool warm() fully started
        self._lock = threading.Lock()
        self._closed = False
        self.pools_created = 0  # observability: how many times a pool was built

    # ------------------------------------------------------------ properties
    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def max_workers(self) -> int:
        return self.config.max_workers  # type: ignore[return-value]

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def _inline(self) -> bool:
        """Serial semantics: no pool, tasks run at submission.

        A one-worker *thread* pool is indistinguishable from inline
        execution, so it is short-circuited; a one-worker *process* pool is
        not -- it still provides crash isolation and enforces picklability,
        so the process backend always gets a real pool.
        """
        return self.config.backend == "serial" or (
            self.config.backend == "thread" and self.config.max_workers == 1
        )

    # ------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("runtime is shut down; create a new ExecutionRuntime")

    def warm(self) -> None:
        """Build the pool and start its workers now instead of on dispatch.

        Pools spawn workers lazily on submit, so constructing the pool
        alone is not enough: one waited-on no-op per worker forces the
        spawns (interpreter start + imports for spawn-based process pools),
        keeping that one-time cost out of subsequently timed windows.
        A no-op for inline (serial / one-worker) configurations.
        """
        if self._inline:
            self._check_open()
            return
        pool = self._ensure_pool()
        if pool is self._warmed_pool:
            return  # already warmed; repeated calls must stay free
        wait([pool.submit(_noop) for _ in range(self.config.max_workers)])
        self._warmed_pool = pool

    def _ensure_pool(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        with self._lock:
            # Checked under the lock: a concurrent shutdown() must not be
            # followed by this thread building a fresh (leaked) pool.
            self._check_open()
            pool = self._pool
            # A crashed worker breaks a process pool permanently; rebuild it
            # so the persistent runtime survives individual task disasters.
            if pool is not None and getattr(pool, "_broken", False):
                pool.shutdown(wait=False)
                pool = self._pool = None
            if pool is None:
                if self.config.backend == "thread":
                    pool = ThreadPoolExecutor(max_workers=self.config.max_workers)
                else:
                    ctx = (
                        multiprocessing.get_context(self.config.start_method)
                        if self.config.start_method
                        else None
                    )
                    pool = ProcessPoolExecutor(
                        max_workers=self.config.max_workers, mp_context=ctx
                    )
                self._pool = pool
                self.pools_created += 1
        return pool

    def _invalidate_pool(self) -> None:
        """Discard a pool observed broken; the next dispatch rebuilds it."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _pool_submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit to the pool, rebuilding once on ``BrokenExecutor``.

        The public exception (not just the private ``_broken`` flag checked
        in :meth:`_ensure_pool`) guards submission, so one crashed worker
        cannot permanently poison the persistent runtime.
        """
        try:
            return self._ensure_pool().submit(fn, *args)
        except BrokenExecutor:
            self._invalidate_pool()
            return self._ensure_pool().submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Release the pool; the runtime cannot be reused afterwards."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def close(self, wait: bool = True) -> None:
        """Alias for :meth:`shutdown`, matching the executor facade."""
        self.shutdown(wait=wait)

    def __enter__(self) -> ExecutionRuntime:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -------------------------------------------------------------- dispatch
    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)``; inline configurations resolve immediately."""
        if self._inline:
            self._check_open()
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except Exception as exc:
                # Only Exception: inline runs in the *caller's* thread, so a
                # KeyboardInterrupt/SystemExit here is the main thread's own
                # signal and must propagate, not be parked on the Future.
                future.set_exception(exc)
            return future
        return self._pool_submit(fn, *args)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Order-preserving map over the persistent pool."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self._inline:
            self._check_open()
            return [fn(t) for t in tasks]
        try:
            return list(self._ensure_pool().map(fn, tasks))
        except BrokenExecutor:
            # Rebuild once and re-run: map tasks are independent, so
            # re-executing the batch on a fresh pool is safe.
            self._invalidate_pool()
            return list(self._ensure_pool().map(fn, tasks))

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        costs: Sequence[float] | None = None,
        policy: str = "work_stealing",
        records: list[TaskCompletion] | None = None,
    ) -> Iterator[TaskCompletion]:
        """Yield :class:`TaskCompletion` in completion order.

        Tasks are fed to the shared worker queue in the order the scheduling
        ``policy`` dictates for the given ``costs`` (uniform costs when
        ``None``).  ``records``, when given, accumulates a *result-free*
        copy of every completion (index + seconds only, so recording never
        pins task payloads in memory) for building a
        :class:`DispatchReport` after consuming the stream.

        Arguments are validated here, eagerly, so a bad policy or cost
        vector raises at the call site -- not at the consumer's first
        ``next()``, and not never for an empty task list.
        """
        tasks = list(tasks)
        n = len(tasks)
        cost_arr = np.ones(n) if costs is None else np.asarray(costs, dtype=float)
        if cost_arr.shape != (n,):
            raise ValueError(f"costs must have one entry per task ({n}), got {cost_arr.shape}")
        # Validates the policy (and worker count) even when n == 0.
        order = submission_order(cost_arr, self.config.max_workers, policy)
        return self._stream_iter(fn, tasks, order, records)

    def _stream_iter(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        order: np.ndarray,
        records: list[TaskCompletion] | None,
    ) -> Iterator[TaskCompletion]:
        if not tasks:
            return
        if self._inline:
            self._check_open()
            for idx in order:
                completion = _timed_call(fn, int(idx), tasks[idx])
                if records is not None:
                    records.append(completion._replace(result=None))
                yield completion
            return
        # Bounded in-flight window: tasks enter the queue lazily in policy
        # order, at most ~2 per worker ahead of the consumer, so a slow
        # consumer never accumulates the whole sweep's results in completed
        # futures -- incremental consumers hold O(workers) blocks, not O(n).
        window = 2 * self.config.max_workers
        submit_iter = iter(order)
        pending: set[Future] = set()
        try:
            for idx in submit_iter:
                pending.add(self._pool_submit(_timed_call, fn, int(idx), tasks[idx]))
                if len(pending) >= window:
                    break
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for idx in submit_iter:
                    pending.add(self._pool_submit(_timed_call, fn, int(idx), tasks[idx]))
                    if len(pending) >= window:
                        break
                for future in done:
                    completion = future.result()
                    if records is not None:
                        records.append(completion._replace(result=None))
                    yield completion
        finally:
            # An abandoned generator (early break) must not leave the rest
            # of the sweep burning the persistent pool.
            for future in pending:
                future.cancel()

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        costs: Sequence[float] | None = None,
        policy: str = "work_stealing",
    ) -> tuple[list[Any], DispatchReport]:
        """Execute all tasks; return order-preserving results + dispatch report."""
        tasks = list(tasks)
        n = len(tasks)
        cost_arr = np.ones(n) if costs is None else np.asarray(costs, dtype=float)
        results: list[Any] = [None] * n
        records: list[TaskCompletion] = []
        start = time.perf_counter()
        for completion in self.stream(fn, tasks, costs=cost_arr, policy=policy, records=records):
            results[completion.index] = completion.result
        wall = time.perf_counter() - start
        report = DispatchReport.from_records(
            policy, self.config.backend, self.config.max_workers, cost_arr, records, wall
        )
        return results, report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("idle" if self._pool is None else "live")
        return (
            f"ExecutionRuntime({self.config.backend}, workers={self.config.max_workers}, "
            f"{state})"
        )
