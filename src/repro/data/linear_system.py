"""Random Pauli-sparse linear systems for the CQS comparison (Sec. III.E).

The CQS approach [27] solves ``A x = b`` where ``A`` is given as a sparse
linear combination of Pauli strings (the access model of near-term linear
solvers).  These generators produce well-conditioned Hermitian instances
together with a normalised right-hand-side state.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.observables import PauliString, PauliSum, local_pauli_strings
from repro.utils.rng import as_rng

__all__ = ["random_pauli_operator", "random_linear_system"]


def random_pauli_operator(
    num_qubits: int,
    num_terms: int,
    seed: int | np.random.Generator | None = None,
    locality: int | None = None,
    identity_weight: float = 2.0,
    hermitian: bool = True,
) -> PauliSum:
    """A random ``A = sum_k c_k P_k`` with real coefficients.

    ``identity_weight`` adds ``identity_weight * I`` to push the spectrum
    away from zero (invertibility, the regime where the CQS Ansatz tree
    converges quickly).  ``locality=None`` draws from all non-identity
    strings.
    """
    rng = as_rng(seed)
    pool = [
        p
        for p in local_pauli_strings(num_qubits, locality or num_qubits)
        if not p.is_identity
    ]
    if num_terms > len(pool):
        raise ValueError(f"requested {num_terms} terms but only {len(pool)} available")
    chosen = rng.choice(len(pool), size=num_terms, replace=False)
    coeffs = rng.uniform(-1.0, 1.0, size=num_terms)
    terms: list[tuple[complex, PauliString]] = [
        (complex(c), pool[i]) for c, i in zip(coeffs, chosen, strict=True)
    ]
    if identity_weight:
        terms.append((complex(identity_weight), PauliString("I" * num_qubits)))
    op = PauliSum(terms)
    if hermitian:
        # Real coefficients on Hermitian strings => already Hermitian.
        pass
    return op


def random_linear_system(
    num_qubits: int,
    num_terms: int = 4,
    seed: int | np.random.Generator | None = None,
) -> tuple[PauliSum, np.ndarray, np.ndarray]:
    """Returns (A, b, x_true) with ``A x_true = b`` and ``||b||_2 = 1``.

    ``x_true`` is the exact dense solution ``A^+ b`` for verification.
    """
    rng = as_rng(seed)
    a = random_pauli_operator(num_qubits, num_terms, rng)
    dim = 2**num_qubits
    b = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    b = b / np.linalg.norm(b)
    a_dense = a.to_matrix()
    x_true = np.linalg.pinv(a_dense) @ b
    return a, b, x_true
