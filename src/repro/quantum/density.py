"""Density-matrix simulator for noisy-circuit verification.

The headline experiments run on pure statevectors (as in the paper, which
uses qiskit's ideal simulator), but the NISQ framing of the paper makes a
noise path essential for a credible release: the hybrid HPC-QC pipeline can
re-run any ensemble member under a Kraus noise model and the tests verify
that shot/shadow estimators converge to the *noisy* expectations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import gate_matrix
from repro.quantum.observables import PauliString, PauliSum
from repro.utils.validation import check_power_of_two, check_square

__all__ = [
    "pure_density",
    "apply_unitary",
    "apply_kraus",
    "run_circuit_density",
    "expectation_density",
    "purity",
    "partial_trace",
]


def pure_density(state: np.ndarray) -> np.ndarray:
    """``|psi><psi|`` from a statevector."""
    psi = np.asarray(state, dtype=np.complex128).ravel()
    return np.outer(psi, psi.conj())


def apply_unitary(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """``K rho K^dag`` with the (not necessarily unitary) ``K`` on ``qubits``.

    Implemented with the fast statevector kernel: ``K rho`` applies K to each
    column of rho (batched), and right-multiplication by ``K^dag`` is applying
    ``conj(K)`` to each row.
    """
    from repro.quantum.statevector import apply_matrix_batch

    rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
    left = apply_matrix_batch(np.ascontiguousarray(rho.T), matrix, qubits).T  # K rho
    return apply_matrix_batch(
        np.ascontiguousarray(left), np.conj(np.asarray(matrix)), qubits
    )  # (K rho) K^dag


def apply_kraus(
    rho: np.ndarray, kraus_ops: Sequence[np.ndarray], qubits: Sequence[int]
) -> np.ndarray:
    """``sum_k K rho K^dag`` for a local channel on ``qubits``."""
    out = np.zeros_like(np.asarray(rho, dtype=np.complex128))
    for k in kraus_ops:
        out = out + apply_unitary(rho, k, qubits)
    return out


def run_circuit_density(
    circuit: Circuit,
    rho: np.ndarray | None = None,
    noise_model=None,
) -> np.ndarray:
    """Evolve a density matrix through ``circuit``.

    ``noise_model`` (see :mod:`repro.quantum.noise`) is queried after every
    gate for the Kraus channel to insert; ``None`` gives ideal evolution.
    """
    if not circuit.is_bound:
        raise ValueError("run_circuit_density requires a bound circuit")
    dim = 2**circuit.num_qubits
    if rho is None:
        rho = np.zeros((dim, dim), dtype=np.complex128)
        rho[0, 0] = 1.0
    else:
        rho = np.asarray(rho, dtype=np.complex128)
        if rho.shape != (dim, dim):
            raise ValueError(f"rho shape {rho.shape} != ({dim}, {dim})")
    for op in circuit:
        rho = apply_unitary(rho, gate_matrix(op.gate, op.param), op.qubits)
        if noise_model is not None:
            for kraus, qubits in noise_model.channels_after(op):
                rho = apply_kraus(rho, kraus, qubits)
    return rho


def expectation_density(rho: np.ndarray, observable) -> float:
    """``tr(O rho)`` for PauliString / PauliSum / dense observable."""
    rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
    if isinstance(observable, PauliString):
        matrix = observable.to_matrix()
    elif isinstance(observable, PauliSum):
        matrix = observable.to_matrix()
    else:
        matrix = np.asarray(observable, dtype=np.complex128)
    return float(np.trace(matrix @ rho).real)


def purity(rho: np.ndarray) -> float:
    """``tr(rho^2)``; 1 for pure states."""
    rho = np.asarray(rho, dtype=np.complex128)
    return float(np.trace(rho @ rho).real)


def partial_trace(rho: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Trace out all qubits not in ``keep`` (order of ``keep`` preserved)."""
    rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
    n = check_power_of_two(rho.shape[0], "rho dimension")
    keep = list(keep)
    drop = [q for q in range(n) if q not in keep]
    tensor = rho.reshape((2,) * (2 * n))
    for q in sorted(drop, reverse=True):
        tensor = np.trace(tensor, axis1=q, axis2=q + tensor.ndim // 2)
        # after trace, axes shrink by one on each side; recompute implicitly
    dim_keep = 2 ** len(keep)
    return tensor.reshape(dim_keep, dim_keep)
