"""Deprecated forked entry point for noisy feature generation.

The noisy Q-matrix sweep is no longer a fork: it runs through the same
compiled/streaming pipeline as the ideal one, selected by
``generate_features(..., backend=DensityMatrixBackend(noise_model))``
(see :mod:`repro.quantum.backends`).  This module keeps the old name alive
as a thin shim -- same signature, same numbers -- and will be removed in a
future release.

The shim also retires two defects of the old implementation: a fresh
``ParallelExecutor()`` was created (and leaked) per call instead of going
through the persistent :class:`~repro.hpc.runtime.ExecutionRuntime`, and a
parameterless-but-non-empty Ansatz was silently dropped, yielding
encoder-only features.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.strategies import Strategy
from repro.hpc.executor import ParallelExecutor
from repro.hpc.runtime import ExecutionRuntime
from repro.quantum.backends import DensityMatrixBackend
from repro.quantum.noise import NoiseModel

__all__ = ["generate_features_noisy"]


def generate_features_noisy(
    strategy: Strategy,
    angles: np.ndarray,
    noise_model: NoiseModel,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
) -> np.ndarray:
    """Noisy Q matrix: (d, m) array of ``tr(O_j rho_noisy)`` values.

    .. deprecated::
        Use ``generate_features(strategy, angles,
        backend=DensityMatrixBackend(noise_model))``, which streams the
        noisy sweep through the persistent runtime and scheduler instead
        of a one-shot executor.

    Deterministic (channels are applied exactly, not sampled), so noise
    studies are reproducible without seed bookkeeping.
    """
    warnings.warn(
        "generate_features_noisy is deprecated; call generate_features(..., "
        "backend=DensityMatrixBackend(noise_model)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.config import ExecutionConfig
    from repro.core.features import generate_features

    # Internal delegation goes through config= -- the legacy kwargs are
    # themselves deprecated, and CI runs with them promoted to errors for
    # repro.* modules.
    return generate_features(
        strategy,
        angles,
        executor=executor,
        config=ExecutionConfig(backend=DensityMatrixBackend(noise_model)),
    )
