"""Cross-module invariants: optimisations must never change the physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import generate_features
from repro.core.strategies import AnsatzExpansion, HybridStrategy
from repro.data.encoding import encode_batch
from repro.quantum.observables import PauliSum, expectation
from repro.quantum.statevector import run_circuit
from repro.quantum.transpile import optimize


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(8, 4, 4))


def test_transpiled_ensemble_preserves_q_matrix(angles):
    """Sec. VIII: transpiling the fixed shift circuits must leave every
    feature bit-equal (global phases cannot leak into expectations)."""
    strategy = AnsatzExpansion(order=1)
    states = encode_batch(angles)
    q_raw = generate_features(strategy, angles)
    circuit = strategy.ansatz
    obs = strategy.observables()[0]
    for a, params in enumerate(strategy.parameter_sets()):
        optimized, _ = optimize(circuit.bind(params))
        evolved = run_circuit(optimized, state=states)
        column = expectation(evolved, obs)
        assert np.allclose(column, q_raw[:, a], atol=1e-10), a


def test_shift_configurations_reconstruct_gradient_on_data(angles):
    """The ensemble's raison d'etre: first-order features linearly combine
    into the exact data-gradient of the variational expectation."""
    strategy = AnsatzExpansion(order=1)
    q = generate_features(strategy, angles)
    configs = strategy.shift_configurations
    states = encode_batch(angles)
    from repro.quantum.parameter_shift import expectation_function, gradient

    for u in (0, 4, 7):
        plus = next(
            i for i, c in enumerate(configs) if c.subset == (u,) and c.signs == (1,)
        )
        minus = next(
            i for i, c in enumerate(configs) if c.subset == (u,) and c.signs == (-1,)
        )
        ensemble_grad = 0.5 * (q[:, plus] - q[:, minus])
        for row in (0, 3):
            f = expectation_function(
                strategy.ansatz, strategy.observables()[0], state=states[row]
            )
            assert ensemble_grad[row] == pytest.approx(
                gradient(f, np.zeros(8))[u], abs=1e-9
            )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_pauli_sum_expectation_linearity(seed):
    """expectation is linear over PauliSum: random sums vs term-by-term."""
    rng = np.random.default_rng(seed)
    from tests.conftest import random_state

    psi = random_state(3, rng)
    from repro.quantum.observables import local_pauli_strings

    pool = local_pauli_strings(3, 2)
    picks = rng.choice(len(pool), size=4, replace=False)
    coeffs = rng.uniform(-2, 2, size=4)
    ps = PauliSum([(c, pool[i]) for c, i in zip(coeffs, picks, strict=True)])
    direct = expectation(psi, ps)
    termwise = sum(c * expectation(psi, pool[i]) for c, i in zip(coeffs, picks, strict=True))
    assert direct == pytest.approx(termwise, abs=1e-10)


def test_hybrid_feature_column_order(angles):
    """Definition 1 indexing: column a*q + b == (parameter set a,
    observable b), verified at a random interior column."""
    strategy = HybridStrategy(order=1, locality=1)
    q_matrix = generate_features(strategy, angles)
    a, b = 5, 7
    params = strategy.parameter_sets()[a]
    obs = strategy.observables()[b]
    states = encode_batch(angles)
    evolved = run_circuit(strategy.ansatz.bind(params), state=states)
    expected = expectation(evolved, obs)
    qcount = strategy.num_observables
    assert np.allclose(q_matrix[:, a * qcount + b], expected, atol=1e-12)


def test_noisy_features_bounded_by_ideal_identity(angles):
    """Trace preservation: noisy identity-observable features stay exactly 1
    and all features remain in [-1, 1]."""
    from repro.core.strategies import ObservableConstruction
    from repro.quantum.backends import DensityMatrixBackend
    from repro.quantum.noise import NoiseModel

    strategy = ObservableConstruction(qubits=4, locality=1)
    q = generate_features(
        strategy, angles[:3], backend=DensityMatrixBackend(NoiseModel.depolarizing(0.03))
    )
    assert np.allclose(q[:, 0], 1.0, atol=1e-10)
    assert np.all(q >= -1 - 1e-9) and np.all(q <= 1 + 1e-9)


def test_shadow_and_shot_estimators_agree_in_expectation(angles):
    """Both stochastic estimators are unbiased: averaged over seeds they
    converge to the same exact Q entries."""
    from repro.core.strategies import ObservableConstruction

    strategy = ObservableConstruction(qubits=4, locality=1)
    exact = generate_features(strategy, angles[:2])
    shot_runs = np.mean(
        [
            generate_features(strategy, angles[:2], estimator="shots", shots=600, seed=s)
            for s in range(6)
        ],
        axis=0,
    )
    shadow_runs = np.mean(
        [
            generate_features(
                strategy, angles[:2], estimator="shadows", snapshots=1200, seed=s
            )
            for s in range(6)
        ],
        axis=0,
    )
    assert np.max(np.abs(shot_runs - exact)) < 0.08
    assert np.max(np.abs(shadow_runs - exact)) < 0.15


def test_fig8_identity_feature_consistency(angles):
    """Order-0 hybrid features == raw encoded-state features: the mirrored
    Fig. 8 ring at theta=0 must be exactly transparent end to end."""
    strategy = HybridStrategy(order=0, locality=2)
    q_hybrid = generate_features(strategy, angles)
    from repro.core.strategies import ObservableConstruction

    q_plain = generate_features(ObservableConstruction(qubits=4, locality=2), angles)
    assert np.allclose(q_hybrid, q_plain, atol=1e-12)
