"""Network transport: framing, bit-equality over TCP, streaming, errors."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api.config import ExecutionConfig, ServeConfig, TransportConfig
from repro.core.features import generate_features
from repro.core.strategies import strategy_from_name
from repro.serve import (
    BackpressureError,
    FeatureClient,
    FeatureServer,
    FeatureService,
    ProtocolError,
    RequestTimeoutError,
    TcpTransport,
    decode_array,
    encode_array,
    pack_frame,
    read_frame,
    run_load,
)

QUBITS = 3
ROWS = 2

FAST_EXECUTION = ExecutionConfig(vectorize="auto", compile="auto", seed=7)
FALLBACK_EXECUTION = ExecutionConfig(vectorize="off", seed=7)


def make_service(execution: ExecutionConfig = FAST_EXECUTION, **overrides):
    defaults = dict(batch_window_ms=2.0, pool="serial", execution=execution)
    defaults.update(overrides)
    service = FeatureService(ServeConfig(**defaults))
    service.register(
        "t", strategy_from_name("observable", num_qubits=QUBITS), rows=ROWS
    )
    return service


def angles(k: int = 4, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, np.pi, size=(k, ROWS, QUBITS))


# ---------------------------------------------------------------- framing
def _pipe() -> tuple[asyncio.StreamReader, asyncio.StreamReader]:
    """A loopback: feed bytes into a reader directly."""
    return asyncio.StreamReader(), asyncio.StreamReader()


def test_frame_round_trip():
    async def main():
        header = {"type": "submit", "id": "r1", "seed": None}
        payload = np.arange(6, dtype=np.float64).tobytes()
        reader = asyncio.StreamReader()
        reader.feed_data(pack_frame(header, payload))
        reader.feed_eof()
        got_header, got_payload = await read_frame(reader)
        assert got_header == header
        assert got_payload == payload
        assert await read_frame(reader) is None  # clean EOF after

    asyncio.run(main())


def test_frame_bad_magic_rejected():
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(b"HTTP/1.1 200 OK\r\n\r\n")
        reader.feed_eof()
        with pytest.raises(ProtocolError, match="magic"):
            await read_frame(reader)

    asyncio.run(main())


def test_frame_version_mismatch_rejected():
    async def main():
        frame = bytearray(pack_frame({"type": "hello"}))
        frame[4] = 99  # the version byte follows the 4-byte magic
        reader = asyncio.StreamReader()
        reader.feed_data(bytes(frame))
        reader.feed_eof()
        with pytest.raises(ProtocolError, match="version 99"):
            await read_frame(reader)

    asyncio.run(main())


def test_frame_oversize_rejected_before_allocation():
    async def main():
        frame = pack_frame({"type": "submit"}, b"x" * 1024)
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        with pytest.raises(ProtocolError, match="max_frame_bytes"):
            await read_frame(reader, max_frame_bytes=128)

    asyncio.run(main())


def test_frame_mid_frame_close_rejected():
    async def main():
        frame = pack_frame({"type": "submit"}, b"x" * 64)
        reader = asyncio.StreamReader()
        reader.feed_data(frame[:-10])
        reader.feed_eof()
        with pytest.raises(ProtocolError, match="mid-frame"):
            await read_frame(reader)

    asyncio.run(main())


def test_array_codec_is_bit_exact():
    x = np.random.default_rng(3).standard_normal((5, 7))
    meta, payload = encode_array(x)
    assert np.array_equal(decode_array(meta, payload), x)
    # Non-contiguous views encode their logical content.
    sliced = x[::2, 1:]
    meta, payload = encode_array(sliced)
    assert np.array_equal(decode_array(meta, payload), sliced)
    with pytest.raises(ProtocolError, match="does not match"):
        decode_array({"shape": [5, 7]}, payload)


# --------------------------------------------------------- the equality chain
@pytest.mark.parametrize(
    "execution", [FAST_EXECUTION, FALLBACK_EXECUTION], ids=["fast", "fallback"]
)
def test_tcp_response_bit_equal_to_in_process_and_standalone(execution):
    """The PR's contract: TCP == in-process submit == generate_features."""

    async def main():
        service = make_service(execution)
        x = angles(k=4)
        async with service:
            in_process = await service.submit("t", x, seed=5)
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    over_tcp = await transport.submit("t", x, seed=5)
        return in_process, over_tcp

    in_process, over_tcp = asyncio.run(main())
    strategy = strategy_from_name("observable", num_qubits=QUBITS)
    execution_cfg = execution if execution.seed == 5 else execution.merged(seed=5)
    standalone = np.asarray(
        generate_features(strategy, angles(k=4), config=execution_cfg)
    )
    assert np.array_equal(over_tcp, in_process)
    assert np.array_equal(over_tcp, standalone)


def test_streamed_response_bit_equal():
    async def main():
        # Threshold 2 with 6 samples: the response must stream, and a
        # forced stream of the same request must agree bit for bit.
        service = make_service(
            transport=TransportConfig(stream_threshold_rows=2)
        )
        x = angles(k=6)
        async with service:
            in_process = await service.submit("t", x, seed=9)
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    thresholded = await transport.submit("t", x, seed=9)
                    forced = await transport.submit("t", x, seed=9, stream=True)
        assert np.array_equal(thresholded, in_process)
        assert np.array_equal(forced, in_process)

    asyncio.run(main())


def test_oversized_response_streams_automatically():
    async def main():
        # A frame bound too small for the whole response but fine for
        # per-chunk blocks: the server must stream without being asked.
        service = make_service(
            transport=TransportConfig(max_frame_bytes=2048),
            execution=FAST_EXECUTION.merged(chunk_size=2),
        )
        k = 32
        x = angles(k=k)
        async with service:
            in_process = await service.submit("t", x, seed=1)
            assert in_process.nbytes + 512 > 2048  # single frame cannot fit
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    over_tcp = await transport.submit("t", x, seed=1)
        assert np.array_equal(over_tcp, in_process)

    asyncio.run(main())


def test_oversized_response_fails_cleanly_when_streaming_disabled():
    async def main():
        service = make_service(
            transport=TransportConfig(max_frame_bytes=2048, streaming=False),
            execution=FAST_EXECUTION.merged(chunk_size=2),
        )
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    with pytest.raises(ProtocolError, match="max_frame_bytes"):
                        await transport.submit("t", angles(k=32), seed=1)
                    # The connection survives: a small request still works.
                    small = await transport.submit("t", angles(k=1), seed=1)
                    assert small.shape[0] == 1

    asyncio.run(main())


def test_single_sample_round_trip_over_tcp():
    async def main():
        service = make_service()
        x = angles(k=1)
        async with service:
            in_process = await service.submit("t", x[0], seed=2)
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    over_tcp = await transport.submit("t", x[0], seed=2)
        assert over_tcp.ndim == 1
        assert np.array_equal(over_tcp, in_process)

    asyncio.run(main())


# ----------------------------------------------------- coalescing over TCP
def test_concurrent_tcp_requests_coalesce():
    async def main():
        service = make_service(batch_window_ms=20.0, cache_results=False)
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    results = await asyncio.gather(
                        *(
                            transport.submit("t", angles(seed=i), seed=i)
                            for i in range(8)
                        )
                    )
            assert len(results) == 8
            metrics = service.metrics()
            assert metrics.flushed_requests_total == 8
            assert metrics.coalesce_ratio > 1.0

    asyncio.run(main())


def test_run_load_over_tcp_transport():
    async def main():
        service = make_service(cache_results=False)
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    report = await run_load(
                        transport, requests=12, concurrency=6, seed=0
                    )
            assert report.completed == 12
            assert report.rejected == 0
            assert service.metrics().coalesce_ratio > 1.0

    asyncio.run(main())


# ------------------------------------------------------------ typed errors
def test_error_codes_map_to_typed_exceptions():
    async def main():
        service = make_service(max_queue_depth=1, batch_window_ms=50.0,
                               cache_results=False)
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    with pytest.raises(KeyError, match="unknown template"):
                        await transport.submit("nope", angles())
                    with pytest.raises(ValueError, match="expects"):
                        await transport.submit(
                            "t", np.zeros((2, ROWS, QUBITS + 1))
                        )
                    first = asyncio.ensure_future(
                        transport.submit("t", angles(seed=1))
                    )
                    # Give the first submit time to cross the socket and
                    # occupy the only admission slot.
                    for _ in range(50):
                        await asyncio.sleep(0.001)
                        if service.metrics().queue_depth > 0:
                            break
                    with pytest.raises(BackpressureError):
                        await transport.submit("t", angles(seed=2))
                    assert (await first) is not None

    asyncio.run(main())


def test_timeout_over_tcp_is_structured(monkeypatch):
    from repro.serve import engine

    real_execute = engine.execute_flush

    def slow_execute(artifacts, requests):
        import time as _time

        _time.sleep(0.25)
        return real_execute(artifacts, requests)

    monkeypatch.setattr("repro.serve.service.execute_flush", slow_execute)

    async def main():
        service = make_service(cache_results=False)
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    with pytest.raises(RequestTimeoutError) as info:
                        await transport.submit(
                            "t", angles(seed=1), timeout_s=0.05
                        )
                    assert info.value.template == "t"
                    assert info.value.timeout_s == 0.05
            # The abandoned flush still drains without orphaned futures.
        assert service.metrics().timeouts_total == 1

    asyncio.run(main())


def test_protocol_violation_answered_then_disconnected():
    async def main():
        service = make_service()
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET / HTTP/1.1\r\n\r\n")
                await writer.drain()
                frame = await read_frame(reader)
                assert frame is not None
                header, _ = frame
                assert header["type"] == "error"
                assert header["code"] == "protocol"
                assert await reader.read() == b""  # server hung up
                writer.close()
                await writer.wait_closed()

    asyncio.run(main())


# ----------------------------------------------- disconnects and draining
def test_client_disconnect_cancels_server_side():
    async def main():
        service = make_service(batch_window_ms=200.0, cache_results=False)
        async with service:
            async with FeatureServer(service) as server:
                host, port = server.address
                transport = await TcpTransport.connect(host, port)
                submit = asyncio.ensure_future(
                    transport.submit("t", angles(seed=1))
                )
                for _ in range(100):
                    await asyncio.sleep(0.001)
                    if service.metrics().queue_depth > 0:
                        break
                assert service.metrics().queue_depth == 1
                # Vanishing mid-window withdraws the queued request and
                # releases its admission units.
                await transport.aclose()
                with pytest.raises(ConnectionError):
                    await submit
                for _ in range(100):
                    await asyncio.sleep(0.001)
                    if service.metrics().queue_depth == 0:
                        break
                assert service.metrics().queue_depth == 0

    asyncio.run(main())


def test_graceful_drain_finishes_inflight_then_refuses():
    async def main():
        service = make_service(batch_window_ms=30.0, cache_results=False)
        async with service:
            server = FeatureServer(service)
            await server.start()
            host, port = server.address
            transport = await TcpTransport.connect(host, port)
            inflight = asyncio.ensure_future(
                transport.submit("t", angles(seed=1), seed=1)
            )
            for _ in range(100):
                await asyncio.sleep(0.001)
                if service.metrics().queue_depth > 0:
                    break
            stop = asyncio.ensure_future(server.stop())
            # The in-flight request completes (and bit-equal at that).
            result = await inflight
            await stop
            expected = await service.submit("t", angles(seed=1), seed=1)
            assert np.array_equal(result, expected)
            # New connections are refused after drain.
            with pytest.raises(OSError):
                await TcpTransport.connect(host, port)
            await transport.aclose()

    asyncio.run(main())


def test_server_requires_started_service():
    async def main():
        service = make_service()
        server = FeatureServer(service)
        with pytest.raises(Exception, match="started"):
            await server.start()

    asyncio.run(main())


def test_server_uses_serve_config_transport():
    async def main():
        service = make_service(
            transport=TransportConfig(host="127.0.0.1", port=0)
        )
        async with service:
            async with FeatureServer(service) as server:
                assert server.config is service.config.transport
                host, _port = server.address
                assert host == "127.0.0.1"

    asyncio.run(main())


# --------------------------------------------------------------- the client
def test_feature_client_over_tcp_matches_in_process():
    async def main():
        service = make_service(cache_results=False)
        x = angles(k=3)
        async with service:
            in_process = await service.submit("t", x, tenant="a", seed=4)
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    client = FeatureClient(transport=transport, tenant="a")
                    assert client.service is None  # remote: no local handle
                    over_tcp = await client.features("t", x, seed=4)
        assert np.array_equal(over_tcp, in_process)

    asyncio.run(main())


def test_predict_over_tcp():
    class DoubleHead:
        def predict(self, features):
            return features * 2

    async def main():
        service = make_service()
        service.register(
            "headed",
            strategy_from_name("observable", num_qubits=QUBITS),
            rows=ROWS,
            head=DoubleHead(),
        )
        x = angles(k=2)
        async with service:
            in_process = await service.predict("headed", x, seed=6)
            async with FeatureServer(service) as server:
                host, port = server.address
                async with await TcpTransport.connect(host, port) as transport:
                    assert transport.templates() == ("headed", "t")
                    assert transport.template_shape("headed") == (ROWS, QUBITS)
                    over_tcp = await transport.predict("headed", x, seed=6)
                    with pytest.raises(ValueError, match="no head"):
                        await transport.predict("t", x)
        assert np.array_equal(over_tcp, in_process)

    asyncio.run(main())
