"""Classical shadows with random Pauli-basis measurements.

Implements the protocol of Huang, Kueng and Preskill [43] as used in paper
Sec. II.B, IV.B and Proposition 2: each snapshot measures every qubit in a
uniformly random Pauli basis; a Pauli string ``P`` of locality ``L`` is then
estimated from the snapshots in which the random bases match ``P`` on its
support, with the inverse-channel weight ``3**L``.  Estimates use the
median-of-means estimator with ``K = 2 log(2M/delta)`` groups.

The key scaling fact the paper's Table II builds on -- sample complexity
``O(log(M) 4^L / eps^2)``, *independent of n* -- is exercised directly in
benchmark E6/E8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.observables import PauliString
from repro.utils.rng import as_rng
from repro.utils.validation import check_power_of_two

__all__ = [
    "ShadowData",
    "collect_shadows",
    "estimate_pauli",
    "estimate_many",
    "median_of_means",
    "shadow_budget",
]

_BASIS_LETTERS = np.array(["X", "Y", "Z"])


@dataclass
class ShadowData:
    """A batch of shadow snapshots of one state.

    ``bases``  -- (snapshots, n) int array, 0/1/2 = X/Y/Z measurement basis.
    ``outcomes`` -- (snapshots, n) int array of measured bits (0/1).
    """

    bases: np.ndarray
    outcomes: np.ndarray

    @property
    def num_snapshots(self) -> int:
        return self.bases.shape[0]

    @property
    def num_qubits(self) -> int:
        return self.bases.shape[1]


def collect_shadows(
    state: np.ndarray,
    num_snapshots: int,
    seed: int | np.random.Generator | None = None,
) -> ShadowData:
    """Sample ``num_snapshots`` random-Pauli-basis measurement records.

    For each snapshot a basis ``b in {X,Y,Z}^n`` is drawn uniformly, the
    state is rotated so a Z measurement reads that basis, and one bitstring
    is sampled from the Born distribution.
    """
    from repro.quantum.gates import H, SDG
    from repro.quantum.statevector import apply_matrix_batch

    state = np.asarray(state, dtype=np.complex128).ravel()
    n = check_power_of_two(state.size, "state dimension")
    rng = as_rng(seed)
    if num_snapshots <= 0:
        raise ValueError("num_snapshots must be positive")

    bases = rng.integers(0, 3, size=(num_snapshots, n))
    outcomes = np.empty((num_snapshots, n), dtype=np.int64)

    # Group snapshots by basis string: each distinct basis needs one rotation
    # of the state, then all its snapshots sample from one distribution.
    # (For small n, 3^n may exceed num_snapshots; grouping still wins on the
    # common case of repeated bases and keeps the inner loop vectorised.)
    keys = np.array([int("".join(map(str, row)), 3) for row in bases])
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    groups = np.split(order, boundaries)

    dim = state.size
    for group in groups:
        basis = bases[group[0]]
        rotated = state[None, :]
        for qubit, letter in enumerate(basis):
            if letter == 0:  # X
                rotated = apply_matrix_batch(rotated, H, (qubit,))
            elif letter == 1:  # Y
                rotated = apply_matrix_batch(rotated, H @ SDG, (qubit,))
        probs = np.abs(rotated[0]) ** 2
        probs = probs / probs.sum()
        samples = rng.choice(dim, size=group.size, p=probs)
        for qubit in range(n):
            outcomes[group, qubit] = (samples >> (n - 1 - qubit)) & 1

    return ShadowData(bases=bases, outcomes=outcomes)


def _snapshot_values(shadow: ShadowData, pauli: PauliString) -> np.ndarray:
    """Per-snapshot single-shot estimates of ``<P>``.

    A snapshot contributes ``3^|P| * prod_{i in supp(P)} (+-1)`` when its
    bases match P on the support, else 0 -- the standard Pauli-shadow
    estimator (unbiased; property-tested).
    """
    letters = {"X": 0, "Y": 1, "Z": 2}
    support = pauli.support
    if not support:
        return np.ones(shadow.num_snapshots)
    match = np.ones(shadow.num_snapshots, dtype=bool)
    signs = np.ones(shadow.num_snapshots)
    for q in support:
        want = letters[pauli.string[q]]
        match &= shadow.bases[:, q] == want
        signs = signs * (1.0 - 2.0 * shadow.outcomes[:, q])
    values = np.where(match, signs * (3.0 ** len(support)), 0.0)
    return values


def median_of_means(values: np.ndarray, num_groups: int) -> float:
    """Median of ``num_groups`` group means (paper Appendix B machinery)."""
    values = np.asarray(values, dtype=float)
    num_groups = max(1, min(int(num_groups), values.size))
    groups = np.array_split(values, num_groups)
    return float(np.median([g.mean() for g in groups]))


def estimate_pauli(
    shadow: ShadowData, pauli: PauliString, num_groups: int | None = None
) -> float:
    """Estimate ``<P>`` from shadows; defaults to a single-mean estimate."""
    if pauli.num_qubits != shadow.num_qubits:
        raise ValueError("Pauli width mismatch with shadow data")
    values = _snapshot_values(shadow, pauli)
    if num_groups is None or num_groups <= 1:
        return float(values.mean())
    return median_of_means(values, num_groups)


def estimate_many(
    shadow: ShadowData,
    paulis: list[PauliString],
    delta: float = 0.05,
) -> np.ndarray:
    """Estimate many Paulis from one shadow batch (the protocol's selling
    point): ``K = ceil(2 log(2 M / delta))`` median-of-means groups."""
    m = len(paulis)
    k = int(np.ceil(2.0 * np.log(2.0 * max(m, 1) / delta)))
    return np.array([estimate_pauli(shadow, p, num_groups=k) for p in paulis])


def shadow_budget(
    max_shadow_norm_sq: float, epsilon: float, delta: float, num_observables: int
) -> int:
    """Total snapshots for the median-of-means guarantee.

    ``N = 34 ||O||_S^2 / eps^2`` per group, ``K = 2 ln(2M/delta)`` groups
    (constants from Huang-Kueng-Preskill); matches the asymptotic
    ``O(log(M) max||O||_S^2 / eps^2)`` in paper Proposition 2.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    per_group = int(np.ceil(34.0 * max_shadow_norm_sq / epsilon**2))
    groups = int(np.ceil(2.0 * np.log(2.0 * max(num_observables, 1) / delta)))
    return per_group * groups
