"""Property tests for the compiled-circuit engine.

200 seeded random circuits (mixed 1q/2q gates, widths 2-7, fusion width
k in {1, 2, 3}) pin the fused engine to the naive gate-walker to 1e-10,
plus unitarity of every fused block, exact partition preservation, and the
compile-cache contract (structure + angles keyed, LRU-bounded, picklable
programs).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.compile import (
    DEFAULT_FUSION_WIDTH,
    CompileCache,
    CompiledCircuit,
    clear_compile_cache,
    compile_cache_info,
    compile_circuit,
    resolve_fusion_width,
)
from repro.quantum.statevector import StatevectorSimulator, run_circuit, zero_state
from repro.quantum.transpile import fuse_blocks

ONE_QUBIT = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "phase"]
TWO_QUBIT = ["cnot", "cx", "cz", "swap", "crx", "cry", "crz"]
PARAMETRIC = {"rx", "ry", "rz", "phase", "crx", "cry", "crz"}


def random_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int) -> Circuit:
    """A bound random circuit mixing every supported 1q/2q gate."""
    c = Circuit(num_qubits, name="random")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            gate = TWO_QUBIT[rng.integers(len(TWO_QUBIT))]
            qubits = tuple(rng.choice(num_qubits, size=2, replace=False).tolist())
        else:
            gate = ONE_QUBIT[rng.integers(len(ONE_QUBIT))]
            qubits = int(rng.integers(num_qubits))
        param = float(rng.uniform(-2 * np.pi, 2 * np.pi)) if gate in PARAMETRIC else None
        c.append(gate, qubits, param)
    return c


def random_states(rng: np.random.Generator, num_qubits: int, batch: int) -> np.ndarray:
    vecs = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
        size=(batch, 2**num_qubits)
    )
    return vecs / np.linalg.norm(vecs, axis=1, keepdims=True)


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("seed", range(200))
def test_fused_matches_naive(seed):
    """The core property: compiled execution == naive execution to 1e-10."""
    rng = np.random.default_rng(10_000 + seed)
    n = int(rng.integers(2, 8))
    g = int(rng.integers(5, 41))
    k = int(rng.integers(1, 4))
    circuit = random_circuit(rng, n, g)
    program = compile_circuit(circuit, max_width=k, cache=None)

    states = random_states(rng, n, 3)
    naive = run_circuit(circuit, state=states)
    fused = program.apply(states)
    assert np.abs(naive - fused).max() < 1e-10

    # Batched and unbatched zero-state entry points agree too.
    assert np.abs(run_circuit(circuit) - program.run()).max() < 1e-10

    # Every fused block is unitary on its (bounded) support.
    for block in program.blocks:
        assert block.width <= max(k, 2)
        eye = np.eye(2**block.width)
        assert np.abs(block.matrix @ block.matrix.conj().T - eye).max() < 1e-10
    assert sum(block.source_gates for block in program.blocks) == circuit.num_gates


@pytest.mark.parametrize("seed", range(20))
def test_fuse_blocks_partition_preserves_program(seed):
    """Concatenating the block op lists restores the gate list exactly."""
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng, int(rng.integers(2, 8)), int(rng.integers(1, 30)))
    for k in (1, 2, 3):
        blocks = fuse_blocks(circuit, max_width=k)
        flat = [op for _, ops in blocks for op in ops]
        assert flat == circuit.operations
        for support, ops in blocks:
            assert support == tuple(sorted({q for op in ops for q in op.qubits}))
            assert len(support) <= max(k, 2)


def test_fuse_blocks_validation():
    c = Circuit(2).append("h", 0)
    with pytest.raises(ValueError):
        fuse_blocks(c, max_width=0)
    unbound = Circuit(2).append("rx", 0, "theta")
    with pytest.raises(ValueError):
        fuse_blocks(unbound, max_width=2)


def test_compiled_unitary_matches_naive():
    rng = np.random.default_rng(3)
    circuit = random_circuit(rng, 3, 15)
    program = compile_circuit(circuit, cache=None)
    eye = np.eye(8, dtype=np.complex128)
    naive_u = run_circuit(circuit, state=eye).T
    assert np.abs(program.unitary() - naive_u).max() < 1e-10


def test_run_circuit_compile_knob():
    rng = np.random.default_rng(4)
    circuit = random_circuit(rng, 4, 20)
    naive = run_circuit(circuit)
    for knob in ("auto", 1, 2, 3):
        assert np.abs(run_circuit(circuit, compile=knob) - naive).max() < 1e-10
    with pytest.raises(ValueError):
        run_circuit(circuit, compile="bogus")


def test_simulator_compile_knob():
    rng = np.random.default_rng(5)
    circuit = random_circuit(rng, 3, 12)
    naive = StatevectorSimulator(3).run(circuit)
    compiled_sim = StatevectorSimulator(3, compile="auto")
    assert np.abs(compiled_sim.run(circuit) - naive).max() < 1e-10
    # Per-call override wins over the instance default.
    assert np.array_equal(compiled_sim.run(circuit, compile="off"), naive)
    with pytest.raises(ValueError):
        StatevectorSimulator(3, compile="bogus")


def test_resolve_fusion_width():
    assert resolve_fusion_width("off") is None
    assert resolve_fusion_width(None) is None
    assert resolve_fusion_width("auto") == DEFAULT_FUSION_WIDTH
    assert resolve_fusion_width(2) == 2
    for bad in ("wide", 0, -3, 1.5, True):
        with pytest.raises(ValueError):
            resolve_fusion_width(bad)


def test_unbound_circuit_requires_params():
    c = Circuit(2).append("rx", 0, "theta")
    with pytest.raises(ValueError):
        compile_circuit(c, cache=None)
    program = compile_circuit(c, params=[0.7], cache=None)
    assert np.abs(program.run() - run_circuit(c, params=[0.7])).max() < 1e-12


# --------------------------------------------------------------------- cache
@pytest.fixture
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def test_cache_hit_on_identical_circuit(fresh_cache):
    circuit = Circuit(2).append("h", 0).append("rx", 1, 0.3)
    first = compile_circuit(circuit)
    second = compile_circuit(circuit.copy())
    assert second is first  # same fingerprint -> same cached program
    info = compile_cache_info()
    assert info.hits == 1 and info.misses == 1 and info.currsize == 1


def test_cache_distinct_entries_for_distinct_angles(fresh_cache):
    template = Circuit(2, name="ansatz").append("ry", 0, "a").append("cnot", (0, 1))
    a = compile_circuit(template.bind([0.1]))
    b = compile_circuit(template.bind([0.2]))
    assert a is not b
    info = compile_cache_info()
    assert info.misses == 2 and info.currsize == 2
    # Re-binding the same angle hits.
    assert compile_circuit(template.bind([0.1])) is a
    assert compile_cache_info().hits == 1


def test_cache_distinct_entries_per_fusion_width(fresh_cache):
    circuit = Circuit(3).append("h", 0).append("cnot", (0, 1)).append("cnot", (1, 2))
    one = compile_circuit(circuit, max_width=1)
    three = compile_circuit(circuit, max_width=3)
    assert one is not three
    assert compile_cache_info().currsize == 2


def test_cache_lru_eviction():
    cache = CompileCache(maxsize=2)
    template = Circuit(1).append("rx", 0, "a")
    p1 = compile_circuit(template.bind([1.0]), cache=cache)
    compile_circuit(template.bind([2.0]), cache=cache)
    # Touch p1 so the second entry is least-recently-used, then overflow.
    assert compile_circuit(template.bind([1.0]), cache=cache) is p1
    compile_circuit(template.bind([3.0]), cache=cache)
    assert len(cache) == 2
    assert compile_circuit(template.bind([1.0]), cache=cache) is p1  # survived
    info = cache.info()
    assert info.currsize == 2 and info.maxsize == 2
    cache.clear()
    assert len(cache) == 0 and cache.info().hits == 0


def test_cache_bypass():
    circuit = Circuit(1).append("h", 0)
    a = compile_circuit(circuit, cache=None)
    b = compile_circuit(circuit, cache=None)
    assert a is not b


def test_compiled_program_pickles():
    """Process-pool workers receive compiled programs by pickle."""
    rng = np.random.default_rng(6)
    circuit = random_circuit(rng, 4, 18)
    program = compile_circuit(circuit, cache=None)
    clone = pickle.loads(pickle.dumps(program))
    assert isinstance(clone, CompiledCircuit)
    states = random_states(rng, 4, 2)
    assert np.array_equal(clone.apply(states), program.apply(states))


def test_identity_program_on_empty_circuit():
    program = compile_circuit(Circuit(2), cache=None)
    assert program.num_blocks == 0
    state = zero_state(2)
    assert np.array_equal(program.apply(state), state)


# ------------------------------------------------------- shard-group planning
def _plan(circuit, num_global, max_width=2):
    from repro.quantum.compile import plan_shard_groups

    program = compile_circuit(circuit, max_width=max_width, cache=None)
    return program, plan_shard_groups(program, num_global)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("num_global", [1, 2])
def test_shard_groups_preserve_block_order(seed, num_global):
    """Concatenating group blocks reproduces the compiled block sequence."""
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng, 5, 25)
    program, plan = _plan(circuit, num_global)
    flattened = [b for group in plan for b in group.blocks]
    assert flattened == list(program.blocks)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("num_global", [1, 2])
def test_shard_groups_globals_avoid_group_support(seed, num_global):
    """Each group's global qubits are disjoint from every block it runs, and
    exactly num_global of them are chosen (dense-fallback groups excepted)."""
    rng = np.random.default_rng(100 + seed)
    circuit = random_circuit(rng, 5, 25)
    program, plan = _plan(circuit, num_global)
    max_support = program.num_qubits - num_global
    for group in plan:
        if group.global_qubits is None:
            # Fallback groups hold exactly one oversized block.
            assert len(group.blocks) == 1
            assert len(set(group.blocks[0].qubits)) > max_support
            continue
        assert len(group.global_qubits) == num_global
        touched = {q for b in group.blocks for q in b.qubits}
        assert touched.isdisjoint(group.global_qubits)
        assert len(touched) <= max_support


def test_shard_groups_zero_globals_single_group():
    """num_global=0 (single rank): one group, no remaps needed."""
    rng = np.random.default_rng(2)
    circuit = random_circuit(rng, 4, 20)
    program, plan = _plan(circuit, 0)
    assert len(plan) == 1
    assert plan[0].global_qubits == ()
    assert plan[0].blocks == program.blocks


def test_shard_groups_dense_fallback_for_wide_blocks():
    """Blocks wider than the local register become lone fallback groups."""
    circuit = Circuit(3)
    for q in range(3):
        circuit.append("h", q)
    circuit.append("cnot", (0, 1)).append("cnot", (1, 2)).append("cnot", (0, 2))
    # Fuse everything into one 3-qubit block, then plan with 1 local qubit.
    program = compile_circuit(circuit, max_width=3, cache=None)
    from repro.quantum.compile import plan_shard_groups

    plan = plan_shard_groups(program, 2)
    assert any(g.global_qubits is None for g in plan)


def test_shard_groups_validation():
    from repro.quantum.compile import plan_shard_groups

    program = compile_circuit(Circuit(3).append("h", 0), cache=None)
    with pytest.raises(ValueError):
        plan_shard_groups(program, -1)
    with pytest.raises(ValueError):
        plan_shard_groups(program, 4)  # more globals than qubits
    with pytest.raises(ValueError):
        plan_shard_groups(program, 1.5)
