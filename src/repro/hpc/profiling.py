"""Timers, counters and scaling reports.

"No optimization without measuring" -- the profiling guide's rule is baked
into the pipeline: every stage (encode, dispatch, estimate, fit) runs under a
:class:`StageTimer`, and scaling studies are condensed by
:func:`scaling_report` into the table the HPC benchmarks print.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator

__all__ = ["StageTimer", "Counter", "scaling_report", "dispatch_summary"]


@dataclass
class StageTimer:
    """Accumulating named timers (wall clock)."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a with-block under ``name``; nested/repeated use accumulates."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def report(self) -> str:
        """Human-readable table sorted by total time, descending."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k in self.totals), default=5)
        lines = [f"{'stage':<{width}}  {'total_s':>10}  {'calls':>6}"]
        for name, total in rows:
            lines.append(f"{name:<{width}}  {total:>10.4f}  {self.counts[name]:>6}")
        return "\n".join(lines)


@dataclass
class Counter:
    """Named event counters (circuits executed, shots fired, bytes moved)."""

    values: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] = self.values.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        return self.values.get(name, 0)


def dispatch_summary(report) -> str:
    """One-line reconciliation of a :class:`repro.hpc.runtime.DispatchReport`.

    Duck-typed (anything exposing ``policy``/``backend``/``num_workers``/
    ``num_tasks``/``reconcile()``) so this formatting layer stays free of
    runtime imports.
    """
    r = report.reconcile()
    return (
        f"dispatch ({report.policy}, {report.backend}x{report.num_workers}): "
        f"{report.num_tasks} tasks, wall {r['wall_s']:.4f}s, "
        f"replayed makespan {r['replayed_makespan_s']:.4f}s "
        f"(wall/replay {r['wall_over_replay']:.2f}), "
        f"cost model correlation {r['cost_correlation']:+.2f}"
    )


def scaling_report(points) -> str:
    """Format a list of :class:`repro.hpc.cluster.ScalingPoint` as a table."""
    lines = [f"{'nodes':>6}  {'time_s':>12}  {'speedup':>9}  {'efficiency':>10}"]
    for p in points:
        lines.append(
            f"{p.num_nodes:>6}  {p.time:>12.6f}  {p.speedup:>9.2f}  {p.efficiency:>10.3f}"
        )
    return "\n".join(lines)
