"""QuantumDevice thread-safety: concurrent sweeps, close races, idempotence.

The serving layer drives one shared device from many coroutines (and its
flush workers from pool threads), so the session facade must deliver
bit-equal results under concurrency and survive close() racing sweeps.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import ExecutionConfig, QuantumDevice
from repro.core.strategies import strategy_from_name

QUBITS = 3
ROWS = 2


def _angles(seed: int, k: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, np.pi, size=(k, ROWS, QUBITS))


@pytest.mark.parametrize(
    "config",
    [
        ExecutionConfig(seed=5),
        ExecutionConfig(estimator="shots", shots=64, seed=5),
        ExecutionConfig(vectorize="auto", compile="auto", seed=5),
    ],
    ids=["exact", "shots", "vectorized"],
)
def test_concurrent_runs_bit_equal_sequential(config):
    strategy = strategy_from_name("observable", num_qubits=QUBITS)
    inputs = [_angles(seed) for seed in range(8)]
    with QuantumDevice(config) as device:
        sequential = [device.run(strategy, x)[0] for x in inputs]
        with ThreadPoolExecutor(max_workers=4) as pool:
            concurrent = list(
                pool.map(lambda x: device.run(strategy, x)[0], inputs)
            )
    for seq, conc in zip(sequential, concurrent):
        assert np.array_equal(seq, conc)


def test_close_is_idempotent():
    device = QuantumDevice(ExecutionConfig())
    device.close()
    device.close()
    assert device.closed
    with pytest.raises(RuntimeError, match="closed"):
        device.run(
            strategy_from_name("observable", num_qubits=QUBITS), _angles(0)
        )


def test_concurrent_close_races_are_safe():
    for _ in range(10):
        device = QuantumDevice(ExecutionConfig(), pool="thread", max_workers=2)
        device.warm()
        barrier = threading.Barrier(4)

        def slam(dev=device, gate=barrier):
            gate.wait()
            dev.close()

        threads = [threading.Thread(target=slam) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert device.closed


def test_close_racing_sweeps_fails_cleanly():
    strategy = strategy_from_name("observable", num_qubits=QUBITS)
    device = QuantumDevice(ExecutionConfig(seed=1))
    reference = device.run(strategy, _angles(1))[0]
    results: list = []

    def sweep(i: int):
        try:
            results.append(device.run(strategy, _angles(1))[0])
        except RuntimeError as exc:
            # Late sweeps must fail with the ordinary closed-session error.
            assert "closed" in str(exc)

    threads = [threading.Thread(target=sweep, args=(i,)) for i in range(6)]
    for i, t in enumerate(threads):
        t.start()
        if i == 2:
            device.close()
    for t in threads:
        t.join()
    for got in results:
        assert np.array_equal(got, reference)
