"""Circuit optimisation passes for fixed post-variational circuits.

Paper Sec. VIII argues that post-variational circuits, being *fixed*, can be
transpiled aggressively: shift configurations leave most rotation angles at
zero (the Ansatz initialises to identity), so identity rotations vanish and
CNOT pairs cancel.  These passes implement exactly that argument and are
benchmarked in E11 (``benchmarks/test_transpile_gains.py``).

Passes operate on *bound* circuits and preserve the unitary exactly (verified
by property tests against dense matrices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.circuit import Circuit, Operation

__all__ = [
    "remove_identity_rotations",
    "cancel_adjacent_pairs",
    "merge_rotations",
    "fuse_blocks",
    "optimize",
    "TranspileReport",
]

_ROTS = {"rx", "ry", "rz", "phase"}
_SELF_INVERSE_2Q = {"cnot", "cx", "cz", "swap"}
_SELF_INVERSE_1Q = {"x", "y", "z", "h"}


def _angle_is_zero(angle: float, atol: float) -> bool:
    """True when the rotation is the identity: angle == 0 mod 4pi for
    rx/ry/rz (they are 4pi-periodic as matrices only up to global phase;
    2pi gives -I, which *is* a global phase, so we accept 2pi multiples)."""
    return bool(np.isclose(np.mod(angle, 2 * np.pi), 0.0, atol=atol) or
                np.isclose(np.mod(angle, 2 * np.pi), 2 * np.pi, atol=atol))


def remove_identity_rotations(circuit: Circuit, atol: float = 1e-12) -> Circuit:
    """Drop rotation gates whose angle is a multiple of 2*pi.

    Note rx/ry/rz(2pi) = -I: a global phase, irrelevant for expectation
    values, so these are removed too (the paper's zero-initialised Ansatz
    only ever produces exact zeros anyway).
    """
    if not circuit.is_bound:
        raise ValueError("transpilation requires a bound circuit")
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for op in circuit:
        if op.gate in _ROTS and _angle_is_zero(float(op.param), atol):
            continue
        out.operations.append(op)
    return out


def cancel_adjacent_pairs(circuit: Circuit) -> Circuit:
    """Cancel adjacent self-inverse gate pairs on identical qubits.

    "Adjacent" means no intervening gate touches any of the pair's qubits.
    Applied to fixed-point: one sweep may expose new pairs, so we iterate
    until no change.
    """
    if not circuit.is_bound:
        raise ValueError("transpilation requires a bound circuit")
    ops = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        result: list[Operation] = []
        skip = set()
        for i, op in enumerate(ops):
            if i in skip:
                continue
            if op.gate in _SELF_INVERSE_2Q | _SELF_INVERSE_1Q:
                j = _next_touching(ops, i, skip)
                if (
                    j is not None
                    and ops[j].gate == op.gate
                    and ops[j].qubits == op.qubits
                ):
                    skip.add(i)
                    skip.add(j)
                    changed = True
                    continue
            result.append(op)
        ops = result
    out = Circuit(circuit.num_qubits, name=circuit.name)
    out.operations = ops
    return out


def _next_touching(ops: list[Operation], i: int, skip: set[int]) -> int | None:
    """Index of the next op sharing a qubit with ops[i]; None if blocked.

    Returns the index only if that op touches *exactly* the same qubit set
    check is done by the caller; here we stop at the first op sharing any
    qubit (a different gate there blocks cancellation).
    """
    target = set(ops[i].qubits)
    for j in range(i + 1, len(ops)):
        if j in skip:
            continue
        if target & set(ops[j].qubits):
            return j
    return None


def merge_rotations(circuit: Circuit, atol: float = 1e-12) -> Circuit:
    """Fuse runs of same-axis rotations on the same qubit into one gate.

    ``rx(a) rx(b) = rx(a+b)``; a fused angle of 2*pi*k is dropped entirely.
    """
    if not circuit.is_bound:
        raise ValueError("transpilation requires a bound circuit")
    ops = list(circuit.operations)
    result: list[Operation] = []
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.gate in _ROTS:
            total = float(op.param)
            j = i + 1
            consumed = i
            while j < len(ops):
                nxt = ops[j]
                if nxt.gate == op.gate and nxt.qubits == op.qubits:
                    total += float(nxt.param)
                    consumed = j
                    j += 1
                elif set(nxt.qubits) & set(op.qubits):
                    break  # blocked by a different gate on this qubit
                else:
                    j += 1
            if consumed > i:
                # Emit fused gate; copy through non-touching ops in between.
                inter = [
                    ops[k]
                    for k in range(i + 1, consumed + 1)
                    if not (ops[k].gate == op.gate and ops[k].qubits == op.qubits)
                ]
                if not _angle_is_zero(total, atol):
                    result.append(Operation(op.gate, op.qubits, total))
                result.extend(inter)
                i = consumed + 1
                continue
        result.append(op)
        i += 1
    out = Circuit(circuit.num_qubits, name=circuit.name)
    out.operations = result
    return out


def fuse_blocks(
    circuit: Circuit, max_width: int = 3
) -> list[tuple[tuple[int, ...], list[Operation]]]:
    """Greedy contiguous partition into fusable blocks of bounded support.

    Walks the gate list once, growing the current block while its combined
    qubit support stays ``<= max_width`` and flushing it otherwise.  Returns
    ``(support, ops)`` pairs in program order where ``support`` is the
    sorted union of the block's qubits; concatenating the ``ops`` lists
    restores the original gate list exactly (the invariant the property
    tests pin).  A gate wider than ``max_width`` opens its own block, so
    ``max_width=1`` still admits two-qubit gates -- they just never merge
    with neighbours.

    This is the partition stage of the compiler
    (:func:`repro.quantum.compile.compile_circuit` turns each block into a
    single dense unitary).
    """
    if max_width < 1:
        raise ValueError(f"max_width={max_width} must be >= 1")
    if not circuit.is_bound:
        raise ValueError("fusion requires a bound circuit")
    blocks: list[tuple[tuple[int, ...], list[Operation]]] = []
    support: set[int] = set()
    ops: list[Operation] = []
    for op in circuit:
        merged = support | set(op.qubits)
        if ops and len(merged) > max_width:
            blocks.append((tuple(sorted(support)), ops))
            support, ops = set(op.qubits), [op]
        else:
            support = merged
            ops.append(op)
    if ops:
        blocks.append((tuple(sorted(support)), ops))
    return blocks


@dataclass(frozen=True)
class TranspileReport:
    """Before/after metrics for a transpilation run."""

    gates_before: int
    gates_after: int
    depth_before: int
    depth_after: int

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before


def optimize(circuit: Circuit, atol: float = 1e-12) -> tuple[Circuit, TranspileReport]:
    """Run all passes to fixed point; return (circuit, report)."""
    before_gates, before_depth = circuit.num_gates, circuit.depth()
    current = circuit
    while True:
        n = current.num_gates
        current = remove_identity_rotations(current, atol)
        current = merge_rotations(current, atol)
        current = cancel_adjacent_pairs(current)
        if current.num_gates == n:
            break
    report = TranspileReport(
        gates_before=before_gates,
        gates_after=current.num_gates,
        depth_before=before_depth,
        depth_after=current.depth(),
    )
    return current, report
