"""Zero-noise extrapolation and circuit-drawing tests."""

import numpy as np
import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.drawing import draw_circuit
from repro.quantum.mitigation import fold_circuit, richardson_extrapolate, zne_expectation
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import run_circuit


def sample_circuit() -> Circuit:
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1)).append("ry", 1, 0.9).append("rz", 0, 0.4)
    return c


# ------------------------------------------------------------------- folding
def test_fold_preserves_unitary():
    c = sample_circuit()
    psi = run_circuit(c)
    for scale in (1, 3, 5):
        folded = fold_circuit(c, scale)
        assert folded.num_gates == scale * c.num_gates
        out = run_circuit(folded)
        assert abs(abs(np.vdot(psi, out)) - 1.0) < 1e-10


def test_fold_validation():
    c = sample_circuit()
    with pytest.raises(ValueError):
        fold_circuit(c, 2)
    with pytest.raises(ValueError):
        fold_circuit(c, 0)
    unbound = Circuit(1)
    unbound.append("rx", 0, "t")
    with pytest.raises(ValueError):
        fold_circuit(unbound, 3)


# -------------------------------------------------------------- Richardson
def test_richardson_exact_on_polynomials():
    scales = np.array([1.0, 3.0, 5.0])
    # Quadratic in the scale: three points recover it exactly at 0.
    f = lambda s: 2.0 - 0.3 * s + 0.04 * s**2  # noqa: E731
    assert richardson_extrapolate(scales, f(scales)) == pytest.approx(2.0)


def test_richardson_linear_two_points():
    assert richardson_extrapolate(
        np.array([1.0, 3.0]), np.array([0.9, 0.7])
    ) == pytest.approx(1.0)


def test_richardson_validation():
    with pytest.raises(ValueError):
        richardson_extrapolate(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        richardson_extrapolate(np.array([1.0, 1.0]), np.array([1.0, 2.0]))


# ---------------------------------------------------------------------- ZNE
def test_zne_improves_noisy_expectation():
    c = sample_circuit()
    ideal = expectation(run_circuit(c), PauliString("ZZ"))
    noise = NoiseModel.depolarizing(0.01)
    mitigated, raw = zne_expectation(c, PauliString("ZZ"), noise, scales=(1, 3, 5))
    raw_error = abs(raw[1] - ideal)
    mitigated_error = abs(mitigated - ideal)
    assert mitigated_error < raw_error
    # Noisy values shrink monotonically with the fold scale (contraction).
    assert abs(raw[5]) <= abs(raw[3]) <= abs(raw[1])


def test_zne_noiseless_is_exact():
    c = sample_circuit()
    ideal = expectation(run_circuit(c), PauliString("XI"))
    mitigated, raw = zne_expectation(
        c, PauliString("XI"), NoiseModel.depolarizing(0.0), scales=(1, 3)
    )
    assert mitigated == pytest.approx(ideal, abs=1e-10)
    assert raw[1] == pytest.approx(raw[3], abs=1e-10)


def test_zne_on_encoded_feature():
    """Mitigation recovers an ensemble feature under hardware-like noise."""
    from repro.data.encoding import encoding_circuit

    rng = np.random.default_rng(0)
    circuit = encoding_circuit(rng.uniform(0, 2 * np.pi, (4, 4)))
    obs = PauliString("ZZII")
    ideal = expectation(run_circuit(circuit), obs)
    noise = NoiseModel.depolarizing(0.005)
    mitigated, raw = zne_expectation(circuit, obs, noise)
    assert abs(mitigated - ideal) < abs(raw[1] - ideal) + 1e-12


# ----------------------------------------------------------------- drawing
def test_draw_simple_circuit():
    text = draw_circuit(sample_circuit())
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("q0:")
    assert "H" in lines[0]
    assert "RY(0.9)" in lines[1]
    assert "*" in lines[0]  # CNOT control marker


def test_draw_symbolic_parameters():
    c = Circuit(1)
    c.append("rx", 0, "alpha")
    assert "RX(alpha)" in draw_circuit(c)


def test_draw_layering():
    """Parallel gates share a column; dependent gates do not."""
    c = Circuit(2)
    c.append("h", 0).append("h", 1).append("cnot", (0, 1))
    text = draw_circuit(c)
    l0, l1 = text.splitlines()
    assert l0.index("H") == l1.index("H")


def test_draw_wraps_long_circuits():
    c = Circuit(1)
    for i in range(60):
        c.append("rx", 0, float(i))
    text = draw_circuit(c, max_width=80)
    assert "....." in text  # panel separator present


def test_draw_fig7_and_fig8_render():
    from repro.core.ansatz import fig8_ansatz
    from repro.data.encoding import encoding_circuit

    enc = draw_circuit(encoding_circuit(np.zeros((4, 4))), max_width=200)
    assert enc.count("\n") >= 3
    ans = draw_circuit(fig8_ansatz(), max_width=200)
    assert "RY(theta_0_0)" in ans
