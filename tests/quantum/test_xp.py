"""repro.xp shim: knob validation, "auto" resolution, kernel equivalence.

The equivalence suite runs every hot kernel through the generic (device)
code path and compares against the native NumPy body.  The generic path is
always exercised via :func:`generic_numpy_namespace` (NumPy-backed,
``native=False``); torch and CuPy join the parameterization whenever they
are installed (the CI torch leg) and are *skipped*, never failed, when
absent.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.xp as xp_module
from repro.api import ExecutionConfig
from repro.core.features import generate_features
from repro.core.strategies import ObservableConstruction
from repro.data.encoding import encoding_template
from repro.quantum.backends import DensityMatrixBackend
from repro.quantum.batched import compile_parametric
from repro.quantum.circuit import Circuit
from repro.quantum.compile import CompileCache, compile_circuit
from repro.quantum.density import (
    apply_kraus,
    compile_density_template,
    run_batched_density,
    run_circuit_density,
)
from repro.quantum.noise import NoiseModel, depolarizing_channel
from repro.quantum.statevector import apply_matrix_batch, zero_state
from repro.xp import (
    ARRAY_BACKENDS,
    backend_available,
    generic_numpy_namespace,
    get_namespace,
    resolve_array_backend,
    validate_array_backend,
)


def _accelerators_absent(monkeypatch):
    monkeypatch.setattr(
        xp_module, "backend_available", lambda name: name == "numpy"
    )


# ----------------------------------------------------------------- selection
def test_auto_resolves_to_numpy_without_accelerators(monkeypatch):
    _accelerators_absent(monkeypatch)
    assert resolve_array_backend("auto") == "numpy"


def test_auto_prefers_cupy(monkeypatch):
    monkeypatch.setattr(xp_module, "backend_available", lambda name: True)
    assert resolve_array_backend("auto") == "cupy"


def test_auto_skips_cpu_only_torch(monkeypatch):
    """A CPU-only torch install is not faster than NumPy; auto only picks
    torch when it can reach a CUDA device."""
    monkeypatch.setattr(
        xp_module, "backend_available", lambda name: name in ("numpy", "torch")
    )
    monkeypatch.setattr(xp_module, "_torch_has_cuda", lambda: False)
    assert resolve_array_backend("auto") == "numpy"
    monkeypatch.setattr(xp_module, "_torch_has_cuda", lambda: True)
    assert resolve_array_backend("auto") == "torch"


@pytest.mark.parametrize("bad", ["bogus", "NUMPY", "", None, 3, ("numpy",)])
def test_unknown_names_raise(bad):
    with pytest.raises(ValueError, match="array_backend"):
        validate_array_backend(bad)


def test_explicit_backend_requires_install(monkeypatch):
    _accelerators_absent(monkeypatch)
    for name in ("cupy", "torch"):
        with pytest.raises(ValueError, match="not installed"):
            validate_array_backend(name)
    # "auto" stays symbolic at validation time: it resolves later.
    assert validate_array_backend("auto") == "auto"


def test_config_validates_at_construction(monkeypatch):
    """Unknown/not-installed backends fail at the ExecutionConfig call
    site, not deep inside a worker."""
    with pytest.raises(ValueError, match="array_backend"):
        ExecutionConfig(array_backend="tensorflow")
    _accelerators_absent(monkeypatch)
    with pytest.raises(ValueError, match="not installed"):
        ExecutionConfig(array_backend="cupy")
    assert ExecutionConfig(array_backend="auto").resolved_array_backend == "numpy"


def test_backend_tuple_spelling():
    assert ARRAY_BACKENDS == ("auto", "numpy", "cupy", "torch")
    assert backend_available("numpy")
    assert not backend_available("definitely_not_a_module_xyz")


def test_get_namespace_singletons():
    a = get_namespace("numpy")
    assert a is get_namespace("numpy")
    assert a.native and a.name == "numpy"
    g = generic_numpy_namespace()
    assert not g.native and g.name == "numpy"
    assert g is not generic_numpy_namespace()  # fresh memo per instance


# ------------------------------------------------------------- transfer memo
def test_to_device_cached_memoizes_by_identity():
    ns = generic_numpy_namespace()
    a = np.eye(2, dtype=np.complex128)
    d1 = ns.to_device_cached(a)
    assert ns.to_device_cached(a) is d1


def test_to_device_cached_rejects_stale_id_hits():
    """A recycled id must never serve another array's device copy."""
    ns = generic_numpy_namespace()
    a = np.eye(2, dtype=np.complex128)
    b = np.zeros((2, 2), dtype=np.complex128)
    sentinel = object()
    ns._device_cache[id(b)] = (a, sentinel)  # stale entry keyed at b's id
    out = ns.to_device_cached(b)
    assert out is not sentinel
    assert np.array_equal(np.asarray(out), b)


def test_to_device_cached_bounded():
    ns = generic_numpy_namespace()
    arrays = [np.full((1,), i, dtype=np.complex128) for i in range(600)]
    for a in arrays:
        ns.to_device_cached(a)
    assert len(ns._device_cache) <= 512


def test_to_device_cached_evicts_least_recently_used():
    """The bound is an LRU, not FIFO: a re-touched entry survives eviction."""
    ns = xp_module._NumpyNamespace(native=False, device_cache_size=3)
    keep = np.full((1,), -1.0, dtype=np.complex128)
    kept_device = ns.to_device_cached(keep)
    fillers = [np.full((1,), i, dtype=np.complex128) for i in range(4)]
    for a in fillers:
        ns.to_device_cached(a)
        # Touch the pinned entry between inserts so it stays most-recent.
        assert ns.to_device_cached(keep) is kept_device
    assert len(ns._device_cache) == 3
    assert id(keep) in ns._device_cache
    # The oldest untouched fillers were the ones evicted.
    assert id(fillers[0]) not in ns._device_cache
    assert id(fillers[-1]) in ns._device_cache


def test_device_cache_size_validated():
    with pytest.raises(ValueError, match="device_cache_size"):
        xp_module._NumpyNamespace(native=False, device_cache_size=0)
    ns = xp_module._NumpyNamespace(native=False, device_cache_size=1)
    a = np.eye(2, dtype=np.complex128)
    b = np.zeros((2, 2), dtype=np.complex128)
    ns.to_device_cached(a)
    ns.to_device_cached(b)
    assert len(ns._device_cache) == 1
    assert id(b) in ns._device_cache


# ------------------------------------------------------- kernel equivalence
def _xp_params():
    params = [pytest.param("generic", id="generic-numpy")]
    for name in ("torch", "cupy"):
        params.append(
            pytest.param(
                name,
                id=name,
                marks=pytest.mark.skipif(
                    not backend_available(name), reason=f"{name} not installed"
                ),
            )
        )
    return params


@pytest.fixture(params=_xp_params())
def xp(request):
    if request.param == "generic":
        return generic_numpy_namespace()
    return get_namespace(request.param)


def _bound_circuit(n=3):
    c = Circuit(n, name="bound")
    for q in range(n):
        c.append("h", q)
        c.append("ry", q, 0.3 + 0.2 * q)
    c.append("cnot", (0, 1)).append("cnot", (1, 2)).append("rz", 0, 0.7)
    c.append("cz", (0, 2))
    return c


def test_apply_matrix_batch_matches_native(xp):
    rng = np.random.default_rng(3)
    states = rng.normal(size=(6, 8)) + 1j * rng.normal(size=(6, 8))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    q, _ = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))
    native = apply_matrix_batch(states, q, (0, 2))
    via_xp = xp.to_numpy(
        apply_matrix_batch(xp.to_device(states), xp.to_device(q), (0, 2), xp=xp)
    )
    assert np.abs(via_xp - native).max() < 1e-12


def test_compiled_circuit_apply_matches_native(xp):
    program = compile_circuit(_bound_circuit(), cache=None)
    states = zero_state(3, batch=4)
    native = program.apply(states)
    via_xp = xp.to_numpy(program.apply(xp.to_device(states), xp=xp))
    assert np.abs(via_xp - native).max() < 1e-12


def test_apply_batch_matches_native(xp):
    template = encoding_template(3, 3)
    program = compile_parametric(template, cache=None)
    rng = np.random.default_rng(5)
    angles = rng.uniform(0, 2 * np.pi, size=(7, 9))
    native = program.apply_batch(angles)
    via_xp = program.apply_batch(angles, xp=xp)
    assert np.abs(np.asarray(via_xp) - native).max() < 1e-12


def test_run_batched_density_matches_native(xp):
    template = encoding_template(2, 2)
    noise = NoiseModel.depolarizing(0.02)
    program = compile_density_template(template, noise)
    rng = np.random.default_rng(6)
    angles = rng.uniform(0, 2 * np.pi, size=(5, 4))
    native = run_batched_density(program, angles)
    via_xp = run_batched_density(program, angles, xp=xp)
    assert np.abs(via_xp - native).max() < 1e-12


def test_apply_kraus_matches_native(xp):
    rng = np.random.default_rng(7)
    psi = rng.normal(size=8) + 1j * rng.normal(size=8)
    psi /= np.linalg.norm(psi)
    rho = np.outer(psi, psi.conj())
    kraus = depolarizing_channel(0.1)
    native = apply_kraus(rho, kraus, [1])
    via_xp = xp.to_numpy(apply_kraus(xp.to_device(rho), kraus, [1], xp=xp))
    assert np.abs(via_xp - native).max() < 1e-12


def test_run_circuit_density_matches_native(xp):
    circuit = _bound_circuit()
    noise = NoiseModel.depolarizing(0.01)
    native = run_circuit_density(circuit, noise_model=noise)
    via_xp = run_circuit_density(circuit, noise_model=noise, xp=xp)
    assert np.abs(via_xp - native).max() < 1e-12


# --------------------------------------------------------- cache partition
def test_compile_cache_partitions_by_array_backend():
    """Two devices with different array backends in one process must never
    share a compiled program entry (device constants are memoized per
    namespace, and a cached program served across namespaces would leak
    one device's constants into the other's schedule)."""
    cache = CompileCache(maxsize=8)
    circuit = _bound_circuit()
    a = cache.get(circuit, 4, "numpy")
    b = cache.get(circuit, 4, "torch")
    assert a is not b
    assert cache.get(circuit, 4, "numpy") is a
    assert cache.get(circuit, 4, "torch") is b


def test_parametric_cache_partitions_by_array_backend():
    cache = CompileCache(maxsize=8)
    template = encoding_template(2, 2)
    a = compile_parametric(template, cache=cache, array_backend="numpy")
    b = compile_parametric(template, cache=cache, array_backend="torch")
    assert a is not b
    assert compile_parametric(template, cache=cache, array_backend="numpy") is a


def test_density_cache_partitions_by_backend_and_noise():
    cache = CompileCache(maxsize=8)
    template = encoding_template(2, 2)
    noise = NoiseModel.depolarizing(0.01)
    ideal = compile_density_template(template, None, cache=cache)
    noisy = compile_density_template(template, noise, cache=cache)
    other = compile_density_template(template, None, cache=cache, array_backend="torch")
    assert ideal is not noisy and ideal is not other
    assert compile_density_template(template, None, cache=cache) is ideal


# ------------------------------------------------------------- end to end
def test_sweep_results_identical_across_spellings():
    """"numpy" and "auto" (resolving to numpy here) are one device path:
    two devices in one process produce bit-identical feature matrices."""
    rng = np.random.default_rng(9)
    angles = rng.uniform(0, 2 * np.pi, size=(5, 2, 2))
    strategy = ObservableConstruction(qubits=2, locality=1)
    explicit = generate_features(
        strategy, angles,
        config=ExecutionConfig(vectorize="auto", array_backend="numpy"),
    )
    auto = generate_features(
        strategy, angles,
        config=ExecutionConfig(vectorize="auto", array_backend="auto"),
    )
    assert np.array_equal(explicit, auto)


@pytest.mark.skipif(not backend_available("torch"), reason="torch not installed")
@pytest.mark.parametrize("backend", ["statevector", "density"])
def test_torch_sweep_matches_numpy(backend):
    rng = np.random.default_rng(10)
    angles = rng.uniform(0, 2 * np.pi, size=(6, 2, 2))
    strategy = ObservableConstruction(qubits=2, locality=1)
    exec_backend = (
        DensityMatrixBackend(NoiseModel.depolarizing(0.01))
        if backend == "density"
        else None
    )
    reference = generate_features(
        strategy, angles,
        config=ExecutionConfig(
            backend=exec_backend, vectorize="auto", array_backend="numpy"
        ),
    )
    via_torch = generate_features(
        strategy, angles,
        config=ExecutionConfig(
            backend=exec_backend, vectorize="auto", array_backend="torch"
        ),
    )
    assert np.abs(via_torch - reference).max() < 1e-10
