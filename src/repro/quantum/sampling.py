"""Finite-shot estimation of Pauli expectation values.

Implements the *direct measurement* column of paper Table II: each quantum
neuron ``tr(O_j rho(x_i))`` is estimated by rotating the state into the
eigenbasis of the Pauli string and averaging +-1 eigenvalue outcomes over
``shots`` repetitions (sample mean; Hoeffding analysis in Proposition 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.quantum.observables import PauliString, PauliSum
from repro.utils.rng import as_rng
from repro.utils.validation import check_power_of_two

__all__ = [
    "measure_pauli",
    "measure_pauli_batch",
    "measure_pauli_sum",
    "estimate_from_probabilities",
    "hoeffding_shots",
]


def _rotated_probabilities(states: np.ndarray, pauli: PauliString) -> np.ndarray:
    """Outcome probabilities after rotating into the eigenbasis of ``pauli``.

    X sites get H, Y sites get H S^dag (so Z-basis measurement reads the
    Pauli eigenvalue); I/Z sites need no rotation.
    """
    from repro.quantum.gates import H, SDG
    from repro.quantum.statevector import apply_matrix_batch

    rotated = states
    for qubit, letter in enumerate(pauli.string):
        if letter == "X":
            rotated = apply_matrix_batch(rotated, H, (qubit,))
        elif letter == "Y":
            rotated = apply_matrix_batch(rotated, H @ SDG, (qubit,))
    return np.abs(rotated) ** 2


def _eigenvalue_signs(num_qubits: int, support: Sequence[int]) -> np.ndarray:
    """Vector of +-1: parity of measured bits on ``support`` per basis index."""
    indices = np.arange(2**num_qubits)
    parity = np.zeros_like(indices)
    for q in support:
        parity ^= (indices >> (num_qubits - 1 - q)) & 1
    return 1.0 - 2.0 * parity


def measure_pauli(
    state: np.ndarray,
    pauli: PauliString,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Shot-based estimate of ``<psi|P|psi>`` (single state)."""
    est = measure_pauli_batch(np.asarray(state)[None, :], pauli, shots, seed)
    return float(est[0])


def measure_pauli_batch(
    states: np.ndarray,
    pauli: PauliString,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Shot-based estimates for a batch of states; returns shape (batch,).

    ``shots == 0`` returns the exact expectation (useful for estimator
    interchangeability in the pipeline).
    """
    states = np.asarray(states, dtype=np.complex128)
    if states.ndim != 2:
        raise ValueError("measure_pauli_batch expects a (batch, dim) array")
    n = check_power_of_two(states.shape[1], "state dimension")
    if pauli.num_qubits != n:
        raise ValueError("Pauli width mismatch")
    if shots < 0:
        raise ValueError(f"shots={shots} must be >= 0")

    if pauli.is_identity:
        return np.ones(states.shape[0])

    from repro.quantum.observables import expectation

    if shots == 0:
        return np.asarray(expectation(states, pauli))

    probs = _rotated_probabilities(states, pauli)
    probs = probs / probs.sum(axis=1, keepdims=True)
    return estimate_from_probabilities(probs, pauli, shots, seed)


def estimate_from_probabilities(
    probs: np.ndarray,
    pauli: PauliString,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Finite-shot Pauli estimates from (batch, dim) outcome probabilities.

    The shared tail of every finite-shot estimator (statevector and
    density backends compute ``probs`` differently but sample identically).
    One batched multinomial over the whole chunk: NumPy draws the same
    conditional binomials in the same order as sequential per-row calls,
    so seeded results are bit-identical to a per-row Python loop -- the
    seed-determinism contract the regression test pins.
    """
    rng = as_rng(seed)
    signs = _eigenvalue_signs(pauli.num_qubits, pauli.support)
    counts = rng.multinomial(shots, probs)
    return (counts @ signs) / shots


def measure_pauli_sum(
    state: np.ndarray,
    observable: PauliSum,
    shots_per_term: int,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Estimate ``<psi|sum_j c_j P_j|psi>`` term by term.

    Each term gets its own ``shots_per_term`` budget (the naive allocation;
    :mod:`repro.hpc.shotalloc` provides smarter splits).
    """
    rng = as_rng(seed)
    total = 0.0
    for coeff, pauli in observable.items():
        total += float(np.real(coeff)) * measure_pauli(state, pauli, shots_per_term, rng)
    return total


def hoeffding_shots(epsilon: float, delta: float) -> int:
    """Shots so one +-1-bounded mean is within ``epsilon`` w.p. >= 1-delta.

    Hoeffding for variables in [-1, 1]: ``t >= (2/eps^2) ln(2/delta)``
    (paper Appendix B uses exactly this bound before the union bound).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return int(np.ceil(2.0 / epsilon**2 * np.log(2.0 / delta)))
