"""Command-line entry point: quick experiment runs without writing code.

Usage::

    python -m repro table3   [--train N] [--test N]
    python -m repro table4   [--train N] [--test N]
    python -m repro scaling  [--nodes 1 2 4 8 ...]
    python -m repro budgets  [--epsilon E] [--delta D]
    python -m repro counts

Each subcommand is a reduced-size version of the corresponding benchmark
(see benchmarks/ for the full experiment definitions and assertions).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.core import (
        HybridStrategy,
        ObservableConstruction,
        PostVariationalClassifier,
        VariationalClassifier,
    )
    from repro.data import binary_coat_vs_shirt
    from repro.ml import LogisticRegression, accuracy

    split = binary_coat_vs_shirt(train_per_class=args.train, test_per_class=args.test)
    flat = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)
    logistic = LogisticRegression().fit(flat, split.y_train)
    print(
        f"logistic        train {accuracy(split.y_train, logistic.predict(flat)):.3f} "
        f"test {accuracy(split.y_test, logistic.predict(flat_test)):.3f}"
    )
    var = VariationalClassifier(epochs=args.epochs).fit(split.x_train, split.y_train)
    print(
        f"variational     train {var.score(split.x_train, split.y_train):.3f} "
        f"test {var.score(split.x_test, split.y_test):.3f}"
    )
    for name, strat in (
        ("observable L=2", ObservableConstruction(qubits=4, locality=2)),
        ("hybrid 1+1", HybridStrategy(order=1, locality=1)),
    ):
        clf = PostVariationalClassifier(strategy=strat).fit(split.x_train, split.y_train)
        print(
            f"{name:<15} train {clf.score(split.x_train, split.y_train):.3f} "
            f"test {clf.score(split.x_test, split.y_test):.3f}  (m={strat.num_features})"
        )
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.core import HybridStrategy, PostVariationalClassifier
    from repro.data import multiclass_fashion
    from repro.ml import SoftmaxRegression, accuracy

    split = multiclass_fashion(train_total=args.train, test_total=args.test)
    flat = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)
    logistic = SoftmaxRegression(num_classes=10).fit(flat, split.y_train)
    print(
        f"logistic   train {accuracy(split.y_train, logistic.predict(flat)):.3f} "
        f"test {accuracy(split.y_test, logistic.predict(flat_test)):.3f}"
    )
    pv = PostVariationalClassifier(
        strategy=HybridStrategy(order=1, locality=2), num_classes=10
    ).fit(split.x_train, split.y_train)
    print(
        f"PV 1o+2l   train {pv.score(split.x_train, split.y_train):.3f} "
        f"test {pv.score(split.x_test, split.y_test):.3f}"
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.hpc import CircuitTask, NodeSpec, scaling_report, strong_scaling

    tasks = [
        CircuitTask(num_circuits=25, shots=1024, result_bytes=25 * 13 * 8)
        for _ in range(args.tasks)
    ]
    points = strong_scaling(tasks, NodeSpec(shot_rate=1e5), args.nodes)
    print(scaling_report(points))
    return 0


def _cmd_budgets(args: argparse.Namespace) -> int:
    from repro.core import table2_grid

    for label, asym in (("asymptotic", True), ("explicit constants", False)):
        print(f"-- {label} --")
        rows = table2_grid(
            k=8, n=4, d=400, order=1, locality=2,
            epsilon=args.epsilon, delta=args.delta, asymptotic=asym,
        )
        for r in rows:
            print(
                f"{r.strategy:<26} p={r.p:<4} q={r.q:<4} direct={r.direct:.3e} "
                f"shadows={r.shadows:.3e}  -> {r.winner}"
            )
    return 0


def _cmd_counts(_: argparse.Namespace) -> int:
    from repro.core import count_shift_configurations
    from repro.quantum import count_local_paulis

    print("Eq.16 circuits (k=8): " + ", ".join(
        f"R={r}: {count_shift_configurations(8, r)}" for r in range(4)
    ))
    print("Eq.18 observables (n=4): " + ", ".join(
        f"L={l}: {count_local_paulis(4, l)}" for l in range(5)
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    t3 = sub.add_parser("table3", help="reduced Table III run")
    t3.add_argument("--train", type=int, default=60)
    t3.add_argument("--test", type=int, default=20)
    t3.add_argument("--epochs", type=int, default=15)
    t3.set_defaults(fn=_cmd_table3)

    t4 = sub.add_parser("table4", help="reduced Table IV run")
    t4.add_argument("--train", type=int, default=100)
    t4.add_argument("--test", type=int, default=50)
    t4.set_defaults(fn=_cmd_table4)

    sc = sub.add_parser("scaling", help="simulated-cluster strong scaling")
    sc.add_argument("--tasks", type=int, default=128)
    sc.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32])
    sc.set_defaults(fn=_cmd_scaling)

    bu = sub.add_parser("budgets", help="Table II measurement budgets")
    bu.add_argument("--epsilon", type=float, default=0.1)
    bu.add_argument("--delta", type=float, default=0.05)
    bu.set_defaults(fn=_cmd_budgets)

    co = sub.add_parser("counts", help="Eq. 16/18 ensemble sizes")
    co.set_defaults(fn=_cmd_counts)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
