"""Distributed statevector simulator vs the single-node reference."""

import numpy as np
import pytest

from repro.hpc.comm import run_spmd
from repro.quantum.circuit import Circuit
from repro.quantum.distributed import (
    distributed_zero_state,
    expectation_z_distributed,
    gather_state,
    run_circuit_distributed,
    scatter_state,
)
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import run_circuit, zero_state

from tests.conftest import random_state


def random_supported_circuit(rng: np.random.Generator, n: int, gates: int) -> Circuit:
    c = Circuit(n)
    for _ in range(gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            c.append(str(rng.choice(["h", "x", "s", "t"])), int(rng.integers(0, n)))
        elif kind == 1:
            c.append(
                str(rng.choice(["rx", "ry", "rz"])),
                int(rng.integers(0, n)),
                float(rng.uniform(-np.pi, np.pi)),
            )
        elif kind == 2:
            a, b = rng.choice(n, size=2, replace=False)
            c.append("cnot", (int(a), int(b)))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            c.append("cz", (int(a), int(b)))
    return c


@pytest.mark.parametrize("size", [2, 4, 8])
def test_zero_state_distribution(size):
    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        return gather_state(dist)

    full = run_spmd(prog, size)[0]
    assert np.allclose(full, zero_state(4))


@pytest.mark.parametrize("size", [2, 4])
def test_scatter_gather_roundtrip(size):
    rng = np.random.default_rng(0)
    psi = random_state(4, rng)

    def prog(comm):
        dist = scatter_state(comm, psi if comm.rank == 0 else None, 4)
        assert dist.norm() == pytest.approx(1.0)
        return gather_state(dist)

    out = run_spmd(prog, size)[0]
    assert np.allclose(out, psi)


@pytest.mark.parametrize("size", [2, 4, 8])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_circuits_match_reference(size, seed):
    rng = np.random.default_rng(seed)
    n = 4
    circuit = random_supported_circuit(rng, n, 25)
    reference = run_circuit(circuit)

    def prog(comm):
        dist = distributed_zero_state(comm, n)
        run_circuit_distributed(dist, circuit)
        return gather_state(dist)

    out = run_spmd(prog, size)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_global_qubit_gates():
    """Gates on the rank-selecting qubits exercise the exchange path."""
    c = Circuit(3)
    c.append("h", 0).append("ry", 0, 0.7).append("x", 1).append("cnot", (0, 2))
    c.append("cnot", (2, 0)).append("cz", (0, 1))
    reference = run_circuit(c)

    def prog(comm):
        dist = distributed_zero_state(comm, 3)
        run_circuit_distributed(dist, c)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]  # qubits 0,1 global with 4 ranks
    assert np.allclose(out, reference, atol=1e-10)


@pytest.mark.parametrize("qubit", [0, 1, 2, 3])
def test_expectation_z_without_gather(qubit):
    rng = np.random.default_rng(5)
    circuit = random_supported_circuit(rng, 4, 20)
    psi = run_circuit(circuit)
    exact = expectation(psi, PauliString("".join("Z" if i == qubit else "I" for i in range(4))))

    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        run_circuit_distributed(dist, circuit)
        return expectation_z_distributed(dist, qubit)

    values = run_spmd(prog, 4)
    # Allreduce: every rank holds the same expectation.
    for v in values:
        assert v == pytest.approx(exact, abs=1e-10)


def test_encoded_ensemble_evolution():
    """End-to-end: Fig. 7 encoding + Fig. 8 shifted Ansatz, distributed."""
    from repro.core.ansatz import fig8_ansatz
    from repro.data.encoding import encoding_circuit

    rng = np.random.default_rng(6)
    angles = rng.uniform(0, 2 * np.pi, (1, 4, 4))
    theta = np.zeros(8)
    theta[3] = np.pi / 2
    full = encoding_circuit(angles[0]).compose(fig8_ansatz().bind(theta))
    reference = run_circuit(full)

    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        run_circuit_distributed(dist, full)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_validation():
    def bad_size(comm):
        distributed_zero_state(comm, 4)

    from repro.hpc.comm import SpmdError

    with pytest.raises(SpmdError):
        run_spmd(bad_size, 3)  # not a power of two

    def bad_width(comm):
        distributed_zero_state(comm, 1)  # 1 qubit over 4 ranks

    with pytest.raises(SpmdError):
        run_spmd(bad_width, 4)
