"""The three post-variational design principles (paper Sec. IV).

A strategy is a recipe for the ensemble of quantum neurons (Definition 1):
``p`` fixed Ansaetze x ``q`` fixed observables, producing ``m = p*q``
features ``tr(U_a^dag O_b U_a rho(x))``.

* :class:`AnsatzExpansion` (Sec. IV.A / Fig. 3): Taylor-expand the
  variational Ansatz around theta=0 via parameter shifts; p = Eq. 16, q = 1.
* :class:`ObservableConstruction` (Sec. IV.B / Fig. 4): drop the Ansatz and
  measure all L-local Paulis directly; p = 1, q = Eq. 18.
* :class:`HybridStrategy` (Sec. IV.C / Fig. 5): both -- shifted Ansaetze and
  local Paulis; m = Eq. 16 x Eq. 18.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.core.shifts import ShiftConfiguration, enumerate_shift_configurations
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, local_pauli_strings

__all__ = [
    "Strategy",
    "AnsatzExpansion",
    "ObservableConstruction",
    "HybridStrategy",
    "strategy_from_name",
]


class Strategy(ABC):
    """Recipe for a (p, q)-hybrid ensemble (paper Definition 1)."""

    @property
    @abstractmethod
    def num_qubits(self) -> int:
        """Width of the quantum register."""

    @abstractmethod
    def parameter_sets(self) -> list[np.ndarray]:
        """The p concrete parameter vectors defining the fixed Ansaetze."""

    @abstractmethod
    def observables(self) -> list[PauliString]:
        """The q measurement observables."""

    @property
    @abstractmethod
    def ansatz(self) -> Circuit | None:
        """The parameterised backbone circuit, or None if no Ansatz is used."""

    # ------------------------------------------------------------- derived
    @property
    def num_ansatze(self) -> int:
        """p of Definition 1."""
        return len(self.parameter_sets())

    @property
    def num_observables(self) -> int:
        """q of Definition 1."""
        return len(self.observables())

    @property
    def num_features(self) -> int:
        """m = p * q, the Q-matrix column count."""
        return self.num_ansatze * self.num_observables

    def max_locality(self) -> int:
        """Largest observable locality (controls the shadow norm bound)."""
        return max(o.locality for o in self.observables())

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(p={self.num_ansatze}, q={self.num_observables}, "
            f"m={self.num_features}, L={self.max_locality()})"
        )


@dataclass
class AnsatzExpansion(Strategy):
    """Sec. IV.A: fixed Ansaetze from truncated Taylor expansion.

    ``order`` is R, the derivative-order truncation; ``observable`` is the
    single measurement observable O of the underlying variational circuit
    (default Z on qubit 0, the conventional readout).  ``base_parameters``
    is the expansion point theta^(0) (default zeros = identity Ansatz).
    """

    circuit: Circuit = field(default_factory=fig8_ansatz)
    order: int = 1
    observable: PauliString | None = None
    base_parameters: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.order < 0:
            raise ValueError("order must be >= 0")
        if self.observable is None:
            self.observable = PauliString("Z" + "I" * (self.circuit.num_qubits - 1))
        if self.observable.num_qubits != self.circuit.num_qubits:
            raise ValueError("observable width mismatch")
        self._configs: list[ShiftConfiguration] = enumerate_shift_configurations(
            self.circuit.num_parameters, self.order
        )

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def ansatz(self) -> Circuit:
        return self.circuit

    @property
    def shift_configurations(self) -> list[ShiftConfiguration]:
        return list(self._configs)

    def parameter_sets(self) -> list[np.ndarray]:
        return [c.vector(self.base_parameters) for c in self._configs]

    def observables(self) -> list[PauliString]:
        return [self.observable]


@dataclass
class ObservableConstruction(Strategy):
    """Sec. IV.B: no Ansatz; measure all Paulis of locality <= ``locality``.

    The identity string is included (its expectation is exactly 1, acting as
    the bias/intercept feature -- the l=0 term of Eq. 18).
    """

    qubits: int = 4
    locality: int = 1

    def __post_init__(self) -> None:
        if self.locality < 0:
            raise ValueError("locality must be >= 0")
        if self.qubits < 1:
            raise ValueError("qubits must be >= 1")
        self._observables = local_pauli_strings(self.qubits, self.locality)

    @property
    def num_qubits(self) -> int:
        return self.qubits

    @property
    def ansatz(self) -> Circuit | None:
        return None

    def parameter_sets(self) -> list[np.ndarray]:
        # p = 1: the identity "Ansatz" (no circuit beyond the encoder).
        return [np.zeros(0)]

    def observables(self) -> list[PauliString]:
        return list(self._observables)


@dataclass
class HybridStrategy(Strategy):
    """Sec. IV.C: shifted Ansaetze x local Paulis.

    ``order``/``locality`` are R and L.  With the identity initialisation the
    order-0 circuit reproduces the pure observable-construction features and
    the derivative circuits add expressibility beyond locality L (the
    heuristic argued in Sec. IV.C).
    """

    circuit: Circuit = field(default_factory=fig8_ansatz)
    order: int = 1
    locality: int = 1
    base_parameters: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.order < 0 or self.locality < 0:
            raise ValueError("order and locality must be >= 0")
        self._configs = enumerate_shift_configurations(
            self.circuit.num_parameters, self.order
        )
        self._observables = local_pauli_strings(self.circuit.num_qubits, self.locality)

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def ansatz(self) -> Circuit:
        return self.circuit

    @property
    def shift_configurations(self) -> list[ShiftConfiguration]:
        return list(self._configs)

    def parameter_sets(self) -> list[np.ndarray]:
        return [c.vector(self.base_parameters) for c in self._configs]

    def observables(self) -> list[PauliString]:
        return list(self._observables)


def strategy_from_name(
    name: str, num_qubits: int = 4, layers: int = 2, **kwargs
) -> Strategy:
    """Factory used by benchmarks: 'ansatz', 'observable' or 'hybrid'."""
    if name == "ansatz":
        return AnsatzExpansion(circuit=fig8_ansatz(num_qubits, layers), **kwargs)
    if name == "observable":
        return ObservableConstruction(qubits=num_qubits, **kwargs)
    if name == "hybrid":
        return HybridStrategy(circuit=fig8_ansatz(num_qubits, layers), **kwargs)
    raise ValueError(f"unknown strategy {name!r}")
