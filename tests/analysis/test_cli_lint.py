"""The ``repro lint`` subcommand: text/JSON output, exit codes, and the
no-spurious-fires gate over the shipped examples."""

import json
from pathlib import Path

import pytest

from repro.cli import main

ROOT = Path(__file__).resolve().parents[2]


def test_lint_default_plan_is_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_flags_bad_plan_json(capsys):
    code = main(["lint", "--shards", "8", "--num-qubits", "2", "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {entry["code"] for entry in payload}
    assert "RPA101" in codes
    assert all(entry["severity"] in ("error", "warning", "info") for entry in payload)


def test_lint_strict_counts_any_finding(capsys):
    # shards without compile='auto' is info-severity RPA107: exit 0 normally,
    # 1 under --strict.
    args = ["lint", "--shards", "2", "--num-qubits", "4", "--compile", "off"]
    assert main(args) == 0
    assert main(args + ["--strict"]) == 1
    capsys.readouterr()


def test_lint_runs_astlint_over_paths(tmp_path, capsys):
    bad = tmp_path / "repro" / "api" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x):\n    return x\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "RPA303" in capsys.readouterr().out


def test_lint_examples_and_src_stay_clean(capsys):
    """The CI gate: no registered code fires on the shipped source trees."""
    assert main(["lint", str(ROOT / "examples"), str(ROOT / "src"), "--strict"]) == 0
    capsys.readouterr()


def test_lint_rejects_invalid_flags(capsys):
    with pytest.raises(SystemExit):
        main(["lint", "--shards", "3"])  # not a power of two
    capsys.readouterr()
