"""Feature-generation (Algorithm 1) tests."""

import numpy as np
import pytest

from repro.core.features import evaluate_features, generate_features
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.data.encoding import encode_batch
from repro.hpc.executor import ParallelExecutor
from repro.quantum.observables import expectation
from repro.quantum.statevector import run_circuit


@pytest.fixture
def angles():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(9, 4, 4))


def manual_algorithm1(strategy, angles):
    """Literal Algorithm 1: nested loops over data, shifts and observables."""
    states = encode_batch(angles)
    q_cols = []
    for params in strategy.parameter_sets():
        circuit = strategy.ansatz
        if circuit is not None and circuit.num_parameters:
            evolved = run_circuit(circuit.bind(params), state=states)
        else:
            evolved = states
        for obs in strategy.observables():
            q_cols.append(expectation(evolved, obs))
    return np.stack(q_cols, axis=1)


@pytest.mark.parametrize(
    "strategy",
    [
        ObservableConstruction(qubits=4, locality=1),
        AnsatzExpansion(order=1),
        HybridStrategy(order=1, locality=1),
    ],
    ids=["observable", "ansatz", "hybrid"],
)
def test_matches_literal_algorithm1(strategy, angles):
    q = generate_features(strategy, angles)
    assert q.shape == (9, strategy.num_features)
    assert np.allclose(q, manual_algorithm1(strategy, angles), atol=1e-12)


def test_identity_observable_column_is_one(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    q = generate_features(s, angles)
    assert np.allclose(q[:, 0], 1.0)  # identity Pauli first


def test_features_bounded(angles):
    q = generate_features(HybridStrategy(order=1, locality=2), angles)
    assert np.all(q >= -1 - 1e-9) and np.all(q <= 1 + 1e-9)


def test_executor_backends_identical(angles):
    s = HybridStrategy(order=1, locality=1)
    serial = generate_features(s, angles)
    threaded = generate_features(
        s, angles, executor=ParallelExecutor("thread", 4), chunk_size=3
    )
    assert np.array_equal(serial, threaded)


def test_chunk_size_invariance(angles):
    s = ObservableConstruction(qubits=4, locality=2)
    a = generate_features(s, angles, chunk_size=2)
    b = generate_features(s, angles, chunk_size=128)
    assert np.array_equal(a, b)


def test_shots_estimator_converges(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    exact = generate_features(s, angles)
    noisy = generate_features(s, angles, estimator="shots", shots=8000, seed=5)
    assert np.max(np.abs(exact - noisy)) < 0.1


def test_shots_estimator_deterministic_under_seed(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    a = generate_features(s, angles, estimator="shots", shots=100, seed=3)
    b = generate_features(s, angles, estimator="shots", shots=100, seed=3)
    assert np.array_equal(a, b)
    c = generate_features(s, angles, estimator="shots", shots=100, seed=4)
    assert not np.array_equal(a, c)


def test_shots_estimator_schedule_independent(angles):
    """Per-task RNG spawning: results identical across executors."""
    s = ObservableConstruction(qubits=4, locality=1)
    serial = generate_features(s, angles, estimator="shots", shots=64, seed=11, chunk_size=4)
    threaded = generate_features(
        s,
        angles,
        estimator="shots",
        shots=64,
        seed=11,
        chunk_size=4,
        executor=ParallelExecutor("thread", 3),
    )
    assert np.array_equal(serial, threaded)


def test_shadows_estimator_reasonable(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    exact = generate_features(s, angles[:3])
    shadow = generate_features(s, angles[:3], estimator="shadows", snapshots=4000, seed=2)
    assert np.max(np.abs(exact - shadow)) < 0.35


def test_evaluate_features_on_states(angles):
    states = encode_batch(angles)
    s = ObservableConstruction(qubits=4, locality=1)
    via_angles = generate_features(s, angles)
    via_states = evaluate_features(s, states)
    assert np.allclose(via_angles, via_states)


def test_validation(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    with pytest.raises(ValueError):
        generate_features(s, angles[0])  # not 3-D
    with pytest.raises(ValueError):
        generate_features(s, angles[:, :, :3])  # wrong qubit count
    with pytest.raises(ValueError):
        generate_features(s, angles, estimator="bogus")
