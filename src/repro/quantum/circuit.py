"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`Operation` instances acting
on ``num_qubits`` wires.  Parametric gates may carry either a concrete angle
(``float``) or a symbolic :class:`Parameter`.  Binding a parameter vector
produces a fully concrete circuit that the simulators accept.

The IR is deliberately minimal -- the post-variational method (paper Sec. III)
only ever needs: data-encoding circuits, a fixed Ansatz evaluated at a finite
set of shift configurations, composition of the two, and inverses for
fidelity tests (paper Eq. 25).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterator, Sequence

import numpy as np

from repro.quantum.gates import GATE_NUM_QUBITS, is_parametric

__all__ = ["Parameter", "Operation", "Circuit"]


@dataclass(frozen=True)
class Parameter:
    """A named symbolic circuit parameter.

    ``index`` is the position in the circuit's parameter vector; binding
    replaces the symbol with ``values[index]``.
    """

    name: str
    index: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name}@{self.index})"


@dataclass(frozen=True)
class Operation:
    """A single gate application.

    ``param`` is ``None`` for fixed gates, a ``float`` for bound parametric
    gates, or a :class:`Parameter` for unbound ones.
    """

    gate: str
    qubits: tuple[int, ...]
    param: float | Parameter | None = None

    @property
    def is_bound(self) -> bool:
        """True when this operation carries no unbound symbol."""
        return not isinstance(self.param, Parameter)

    def bound(self, values: Sequence[float]) -> Operation:
        """Return a copy with any symbolic parameter resolved from ``values``."""
        if isinstance(self.param, Parameter):
            return replace(self, param=float(values[self.param.index]))
        return self


class Circuit:
    """An ordered gate list on ``num_qubits`` qubits.

    Parameters are registered in first-use order via :meth:`add_parameter` or
    implicitly by :meth:`append` with a string parameter name.
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise ValueError(f"num_qubits={num_qubits} must be >= 1")
        self.num_qubits = int(num_qubits)
        self.name = name
        self.operations: list[Operation] = []
        self._parameters: dict[str, Parameter] = {}

    # ------------------------------------------------------------------ build
    def add_parameter(self, name: str) -> Parameter:
        """Register (or fetch) the symbolic parameter called ``name``."""
        if name not in self._parameters:
            self._parameters[name] = Parameter(name, len(self._parameters))
        return self._parameters[name]

    @property
    def parameters(self) -> list[Parameter]:
        """Registered parameters in index order."""
        return sorted(self._parameters.values(), key=lambda p: p.index)

    @property
    def num_parameters(self) -> int:
        return len(self._parameters)

    def append(
        self,
        gate: str,
        qubits: int | Sequence[int],
        param: float | str | Parameter | None = None,
    ) -> Circuit:
        """Append a gate; returns ``self`` for chaining.

        ``param`` may be a float (bound), a string (auto-registered symbol),
        or an existing :class:`Parameter`.
        """
        key = gate.lower()
        if key not in GATE_NUM_QUBITS:
            raise KeyError(f"unknown gate {gate!r}")
        qs = (qubits,) if isinstance(qubits, (int, np.integer)) else tuple(int(q) for q in qubits)
        if len(qs) != GATE_NUM_QUBITS[key]:
            raise ValueError(
                f"gate {gate!r} acts on {GATE_NUM_QUBITS[key]} qubit(s), got {qs}"
            )
        if len(set(qs)) != len(qs):
            raise ValueError(f"duplicate qubits in {qs}")
        for q in qs:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range for {self.num_qubits}-qubit circuit")
        if is_parametric(key):
            if param is None:
                raise ValueError(f"gate {gate!r} requires a parameter")
            if isinstance(param, str):
                param = self.add_parameter(param)
            elif isinstance(param, Parameter):
                registered = self._parameters.get(param.name)
                if registered is None or registered.index != param.index:
                    raise ValueError(f"parameter {param} not registered on this circuit")
            else:
                param = float(param)
        elif param is not None:
            raise ValueError(f"gate {gate!r} takes no parameter")
        self.operations.append(Operation(key, qs, param))
        return self

    # ---------------------------------------------------------------- queries
    @property
    def is_bound(self) -> bool:
        """True when every operation has a concrete angle."""
        return all(op.is_bound for op in self.operations)

    @property
    def num_gates(self) -> int:
        return len(self.operations)

    def depth(self) -> int:
        """Circuit depth under greedy ASAP layering."""
        frontier = [0] * self.num_qubits
        for op in self.operations:
            layer = max(frontier[q] for q in op.qubits) + 1
            for q in op.qubits:
                frontier[q] = layer
        return max(frontier, default=0)

    def fingerprint(self) -> tuple:
        """Hashable identity of a bound circuit.

        Width plus the exact gate list (names, qubits, angles): two circuits
        share a fingerprint iff they execute identically, so this is the
        compile-cache key.  Same structure with different bound angles
        yields a different fingerprint by construction.
        """
        if not self.is_bound:
            raise ValueError("fingerprint requires a bound circuit")
        return (self.num_qubits,) + tuple(
            (op.gate, op.qubits, None if op.param is None else float(op.param))
            for op in self.operations
        )

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for op in self.operations:
            counts[op.gate] = counts.get(op.gate, 0) + 1
        return counts

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={self.num_gates}, params={self.num_parameters})"
        )

    # ------------------------------------------------------------- transforms
    def bind(self, values: Sequence[float]) -> Circuit:
        """Return a concrete copy with parameter ``i`` set to ``values[i]``."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameter values, got shape {values.shape}"
            )
        out = Circuit(self.num_qubits, name=f"{self.name}[bound]")
        out.operations = [op.bound(values) for op in self.operations]
        return out

    def compose(self, other: Circuit) -> Circuit:
        """Return ``self`` followed by ``other`` (both must be bound).

        Composition of unbound circuits would require merging parameter
        tables; the post-variational workflow never needs it, so we keep the
        invariant simple and explicit.
        """
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch in compose")
        if not (self.is_bound and other.is_bound):
            raise ValueError("compose requires bound circuits; call .bind() first")
        out = Circuit(self.num_qubits, name=f"{self.name}+{other.name}")
        out.operations = list(self.operations) + list(other.operations)
        return out

    def inverse(self) -> Circuit:
        """Return the adjoint circuit (bound circuits only).

        Uses gate-level inverses: self-inverse gates stay, rotations negate
        their angle, S <-> Sdg, T <-> Tdg.  Every rule maps supported gates
        to supported gates, so ``c.inverse().inverse()`` reproduces ``c``
        operation-for-operation (the round-trip property the tests pin).
        """
        if not self.is_bound:
            raise ValueError("inverse requires a bound circuit")
        out = Circuit(self.num_qubits, name=f"{self.name}^-1")
        for op in reversed(self.operations):
            out.operations.append(_inverse_op(op))
        return out

    def copy(self) -> Circuit:
        out = Circuit(self.num_qubits, name=self.name)
        out.operations = list(self.operations)
        out._parameters = dict(self._parameters)
        return out


_SELF_INVERSE = {"i", "x", "y", "z", "h", "cnot", "cx", "cz", "swap"}
_ROTATIONS = {"rx", "ry", "rz", "phase", "crx", "cry", "crz"}
_DAGGER_PAIRS = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}


def _inverse_op(op: Operation) -> Operation:
    if op.gate in _SELF_INVERSE:
        return op
    if op.gate in _ROTATIONS:
        return replace(op, param=-float(op.param))  # type: ignore[arg-type]
    if op.gate in _DAGGER_PAIRS:
        return Operation(_DAGGER_PAIRS[op.gate], op.qubits)
    raise KeyError(f"no inverse rule for gate {op.gate!r}")
