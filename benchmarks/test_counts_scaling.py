"""E4 -- Eq. 16 / Eq. 18 ensemble-size scaling (construction cost of the
Fig. 3/4 circuit families).

Prints the circuit count ``sum_l C(k,l) 2^l`` over parameter counts k and
derivative orders R, and the observable count ``sum_l C(n,l) 3^l`` over
qubit counts n and localities L, verifying enumeration == closed form and
the O(2^R k^R) / O(3^L n^L) growth the paper quotes.
"""

from __future__ import annotations


from repro.core.shifts import count_shift_configurations, enumerate_shift_configurations
from repro.quantum.observables import count_local_paulis, local_pauli_strings


def run_counts():
    shift_grid = {
        (k, r): count_shift_configurations(k, r)
        for k in (2, 4, 8, 12)
        for r in (0, 1, 2, 3)
    }
    pauli_grid = {
        (n, loc): count_local_paulis(n, loc) for n in (2, 4, 6, 10) for loc in (0, 1, 2, 3)
    }
    return shift_grid, pauli_grid


def test_counts_scaling(benchmark):
    shift_grid, pauli_grid = benchmark.pedantic(run_counts, rounds=1, iterations=1)

    print("\n=== Eq. 16: circuits = sum_l C(k,l) 2^l ===")
    print(f"{'k':>4}" + "".join(f"  R={r:<8}" for r in (0, 1, 2, 3)))
    for k in (2, 4, 8, 12):
        print(f"{k:>4}" + "".join(f"  {shift_grid[(k, r)]:<9}" for r in (0, 1, 2, 3)))

    print("=== Eq. 18: observables = sum_l C(n,l) 3^l ===")
    print(f"{'n':>4}" + "".join(f"  L={loc:<8}" for loc in (0, 1, 2, 3)))
    for n in (2, 4, 6, 10):
        print(f"{n:>4}" + "".join(f"  {pauli_grid[(n, loc)]:<9}" for loc in (0, 1, 2, 3)))

    # Enumeration matches closed form on a subsample.
    for k, r in ((4, 2), (8, 1)):
        assert len(enumerate_shift_configurations(k, r)) == shift_grid[(k, r)]
    for n, loc in ((4, 2), (6, 1)):
        assert len(local_pauli_strings(n, loc)) == pauli_grid[(n, loc)]

    # Paper's quoted values for its own configuration.
    assert shift_grid[(8, 1)] == 17 and shift_grid[(8, 2)] == 129
    assert pauli_grid[(4, 1)] == 13 and pauli_grid[(4, 2)] == 67

    # Polynomial-in-k growth at fixed R: count <= (2k + 1)^R * e (crude),
    # and the paper's O(2^R k^R) envelope holds with constant 2.
    for k in (4, 8, 12):
        for r in (1, 2, 3):
            assert shift_grid[(k, r)] <= 2 * (2 * k) ** r + 1

    # Exponential-in-L growth at fixed n: ratios increase.
    ratios = [pauli_grid[(10, loc + 1)] / pauli_grid[(10, loc)] for loc in (0, 1, 2)]
    assert ratios[0] > 10  # 1 -> 31
    assert all(r > 1 for r in ratios)
