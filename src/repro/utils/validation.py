"""Lightweight argument validation helpers.

These raise early with actionable messages instead of letting NumPy broadcast
errors surface deep inside simulator kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["require", "check_power_of_two", "check_probability", "check_square"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_power_of_two(value: int, name: str = "value") -> int:
    """Return ``log2(value)`` after asserting ``value`` is a power of two."""
    if value <= 0 or value & (value - 1) != 0:
        raise ValueError(f"{name}={value} must be a positive power of two")
    return int(value).bit_length() - 1


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name}={value} must lie in [0, 1]")
    return float(value)


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is 2-D and square."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr
