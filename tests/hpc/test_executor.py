"""Executor backend equivalence and ordering tests."""

import numpy as np
import pytest

from repro.hpc.executor import ExecutorConfig, ParallelExecutor


def square(x):
    return x * x


def test_config_validation():
    with pytest.raises(ValueError):
        ExecutorConfig(backend="gpu")
    with pytest.raises(ValueError):
        ExecutorConfig(max_workers=0)


def test_serial_map():
    ex = ParallelExecutor()
    assert ex.map(square, [1, 2, 3]) == [1, 4, 9]


def test_empty_tasks():
    assert ParallelExecutor("thread", 4).map(square, []) == []


@pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 4), ("process", 2)])
def test_backends_agree(backend, workers):
    tasks = list(range(20))
    expected = [square(t) for t in tasks]
    ex = ParallelExecutor(backend, workers)
    assert ex.map(square, tasks) == expected


def test_order_preserved_despite_uneven_work():
    """Results must follow task order, not completion order."""
    import time

    def slow_then_fast(x):
        time.sleep(0.02 if x == 0 else 0.0)
        return x

    ex = ParallelExecutor("thread", 4)
    assert ex.map(slow_then_fast, list(range(8))) == list(range(8))


def test_starmap_thread():
    ex = ParallelExecutor("thread", 2)
    assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]


def add(a, b):
    return a + b


def test_starmap_process():
    ex = ParallelExecutor("process", 2)
    assert ex.starmap(add, [(1, 2), (3, 4)]) == [3, 7]


def test_numpy_payloads_roundtrip():
    ex = ParallelExecutor("thread", 3)
    arrays = [np.full(4, i) for i in range(6)]
    out = ex.map(lambda a: a.sum(), arrays)
    assert out == [0, 4, 8, 12, 16, 20]
    ex.close()


def test_auto_max_workers():
    import os

    cpus = os.cpu_count() or 1
    assert ExecutorConfig(max_workers=None).max_workers == cpus
    assert ExecutorConfig(max_workers="auto").max_workers == cpus
    assert ParallelExecutor("thread", None).max_workers == cpus
    assert ParallelExecutor("thread", "auto").max_workers == cpus
    with pytest.raises(ValueError):
        ParallelExecutor("thread", "all-of-them")


def test_persistent_pool_reused_across_maps():
    with ParallelExecutor("thread", 2) as ex:
        ex.map(square, [1, 2])
        ex.map(square, [3, 4])
        ex.starmap(lambda a, b: a + b, [(1, 2)])
        assert ex.runtime.pools_created == 1


def test_concurrent_runtime_access_builds_one_runtime():
    """Threads sharing a facade must not race duplicate pools into being."""
    import threading

    ex = ParallelExecutor("thread", 2)
    seen = []
    barrier = threading.Barrier(6)

    def grab():
        barrier.wait()
        seen.append(ex.runtime)

    threads = [threading.Thread(target=grab) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(r) for r in seen}) == 1
    ex.close()


def test_close_then_reuse_recreates_runtime():
    ex = ParallelExecutor("thread", 2)
    first = ex.runtime
    ex.map(square, [1])
    ex.close()
    assert first.closed
    # The facade stays usable: a fresh runtime is built lazily.
    assert ex.map(square, [5]) == [25]
    assert ex.runtime is not first
    ex.close()
