"""Communicator tests mirroring the mpi4py tutorial programs."""

import numpy as np
import pytest

from repro.hpc.comm import SpmdError, run_spmd


def test_rank_and_size():
    sizes = run_spmd(lambda c: (c.Get_rank(), c.Get_size()), 4)
    assert sizes == [(r, 4) for r in range(4)]


def test_send_recv_dict():
    """The tutorial's first example: rank 0 sends a dict to rank 1."""

    def prog(comm):
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    results = run_spmd(prog, 2)
    assert results[1] == {"a": 7, "b": 3.14}


def test_isend_irecv():
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend([1, 2, 3], dest=1, tag=5)
            req.wait()
            return None
        req = comm.irecv(source=0, tag=5)
        return req.wait()

    assert run_spmd(prog, 2)[1] == [1, 2, 3]


def test_tag_filtering():
    """Messages with mismatched tags are stashed, not lost."""

    def prog(comm):
        if comm.rank == 0:
            comm.send("late", dest=1, tag=2)
            comm.send("first", dest=1, tag=1)
            return None
        first = comm.recv(source=0, tag=1)
        late = comm.recv(source=0, tag=2)
        return (first, late)

    assert run_spmd(prog, 2)[1] == ("first", "late")


def test_ring_exchange():
    def prog(comm):
        r, s = comm.rank, comm.size
        comm.send(r, dest=(r + 1) % s, tag=0)
        return comm.recv(source=(r - 1) % s, tag=0)

    assert run_spmd(prog, 5) == [(r - 1) % 5 for r in range(5)]


def test_bcast():
    def prog(comm):
        data = {"key": [7, 2.72]} if comm.rank == 0 else None
        return comm.bcast(data, root=0)

    results = run_spmd(prog, 4)
    assert all(r == {"key": [7, 2.72]} for r in results)


def test_scatter_gather_roundtrip():
    def prog(comm):
        data = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
        part = comm.scatter(data, root=0)
        assert part == (comm.rank + 1) ** 2
        return comm.gather(part, root=0)

    results = run_spmd(prog, 4)
    assert results[0] == [1, 4, 9, 16]
    assert results[1] is None


def test_allgather():
    results = run_spmd(lambda c: c.allgather(c.rank * 10), 3)
    assert all(r == [0, 10, 20] for r in results)


def test_alltoall():
    def prog(comm):
        send = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoall(send)

    results = run_spmd(prog, 3)
    for j, received in enumerate(results):
        assert received == [f"{i}->{j}" for i in range(3)]


def test_reduce_and_allreduce():
    def prog(comm):
        total = comm.allreduce(comm.rank)
        rooted = comm.reduce(comm.rank, root=1)
        return (total, rooted)

    results = run_spmd(prog, 5)
    assert all(t == 10 for t, _ in results)
    assert results[1][1] == 10
    assert results[0][1] is None


def test_allreduce_custom_op():
    results = run_spmd(lambda c: c.allreduce(c.rank + 1, op=lambda a, b: a * b), 4)
    assert all(r == 24 for r in results)


def test_buffer_collectives():
    def prog(comm):
        send = np.full(3, float(comm.rank))
        recv = np.empty(3)
        comm.Allreduce(send, recv)
        arr = np.arange(4.0) if comm.rank == 0 else np.empty(4)
        comm.Bcast(arr, root=0)
        return recv[0], arr.copy()

    results = run_spmd(prog, 4)
    for total, arr in results:
        assert total == 6.0
        assert np.array_equal(arr, np.arange(4.0))


def test_buffer_send_recv_copies():
    def prog(comm):
        if comm.rank == 0:
            data = np.arange(5.0)
            comm.Send(data, dest=1)
            data[:] = -1  # sender may reuse its buffer
            return None
        out = np.empty(5)
        comm.Recv(out, source=0)
        return out

    results = run_spmd(prog, 2)
    assert np.array_equal(results[1], np.arange(5.0))


def test_barrier_synchronises():
    log = []

    def prog(comm):
        if comm.rank == 0:
            log.append("pre")
        comm.barrier()
        if comm.rank == 1:
            # Rank 0's append must be visible after the barrier.
            return list(log)
        return None

    results = run_spmd(prog, 2)
    assert results[1] == ["pre"]


def test_exception_propagates_as_spmd_error():
    def prog(comm):
        if comm.rank == 2:
            raise RuntimeError("boom")
        comm.barrier()  # would deadlock without abort handling

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(prog, 4)
    assert 2 in exc_info.value.failures


def test_invalid_inputs():
    with pytest.raises(ValueError):
        run_spmd(lambda c: None, 0)

    def bad_dest(comm):
        comm.send(1, dest=99)

    with pytest.raises(SpmdError):
        run_spmd(bad_dest, 2)


def test_matvec_allgather_pattern():
    """The tutorial's parallel matvec: row-block A, allgather x."""
    n_ranks = 4
    rows_per = 2
    rng = np.random.default_rng(0)
    a_full = rng.normal(size=(rows_per * n_ranks, rows_per * n_ranks))
    x_full = rng.normal(size=rows_per * n_ranks)

    def prog(comm):
        r = comm.rank
        a_local = a_full[r * rows_per : (r + 1) * rows_per]
        x_local = x_full[r * rows_per : (r + 1) * rows_per]
        parts = comm.allgather(x_local)
        xg = np.concatenate(parts)
        return a_local @ xg

    results = run_spmd(prog, n_ranks)
    assert np.allclose(np.concatenate(results), a_full @ x_full)


def test_peer_failure_releases_blocked_recv():
    """A rank stuck in point-to-point recv must not sleep until the SPMD
    timeout when a peer dies: the abort flag is polled and surfaces the
    original failure promptly."""
    import time

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("boom")
        comm.recv(source=0, tag=9)  # the message never arrives

    start = time.monotonic()
    with pytest.raises(SpmdError) as exc_info:
        run_spmd(prog, 2, timeout=30.0)
    elapsed = time.monotonic() - start
    assert elapsed < 5.0  # released by abort polling, not the 30 s timeout
    # The primary failure is rank 0's error; rank 1's abort wake-up is
    # filtered as a secondary casualty.
    assert set(exc_info.value.failures) == {0}
    assert isinstance(exc_info.value.failures[0], RuntimeError)


def test_abort_does_not_drop_in_flight_messages():
    """Messages already enqueued before a peer failure are still delivered;
    only an *empty* mailbox surfaces the abort."""
    import threading

    def prog(comm):
        if comm.rank == 0:
            comm.send("payload", dest=1, tag=1)
            raise RuntimeError("late failure")
        got = comm.recv(source=0, tag=1)  # sent before the failure: delivered
        with pytest.raises(threading.BrokenBarrierError):
            comm.recv(source=0, tag=2)  # never sent: aborts instead of hanging
        return got

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(prog, 2, timeout=30.0)
    assert set(exc_info.value.failures) == {0}
