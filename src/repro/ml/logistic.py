"""Logistic regression (binary + softmax multiclass), L-BFGS backend.

This replaces the scikit-learn classifier of paper Sec. VII.A: the identical
L2-penalised maximum-likelihood objective, solved by scipy's L-BFGS with an
analytic gradient.  Used both as the classical baseline (Table III row
"Logistic") and as the classification head of the post-variational model
(paper: "logistic regression algorithm as provided by the scikit-learn
library").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.ml.losses import bce_loss, cross_entropy_loss, sigmoid, softmax

__all__ = ["LogisticRegression", "SoftmaxRegression"]


@dataclass
class LogisticRegression:
    """Binary logistic regression with L2 penalty ``l2 / 2 * ||w||^2``.

    ``l2`` corresponds to scikit-learn's ``1/C`` scaled by the dataset size;
    the default matches sklearn's C=1.0 convention (penalty not applied to
    the intercept).
    """

    l2: float = 1.0
    fit_intercept: bool = True
    max_iter: int = 500
    coef_: np.ndarray | None = field(default=None, repr=False)
    intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> LogisticRegression:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("binary labels must be 0/1")
        d, m = x.shape
        k = m + 1 if self.fit_intercept else m

        def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
            coef = w[:m]
            bias = w[m] if self.fit_intercept else 0.0
            z = x @ coef + bias
            p = sigmoid(z)
            # Negative log-likelihood (sum, sklearn convention) + penalty.
            nll = float(np.sum(np.logaddexp(0.0, z) - y * z))
            grad_z = p - y
            g_coef = x.T @ grad_z + self.l2 * coef
            loss = nll + 0.5 * self.l2 * float(coef @ coef)
            if self.fit_intercept:
                return loss, np.concatenate([g_coef, [float(grad_z.sum())]])
            return loss, g_coef

        result = minimize(
            objective,
            np.zeros(k),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        w = result.x
        self.coef_ = w[:m]
        self.intercept_ = float(w[m]) if self.fit_intercept else 0.0
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return sigmoid(np.asarray(x, dtype=float) @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean BCE (the loss reported in paper Tables III/IV)."""
        return bce_loss(np.asarray(y, dtype=float), self.predict_proba(x))


@dataclass
class SoftmaxRegression:
    """Multinomial logistic regression with L2 penalty (multiclass head).

    Paper Sec. VII.B: "extended to multiclass problems, being simply adding
    an additional dimension to the classical linear map".
    """

    num_classes: int = 2
    l2: float = 1.0
    fit_intercept: bool = True
    max_iter: int = 500
    coef_: np.ndarray | None = field(default=None, repr=False)  # (m, C)
    intercept_: np.ndarray | None = field(default=None, repr=False)  # (C,)

    def fit(self, x: np.ndarray, y: np.ndarray) -> SoftmaxRegression:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).ravel().astype(int)
        d, m = x.shape
        c = self.num_classes
        if y.min() < 0 or y.max() >= c:
            raise ValueError(f"labels must lie in [0, {c})")
        onehot = np.zeros((d, c))
        onehot[np.arange(d), y] = 1.0

        def unpack(w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            coef = w[: m * c].reshape(m, c)
            bias = w[m * c :] if self.fit_intercept else np.zeros(c)
            return coef, bias

        def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
            coef, bias = unpack(w)
            z = x @ coef + bias
            z = z - z.max(axis=1, keepdims=True)
            logsum = np.log(np.exp(z).sum(axis=1))
            nll = float(np.sum(logsum - z[np.arange(d), y]))
            p = np.exp(z - logsum[:, None])
            grad_z = p - onehot
            g_coef = x.T @ grad_z + self.l2 * coef
            loss = nll + 0.5 * self.l2 * float(np.sum(coef * coef))
            if self.fit_intercept:
                return loss, np.concatenate([g_coef.ravel(), grad_z.sum(axis=0)])
            return loss, g_coef.ravel()

        k = m * c + (c if self.fit_intercept else 0)
        result = minimize(
            objective,
            np.zeros(k),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_, bias = unpack(result.x)
        self.intercept_ = bias if self.fit_intercept else np.zeros(c)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return softmax(np.asarray(x, dtype=float) @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean multiclass cross-entropy."""
        y = np.asarray(y).ravel().astype(int)
        onehot = np.zeros((y.size, self.num_classes))
        onehot[np.arange(y.size), y] = 1.0
        return cross_entropy_loss(onehot, self.predict_proba(x))
