"""Config/plan lint: cross-field ``ExecutionConfig`` diagnostics.

Per-field validation already lives in ``ExecutionConfig.__post_init__`` --
anything that makes a single knob *illegal* raises there, at construction.
This module covers the next ring out: combinations that are individually
legal but jointly wrong or pathological for the execution plan they
describe.  A config that validates can still ask for more shards than the
register has amplitudes, starve a stochastic estimator of its measurement
budget, pin a GPU namespace under an estimator that bounces every chunk
back to the host, or slice the work grid below the per-dispatch overhead
crossover.  Each such finding becomes a structured
:class:`~repro.analysis.diagnostics.Diagnostic` instead of a mid-sweep
surprise.

Severities follow the admission rule: *provably wrong at runtime* (RPA101,
RPA106) is an error; *legal but likely not what you meant / will be slow*
is a warning; *informational plan notes* (RPA107) are info.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic, DiagnosticReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import ExecutionConfig, ServeConfig

__all__ = ["MIN_EFFICIENT_CHUNK", "lint_config", "lint_serve_config"]

#: Work-grid rows below which per-job dispatch overhead (future plumbing,
#: pickling, scheduler bookkeeping priced in ``cluster.task_costs``)
#: rivals the kernel work itself.  The expensive-backend default
#: (``EXPENSIVE_CHUNK_SIZE = 8``) sits deliberately above this floor.
MIN_EFFICIENT_CHUNK = 4

#: Estimators that sample measurement outcomes host-side (``rng.multinomial``
#: on NumPy probabilities) after every chunk evolution.
_STOCHASTIC_ESTIMATORS = ("shots", "shadows")


def _lint_shards(config: ExecutionConfig, num_qubits: int | None) -> list[Diagnostic]:
    """RPA101: the slab decomposition needs >= 1 amplitude per shard."""
    if num_qubits is None or config.shards <= 2**num_qubits:
        return []
    return [
        Diagnostic(
            "RPA101",
            f"shards={config.shards} exceeds the 2^{num_qubits} = "
            f"{2**num_qubits} amplitudes of a {num_qubits}-qubit register; "
            f"the slab decomposition needs at least one amplitude per shard",
            fix_hint=f"use shards <= {2**num_qubits} (and ideally "
            f"<< for useful slab sizes), or widen the circuit",
            location="config.shards",
        )
    ]


def _lint_round_trips(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA102: stochastic estimators bounce device results back to host."""
    if config.estimator not in _STOCHASTIC_ESTIMATORS:
        return []
    resolved = config.resolved_array_backend
    if resolved == "numpy":
        return []
    spelled = (
        f"array_backend={config.array_backend!r}"
        if config.array_backend == resolved
        else f"array_backend={config.array_backend!r} (resolves to {resolved!r})"
    )
    return [
        Diagnostic(
            "RPA102",
            f"estimator={config.estimator!r} samples outcomes host-side "
            f"(rng.multinomial on NumPy probabilities), so {spelled} forces "
            f"a device->host round-trip per chunk",
            fix_hint="use estimator='exact' to stay device-resident, or "
            "array_backend='numpy' if sampling dominates anyway",
            location="config.array_backend",
        )
    ]


def _lint_picklability(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA103: process pools need the config (and its backend) to pickle."""
    if isinstance(config.seed, np.random.Generator):
        return [
            Diagnostic(
                "RPA103",
                "seed is a live numpy Generator: the config cannot "
                "serialize (to_dict/JSON raise) and Generator state does "
                "not ship to process-pool workers",
                fix_hint="pass an int seed; workers derive independent "
                "streams from it via SeedSequence",
                location="config.seed",
            )
        ]
    try:
        pickle.dumps(config)
    except Exception as exc:
        return [
            Diagnostic(
                "RPA103",
                f"config does not pickle ({type(exc).__name__}: {exc}); "
                f"process-pool dispatch will fail at submit time",
                fix_hint="keep backend/noise-model payloads picklable "
                "(plain arrays and value objects, no lambdas or open "
                "handles)",
                location="config.backend",
            )
        ]
    return []


def _lint_chunking(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA104: chunks below the dispatch-overhead crossover."""
    if config.chunk_size is None or config.chunk_size >= MIN_EFFICIENT_CHUNK:
        return []
    return [
        Diagnostic(
            "RPA104",
            f"chunk_size={config.chunk_size} is below the per-dispatch "
            f"overhead crossover ({MIN_EFFICIENT_CHUNK}); scheduling and "
            f"serialization will rival the kernel work per job",
            fix_hint=f"use chunk_size >= {MIN_EFFICIENT_CHUNK}, or None "
            f"for the backend default",
            location="config.chunk_size",
        )
    ]


def _lint_vectorize(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA105: vectorize requested on a per-sample-only backend."""
    if config.vectorize != "auto" or config.backend.supports_vectorize:
        return []
    return [
        Diagnostic(
            "RPA105",
            f"vectorize='auto' requested but backend "
            f"{config.backend.name!r} has no batched engine "
            f"(supports_vectorize=False); every chunk runs the per-sample "
            f"reference path",
            fix_hint="drop vectorize='auto' (it buys nothing here), or "
            "switch to a backend with batched execution",
            location="config.vectorize",
        )
    ]


def _lint_budget(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA106: a stochastic estimator with nothing to measure."""
    found: list[Diagnostic] = []
    if config.estimator == "shots" and config.shots == 0:
        found.append(
            Diagnostic(
                "RPA106",
                "estimator='shots' with shots=0: every expectation "
                "estimate would average zero samples",
                fix_hint="set shots >= 1, or use estimator='exact'",
                location="config.shots",
            )
        )
    if config.estimator == "shadows" and config.snapshots == 0:
        found.append(
            Diagnostic(
                "RPA106",
                "estimator='shadows' with snapshots=0: the classical "
                "shadow would be built from zero snapshots",
                fix_hint="set snapshots >= 1, or use estimator='exact'",
                location="config.snapshots",
            )
        )
    return found


def _lint_shard_compile(config: ExecutionConfig) -> list[Diagnostic]:
    """RPA107: sharded execution without the grouped compiled engine."""
    from repro.quantum.compile import resolve_fusion_width

    if config.shards <= 1 or resolve_fusion_width(config.compile) is not None:
        return []
    return [
        Diagnostic(
            "RPA107",
            f"shards={config.shards} with compile='off' walks the circuit "
            f"gate-by-gate; the grouped compiled engine runs fused blocks "
            f"communication-free between slab remaps and exchanges less "
            f"volume",
            fix_hint="set compile='auto' to enable shard-group planning",
            location="config.compile",
        )
    ]


def lint_config(
    config: ExecutionConfig, *, num_qubits: int | None = None
) -> DiagnosticReport:
    """Cross-field lint of one (already-validated) execution config.

    ``num_qubits`` is the register width of the intended workload; without
    it the width-dependent checks (RPA101) are skipped -- a config alone
    does not know how wide its circuits will be.
    """
    found = _lint_shards(config, num_qubits)
    found += _lint_round_trips(config)
    found += _lint_picklability(config)
    found += _lint_chunking(config)
    found += _lint_vectorize(config)
    found += _lint_budget(config)
    found += _lint_shard_compile(config)
    return DiagnosticReport.collect(found)


# --------------------------------------------------------------- serve plan


def _lint_batch_window(config: ServeConfig) -> list[Diagnostic]:
    """RPA110: a zero/negative window never coalesces anything."""
    if config.batch_window_ms > 0:
        return []
    if config.batch_window_ms < 0:
        # Provably wrong at runtime (the service refuses to start on it):
        # override the registered warning severity up to error.
        return [
            Diagnostic(
                "RPA110",
                f"batch_window_ms={config.batch_window_ms} is negative; "
                f"there is no such thing as a flush before admission",
                severity=ERROR,
                fix_hint="use a positive window (milliseconds), or 0 to "
                "disable coalescing explicitly",
                location="serve.batch_window_ms",
            )
        ]
    return [
        Diagnostic(
            "RPA110",
            "batch_window_ms=0 flushes every request alone: concurrent "
            "requests sharing a template fingerprint never coalesce into "
            "one stacked pass",
            fix_hint="use a small positive window (1-10 ms) to let "
            "in-flight peers share evolve_batch calls",
            location="serve.batch_window_ms",
        )
    ]


def _lint_result_cache(config: ServeConfig) -> list[Diagnostic]:
    """RPA111: caching switched on with nowhere to store a result."""
    if not config.cache_results or config.result_cache_size > 0:
        return []
    return [
        Diagnostic(
            "RPA111",
            "cache_results=True with result_cache_size=0: every lookup "
            "misses and every store is dropped, so the cache is pure "
            "bookkeeping overhead",
            fix_hint="set result_cache_size >= 1, or cache_results=False "
            "to document that caching is off",
            location="serve.result_cache_size",
        )
    ]


def _lint_tenant_weights(config: ServeConfig) -> list[Diagnostic]:
    """RPA112: a non-positive weight starves that tenant forever."""
    return [
        Diagnostic(
            "RPA112",
            f"tenant_weights[{name!r}]={weight} can never win a "
            f"weighted-round-robin pick while any positive-weight tenant "
            f"has pending requests; tenant {name!r} starves under load",
            fix_hint="give every named tenant a positive weight (shares "
            "are relative; unnamed tenants weigh 1.0)",
            location=f"serve.tenant_weights[{name!r}]",
        )
        for name, weight in config.tenant_weights
        if weight <= 0
    ]


def _lint_serve_vectorize(config: ServeConfig) -> list[Diagnostic]:
    """RPA113: micro-batching pays off through the batched engine only."""
    execution = config.execution
    assert execution is not None  # ServeConfig canonicalized it
    if (
        config.batch_window_ms <= 0
        or config.max_batch_size <= 1
        or execution.vectorize == "auto"
    ):
        return []
    return [
        Diagnostic(
            "RPA113",
            f"batch_window_ms={config.batch_window_ms} with "
            f"execution.vectorize={execution.vectorize!r}: coalesced "
            f"requests fall back to per-request dispatch (no stacked "
            f"apply_batch pass), so the window only adds latency",
            fix_hint="set execution vectorize='auto' (the serving "
            "default), or batch_window_ms=0 to serve per-request",
            location="serve.execution.vectorize",
        )
    ]


def _lint_transport_timeout(config: ServeConfig) -> list[Diagnostic]:
    """RPA114: a deadline inside the batch window times every request out."""
    transport = config.transport
    if transport is None or transport.request_timeout_s is None:
        return []
    if transport.request_timeout_s * 1e3 >= config.batch_window_ms:
        return []
    return [
        Diagnostic(
            "RPA114",
            f"transport.request_timeout_s={transport.request_timeout_s} is "
            f"shorter than batch_window_ms={config.batch_window_ms}: a "
            f"request's deadline can expire while it is still waiting for "
            f"its coalescing window, so every served request times out "
            f"before any flush starts",
            fix_hint="raise request_timeout_s well above the window (plus "
            "expected flush time), or shrink batch_window_ms",
            location="serve.transport.request_timeout_s",
        )
    ]


def _lint_frame_bytes(
    config: ServeConfig, num_qubits: int | None
) -> list[Diagnostic]:
    """RPA115: a frame bound below one feature row can carry no response."""
    transport = config.transport
    if transport is None:
        return []
    from repro.serve.protocol import FRAME_OVERHEAD

    cols = num_qubits if num_qubits is not None else 1
    floor = FRAME_OVERHEAD + 8 * cols
    if transport.max_frame_bytes >= floor:
        return []
    return [
        Diagnostic(
            "RPA115",
            f"transport.max_frame_bytes={transport.max_frame_bytes} is below "
            f"the {floor}-byte floor of one frame prefix plus one float64 "
            f"feature row of {cols} column(s): even a maximally streamed "
            f"response cannot fit any frame, so every request fails",
            fix_hint=f"use max_frame_bytes >= {floor} (generously larger in "
            f"practice; the default is 16 MiB)",
            location="serve.transport.max_frame_bytes",
        )
    ]


def _lint_stream_threshold(config: ServeConfig) -> list[Diagnostic]:
    """RPA116: a stream threshold on a non-streaming transport is dead."""
    transport = config.transport
    if (
        transport is None
        or transport.streaming
        or transport.stream_threshold_rows is None
    ):
        return []
    return [
        Diagnostic(
            "RPA116",
            f"transport.stream_threshold_rows="
            f"{transport.stream_threshold_rows} with streaming=False: the "
            f"threshold can never trigger, and responses above "
            f"max_frame_bytes fail instead of streaming",
            fix_hint="set streaming=True (the default), or drop "
            "stream_threshold_rows to document single-frame responses",
            location="serve.transport.stream_threshold_rows",
        )
    ]


def lint_serve_config(
    config: ServeConfig, *, num_qubits: int | None = None
) -> DiagnosticReport:
    """Cross-field lint of one (already-validated) serving config.

    Merges the serve-layer checks (RPA110-RPA116) with the nested
    execution config's plan lint, so ``repro lint --serve`` and
    :meth:`ServeConfig.diagnose` see the whole plan a service would run.
    The transport checks (RPA114-RPA116) only apply when the config
    carries a :class:`~repro.api.config.TransportConfig`.
    """
    execution = config.execution
    assert execution is not None  # ServeConfig canonicalized it
    report = lint_config(execution, num_qubits=num_qubits)
    found = _lint_batch_window(config)
    found += _lint_result_cache(config)
    found += _lint_tenant_weights(config)
    found += _lint_serve_vectorize(config)
    found += _lint_transport_timeout(config)
    found += _lint_frame_bytes(config, num_qubits)
    found += _lint_stream_threshold(config)
    return report + DiagnosticReport.collect(found)
