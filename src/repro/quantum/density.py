"""Density-matrix simulator for noisy-circuit verification.

The headline experiments run on pure statevectors (as in the paper, which
uses qiskit's ideal simulator), but the NISQ framing of the paper makes a
noise path essential for a credible release: the hybrid HPC-QC pipeline can
re-run any ensemble member under a Kraus noise model and the tests verify
that shot/shadow estimators converge to the *noisy* expectations.

Two execution engines share the per-gate semantics:

* :func:`run_circuit_density` -- the per-sample reference walk: one density
  matrix through the gate list, noise channels inserted after each gate.
* :class:`BatchedDensityProgram` + :func:`run_batched_density` -- the
  vectorized engine behind ``DensityMatrixBackend.supports_vectorize``: a
  whole sample batch evolves as one stacked ``(B, 2, ..., 2)`` tensor, each
  gate/Kraus operator costing one ``(B, 4^n)``-sized kernel pass instead of
  ``B`` Python-level walks.  Compilation deliberately performs **no fusion
  and no reordering** -- the per-gate Kraus insertion points are the
  semantics, which is exactly why density backends refuse fused
  :class:`~repro.quantum.compile.CompiledCircuit` programs.  Encoding
  rotations stay as angle slots (as in :mod:`repro.quantum.batched`), so
  one compiled template serves every sample chunk.

:func:`fold_density_program` gives the batched engine the same local
unitary folding that :func:`repro.quantum.mitigation.fold_circuit` applies
per sample -- ``C (C^dag C)^k`` at step level, with slot steps inverted by
negating their angle sign -- so :class:`MitigatedBackend` can run each fold
scale as one batched pass.
"""

from __future__ import annotations

import dataclasses
import string
from dataclasses import dataclass, field
from functools import cached_property
from collections.abc import Sequence

import numpy as np

from repro.quantum.circuit import Circuit, Parameter
from repro.quantum.gates import gate_matrix, rotation_batch_xp
from repro.quantum.observables import PauliString, PauliSum
from repro.utils.validation import check_power_of_two, check_square

__all__ = [
    "pure_density",
    "apply_unitary",
    "apply_kraus",
    "run_circuit_density",
    "expectation_density",
    "purity",
    "partial_trace",
    "DensityStep",
    "BatchedDensityProgram",
    "compile_density_template",
    "concat_density_programs",
    "fold_density_program",
    "run_batched_density",
]


def pure_density(state: np.ndarray) -> np.ndarray:
    """``|psi><psi|`` from a statevector."""
    psi = np.asarray(state, dtype=np.complex128).ravel()
    return np.outer(psi, psi.conj())


def apply_unitary(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], *, xp=None
) -> np.ndarray:
    """``K rho K^dag`` with the (not necessarily unitary) ``K`` on ``qubits``.

    Implemented with the fast statevector kernel: ``K rho`` applies K to each
    column of rho (batched), and right-multiplication by ``K^dag`` is applying
    ``conj(K)`` to each row.  ``xp`` selects the array namespace
    (:mod:`repro.xp`); ``None``/native NumPy keeps the reference body.
    """
    from repro.quantum.statevector import apply_matrix_batch

    if xp is None or xp.native:
        rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
        left = apply_matrix_batch(np.ascontiguousarray(rho.T), matrix, qubits).T  # K rho
        return apply_matrix_batch(
            np.ascontiguousarray(left), np.conj(np.asarray(matrix)), qubits
        )  # (K rho) K^dag
    rho = xp.ascomplex(rho)
    matrix = xp.ascomplex(matrix)
    left = xp.ascontiguous(
        apply_matrix_batch(xp.ascontiguous(rho.T), matrix, qubits, xp=xp).T
    )
    return apply_matrix_batch(left, xp.conj(matrix), qubits, xp=xp)


def apply_kraus(
    rho: np.ndarray, kraus_ops: Sequence[np.ndarray], qubits: Sequence[int], *, xp=None
) -> np.ndarray:
    """``sum_k K rho K^dag`` for a local channel on ``qubits``.

    Accumulates in place: the first term's fresh output array becomes the
    accumulator instead of allocating (and re-allocating) a zeros array per
    Kraus operator.
    """
    out = None
    for k in kraus_ops:
        term = apply_unitary(rho, k, qubits, xp=xp)
        if out is None:
            out = term  # apply_unitary returns a fresh array: safe to own
        else:
            out += term
    if out is None:  # empty channel: preserve the historical zeros result
        if xp is None or xp.native:
            return np.zeros_like(np.asarray(rho, dtype=np.complex128))
        return xp.zeros(tuple(int(s) for s in rho.shape))
    return out


def run_circuit_density(
    circuit: Circuit,
    rho: np.ndarray | None = None,
    noise_model=None,
    *,
    xp=None,
) -> np.ndarray:
    """Evolve a density matrix through ``circuit``.

    ``noise_model`` (see :mod:`repro.quantum.noise`) is queried after every
    gate for the Kraus channel to insert; ``None`` gives ideal evolution.
    With a non-native ``xp`` namespace the walk runs on that device and the
    result returns as NumPy.
    """
    if not circuit.is_bound:
        raise ValueError("run_circuit_density requires a bound circuit")
    dim = 2**circuit.num_qubits
    if rho is None:
        rho = np.zeros((dim, dim), dtype=np.complex128)
        rho[0, 0] = 1.0
    else:
        rho = np.asarray(rho, dtype=np.complex128)
        if rho.shape != (dim, dim):
            raise ValueError(f"rho shape {rho.shape} != ({dim}, {dim})")
    native = xp is None or xp.native
    if not native:
        rho = xp.to_device(rho)
    for op in circuit:
        rho = apply_unitary(rho, gate_matrix(op.gate, op.param), op.qubits, xp=xp)
        if noise_model is not None:
            for kraus, qubits in noise_model.channels_after(op):
                rho = apply_kraus(rho, kraus, qubits, xp=xp)
    return rho if native else xp.to_numpy(rho)


def expectation_density(rho: np.ndarray, observable) -> float:
    """``tr(O rho)`` for PauliString / PauliSum / dense observable."""
    rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
    matrix = (
        observable.to_matrix()
        if isinstance(observable, (PauliString, PauliSum))
        else np.asarray(observable, dtype=np.complex128)
    )
    return float(np.trace(matrix @ rho).real)


def purity(rho: np.ndarray) -> float:
    """``tr(rho^2)``; 1 for pure states."""
    rho = np.asarray(rho, dtype=np.complex128)
    return float(np.trace(rho @ rho).real)


def partial_trace(rho: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Trace out all qubits not in ``keep`` (order of ``keep`` preserved)."""
    rho = check_square(np.asarray(rho, dtype=np.complex128), "rho")
    n = check_power_of_two(rho.shape[0], "rho dimension")
    keep = list(keep)
    drop = [q for q in range(n) if q not in keep]
    tensor = rho.reshape((2,) * (2 * n))
    for q in sorted(drop, reverse=True):
        tensor = np.trace(tensor, axis1=q, axis2=q + tensor.ndim // 2)
        # after trace, axes shrink by one on each side; recompute implicitly
    dim_keep = 2 ** len(keep)
    return tensor.reshape(dim_keep, dim_keep)


# --------------------------------------------------------------------------
# Batched density engine
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DensityStep:
    """One gate of a batched density program, plus its trailing channels.

    ``matrix`` is the dense bound gate (``None`` for an angle-slot step,
    which reads ``sign * angles[:, slot]`` -- ``sign=-1`` marks the folded
    inverse ``R(-theta) = R(theta)^dag``).  ``channels`` are the noise
    channels inserted after the gate: ``(kraus_tuple, qubits)`` pairs, the
    output of ``NoiseModel.channels_after`` frozen at compile time.
    """

    gate: str
    qubits: tuple[int, ...]
    matrix: np.ndarray | None
    slot: int | None = None
    sign: float = 1.0
    channels: tuple[tuple[tuple[np.ndarray, ...], tuple[int, ...]], ...] = ()

    @cached_property
    def superop(self) -> np.ndarray | None:
        """``U (x) conj(U)`` for a bound step (``None`` for a slot step).

        The stacked walker applies it in one einsum pass over the step's
        per-qubit axes instead of two one-sided passes -- the walk is
        memory-bound, so halving (or, for channels, 2x-per-Kraus-op
        reducing) the number of full-tensor sweeps is the speedup.
        """
        if self.matrix is None:
            return None
        return _superop_tensor(self.matrix)

    @cached_property
    def channel_superops(
        self,
    ) -> tuple[tuple[np.ndarray, tuple[int, ...]], ...]:
        """Each trailing channel as one ``sum_k K (x) conj(K)`` tensor."""
        return tuple(
            (_channel_superop(kraus), qubits) for kraus, qubits in self.channels
        )


@dataclass(frozen=True)
class BatchedDensityProgram:
    """A compiled density template: per-gate walk, whole batch per pass.

    Contains only tuples and NumPy arrays (picklable, shipped to process
    workers like every compiled program).  No fusion, no reordering: the
    step sequence mirrors the source gate list exactly so Kraus insertion
    points are preserved.
    """

    num_qubits: int
    num_slots: int
    steps: tuple[DensityStep, ...] = field(default=())
    name: str = "density[batched]"

    #: Dispatch marker shared with ParametricCompiledCircuit: the program
    #: consumes raw angle chunks via ``evolve_batch``.
    consumes_angles = True

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_kernel_passes(self) -> int:
        """Stacked ``(B, 4^n)`` passes one evolution costs.

        Each step is one superoperator pass (``U (x) conj(U)`` applied to
        its row/column axis pair) plus one per inserted channel (the
        channel's Kraus sum collapses into a single ``sum_k K (x) conj(K)``
        pass at compile time) -- the count the ``CircuitTask`` cost model
        prices at ``4^n`` apiece.
        """
        return sum(1 + len(step.channels) for step in self.steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedDensityProgram({self.name!r}, qubits={self.num_qubits}, "
            f"slots={self.num_slots}, steps={self.num_steps}, "
            f"passes={self.num_kernel_passes})"
        )


def _slot_rotations() -> dict:
    # Shared with the batched statevector engine: the single-qubit rotations
    # that may stay symbolic.  Imported lazily to keep this module's import
    # graph light (batched builds on compile/statevector, not on density).
    from repro.quantum.batched import BATCHED_ROTATIONS

    return BATCHED_ROTATIONS


def compile_density_template(
    circuit: Circuit,
    noise_model=None,
    cache=None,
    array_backend: str = "numpy",
) -> BatchedDensityProgram:
    """Compile a (possibly unbound) circuit into a batched density program.

    The walk keeps the gate order verbatim and freezes each gate's trailing
    noise channels into its :class:`DensityStep`; unbound parameters must
    be single-qubit rotations from ``BATCHED_ROTATIONS`` (encoding slots),
    exactly as in :func:`repro.quantum.batched.compile_parametric`.

    ``cache`` is a :class:`~repro.quantum.compile.CompileCache`; pass the
    process-wide parametric cache to share its LRU.  Keys include the
    noise-model content hash and ``array_backend``.
    """
    if cache is not None:
        from repro.quantum.batched import template_fingerprint

        key = (
            "density-batched",
            None if noise_model is None else hash(noise_model),
            array_backend,
        ) + template_fingerprint(circuit)
        return cache.get_by_key(
            key, lambda: compile_density_template(circuit, noise_model)
        )
    rotations = _slot_rotations()
    steps: list[DensityStep] = []
    for op in circuit.operations:
        channels: tuple = ()
        if noise_model is not None:
            channels = tuple(
                (tuple(np.asarray(k, dtype=np.complex128) for k in kraus), tuple(qs))
                for kraus, qs in noise_model.channels_after(op)
            )
        if isinstance(op.param, Parameter):
            if op.gate not in rotations or len(op.qubits) != 1:
                raise ValueError(
                    f"cannot keep {op.gate!r} parametric in a batched density "
                    f"template: only single-qubit rotations "
                    f"{sorted(rotations)} may stay unbound"
                )
            steps.append(
                DensityStep(op.gate, op.qubits, None, op.param.index, 1.0, channels)
            )
        else:
            steps.append(
                DensityStep(
                    op.gate,
                    op.qubits,
                    np.asarray(gate_matrix(op.gate, op.param), dtype=np.complex128),
                    None,
                    1.0,
                    channels,
                )
            )
    return BatchedDensityProgram(
        num_qubits=circuit.num_qubits,
        num_slots=circuit.num_parameters,
        steps=tuple(steps),
        name=f"{circuit.name}[density-batched]",
    )


def concat_density_programs(*programs: BatchedDensityProgram) -> BatchedDensityProgram:
    """Sequential composition of batched density programs.

    Suffix programs must not introduce angle slots beyond the first
    program's table (the sweep composes an unbound encoder with bound
    Ansatz/fold suffixes, mirroring ``extend_template``).
    """
    if not programs:
        raise ValueError("concat_density_programs needs at least one program")
    first = programs[0]
    for p in programs[1:]:
        if p.num_qubits != first.num_qubits:
            raise ValueError("qubit count mismatch in concat_density_programs")
        if p.num_slots > first.num_slots:
            raise ValueError(
                "suffix programs must not add angle slots beyond the first's"
            )
    return BatchedDensityProgram(
        num_qubits=first.num_qubits,
        num_slots=first.num_slots,
        steps=tuple(s for p in programs for s in p.steps),
        name="+".join(p.name for p in programs),
    )


def _invert_step(step: DensityStep) -> DensityStep:
    """The adjoint of a step's gate; channels ride along unchanged.

    ``NoiseModel.channels_after`` keys on gate arity/qubits only, and a
    folded inverse has the same arity on the same qubits -- so inserting
    the *same* channels after each inverted gate is exactly what the
    per-sample walk over ``fold_circuit`` output does.
    """
    if step.matrix is None:
        return dataclasses.replace(step, sign=-step.sign)
    return dataclasses.replace(
        step, matrix=np.ascontiguousarray(step.matrix.conj().T)
    )


def fold_density_program(
    program: BatchedDensityProgram, scale: int
) -> BatchedDensityProgram:
    """Local unitary folding at step level: ``C (C^dag C)^k``, scale ``2k+1``.

    The batched counterpart of :func:`repro.quantum.mitigation.fold_circuit`
    working on unbound templates: a bound step inverts to its conjugate
    transpose, an angle-slot step inverts by negating its sign
    (``R(-theta) = R(theta)^dag`` for the Pauli/phase rotations that may
    stay symbolic).
    """
    if scale < 1 or scale % 2 == 0:
        raise ValueError(f"fold scale must be an odd positive int, got {scale}")
    if scale == 1:
        return program
    inverse = tuple(_invert_step(s) for s in reversed(program.steps))
    steps = list(program.steps)
    for _ in range((scale - 1) // 2):
        steps.extend(inverse)
        steps.extend(program.steps)
    return dataclasses.replace(
        program, steps=tuple(steps), name=f"{program.name}[scale={scale}]"
    )


#: Lowercase letters label the stacked rho axes (batch + 2n); superoperator
#: output indices use uppercase so the two alphabets never collide.
_EINSUM_AXES = string.ascii_lowercase
_SUPEROP_AXES = string.ascii_uppercase


def _superop_tensor(matrix: np.ndarray) -> np.ndarray:
    """``U (x) conj(U)`` as a ``(4,)*2k`` tensor in per-qubit layout.

    The stacked walker vectorizes rho with ONE size-4 axis per qubit (the
    qubit's row and column bits combined, row bit major), so a ``k``-qubit
    superoperator is a plain ``k``-axis gate application -- the cheapest
    contraction pattern einsum has.  Axis order here: ``k`` output axes
    then ``k`` input axes, each ``4 = (row bit, column bit)``.
    """
    m = np.asarray(matrix, dtype=np.complex128)
    k = m.shape[0].bit_length() - 1
    s = np.einsum("ij,kl->ikjl", m, m.conj())  # (r_out, c_out, r_in, c_in)
    s = s.reshape((2,) * (4 * k))
    perm = [axis for i in range(k) for axis in (i, k + i)]
    perm += [axis for i in range(k) for axis in (2 * k + i, 3 * k + i)]
    return np.ascontiguousarray(np.transpose(s, perm).reshape((4,) * (2 * k)))


def _channel_superop(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """``sum_k K (x) conj(K)``: a whole channel as one superoperator pass."""
    out = None
    for k_op in kraus:
        term = _superop_tensor(k_op)
        out = term if out is None else out + term
    if out is None:  # empty channel: annihilates everything, like apply_kraus
        return np.zeros((4, 4), dtype=np.complex128)
    return out


def _apply_superop(tensor, superop_dev, qubits, xp):
    """One superoperator pass on the stacked ``(B, 4,..,4)`` rho tensor.

    Contracts the superop's input axes with the step's qubit axes
    (``1 + q``) in a single einsum whose output axes stay in place -- no
    transpose copies, and ``U rho U^dag`` (or a whole Kraus sum) costs one
    full-tensor sweep instead of two (or ``2 * len(kraus)``).  The walk is
    memory-bound, so the sweep count is the wall-clock.
    """
    k = len(qubits)
    sub = _EINSUM_AXES[: tensor.ndim]
    axes = [1 + q for q in qubits]
    out_labels = _SUPEROP_AXES[:k]
    gate_sub = out_labels + "".join(sub[a] for a in axes)
    out = list(sub)
    for label, axis in zip(out_labels, axes, strict=True):
        out[axis] = label
    return xp.einsum(f"{gate_sub},{sub}->{''.join(out)}", superop_dev, tensor)


def _apply_superop_per_sample(tensor, superops, qubit, xp):
    """Per-sample ``(B, 4, 4)`` rotation superops on one qubit's axis."""
    sub = _EINSUM_AXES[: tensor.ndim]  # sub[0] is the batch axis
    axis = 1 + qubit
    out = sub[:axis] + "Z" + sub[axis + 1 :]
    return xp.einsum(f"{sub[0]}Z{sub[axis]},{sub}->{out}", superops, tensor)


def run_batched_density(
    program: BatchedDensityProgram, angles: np.ndarray, *, xp=None
) -> np.ndarray:
    """Evolve a |0..0><0..0| batch through ``program`` in stacked passes.

    ``angles`` is ``(batch, num_slots)`` (trailing axes flattened C-order,
    as in ``apply_batch``); returns ``(batch, 2^n, 2^n)`` NumPy density
    matrices.  The whole batch advances gate by gate -- identical insertion
    semantics to :func:`run_circuit_density`, but each gate/Kraus operator
    is one ``(B, 4^n)``-sized kernel instead of ``B`` Python walks.
    """
    from repro.xp import get_namespace

    if xp is None:
        xp = get_namespace("numpy")
    angles = np.asarray(angles, dtype=float)
    if angles.ndim > 2:
        angles = angles.reshape(angles.shape[0], -1)
    if angles.ndim != 2 or angles.shape[1] != program.num_slots:
        raise ValueError(
            f"angles shape {angles.shape} incompatible with "
            f"{program.num_slots} angle slots"
        )
    b = angles.shape[0]
    n = program.num_qubits
    dim = 2**n
    a_dev = angles if xp.native else xp.to_device(angles)
    rotations = _slot_rotations()

    # Vectorized rho: one size-4 axis per qubit (row bit, column bit), so
    # |0..0><0..0| is the all-zeros index.  See :func:`_superop_tensor`.
    rho = xp.zeros((b,) + (4,) * n)
    rho[(slice(None),) + (0,) * n] = 1.0
    for step in program.steps:
        if step.matrix is None:
            slot_angles = step.sign * a_dev[:, step.slot]
            mats = (
                rotations[step.gate](slot_angles)
                if xp.native
                else rotation_batch_xp(step.gate, slot_angles, xp)
            )
            superops = xp.einsum("bij,bkl->bikjl", mats, xp.conj(mats)).reshape(
                b, 4, 4
            )
            rho = _apply_superop_per_sample(rho, superops, step.qubits[0], xp)
        else:
            rho = _apply_superop(
                rho, xp.to_device_cached(step.superop), step.qubits, xp
            )
        for superop, qubits in step.channel_superops:
            rho = _apply_superop(rho, xp.to_device_cached(superop), qubits, xp)
    # Unpack the per-qubit (row, col) axes back into (B, 2^n, 2^n) matrices:
    # interleaved (r0, c0, r1, c1, ...) -> (r0..r_{n-1} | c0..c_{n-1}).
    tensor = rho.reshape((b,) + (2,) * (2 * n))
    src = tuple(1 + 2 * q for q in range(n)) + tuple(2 + 2 * q for q in range(n))
    dst = tuple(1 + q for q in range(n)) + tuple(1 + n + q for q in range(n))
    tensor = xp.moveaxis(tensor, src, dst)
    return xp.to_numpy(xp.ascontiguous(tensor).reshape(b, dim, dim))
