"""Noisy-backend pipeline smoke: density sweep through live dispatch.

Run by the CI ``runtime-smoke`` job: a 3-qubit depolarising-noise Q-matrix
sweep end to end through the persistent :class:`ExecutionRuntime` (spawn
process pool, ``lpt`` policy) plus a fitted :class:`HybridPipeline`, so
the density path can never drift from the dispatch layer untested.
Asserts completion and serial/parallel bit-equality, not timing.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import HybridPipeline
from repro.core.strategies import ObservableConstruction
from repro.hpc.runtime import ExecutionRuntime
from repro.quantum.backends import DensityMatrixBackend, MitigatedBackend
from repro.quantum.noise import NoiseModel

NUM_QUBITS = 3
SAMPLES = 6
CHUNK = 2


def build_workload():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, size=(SAMPLES, 4, NUM_QUBITS))
    y = (angles[:, 0, 0] > np.pi).astype(int)
    return angles, y


def test_noisy_pipeline_streams_through_process_pool():
    angles, y = build_workload()
    strategy = ObservableConstruction(qubits=NUM_QUBITS, locality=1)
    backend = DensityMatrixBackend(NoiseModel.depolarizing(0.02))
    from repro.core.features import generate_features

    reference = generate_features(strategy, angles, backend=backend, chunk_size=CHUNK)

    with ExecutionRuntime("process", 2, start_method="spawn") as runtime:
        # Exact Kraus evolution => serial and pooled sweeps are bit-identical.
        q = generate_features(
            strategy,
            angles,
            backend=backend,
            executor=runtime,
            dispatch_policy="lpt",
            chunk_size=CHUNK,
        )
        assert np.array_equal(q, reference)

        pipeline = HybridPipeline(
            strategy=strategy,
            backend=backend,
            executor=runtime,
            chunk_size=CHUNK,
            scheduling_policy="lpt",
        ).fit(angles, y)
        preds = pipeline.predict(angles)
        assert runtime.pools_created == 1

    assert pipeline.report_.dispatch is not None
    assert preds.shape == y.shape


def test_mitigated_backend_through_process_pool():
    angles, _ = build_workload()
    strategy = ObservableConstruction(qubits=NUM_QUBITS, locality=1)
    backend = MitigatedBackend(
        DensityMatrixBackend(NoiseModel.depolarizing(0.02)), scales=(1, 3)
    )
    from repro.core.features import generate_features

    reference = generate_features(strategy, angles, backend=backend, chunk_size=CHUNK)
    with ExecutionRuntime("process", 2, start_method="spawn") as runtime:
        q = generate_features(
            strategy,
            angles,
            backend=backend,
            executor=runtime,
            dispatch_policy="lpt",
            chunk_size=CHUNK,
        )
    assert np.array_equal(q, reference)
