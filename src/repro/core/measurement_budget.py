"""Measurement-budget calculus: Propositions 1-2, Theorems 3-4, Table II.

Everything the paper proves about *how many shots the quantum computer must
fire* is implemented here with explicit constants, so benches can print the
full Table II grid and the error-propagation experiments can check the
theorems empirically.

Conventions: outputs are shot counts (ints, ceil'd); epsilon_H is the
per-entry additive error of the Q-matrix estimate; epsilon the final loss
error; delta the total failure probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "proposition1_direct_measurements",
    "proposition2_shadow_measurements",
    "theorem3_required_entry_error",
    "theorem4_required_entry_error",
    "table2_row",
    "table2_grid",
    "rmse_loss_difference",
]


# ------------------------------------------------------------ Propositions
def proposition1_direct_measurements(
    m: int, d: int, epsilon_h: float, delta: float
) -> int:
    """Proposition 1: total shots for all m*d quantum-neuron estimates.

    Hoeffding + union bound: per neuron ``t >= (2/eps_H^2) ln(2md/delta)``,
    duplicated over the m*d grid.
    """
    _check(m, d, epsilon_h, delta)
    per_entry = np.ceil(2.0 / epsilon_h**2 * np.log(2.0 * m * d / delta))
    return int(per_entry) * m * d


def proposition2_shadow_measurements(
    p: int,
    d: int,
    max_shadow_norm_sq: float,
    epsilon_h: float,
    delta: float,
    m: int | None = None,
    q: int | None = None,
) -> int:
    """Proposition 2: total snapshots with classical shadows.

    Per (Ansatz, data point): ``t = 34 max_k ||O_k||_S^2 / eps_H^2`` shots
    per group and ``s = 2 ln(2md/delta)`` groups; duplicated over p*d shadow
    batches (all q observables share one batch).
    """
    if m is None:
        if q is None:
            raise ValueError("provide m or q")
        m = p * q
    _check(m, d, epsilon_h, delta)
    if p < 1:
        raise ValueError("p must be >= 1")
    if max_shadow_norm_sq <= 0:
        raise ValueError("shadow norm must be positive")
    per_group = np.ceil(34.0 * max_shadow_norm_sq / epsilon_h**2)
    groups = np.ceil(2.0 * np.log(2.0 * m * d / delta))
    return int(per_group) * int(groups) * p * d


# ---------------------------------------------------------------- Theorems
def theorem3_required_entry_error(
    q_matrix: np.ndarray, y: np.ndarray, epsilon: float
) -> float:
    """Theorem 3: the ||Qhat - Q||_max bound that guarantees dL_RMSE < eps.

    ``min( min_sv / sqrt(min(m,d) m d), eps / (6 sqrt(m) ||Y|| ||Q|| ||Q+||^2) )``
    evaluated with Q's own singular values (the min over sigma_min(Q),
    sigma_min(Qhat) collapses to sigma_min(Q) for the a-priori budget).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    q_matrix = np.asarray(q_matrix, dtype=float)
    y = np.asarray(y, dtype=float)
    d, m = q_matrix.shape
    sv = np.linalg.svd(q_matrix, compute_uv=False)
    nonzero = sv[sv > max(d, m) * np.finfo(float).eps * (sv[0] if sv.size else 1.0)]
    sigma_min = float(nonzero[-1]) if nonzero.size else 0.0
    norm_q = float(sv[0]) if sv.size else 0.0
    pinv_norm = 1.0 / sigma_min if sigma_min > 0 else np.inf
    rank_term = sigma_min / np.sqrt(min(m, d) * m * d)
    loss_term = epsilon / (6.0 * np.sqrt(m) * np.linalg.norm(y) * norm_q * pinv_norm**2)
    return float(min(rank_term, loss_term))


def theorem4_required_entry_error(m: int, epsilon: float) -> float:
    """Theorem 4: with ||alpha||_2 <= 1, ``||Qhat - Q||_max < eps / (2 sqrt(m))``
    suffices -- independent of Q's conditioning."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return float(epsilon / (2.0 * np.sqrt(m)))


def rmse_loss_difference(
    q_matrix: np.ndarray, q_hat: np.ndarray, y: np.ndarray, constrained: bool = False
) -> float:
    """Empirical Delta L_RMSE of Eq. 32: refit on Qhat, evaluate on Q.

    ``constrained=True`` uses the l2-ball head of Theorem 4, else the
    pseudoinverse head of Theorem 3.
    """
    from repro.ml.convex import ConstrainedLeastSquares
    from repro.ml.linear import LinearRegression
    from repro.ml.losses import rmse_loss

    q_matrix = np.asarray(q_matrix, dtype=float)
    q_hat = np.asarray(q_hat, dtype=float)
    y = np.asarray(y, dtype=float)
    head = ConstrainedLeastSquares() if constrained else LinearRegression()
    alpha_star = head.__class__().fit(q_matrix, y)
    alpha_hat = head.__class__().fit(q_hat, y)
    loss_star = rmse_loss(y, q_matrix @ _coef(alpha_star))
    loss_hat = rmse_loss(y, q_matrix @ _coef(alpha_hat))
    return float(loss_hat - loss_star)


def _coef(model) -> np.ndarray:
    return model.coef_


# ----------------------------------------------------------------- Table II
@dataclass(frozen=True)
class Table2Row:
    """One Table II cell pair: direct vs shadows total measurements."""

    strategy: str
    p: int
    q: int
    direct: int
    shadows: int

    @property
    def winner(self) -> str:
        """Which column the paper bolds for this configuration."""
        return "direct" if self.direct <= self.shadows else "shadows"


def table2_row(
    strategy: str,
    p: int,
    q: int,
    d: int,
    epsilon: float,
    delta: float,
    max_shadow_norm_sq: float,
    asymptotic: bool = False,
) -> Table2Row:
    """Evaluate one row of Table II with the constrained-head epsilon_H.

    Table II is stated for the l2-constrained regression (Theorem 4):
    ``eps_H = eps / (2 sqrt(m))``; substituting into Propositions 1/2 yields
    the printed ``O(m^2 d / eps^2)`` and ``O(m p d max||O||_S^2 / eps^2)``
    scalings.

    ``asymptotic=True`` drops the Hoeffding/median-of-means constants (34,
    2, ...) and evaluates the bare big-O expressions -- this reproduces the
    paper's *bold pattern* exactly: direct/shadows = q / ||O||_S^2, so
    shadows win iff the observable count exceeds the worst shadow norm.
    ``asymptotic=False`` keeps every constant, the numbers one would
    actually budget with.
    """
    m = p * q
    if asymptotic:
        log_term = np.log(m * d / delta)
        direct = int(np.ceil(m**2 * d * log_term / epsilon**2))
        shadows = int(np.ceil(m * p * d * max_shadow_norm_sq * log_term / epsilon**2))
    else:
        eps_h = theorem4_required_entry_error(m, epsilon)
        direct = proposition1_direct_measurements(m, d, eps_h, delta)
        shadows = proposition2_shadow_measurements(
            p, d, max_shadow_norm_sq, eps_h, delta, m=m
        )
    return Table2Row(strategy=strategy, p=p, q=q, direct=direct, shadows=shadows)


def table2_grid(
    k: int,
    n: int,
    d: int,
    order: int,
    locality: int,
    epsilon: float,
    delta: float,
    asymptotic: bool = False,
) -> list[Table2Row]:
    """All four Table II rows for a concrete configuration.

    ``k`` Ansatz parameters, ``n`` qubits.  As in the paper: the
    Ansatz-expansion row measures the single global observable (shadow norm
    up to ``4^n``); the generic hybrid row makes no locality promise (worst
    case ``4^n``); the observable-construction and L-local-hybrid rows use
    L-local Paulis (``4^L``).
    """
    from repro.core.shifts import count_shift_configurations
    from repro.quantum.observables import count_local_paulis

    p_exp = count_shift_configurations(k, order)
    q_loc = count_local_paulis(n, locality)
    rows = [
        table2_row("ansatz_expansion", p_exp, 1, d, epsilon, delta, 4.0**n, asymptotic),
        table2_row(
            "observable_construction", 1, q_loc, d, epsilon, delta, 4.0**locality, asymptotic
        ),
        table2_row("hybrid", p_exp, q_loc, d, epsilon, delta, 4.0**n, asymptotic),
        table2_row(
            "local_hybrid", p_exp, q_loc, d, epsilon, delta, 4.0**locality, asymptotic
        ),
    ]
    return rows


def _check(m: int, d: int, epsilon: float, delta: float) -> None:
    if m < 1 or d < 1:
        raise ValueError("m and d must be >= 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
