"""Circuit IR tests: construction, binding, composition, inversion."""

import numpy as np
import pytest

from repro.quantum.circuit import Circuit, Operation, Parameter
from repro.quantum.statevector import run_circuit, zero_state


def test_append_chaining_and_counts():
    c = Circuit(3)
    c.append("h", 0).append("cnot", (0, 1)).append("ry", 2, 0.5)
    assert c.num_gates == 3
    assert c.gate_counts() == {"h": 1, "cnot": 1, "ry": 1}


def test_parameter_registration_order():
    c = Circuit(2)
    c.append("rx", 0, "a").append("ry", 1, "b").append("rz", 0, "a")
    assert c.num_parameters == 2
    assert [p.name for p in c.parameters] == ["a", "b"]
    assert not c.is_bound


def test_bind_produces_concrete_circuit():
    c = Circuit(2)
    c.append("rx", 0, "a").append("ry", 1, "b")
    bound = c.bind([0.1, 0.2])
    assert bound.is_bound
    assert bound.operations[0].param == pytest.approx(0.1)
    assert bound.operations[1].param == pytest.approx(0.2)
    # Original unchanged.
    assert not c.is_bound


def test_bind_wrong_length():
    c = Circuit(1)
    c.append("rx", 0, "a")
    with pytest.raises(ValueError):
        c.bind([0.1, 0.2])


def test_validation_errors():
    c = Circuit(2)
    with pytest.raises(KeyError):
        c.append("bogus", 0)
    with pytest.raises(ValueError):
        c.append("cnot", (0,))  # arity mismatch
    with pytest.raises(ValueError):
        c.append("cnot", (1, 1))  # duplicate qubits
    with pytest.raises(ValueError):
        c.append("h", 5)  # out of range
    with pytest.raises(ValueError):
        c.append("rx", 0)  # missing parameter
    with pytest.raises(ValueError):
        c.append("h", 0, 0.3)  # parameter on fixed gate


def test_depth_layering():
    c = Circuit(3)
    c.append("h", 0).append("h", 1).append("h", 2)  # one layer
    assert c.depth() == 1
    c.append("cnot", (0, 1))  # second layer
    assert c.depth() == 2
    c.append("h", 2)  # fits in layer 2
    assert c.depth() == 2


def test_compose_requires_bound():
    a = Circuit(2)
    a.append("rx", 0, "t")
    b = Circuit(2)
    b.append("h", 0)
    with pytest.raises(ValueError):
        a.compose(b)
    bound = a.bind([0.3]).compose(b)
    assert bound.num_gates == 2


def test_compose_width_mismatch():
    a = Circuit(2)
    b = Circuit(3)
    with pytest.raises(ValueError):
        a.compose(b)


def test_inverse_round_trip():
    c = Circuit(2)
    c.append("h", 0).append("s", 1).append("rx", 0, 0.8)
    c.append("cnot", (0, 1)).append("t", 1)
    forward = run_circuit(c)
    back = run_circuit(c.inverse(), state=forward)
    expected = zero_state(2)
    # Global phase-insensitive comparison.
    overlap = abs(np.vdot(expected, back))
    assert overlap == pytest.approx(1.0, abs=1e-10)


def test_inverse_requires_bound():
    c = Circuit(1)
    c.append("rx", 0, "t")
    with pytest.raises(ValueError):
        c.inverse()


def test_copy_is_independent():
    c = Circuit(2)
    c.append("h", 0)
    d = c.copy()
    d.append("h", 1)
    assert c.num_gates == 1
    assert d.num_gates == 2


def test_operation_bound_resolution():
    p = Parameter("x", 0)
    op = Operation("rx", (0,), p)
    assert not op.is_bound
    resolved = op.bound([1.5])
    assert resolved.is_bound
    assert resolved.param == pytest.approx(1.5)


def _unitary(c: Circuit) -> np.ndarray:
    """Dense unitary via the identity-rows trick (rows evolve to U e_i)."""
    return run_circuit(c, state=np.eye(2**c.num_qubits, dtype=complex)).T


ALL_GATES = [
    ("i", 1), ("x", 1), ("y", 1), ("z", 1), ("h", 1),
    ("s", 1), ("sdg", 1), ("t", 1), ("tdg", 1),
    ("rx", 1), ("ry", 1), ("rz", 1), ("phase", 1),
    ("cnot", 2), ("cx", 2), ("cz", 2), ("swap", 2),
    ("crx", 2), ("cry", 2), ("crz", 2),
]


@pytest.mark.parametrize("gate,width", ALL_GATES, ids=[g for g, _ in ALL_GATES])
def test_inverse_double_round_trip_per_gate(gate, width):
    """c.inverse().inverse() reproduces c exactly for every supported gate.

    Regression for the t/sdg inverse paths: ``t`` now maps to ``tdg`` (not a
    phase gate), so double inversion is the structural identity and the
    unitary matches exactly -- not merely up to phase.
    """
    from repro.quantum.gates import is_parametric

    c = Circuit(2)
    c.append(gate, 0 if width == 1 else (0, 1), 0.7 if is_parametric(gate) else None)
    round_trip = c.inverse().inverse()
    assert round_trip.operations == c.operations
    assert np.allclose(_unitary(round_trip), _unitary(c), atol=1e-12)
    # And the single inverse really is the adjoint.
    assert np.allclose(_unitary(c.inverse()), _unitary(c).conj().T, atol=1e-12)


def test_inverse_round_trip_mixed_circuit():
    c = Circuit(3)
    c.append("t", 0).append("sdg", 1).append("h", 2)
    c.append("cnot", (0, 1)).append("crz", (1, 2), 1.1).append("tdg", 0)
    assert c.inverse().inverse().operations == c.operations
    assert np.allclose(_unitary(c.inverse()) @ _unitary(c), np.eye(8), atol=1e-12)


def test_t_inverse_is_tdg():
    c = Circuit(1)
    c.append("t", 0)
    inv = c.inverse()
    assert [op.gate for op in inv] == ["tdg"]
    assert np.allclose(_unitary(inv), _unitary(c).conj().T)
