"""Profiling and tracing tests."""

import time

import pytest

from repro.hpc.profiling import Counter, StageTimer, scaling_report
from repro.hpc.scheduler import schedule
from repro.hpc.tracing import Trace, TraceEvent


def test_stage_timer_accumulates():
    timer = StageTimer()
    with timer.stage("a"):
        time.sleep(0.01)
    with timer.stage("a"):
        time.sleep(0.01)
    with timer.stage("b"):
        pass
    assert timer.total("a") >= 0.02
    assert timer.counts["a"] == 2
    assert "a" in timer.report() and "b" in timer.report()


def test_stage_timer_records_on_exception():
    timer = StageTimer()
    with pytest.raises(RuntimeError), timer.stage("boom"):
        raise RuntimeError()
    assert timer.counts["boom"] == 1


def test_counter():
    c = Counter()
    c.add("shots", 100)
    c.add("shots", 50)
    assert c.get("shots") == 150
    assert c.get("missing") == 0


def test_trace_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(node=0, label="x", start=1.0, stop=0.5)


def test_trace_metrics():
    t = Trace()
    t.record(0, "a", 0.0, 2.0)
    t.record(1, "b", 0.0, 1.0)
    assert t.makespan == 2.0
    assert t.node_busy(0) == 2.0
    assert t.node_busy(1) == 1.0
    assert t.utilization(2) == pytest.approx(0.75)


def test_trace_from_assignment():
    costs = [1.0, 2.0, 3.0, 4.0]
    a = schedule(costs, 2, "lpt")
    trace = Trace.from_assignment(a, costs)
    assert trace.makespan == pytest.approx(a.makespan)
    total_busy = sum(trace.node_busy(n) for n in range(2))
    assert total_busy == pytest.approx(sum(costs))


def test_ascii_gantt_renders():
    costs = [1.0, 1.0, 2.0]
    a = schedule(costs, 2, "block")
    trace = Trace.from_assignment(a, costs)
    art = trace.ascii_gantt(2, width=40)
    lines = art.splitlines()
    assert len(lines) == 2
    assert all("#" in line for line in lines)


def test_scaling_report_format():
    from repro.hpc.cluster import ScalingPoint

    text = scaling_report(
        [ScalingPoint(num_nodes=1, time=1.0, speedup=1.0, efficiency=1.0)]
    )
    assert "nodes" in text and "1.00" in text
