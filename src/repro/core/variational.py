"""Variational QNN baseline (paper Table I, left column; Table III row
"Variational").

The circuit-centric classifier of Schuld et al. [7]: encode (Fig. 7), apply
the parameterised Ansatz (Fig. 8, zero-initialised as in Sec. VII.A), measure
a fixed observable, and update parameters by gradient descent with exact
parameter-shift gradients -- the full hybrid quantum-classical feedback loop
the post-variational method eliminates.

* Binary: readout ``<Z_0>``; labels mapped to +-1; squared loss (the paper
  reports no comparable loss for the variational model -- it "uses the
  variational Hamiltonian loss function" -- so Tables III/IV print accuracy
  only, as the paper does).
* Multiclass: partition readout [75] -- the 2**n outcome probabilities are
  grouped into classes cyclically and trained with cross-entropy through the
  chain rule over parameter-shifted distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.data.encoding import encode_batch
from repro.ml.metrics import accuracy
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import probabilities, run_circuit

__all__ = ["VariationalClassifier"]

_SHIFT = np.pi / 2


@dataclass
class VariationalClassifier:
    """Parameter-shift-trained variational classifier."""

    circuit: Circuit = field(default_factory=fig8_ansatz)
    num_classes: int = 2
    learning_rate: float = 0.2
    epochs: int = 40
    observable: PauliString | None = None
    theta_: np.ndarray | None = field(default=None, repr=False)
    history_: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.observable is None:
            self.observable = PauliString("Z" + "I" * (self.circuit.num_qubits - 1))

    # ----------------------------------------------------------- internals
    def _readout_binary(self, states: np.ndarray, theta: np.ndarray) -> np.ndarray:
        evolved = run_circuit(self.circuit.bind(theta), state=states)
        return np.asarray(expectation(evolved, self.observable))

    def _class_probs(self, states: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Partition readout: outcome i contributes to class i mod C."""
        evolved = run_circuit(self.circuit.bind(theta), state=states)
        probs = probabilities(evolved)
        d, dim = probs.shape
        grouped = np.zeros((d, self.num_classes))
        for c in range(self.num_classes):
            grouped[:, c] = probs[:, c::self.num_classes].sum(axis=1)
        return grouped

    # ---------------------------------------------------------------- train
    def fit(self, angles: np.ndarray, y: np.ndarray) -> VariationalClassifier:
        states = encode_batch(np.asarray(angles, dtype=float))
        y = np.asarray(y).ravel().astype(int)
        k = self.circuit.num_parameters
        theta = np.zeros(k)  # Sec. VII.A: all initial parameters 0 (identity)
        self.history_ = []

        if self.num_classes == 2:
            targets = 2.0 * y - 1.0  # {0,1} -> {-1,+1}
            for _ in range(self.epochs):
                pred = self._readout_binary(states, theta)
                self.history_.append(float(np.mean((pred - targets) ** 2)))
                grad = np.zeros(k)
                residual = 2.0 * (pred - targets) / targets.size
                for u in range(k):
                    e = np.zeros(k)
                    e[u] = _SHIFT
                    dplus = self._readout_binary(states, theta + e)
                    dminus = self._readout_binary(states, theta - e)
                    grad[u] = float(residual @ (0.5 * (dplus - dminus)))
                theta = theta - self.learning_rate * grad
        else:
            d = y.size
            rows = np.arange(d)
            for _ in range(self.epochs):
                probs = self._class_probs(states, theta)
                eps = 1e-12
                self.history_.append(float(-np.mean(np.log(probs[rows, y] + eps))))
                # dL/dp_c = -1[c == y_i] / p_{y_i}; chain rule through the
                # parameter-shift derivative of each class probability.
                dl_dp = np.zeros_like(probs)
                dl_dp[rows, y] = -1.0 / (probs[rows, y] + eps) / d
                grad = np.zeros(k)
                for u in range(k):
                    e = np.zeros(k)
                    e[u] = _SHIFT
                    pp = self._class_probs(states, theta + e)
                    pm = self._class_probs(states, theta - e)
                    grad[u] = float(np.sum(dl_dp * 0.5 * (pp - pm)))
                theta = theta - self.learning_rate * grad
        self.theta_ = theta
        return self

    # -------------------------------------------------------------- predict
    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("model is not fitted")
        states = encode_batch(np.asarray(angles, dtype=float))
        if self.num_classes == 2:
            return (self._readout_binary(states, self.theta_) >= 0.0).astype(int)
        return np.argmax(self._class_probs(states, self.theta_), axis=1)

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))
