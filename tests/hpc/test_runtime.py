"""Persistent execution runtime tests: lifecycle, dispatch, reconciliation."""

import os
import time

import numpy as np
import pytest

from repro.hpc.runtime import (
    DispatchReport,
    ExecutionRuntime,
    ExecutorConfig,
    TaskCompletion,
    resolve_max_workers,
)


def square(x):
    return x * x


def boom(_):
    raise RuntimeError("task failed")


# ---------------------------------------------------------------- config
def test_auto_workers_resolution():
    cpus = os.cpu_count() or 1
    assert resolve_max_workers(None) == cpus
    assert resolve_max_workers("auto") == cpus
    assert resolve_max_workers(3) == 3
    assert ExecutorConfig(max_workers=None).max_workers == cpus
    assert ExecutorConfig(max_workers="auto").max_workers == cpus


@pytest.mark.parametrize("bad", [0, -2, 1.5, "four", True, [2]])
def test_invalid_workers_rejected(bad):
    with pytest.raises(ValueError):
        ExecutorConfig(max_workers=bad)


def test_invalid_backend_and_start_method():
    with pytest.raises(ValueError):
        ExecutorConfig(backend="gpu")
    with pytest.raises(ValueError):
        ExecutorConfig(backend="process", start_method="teleport")
    # start_method is meaningless off the process backend: reject, don't drop.
    with pytest.raises(ValueError):
        ExecutorConfig(backend="thread", start_method="spawn")
    with pytest.raises(ValueError):
        ExecutorConfig(backend="serial", start_method="fork")


def test_numpy_integer_workers_accepted():
    assert ExecutorConfig(max_workers=np.int64(2)).max_workers == 2


# ------------------------------------------------------------- lifecycle
def test_pool_created_once_and_reused():
    with ExecutionRuntime("thread", 2) as rt:
        assert rt.pools_created == 0  # lazy: no pool until first dispatch
        rt.map(square, [1, 2, 3])
        rt.map(square, [4, 5])
        results, _ = rt.run(square, [6, 7])
        assert rt.pools_created == 1
        assert results == [36, 49]
    assert rt.closed


def test_shutdown_rejects_new_work():
    rt = ExecutionRuntime("thread", 2)
    rt.map(square, [1])
    rt.shutdown()
    for call in (lambda: rt.map(square, [1]), lambda: rt.submit(square, 1)):
        with pytest.raises(RuntimeError):
            call()
    # Serial runtimes enforce the same contract.
    srt = ExecutionRuntime()
    srt.shutdown()
    with pytest.raises(RuntimeError):
        srt.map(square, [1])


def _kill_worker(_):
    os._exit(1)  # simulate a worker crash (breaks the process pool)


def test_broken_process_pool_is_rebuilt():
    """One crashed worker must not permanently poison the runtime."""
    from concurrent.futures import BrokenExecutor

    with ExecutionRuntime("process", 2) as rt:
        fut = rt.submit(_kill_worker, 0)
        with pytest.raises(BrokenExecutor):
            fut.result()
        # Subsequent dispatch rebuilds the pool and succeeds.
        assert rt.map(square, [2, 3]) == [4, 9]
        assert sorted(c.result for c in rt.stream(square, [4, 5])) == [16, 25]
        assert rt.pools_created == 2


def test_reconcile_flags_degenerate_measurement():
    report = DispatchReport(
        policy="lpt",
        backend="thread",
        num_workers=2,
        predicted_costs=(1.0, 2.0),
        measured_seconds=(0.0, 0.0),  # e.g. built from incomplete records
        wall_seconds=0.5,
    )
    assert report.reconcile()["wall_over_replay"] == float("inf")


def test_warm_builds_pool_before_first_dispatch():
    with ExecutionRuntime("thread", 2) as rt:
        rt.warm()
        assert rt.pools_created == 1
        assert rt._warmed_pool is rt._pool
        rt.warm()  # idempotent: repeated warming of a live pool is free
        assert rt.pools_created == 1
        rt.map(square, [1, 2])
        assert rt.pools_created == 1
    serial = ExecutionRuntime()
    serial.warm()  # no-op for inline configs
    assert serial.pools_created == 0
    serial.shutdown()
    with pytest.raises(RuntimeError):
        serial.warm()


def test_serial_runtime_has_no_pool():
    rt = ExecutionRuntime()
    assert rt.map(square, [1, 2, 3]) == [1, 4, 9]
    assert rt.pools_created == 0


def test_single_worker_process_backend_uses_real_pool():
    """process x1 must keep crash isolation / picklability, not run inline."""
    with ExecutionRuntime("process", 1) as rt:
        assert rt.map(square, [2, 3]) == [4, 9]
        assert rt.pools_created == 1
    with ExecutionRuntime("thread", 1) as rt:
        assert rt.map(square, [2]) == [4]  # one thread == inline, no pool
        assert rt.pools_created == 0


# -------------------------------------------------------------- dispatch
def test_submit_returns_future():
    with ExecutionRuntime("thread", 2) as rt:
        fut = rt.submit(square, 7)
        assert fut.result() == 49
    serial = ExecutionRuntime()
    assert serial.submit(square, 3).result() == 9


def test_submit_exception_propagates_via_future():
    serial = ExecutionRuntime()
    assert isinstance(serial.submit(boom, 0).exception(), RuntimeError)
    with ExecutionRuntime("thread", 2) as rt:
        assert isinstance(rt.submit(boom, 0).exception(), RuntimeError)


def test_task_exception_propagates_from_stream():
    with (
        ExecutionRuntime("thread", 2) as rt,
        pytest.raises(RuntimeError, match="task failed"),
    ):
        list(rt.stream(boom, [1, 2]))


@pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3)])
@pytest.mark.parametrize("policy", ["block", "cyclic", "lpt", "work_stealing"])
def test_stream_yields_every_task_once(backend, workers, policy):
    tasks = list(range(11))
    costs = np.linspace(5.0, 1.0, len(tasks))
    with ExecutionRuntime(backend, workers) as rt:
        records = []
        seen = {
            c.index: c.result
            for c in rt.stream(square, tasks, costs=costs, policy=policy, records=records)
        }
    assert seen == {i: i * i for i in tasks}
    assert sorted(r.index for r in records) == tasks
    assert all(r.seconds >= 0 for r in records)


def test_stream_empty_and_cost_mismatch():
    rt = ExecutionRuntime()
    assert list(rt.stream(square, [])) == []
    with pytest.raises(ValueError):
        list(rt.stream(square, [1, 2], costs=[1.0]))


def test_stream_validates_eagerly_at_call_site():
    """Bad arguments raise at stream(), not at the consumer's first next()."""
    rt = ExecutionRuntime()
    with pytest.raises(ValueError):
        rt.stream(square, [1, 2], policy="fifo")
    # Even an empty task list must not swallow a bogus policy/cost vector.
    with pytest.raises(ValueError):
        rt.stream(square, [], policy="fifo")
    with pytest.raises(ValueError):
        rt.stream(square, [1], costs=[1.0, 2.0])


def test_run_order_preserving_under_uneven_work():
    def slow_then_fast(x):
        time.sleep(0.01 if x == 0 else 0.0)
        return x

    with ExecutionRuntime("thread", 4) as rt:
        results, report = rt.run(slow_then_fast, list(range(8)), policy="lpt")
    assert results == list(range(8))
    assert report.num_tasks == 8


def test_stream_in_flight_window_is_bounded():
    """A stalled consumer must not let the pool race through the sweep."""
    import threading

    executed = []
    lock = threading.Lock()

    def task(x):
        with lock:
            executed.append(x)
        return x

    with ExecutionRuntime("thread", 2) as rt:
        gen = rt.stream(task, list(range(30)))
        next(gen)  # consumer takes one block, then stalls
        time.sleep(0.05)  # plenty of time for any submitted task to run
        # window = 2 * workers = 4; one refill of <= window may follow the
        # first wait(), so at most ~2 * window tasks ever started.
        assert len(executed) <= 10
        gen.close()


def test_abandoned_stream_cancels_pending_tasks():
    """Early exit from the stream must not run the whole sweep."""
    import threading

    executed = []
    lock = threading.Lock()

    def slow(x):
        with lock:
            executed.append(x)
        time.sleep(0.02)
        return x

    with ExecutionRuntime("thread", 2) as rt:
        gen = rt.stream(slow, list(range(20)))
        next(gen)
        gen.close()  # triggers the finally-cancel of everything still queued
    # The two in-flight tasks may finish, but the queued tail must not.
    assert len(executed) < 20


# ---------------------------------------------------------------- report
def test_dispatch_report_reconcile_keys_and_sanity():
    with ExecutionRuntime("thread", 2) as rt:
        _, report = rt.run(
            square, list(range(6)), costs=np.arange(6) + 1.0, policy="lpt"
        )
    assert isinstance(report, DispatchReport)
    rec = report.reconcile()
    for key in (
        "projected_makespan",
        "replayed_makespan_s",
        "measured_total_s",
        "wall_s",
        "wall_over_replay",
        "cost_correlation",
    ):
        assert key in rec
    assert rec["projected_makespan"] == pytest.approx(
        report.projected().makespan
    )
    assert rec["measured_total_s"] <= rec["wall_s"] + 1.0  # sanity, not timing
    assert -1.0 <= rec["cost_correlation"] <= 1.0


def test_dispatch_report_empty_tasks():
    rt = ExecutionRuntime()
    results, report = rt.run(square, [])
    assert results == []
    rec = report.reconcile()
    assert rec["projected_makespan"] == 0.0
    assert rec["wall_over_replay"] == 1.0


def test_dispatch_report_from_records_scatters_by_index():
    records = [TaskCompletion(1, "b", 0.2), TaskCompletion(0, "a", 0.1)]
    report = DispatchReport.from_records("lpt", "thread", 2, [3.0, 4.0], records, 0.5)
    assert report.measured_seconds == (0.1, 0.2)
    assert report.predicted_costs == (3.0, 4.0)
