"""End-to-end hybrid HPC-QC pipeline orchestrator.

This is the SC-track system layer: it stages the post-variational workflow
(encode -> dispatch circuit ensemble -> gather Q -> convex fit) through the
HPC substrate, instruments every stage (profiling guide: measure first), and
-- because real quantum hardware is replaced by the simulator -- also
projects wall-clock onto the deterministic cluster model so dispatch
policies can be compared reproducibly.

The quantum workload dispatched per node is exactly what a real deployment
would ship: (fixed circuit, data chunk, shot budget) triples returning
Q-matrix blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.config import UNSET, ExecutionConfig, resolve_call
from repro.core.features import (
    feature_circuit_tasks,
    feature_jobs,
    generate_features,
)
from repro.core.lifecycle import ConfigMirrorMixin
from repro.core.strategies import Strategy
from repro.hpc.cluster import CircuitTask, ClusterModel
from repro.hpc.executor import ParallelExecutor
from repro.hpc.profiling import Counter, StageTimer, dispatch_summary
from repro.hpc.runtime import DispatchReport, ExecutionRuntime
from repro.quantum.backends import QuantumBackend
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import accuracy

__all__ = ["PipelineReport", "HybridPipeline", "PIPELINE_DEFAULT_CONFIG"]

#: The system-layer defaults: the ensemble circuits are fixed, so each is
#: fused once and reused for every chunk/worker (``compile="auto"``), the
#: Q-matrix sweep runs batched where the backend allows it
#: (``vectorize="auto"``), and the analytic projection's default policy
#: (LPT) also orders live dispatch.
PIPELINE_DEFAULT_CONFIG = ExecutionConfig(
    compile="auto", dispatch_policy="lpt", vectorize="auto"
)


@dataclass
class PipelineReport:
    """Everything a run log needs: sizes, timings, projected makespan.

    ``dispatch`` carries the live runtime's measured per-task wall-clock,
    reconciling the analytic makespan projection against reality (see
    :meth:`repro.hpc.runtime.DispatchReport.reconcile`).
    """

    num_features: int
    num_ansatze: int
    num_observables: int
    num_train: int
    timer: StageTimer
    counter: Counter
    projected_makespan: float | None = None
    scheduling_policy: str | None = None
    dispatch: DispatchReport | None = None

    def summary(self) -> str:
        lines = [
            f"ensemble: p={self.num_ansatze} x q={self.num_observables} "
            f"= m={self.num_features} features, d={self.num_train} samples",
            self.timer.report(),
        ]
        if self.projected_makespan is not None:
            lines.append(
                f"projected cluster makespan ({self.scheduling_policy}): "
                f"{self.projected_makespan:.4f}s"
            )
        if self.dispatch is not None:
            lines.append(dispatch_summary(self.dispatch))
        return "\n".join(lines)


@dataclass
class HybridPipeline(ConfigMirrorMixin):
    """Strategy + config + executor + classical head, fully instrumented.

    Execution is configured by ``config=`` (an :class:`ExecutionConfig`;
    :data:`PIPELINE_DEFAULT_CONFIG` -- compiled engine, LPT dispatch -- when
    omitted) or ``device=`` (a :class:`~repro.api.device.QuantumDevice`
    whose runtime replaces the pipeline's own executor).  The loose
    execution kwargs (``estimator``/``shots``/``snapshots``/``chunk_size``/
    ``seed``/``compile``/``backend``/``scheduling_policy``) are deprecated
    shims folded into a config; the resolved values stay readable as
    attributes.

    Executor lifecycle comes from :class:`ExecutorOwnerMixin`: ``close()``
    (or the ``with`` block) releases a :class:`ParallelExecutor` facade's
    pool, while a bare caller-supplied ``ExecutionRuntime`` or a device's
    runtime -- possibly shared with other consumers -- is never shut down
    from here.
    """

    strategy: Strategy = None  # type: ignore[assignment]
    num_classes: int = 2
    estimator: Any = UNSET
    shots: Any = UNSET
    snapshots: Any = UNSET
    l2: float = 1.0
    executor: ParallelExecutor | ExecutionRuntime | None = None
    cluster: ClusterModel | None = None
    # Maps to ExecutionConfig.dispatch_policy (the historical field name:
    # the same policy orders live dispatch and the analytic projection).
    scheduling_policy: Any = UNSET
    chunk_size: Any = UNSET
    seed: Any = UNSET
    compile: Any = UNSET
    backend: QuantumBackend | None = UNSET
    config: ExecutionConfig | None = None
    device: Any = None
    report_: PipelineReport | None = field(default=None, repr=False)
    head_: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.strategy is None:
            raise ValueError("strategy is required")
        cfg, executor = resolve_call(
            self.config,
            self.device,
            self.executor,
            dict(
                estimator=self.estimator,
                shots=self.shots,
                snapshots=self.snapshots,
                chunk_size=self.chunk_size,
                seed=self.seed,
                compile=self.compile,
                dispatch_policy=self.scheduling_policy,
                backend=self.backend,
            ),
            owner="HybridPipeline",
            defaults=PIPELINE_DEFAULT_CONFIG,
            # resolve_call -> __post_init__ -> dataclass __init__ -> caller.
            stacklevel=3,
            # Warn with the kwarg spelling the caller actually wrote.
            aliases={"dispatch_policy": "scheduling_policy"},
        )
        self._apply_config(cfg)
        # One long-lived executor (persistent runtime) per pipeline: the
        # worker pool is created on the first sweep and reused by every
        # subsequent fit/predict until close().  A device's runtime wins.
        self.executor = executor or ParallelExecutor()

    def _mirror_name(self, field_name: str) -> str:
        # The pipeline's historical spelling for the dispatch policy.
        return "scheduling_policy" if field_name == "dispatch_policy" else field_name

    def _default_config(self) -> ExecutionConfig:
        return PIPELINE_DEFAULT_CONFIG

    # ------------------------------------------------------------ workload
    def circuit_tasks(self, num_samples: int) -> list[CircuitTask]:
        """The dispatch units a real cluster would receive.

        Priced by the same cost model (chunk x Ansatz depth x shot budget)
        that orders live dispatch, so the analytic projection and the real
        submission order agree by construction.
        """
        ansatz = self.strategy.ansatz
        if ansatz is not None and ansatz.num_gates == 0:
            # Only a genuinely empty circuit is skipped by the sweep; a
            # parameterless circuit with gates still runs (and costs).
            ansatz = None
        cfg = self._current_config()
        jobs = feature_jobs(
            self.strategy.num_ansatze, num_samples, cfg.resolved_chunk_size
        )
        # Gate count is binding-independent, so the unbound Ansatz prices
        # every instance without compiling anything just for a projection.
        programs = [ansatz] * self.strategy.num_ansatze
        return feature_circuit_tasks(
            jobs,
            programs,
            self.strategy.num_qubits,
            self.strategy.num_observables,
            cfg.estimator,
            cfg.shots,
            cfg.snapshots,
            cfg.backend,
        )

    # ----------------------------------------------------------------- fit
    def fit(self, angles: np.ndarray, y: np.ndarray) -> HybridPipeline:
        timer = StageTimer()
        counter = Counter()
        angles = np.asarray(angles, dtype=float)
        y = np.asarray(y)

        cfg = self._current_config()
        with timer.stage("generate_features"):
            q_matrix, dispatch = generate_features(
                self.strategy,
                angles,
                executor=self.executor,
                return_report=True,
                config=cfg,
            )
        d, p = angles.shape[0], self.strategy.num_ansatze
        # Mitigated backends execute every logical circuit once per fold
        # scale (and draw shots at each scale), so resource accounting
        # multiplies by the backend's repetition factor.
        repetitions = cfg.backend.circuit_repetitions
        counter.add("circuits_executed", p * d * repetitions)
        # Measurement budgets differ by estimator: direct measurement pays
        # ``shots`` per (data point, Ansatz, observable) = shots * Q.size,
        # while classical shadows pay ``snapshots`` per (data point, Ansatz)
        # -- the batch is reused across all q observables (Proposition 2).
        if cfg.estimator == "exact":
            shots_fired = 0
        elif cfg.estimator == "shots":
            shots_fired = cfg.shots * q_matrix.size * repetitions
        else:
            shots_fired = cfg.snapshots * d * p * repetitions
        counter.add("shots_fired", shots_fired)

        with timer.stage("fit_head"):
            if self.num_classes == 2:
                self.head_ = LogisticRegression(l2=self.l2).fit(q_matrix, y)
            else:
                self.head_ = SoftmaxRegression(
                    num_classes=self.num_classes, l2=self.l2
                ).fit(q_matrix, y)

        projected = None
        if self.cluster is not None:
            with timer.stage("cluster_projection"):
                projected, _ = self.cluster.makespan(
                    self.circuit_tasks(angles.shape[0]), self.scheduling_policy
                )

        self.report_ = PipelineReport(
            num_features=self.strategy.num_features,
            num_ansatze=self.strategy.num_ansatze,
            num_observables=self.strategy.num_observables,
            num_train=angles.shape[0],
            timer=timer,
            counter=counter,
            projected_makespan=projected,
            scheduling_policy=self.scheduling_policy if projected is not None else None,
            dispatch=dispatch,
        )
        return self

    # ------------------------------------------------------------- predict
    def _features(self, angles: np.ndarray) -> np.ndarray:
        # Sync first: a post-construction device swap rebinds self.executor,
        # so it must run before the executor= keyword is evaluated.
        cfg = self._current_config()
        return generate_features(
            self.strategy,
            np.asarray(angles, dtype=float),
            executor=self.executor,
            config=cfg,
        )

    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.predict(self._features(angles))

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))

    def loss(self, angles: np.ndarray, y: np.ndarray) -> float:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.loss(self._features(angles), np.asarray(y))
