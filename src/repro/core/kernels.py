"""Quantum fidelity kernels -- the neighbouring model family.

The paper situates post-variational networks against kernel methods
(Sec. III.C cites exponential concentration in quantum kernels [49]).  For
completeness the release ships the fidelity kernel over the Fig. 7
encoding, ``K_ij = |<psi(x_i)|psi(x_j)>|^2``, with a kernel ridge
classifier head -- so the three NISQ model families (variational,
post-variational, kernel) can be compared on identical data.

The Gram matrix is computed with one batched matmul (states are already
batch-encoded), so d = a few hundred is instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.encoding import encode_batch
from repro.ml.metrics import accuracy

__all__ = ["fidelity_kernel", "QuantumKernelClassifier"]


def fidelity_kernel(states_a: np.ndarray, states_b: np.ndarray) -> np.ndarray:
    """``K[i, j] = |<a_i|b_j>|^2`` for two batches of statevectors."""
    a = np.asarray(states_a, dtype=np.complex128)
    b = np.asarray(states_b, dtype=np.complex128)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("state batches must be (d, dim) with equal dim")
    overlaps = a.conj() @ b.T
    return np.abs(overlaps) ** 2


@dataclass
class QuantumKernelClassifier:
    """Kernel ridge classification on the fidelity kernel.

    Solves ``(K + lambda d I) alpha = y_pm`` with +-1 targets; prediction is
    the sign of ``K(x, X_train) alpha``.  Kernel ridge (rather than a full
    SVM) keeps the head a closed-form convex solve, matching the
    post-variational spirit.
    """

    ridge_lambda: float = 1e-3
    alpha_: np.ndarray | None = field(default=None, repr=False)
    train_states_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, angles: np.ndarray, y: np.ndarray) -> QuantumKernelClassifier:
        y = np.asarray(y).ravel().astype(int)
        if set(np.unique(y)) - {0, 1}:
            raise ValueError("binary labels must be 0/1")
        self.train_states_ = encode_batch(np.asarray(angles, dtype=float))
        gram = fidelity_kernel(self.train_states_, self.train_states_)
        d = gram.shape[0]
        targets = 2.0 * y - 1.0
        self.alpha_ = np.linalg.solve(
            gram + self.ridge_lambda * d * np.eye(d), targets
        )
        return self

    def decision_function(self, angles: np.ndarray) -> np.ndarray:
        if self.alpha_ is None:
            raise RuntimeError("model is not fitted")
        states = encode_batch(np.asarray(angles, dtype=float))
        cross = fidelity_kernel(states, self.train_states_)
        return cross @ self.alpha_

    def predict(self, angles: np.ndarray) -> np.ndarray:
        return (self.decision_function(angles) >= 0.0).astype(int)

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))
