"""Noise robustness of the post-variational ensemble (NISQ story).

Sweeps a depolarizing noise model over the full encode+measure pipeline
(exact Kraus evolution, no sampling noise) via the unified execution API
(`generate_features(..., config=ExecutionConfig(backend=...))`) and tracks:

* how much the ensemble's feature magnitudes contract,
* what survives of train/test accuracy, and
* how much zero-noise extrapolation (MitigatedBackend) claws back,

for the 2-local observable-construction strategy, alongside the data
re-uploading variational baseline at matched qubit count.

Run:  python examples/noise_robustness.py   (~2 minutes)
"""

import numpy as np

from repro.api import ExecutionConfig
from repro.core import ObservableConstruction, ReuploadingClassifier, generate_features
from repro.data import binary_coat_vs_shirt
from repro.ml import LogisticRegression, accuracy
from repro.quantum import DensityMatrixBackend, MitigatedBackend, NoiseModel


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=40, test_per_class=10)
    strategy = ObservableConstruction(qubits=4, locality=2)

    ideal_train = generate_features(strategy, split.x_train)
    ideal_test = generate_features(strategy, split.x_test)

    print(
        f"{'1q error rate':>13} {'backend':>10} {'mean |feature|':>15} "
        f"{'train acc':>10} {'test acc':>9}"
    )
    for p1 in (0.0, 0.005, 0.02, 0.05):
        if p1 == 0.0:
            regimes = [("ideal", None)]
        else:
            noisy = DensityMatrixBackend(NoiseModel.depolarizing(p1))
            regimes = [("noisy", noisy), ("zne", MitigatedBackend(noisy, scales=(1, 3)))]
        for label, backend in regimes:
            if backend is None:
                q_train, q_test = ideal_train, ideal_test
            else:
                config = ExecutionConfig(backend=backend)
                q_train = generate_features(strategy, split.x_train, config=config)
                q_test = generate_features(strategy, split.x_test, config=config)
            head = LogisticRegression().fit(q_train, split.y_train)
            print(
                f"{p1:>13.3f} {label:>10} {np.mean(np.abs(q_train[:, 1:])):>15.4f} "
                f"{accuracy(split.y_train, head.predict(q_train)):>10.3f} "
                f"{accuracy(split.y_test, head.predict(q_test)):>9.3f}"
            )

    print("\ndata re-uploading baseline (2 re-uploads, ideal simulation):")
    model = ReuploadingClassifier(reuploads=2, epochs=10)
    model.fit(split.x_train, split.y_train)
    print(
        f"  train acc {model.score(split.x_train, split.y_train):.3f}  "
        f"test acc {model.score(split.x_test, split.y_test):.3f}"
    )


if __name__ == "__main__":
    main()
