"""Admission control and per-tenant fairness for the feature service.

Two cooperating pieces, both event-loop-confined (the service calls them
from its loop only; no locks needed):

* :class:`AdmissionController` -- bounded admission per tenant, counted in
  requests and optionally in :class:`~repro.hpc.cluster.CircuitTask` cost
  units (the same model that prices the runtime's dispatch order).
  Overflow raises :class:`BackpressureError` *before* the request enters a
  queue, so a flooding tenant is rejected at the door instead of growing
  unbounded state.
* :class:`WeightedRoundRobin` -- smooth weighted round-robin (the nginx
  algorithm) over tenants with pending work.  Each pick raises every
  candidate's credit by its weight and charges the winner the total, so a
  weight-3 tenant wins 3 of every 4 picks against a weight-1 tenant
  without ever bursting -- picks interleave (a a b a), they don't run
  (a a a b).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["BackpressureError", "AdmissionController", "WeightedRoundRobin"]


class BackpressureError(RuntimeError):
    """Request rejected at admission: the tenant's queue bound is full."""


class AdmissionController:
    """Per-tenant admission bounds: request count always, cost optionally.

    ``max_depth`` bounds the number of admitted-but-unfinished requests a
    single tenant may hold; ``max_cost`` (``None`` = unbounded) bounds
    their summed cost units.  The first request of a tenant always admits
    even when its cost alone exceeds ``max_cost`` -- a bound that can
    reject *every* request of a legal workload would deadlock clients.
    """

    def __init__(self, max_depth: int, max_cost: float | None = None) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth={max_depth} must be >= 1")
        if max_cost is not None and max_cost <= 0:
            raise ValueError(f"max_cost={max_cost} must be > 0 or None")
        self.max_depth = int(max_depth)
        self.max_cost = max_cost
        self._depth: dict[str, int] = {}
        self._cost: dict[str, float] = {}

    def try_acquire(self, tenant: str, cost: float = 0.0) -> None:
        """Admit one request or raise :class:`BackpressureError`."""
        depth = self._depth.get(tenant, 0)
        if depth >= self.max_depth:
            raise BackpressureError(
                f"tenant {tenant!r} is at max_queue_depth={self.max_depth} "
                f"admitted requests; retry after in-flight work drains"
            )
        held = self._cost.get(tenant, 0.0)
        if self.max_cost is not None and depth > 0 and held + cost > self.max_cost:
            raise BackpressureError(
                f"tenant {tenant!r} holds {held:.3g} of max_queue_cost="
                f"{self.max_cost:.3g} cost units; this request costs {cost:.3g}"
            )
        self._depth[tenant] = depth + 1
        self._cost[tenant] = held + cost

    def release(self, tenant: str, cost: float = 0.0) -> None:
        """Return one request's admission (its ``try_acquire`` mirror)."""
        depth = self._depth.get(tenant, 0) - 1
        if depth <= 0:
            self._depth.pop(tenant, None)
            self._cost.pop(tenant, None)
            return
        self._depth[tenant] = depth
        self._cost[tenant] = max(0.0, self._cost.get(tenant, 0.0) - cost)

    def depth(self, tenant: str | None = None) -> int:
        """Outstanding admitted requests, per tenant or in total."""
        if tenant is not None:
            return self._depth.get(tenant, 0)
        return sum(self._depth.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-tenant outstanding depth/cost (feeds the metrics snapshot)."""
        return {
            tenant: {"depth": depth, "cost": self._cost.get(tenant, 0.0)}
            for tenant, depth in sorted(self._depth.items())
        }


class WeightedRoundRobin:
    """Smooth weighted round-robin over tenants with pending work.

    Stateful across picks (credits persist), deterministic given candidate
    order.  Tenants absent from ``weights`` get ``default_weight``;
    non-positive weights are excluded while any positive-weight candidate
    exists (the starvation RPA112 lints and the service refuses at start),
    and degrade to equal shares when *every* candidate is non-positive so
    the selector alone can never deadlock.
    """

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError(f"default_weight={default_weight} must be > 0")
        self._weights = dict(weights or {})
        self._default = float(default_weight)
        self._credit: dict[str, float] = {}

    def weight(self, tenant: str) -> float:
        """The configured share of ``tenant`` (default for unnamed ones)."""
        return float(self._weights.get(tenant, self._default))

    def pick(self, candidates: Sequence[str]) -> str:
        """The next tenant to serve among ``candidates`` (ties: first wins)."""
        if not candidates:
            raise ValueError("pick() needs at least one candidate tenant")
        weights = {tenant: self.weight(tenant) for tenant in candidates}
        eligible = [t for t in candidates if weights[t] > 0]
        if not eligible:
            eligible = list(candidates)
            weights = dict.fromkeys(candidates, 1.0)
        total = sum(weights[t] for t in eligible)
        for tenant in eligible:
            self._credit[tenant] = self._credit.get(tenant, 0.0) + weights[tenant]
        winner = max(eligible, key=lambda t: self._credit[t])
        self._credit[winner] -= total
        return winner
