"""E8 -- shadows vs direct measurement at equal total budget.

The crossover the paper's Table II predicts, measured: estimate all
q = 13 one-local Paulis of an encoded state with a *fixed total shot
budget* T.  Direct measurement splits T across the q observables (T/q
each); classical shadows spend all T snapshots once and reuse them for
every observable.  Shadows win on max-error once q is large relative to
the shadow norm; for a single global observable direct measurement wins.
"""

from __future__ import annotations

import numpy as np

from repro.data.encoding import encode_batch
from repro.quantum.observables import PauliString, expectation, local_pauli_strings
from repro.quantum.sampling import measure_pauli
from repro.quantum.shadows import collect_shadows, estimate_pauli


def run_comparison(split):
    angles = split.x_train[:8]
    states = encode_batch(angles)
    budget = 3900  # divisible by 13
    locals_1 = [p for p in local_pauli_strings(4, 1) if not p.is_identity]
    global_obs = PauliString("ZZZZ")

    direct_local, shadow_local = [], []
    direct_global, shadow_global = [], []
    for i in range(states.shape[0]):
        psi = states[i]
        shadow = collect_shadows(psi, budget, seed=10 + i)
        per_obs = budget // len(locals_1)
        for p in locals_1:
            exact = expectation(psi, p)
            direct_local.append(abs(measure_pauli(psi, p, per_obs, seed=20 + i) - exact))
            shadow_local.append(abs(estimate_pauli(shadow, p) - exact))
        exact_g = expectation(psi, global_obs)
        direct_global.append(
            abs(measure_pauli(psi, global_obs, budget, seed=30 + i) - exact_g)
        )
        shadow_global.append(abs(estimate_pauli(shadow, global_obs) - exact_g))

    return {
        "direct_local": float(np.mean(direct_local)),
        "shadow_local": float(np.mean(shadow_local)),
        "direct_global": float(np.mean(direct_global)),
        "shadow_global": float(np.mean(shadow_global)),
        "budget": budget,
        "q": len(locals_1),
    }


def test_shadows_vs_direct(benchmark, small_split):
    res = benchmark.pedantic(run_comparison, args=(small_split,), rounds=1, iterations=1)

    print("\n=== E8: shadows vs direct at equal total budget ===")
    print(f"budget T = {res['budget']} shots; q = {res['q']} one-local Paulis")
    print(f"  local (T/q each) : direct {res['direct_local']:.4f}  shadows {res['shadow_local']:.4f}")
    print(f"  global ZZZZ (T)  : direct {res['direct_global']:.4f}  shadows {res['shadow_global']:.4f}")

    # For the global observable, direct measurement is clearly better: the
    # shadow estimator pays the 4^n norm.
    assert res["direct_global"] < res["shadow_global"]
    # For the local ensemble the two are comparable; shadows must be within
    # a small factor of direct despite answering all q at once from the
    # *same* measurements (that reuse is the protocol's value).
    assert res["shadow_local"] < 4.0 * res["direct_local"]
