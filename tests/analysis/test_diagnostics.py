"""Diagnostic value objects: registry, severity fill, report algebra."""

import json

import pytest

from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    DiagnosticReport,
)


def test_registry_covers_all_layers():
    codes = set(DIAGNOSTIC_CODES)
    assert len(codes) >= 10
    assert any(c.startswith("RPA0") for c in codes)  # program lint
    assert any(c.startswith("RPA1") for c in codes)  # config/plan lint
    assert any(c.startswith("RPA3") for c in codes)  # codebase lint
    for code, spec in DIAGNOSTIC_CODES.items():
        assert spec.code == code
        assert spec.default_severity in SEVERITIES
        assert spec.title


def test_severity_defaults_from_registry():
    d = Diagnostic("RPA101", "too many shards")
    assert d.severity == ERROR
    assert Diagnostic("RPA104", "tiny chunks").severity == WARNING
    assert Diagnostic("RPA107", "no compile").severity == INFO
    # Explicit severity wins over the registry default.
    assert Diagnostic("RPA104", "promoted", severity=ERROR).severity == ERROR


def test_unregistered_code_rejected():
    with pytest.raises(ValueError, match="unregistered"):
        Diagnostic("RPA999", "no such code")
    with pytest.raises(ValueError, match="severity"):
        Diagnostic("RPA101", "bad", severity="fatal")


def test_render_and_to_dict():
    d = Diagnostic("RPA101", "msg", fix_hint="do X", location="config.shards")
    line = d.render()
    assert "RPA101" in line and "config.shards" in line and "do X" in line
    assert d.to_dict() == {
        "code": "RPA101",
        "severity": "error",
        "message": "msg",
        "fix_hint": "do X",
        "location": "config.shards",
    }
    assert d.title == DIAGNOSTIC_CODES["RPA101"].title


def test_report_sorts_most_severe_first():
    report = DiagnosticReport.collect(
        [
            Diagnostic("RPA107", "info"),
            Diagnostic("RPA101", "error"),
            Diagnostic("RPA104", "warning"),
        ]
    )
    assert [d.severity for d in report] == ["error", "warning", "info"]
    assert report.codes() == ("RPA101", "RPA104", "RPA107")
    assert len(report.errors) == len(report.warnings) == len(report.infos) == 1


def test_report_verdicts_and_merge():
    empty = DiagnosticReport()
    assert empty.ok and empty.clean and len(empty) == 0

    warn_only = DiagnosticReport.collect([Diagnostic("RPA104", "w")])
    assert warn_only.ok and not warn_only.clean

    merged = warn_only + DiagnosticReport.collect([Diagnostic("RPA101", "e")])
    assert not merged.ok
    assert merged.diagnostics[0].code == "RPA101"  # re-sorted on merge


def test_report_renderers_round_trip():
    report = DiagnosticReport.collect(
        [Diagnostic("RPA101", "e"), Diagnostic("RPA104", "w")]
    )
    text = report.render()
    assert text.endswith("1 error(s), 1 warning(s), 0 info(s)")
    payload = json.loads(report.to_json())
    assert [entry["code"] for entry in payload] == ["RPA101", "RPA104"]
