"""Classical combination of quantum states (CQS) and the Sec. III.E bridge.

The CQS linear-system solver of Huang et al. [27] is the problem-inspired
ancestor of post-variational strategies.  This module implements

* an Ansatz-tree CQS solver for ``A x = b`` with ``A`` a Pauli sum:
  candidate unitaries are products of A's Pauli terms applied to |b>, grown
  breadth-first; the combination coefficients solve a classical least
  squares -- convex, terminable, global optimum, exactly Table I's pitch;
* the Sec. III.E identity: the CQS Hamiltonian loss
  ``L_Ham = <x|A^dag (I - |b><b|) A|x>`` rewritten as the post-variational
  MAE loss ``sum_j alpha_j tr(O_j |b><b|)`` with ground truth 0 (Eqs. 8-13),
  including the m = m_CQS^2 observable counting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.observables import PauliString, PauliSum
from repro.utils.validation import require

__all__ = [
    "hamiltonian_observable",
    "CQSResult",
    "solve_cqs",
    "ansatz_tree_unitaries",
    "decompose_hamiltonian_loss",
]


def hamiltonian_observable(a: PauliSum, b: np.ndarray) -> np.ndarray:
    """Dense ``O = A^dag (I - |b><b|) A`` (paper Eq. after (8))."""
    b = np.asarray(b, dtype=np.complex128).ravel()
    require(abs(np.linalg.norm(b) - 1.0) < 1e-9, "b must be normalised")
    a_dense = a.to_matrix()
    projector = np.eye(b.size) - np.outer(b, b.conj())
    return a_dense.conj().T @ projector @ a_dense


def ansatz_tree_unitaries(a: PauliSum, max_terms: int) -> list[PauliString]:
    """Breadth-first Ansatz tree over products of A's Pauli terms.

    Root is the identity; each node U spawns children ``P_k U`` for every
    term P_k of A (phases dropped: a global phase on U_i is absorbed by
    gamma_i).  Duplicate strings are visited once -- the tree is really a
    lattice, matching the CQS paper's de-duplicated expansion.
    """
    require(max_terms >= 1, "max_terms must be >= 1")
    n = a.num_qubits
    identity = PauliString("I" * n)
    frontier = [identity]
    seen = {identity.string}
    out = [identity]
    terms = [p for _, p in a.items()]
    while frontier and len(out) < max_terms:
        next_frontier: list[PauliString] = []
        for node in frontier:
            for term in terms:
                _, child = term * node
                if child.string not in seen:
                    seen.add(child.string)
                    out.append(child)
                    next_frontier.append(child)
                    if len(out) >= max_terms:
                        return out
        frontier = next_frontier
    return out


@dataclass
class CQSResult:
    """Solver output: coefficients, solution vector and diagnostics."""

    gamma: np.ndarray
    unitaries: list[PauliString]
    x: np.ndarray
    residual_norm: float
    hamiltonian_loss: float

    @property
    def num_terms(self) -> int:
        return len(self.unitaries)


def solve_cqs(a: PauliSum, b: np.ndarray, max_terms: int = 8) -> CQSResult:
    """Solve ``A x = b`` with x restricted to span{U_i |b>} (real gamma).

    Minimises ``||A x - b||_2^2`` over real gamma -- a convex quadratic
    solved in closed form via a real-stacked least squares (mirroring the
    regression-loss formulation of [27]).  Real gamma keeps the Sec. III.E
    observable decomposition Hermitian term by term.
    """
    b = np.asarray(b, dtype=np.complex128).ravel()
    require(abs(np.linalg.norm(b) - 1.0) < 1e-9, "b must be normalised")
    unitaries = ansatz_tree_unitaries(a, max_terms)
    dim = b.size

    # Basis states |u_i> = U_i |b> (Pauli strings act cheaply).
    basis = np.empty((len(unitaries), dim), dtype=np.complex128)
    for i, u in enumerate(unitaries):
        basis[i] = u.to_matrix() @ b if dim <= 64 else _apply_pauli(u, b)

    a_dense = a.to_matrix()
    design = (a_dense @ basis.T)  # columns A U_i |b>
    stacked = np.vstack([design.real, design.imag])
    target = np.concatenate([b.real, b.imag])
    gamma, *_ = np.linalg.lstsq(stacked, target, rcond=None)

    x = basis.T @ gamma
    residual = float(np.linalg.norm(a_dense @ x - b))
    o_matrix = hamiltonian_observable(a, b)
    ham = float((x.conj() @ o_matrix @ x).real)
    return CQSResult(
        gamma=gamma,
        unitaries=unitaries,
        x=x,
        residual_norm=residual,
        hamiltonian_loss=ham,
    )


def _apply_pauli(p: PauliString, vec: np.ndarray) -> np.ndarray:
    from repro.quantum.observables import _apply_pauli_batch

    return _apply_pauli_batch(vec[None, :], p)[0]


def decompose_hamiltonian_loss(
    a: PauliSum, b: np.ndarray, result: CQSResult
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sec. III.E decomposition: ``L_Ham = sum_j alpha_j tr(O_j |b><b|)``.

    Returns (alphas, observables) with m = m_CQS^2 terms: the diagonal
    observables ``U_i^dag O U_i`` with weight ``gamma_i^2`` (Eq. 9 first sum)
    and the symmetrised cross terms ``(U_i^dag O U_j + U_j^dag O U_i)/2``
    with weight ``2 gamma_i gamma_j`` (second sum).  Each observable is
    Hermitian; ``sum_j alpha_j tr(O_j rho_b)`` equals the MAE loss against
    ground truth 0 (Eqs. 10-12), which the tests assert.
    """
    b = np.asarray(b, dtype=np.complex128).ravel()
    o_matrix = hamiltonian_observable(a, b)
    mats = [u.to_matrix() for u in result.unitaries]
    alphas: list[float] = []
    observables: list[np.ndarray] = []
    gamma = result.gamma
    m_cqs = len(mats)
    for i in range(m_cqs):
        observables.append(mats[i].conj().T @ o_matrix @ mats[i])
        alphas.append(float(gamma[i] ** 2))
        for j in range(i + 1, m_cqs):
            cross = mats[i].conj().T @ o_matrix @ mats[j]
            observables.append(0.5 * (cross + cross.conj().T))
            alphas.append(float(2.0 * gamma[i] * gamma[j]))
    return np.asarray(alphas), observables
