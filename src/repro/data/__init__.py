"""Data substrate: synthetic Fashion-MNIST, Fig. 7 encoding, linear systems."""

from repro.data.synthetic_fashion import (
    CLASS_NAMES,
    class_prototype,
    generate_dataset,
    sample_class,
)
from repro.data.encoding import encode_batch, encoding_circuit
from repro.data.datasets import (
    Split,
    binary_coat_vs_shirt,
    multiclass_fashion,
    train_test_split,
)
from repro.data.linear_system import random_linear_system, random_pauli_operator

__all__ = [
    "CLASS_NAMES",
    "class_prototype",
    "generate_dataset",
    "sample_class",
    "encode_batch",
    "encoding_circuit",
    "Split",
    "binary_coat_vs_shirt",
    "multiclass_fashion",
    "train_test_split",
    "random_linear_system",
    "random_pauli_operator",
]
