"""Combinatorial enumeration used by the post-variational strategies.

The Ansatz-expansion strategy (paper Eq. 16) enumerates all subsets of at
most ``R`` parameters, each member shifted to +pi/2 or -pi/2; the observable
construction strategy (paper Eq. 18) enumerates all Pauli strings of weight
at most ``L``, each non-identity site set to X, Y or Z.  Both are instances
of the same pattern: bounded-size subsets with per-element sign/letter
assignments.
"""

from __future__ import annotations

from itertools import combinations, product
from math import comb
from collections.abc import Iterator, Sequence

__all__ = ["bounded_subsets", "signed_assignments", "count_bounded_subsets"]


def bounded_subsets(n: int, max_size: int) -> Iterator[tuple[int, ...]]:
    """Yield all subsets of ``range(n)`` of size 0..max_size in size order.

    The empty subset is yielded first; within a size, subsets follow
    lexicographic order.  Deterministic ordering matters: feature columns in
    the Q matrix are indexed by enumeration position.
    """
    if max_size < 0:
        raise ValueError(f"max_size={max_size} must be >= 0")
    for size in range(min(max_size, n) + 1):
        yield from combinations(range(n), size)


def signed_assignments(
    subset: Sequence[int], letters: Sequence
) -> Iterator[tuple]:
    """Yield every assignment of ``letters`` to the positions of ``subset``.

    For Ansatz expansion ``letters`` is ``(+pi/2, -pi/2)``; for observable
    construction it is ``("X", "Y", "Z")``.  Yields tuples aligned with
    ``subset``.
    """
    if len(subset) == 0:
        yield ()
        return
    yield from product(letters, repeat=len(subset))


def count_bounded_subsets(n: int, max_size: int, branching: int) -> int:
    """Closed-form count ``sum_{l<=max_size} C(n, l) * branching**l``.

    With ``branching=2`` this is the circuit count of paper Eq. 16; with
    ``branching=3`` it is the observable count of paper Eq. 18.
    """
    if max_size < 0:
        raise ValueError(f"max_size={max_size} must be >= 0")
    return sum(comb(n, size) * branching**size for size in range(min(max_size, n) + 1))
