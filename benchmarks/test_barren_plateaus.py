"""E14 (extension) -- the motivating pathology, measured.

Regenerates the barren-plateau phenomenon the paper's introduction builds
on (McClean et al. [14], Cerezo et al. [15]): gradient variance of a random
hardware-efficient circuit with a global cost decays exponentially with
qubit count, while (i) a local cost decays much more slowly and (ii) the
Fig. 8 identity initialisation used by the paper keeps an O(1) gradient.
The trainability side of the paper's expressibility/trainability trade is
quantified with the Sim et al. metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core.ansatz import fig8_ansatz, hardware_efficient_ansatz
from repro.core.barren import barren_plateau_sweep, gradient_variance
from repro.core.expressibility import entangling_capability, expressibility_kl
from repro.quantum.observables import PauliString


def run_sweeps():
    qubit_counts = [2, 3, 4, 5, 6]
    global_cost = barren_plateau_sweep(qubit_counts, layers=3, samples=40, seed=0)
    local_cost = [
        gradient_variance(
            n,
            3,
            observable=PauliString("Z" + "I" * (n - 1)),
            samples=40,
            seed=10 + n,
        )
        for n in qubit_counts
    ]
    from repro.data.encoding import encode_batch

    rng = np.random.default_rng(42)
    encoded = encode_batch(rng.uniform(0, 2 * np.pi, (1, 4, 4)))[0]
    identity_init = gradient_variance(
        4, 2, observable=PauliString("ZIII"), at_zero=True, input_state=encoded
    )

    express = {
        "fig8 (2 mirrored layers)": expressibility_kl(fig8_ansatz(), num_pairs=200, seed=0),
        "hw-efficient x4": expressibility_kl(
            hardware_efficient_ansatz(4, 4, mirror=False), num_pairs=200, seed=0
        ),
    }
    entangle = {
        "fig8": entangling_capability(fig8_ansatz(), num_samples=60, seed=0),
        "hw-efficient x4": entangling_capability(
            hardware_efficient_ansatz(4, 4, mirror=False), num_samples=60, seed=0
        ),
    }
    return qubit_counts, global_cost, local_cost, identity_init, express, entangle


def test_barren_plateaus(benchmark):
    qubit_counts, global_cost, local_cost, identity_init, express, entangle = (
        benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    )

    print("\n=== E14: gradient variance vs qubits (3 layers, random init) ===")
    print(f"{'n':>3} {'Var global cost':>16} {'Var local cost':>15}")
    for n, g, loc in zip(qubit_counts, global_cost, local_cost, strict=True):
        print(f"{n:>3} {g.variance:>16.2e} {loc.variance:>15.2e}")
    print(
        f"identity-init gradient (Fig. 8, local cost, encoded-data input): "
        f"|g| = {identity_init.mean_abs:.3f}"
    )
    print("expressibility KL (lower = closer to Haar):")
    for name, kl in express.items():
        print(f"  {name:<26} {kl:.3f}")
    print("entangling capability (Meyer-Wallach):")
    for name, q in entangle.items():
        print(f"  {name:<26} {q:.3f}")

    # Global-cost variance decays steeply with n.
    g = [r.variance for r in global_cost]
    assert g[0] > 10 * g[-1]
    assert all(b <= a * 1.5 for a, b in zip(g, g[1:], strict=False))  # near-monotone decay
    # Local cost retains a larger fraction of its small-n gradient variance
    # (polynomial vs exponential concentration, visible even at n <= 6).
    v_local = [r.variance for r in local_cost]
    assert v_local[-1] / v_local[0] > g[-1] / g[0]
    # The paper's escape hatch: identity init + local cost + data encoding
    # gives an O(1) gradient where random init has variance ~1e-2.
    assert identity_init.mean_abs > 0.01
    # Deeper circuit is more expressive and more entangling.
    assert express["hw-efficient x4"] < express["fig8 (2 mirrored layers)"]
    assert entangle["hw-efficient x4"] >= entangle["fig8"] - 0.05