"""repro.api -- the unified execution API (the stable public surface).

One typed configuration object, one session facade, one sklearn-style
transformer:

* :class:`ExecutionConfig` -- frozen, picklable, JSON-round-trippable
  bundle of every execution knob (estimator, shots, snapshots, chunk_size,
  seed, compile, dispatch_policy, backend, vectorize) with centralized
  validation and a ``merged(**overrides)`` combinator;
* :class:`QuantumDevice` -- a context-managed session binding a config to
  a persistent :class:`~repro.hpc.runtime.ExecutionRuntime` (pool reuse
  across sweeps, ``run``/``evaluate``/``stream``, explicit close);
* :class:`QuantumFeatureMap` -- ``fit``/``transform`` over a device so
  quantum features compose with any classical head.

Every feature entry point (``generate_features``, ``evaluate_features``,
``iter_feature_blocks``, ``HybridPipeline``, ``PostVariational*``,
``generate_features_spmd``, the CLI) accepts ``config=`` / ``device=`` and
delegates here; the loose execution kwargs remain as deprecated shims.

``QuantumDevice`` and ``QuantumFeatureMap`` are loaded lazily (PEP 562) so
that ``repro.core`` modules can import :mod:`repro.api.config` while this
package initialises without a cycle.
"""

from __future__ import annotations

from repro.api.config import (
    ESTIMATORS,
    SERVE_POOLS,
    UNSET,
    ExecutionConfig,
    ServeConfig,
    TransportConfig,
    check_regime,
    resolve_call,
    resolve_chunk_size,
)

__all__ = [
    "ExecutionConfig",
    "QuantumDevice",
    "QuantumFeatureMap",
    "ServeConfig",
    "TransportConfig",
    "ESTIMATORS",
    "SERVE_POOLS",
    "UNSET",
    "check_regime",
    "resolve_call",
    "resolve_chunk_size",
]

_LAZY = {
    "QuantumDevice": "repro.api.device",
    "QuantumFeatureMap": "repro.api.feature_map",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
