"""Distributed statevector simulator vs the single-node reference."""

import numpy as np
import pytest

from repro.hpc.comm import SpmdError, run_spmd
from repro.quantum.circuit import Circuit
from repro.quantum.compile import compile_circuit, plan_shard_groups
from repro.quantum.distributed import (
    distributed_zero_state,
    expectation_z_distributed,
    gather_state,
    run_circuit_distributed,
    run_compiled_distributed,
    run_sharded,
    scatter_state,
)
from repro.quantum.gates import GATE_NUM_QUBITS, PARAMETRIC_GATES
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import run_circuit, zero_state

from tests.conftest import random_state

TWO_QUBIT_GATES = sorted(name for name, k in GATE_NUM_QUBITS.items() if k == 2)

ONE_QUBIT_FIXED = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
ONE_QUBIT_PARAM = ("rx", "ry", "rz", "phase")


def random_supported_circuit(rng: np.random.Generator, n: int, gates: int) -> Circuit:
    c = Circuit(n)
    for _ in range(gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            c.append(str(rng.choice(["h", "x", "s", "t"])), int(rng.integers(0, n)))
        elif kind == 1:
            c.append(
                str(rng.choice(["rx", "ry", "rz"])),
                int(rng.integers(0, n)),
                float(rng.uniform(-np.pi, np.pi)),
            )
        elif kind == 2:
            a, b = rng.choice(n, size=2, replace=False)
            c.append("cnot", (int(a), int(b)))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            c.append("cz", (int(a), int(b)))
    return c


def random_full_circuit(rng: np.random.Generator, n: int, gates: int) -> Circuit:
    """Random bound circuit over the *entire* gate table, all positions."""
    c = Circuit(n)
    for _ in range(gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            c.append(str(rng.choice(ONE_QUBIT_FIXED)), int(rng.integers(0, n)))
        elif kind == 1:
            c.append(
                str(rng.choice(ONE_QUBIT_PARAM)),
                int(rng.integers(0, n)),
                float(rng.uniform(-np.pi, np.pi)),
            )
        else:
            name = str(rng.choice(TWO_QUBIT_GATES))
            a, b = rng.choice(n, size=2, replace=False)
            param = (
                float(rng.uniform(-np.pi, np.pi)) if name in PARAMETRIC_GATES else None
            )
            c.append(name, (int(a), int(b)), param)
    return c


def _state_prep(n: int) -> Circuit:
    """A cheap non-product state so 2-qubit gates act on generic amplitudes."""
    c = Circuit(n)
    for q in range(n):
        c.append("h", q).append("t", q).append("ry", q, 0.3 * (q + 1))
    for q in range(n - 1):
        c.append("cnot", (q, q + 1))
    return c


@pytest.mark.parametrize("size", [2, 4, 8])
def test_zero_state_distribution(size):
    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        return gather_state(dist)

    full = run_spmd(prog, size)[0]
    assert np.allclose(full, zero_state(4))


@pytest.mark.parametrize("size", [2, 4])
def test_scatter_gather_roundtrip(size):
    rng = np.random.default_rng(0)
    psi = random_state(4, rng)

    def prog(comm):
        dist = scatter_state(comm, psi if comm.rank == 0 else None, 4)
        assert dist.norm() == pytest.approx(1.0)
        return gather_state(dist)

    out = run_spmd(prog, size)[0]
    assert np.allclose(out, psi)


def test_scatter_num_qubits_mismatch():
    """A rank disagreeing about the register width fails loudly, not by shape."""
    rng = np.random.default_rng(1)
    psi = random_state(4, rng)

    def prog(comm):
        n = 4 if comm.rank == 0 else 3
        dist = scatter_state(comm, psi if comm.rank == 0 else None, n)
        return gather_state(dist)

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(prog, 2)
    messages = [str(e) for e in exc_info.value.failures.values()]
    assert any("num_qubits mismatch" in m for m in messages)


@pytest.mark.parametrize("size", [2, 4, 8])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_circuits_match_reference(size, seed):
    rng = np.random.default_rng(seed)
    n = 4
    circuit = random_supported_circuit(rng, n, 25)
    reference = run_circuit(circuit)

    def prog(comm):
        dist = distributed_zero_state(comm, n)
        run_circuit_distributed(dist, circuit)
        return gather_state(dist)

    out = run_spmd(prog, size)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_global_qubit_gates():
    """Gates on the rank-selecting qubits exercise the exchange path."""
    c = Circuit(3)
    c.append("h", 0).append("ry", 0, 0.7).append("x", 1).append("cnot", (0, 2))
    c.append("cnot", (2, 0)).append("cz", (0, 1))
    reference = run_circuit(c)

    def prog(comm):
        dist = distributed_zero_state(comm, 3)
        run_circuit_distributed(dist, c)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]  # qubits 0,1 global with 4 ranks
    assert np.allclose(out, reference, atol=1e-10)


# ------------------------------------------------- gate-table regressions
@pytest.mark.parametrize("gate", TWO_QUBIT_GATES)
@pytest.mark.parametrize("order", ["fwd", "rev"])
def test_all_local_two_qubit_gates(gate, order):
    """Regression: every 2-qubit gate must run when both qubits are local.

    swap/crx/cry/crz used to raise NotImplementedError even at fully-local
    positions; with 2 ranks and n=3 qubits (1, 2) are both local.
    """
    qubits = (1, 2) if order == "fwd" else (2, 1)
    param = 0.811 if gate in PARAMETRIC_GATES else None
    c = _state_prep(3).append(gate, qubits, param)
    reference = run_circuit(c)

    def prog(comm):
        dist = distributed_zero_state(comm, 3)
        run_circuit_distributed(dist, c)
        return gather_state(dist)

    out = run_spmd(prog, 2)[0]
    assert np.allclose(out, reference, atol=1e-10)


@pytest.mark.parametrize("gate", ["swap", "crx", "cry", "crz"])
@pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 3), (3, 0), (1, 2)])
def test_dense_fallback_global_gates(gate, qubits):
    """swap/crx/cry/crz touching global qubits go through the dense path."""
    param = -1.234 if gate in PARAMETRIC_GATES else None
    c = _state_prep(4).append(gate, qubits, param)
    reference = run_circuit(c)

    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        run_circuit_distributed(dist, c)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]  # qubits 0,1 global with 4 ranks
    assert np.allclose(out, reference, atol=1e-10)


# ----------------------------------------------------- property-based suite
@pytest.mark.parametrize("size", [2, 4, 8])
def test_property_full_gate_set_random_circuits(size):
    """100+ random full-gate-set circuits across the three rank counts.

    Each SPMD session evolves 35 independent circuits (per-gate engine) so
    thread setup is amortised; every output is pinned to run_circuit and the
    diagonal observable to the dense expectation.
    """
    n = 4
    per_size = 35
    rng = np.random.default_rng(100 + size)
    circuits = [random_full_circuit(rng, n, 18) for _ in range(per_size)]
    references = [run_circuit(c) for c in circuits]

    def prog(comm):
        outs = []
        for circuit in circuits:
            dist = distributed_zero_state(comm, n)
            run_circuit_distributed(dist, circuit)
            outs.append((gather_state(dist), expectation_z_distributed(dist, 0)))
        return outs

    results = run_spmd(prog, size, timeout=120.0)[0]
    for (out, ez), psi in zip(results, references, strict=True):
        assert np.allclose(out, psi, atol=1e-10)
        exact = expectation(psi, PauliString("Z" + "I" * (n - 1)))
        assert ez == pytest.approx(exact, abs=1e-10)


# ------------------------------------------------------- grouped engine
@pytest.mark.parametrize("size", [1, 2, 4, 8])
def test_compiled_matches_oracle_all_shard_counts(size):
    """Sharded grouped execution is shard-count independent vs the oracle."""
    rng = np.random.default_rng(42)
    n = 5
    circuit = random_full_circuit(rng, n, 40)
    reference = run_circuit(circuit)

    def prog(comm):
        dist = distributed_zero_state(comm, n)
        run_compiled_distributed(dist, circuit)
        return gather_state(dist)

    out = run_spmd(prog, size, timeout=120.0)[0]
    assert np.abs(out - reference).max() <= 1e-10


def test_compiled_accepts_precompiled_program_and_plan():
    rng = np.random.default_rng(7)
    n = 4
    circuit = random_full_circuit(rng, n, 30)
    reference = run_circuit(circuit)
    program = compile_circuit(circuit, max_width=2, cache=None)
    plan = plan_shard_groups(program, 1)

    def prog(comm):
        dist = distributed_zero_state(comm, n)
        run_compiled_distributed(dist, program, plan=plan)
        return gather_state(dist)

    out = run_spmd(prog, 2)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_compiled_all_qubits_global():
    """n == g: every block is wider than the (empty) local register, so the
    grouped engine must survive on dense fallbacks alone."""
    rng = np.random.default_rng(11)
    circuit = random_full_circuit(rng, 2, 12)
    reference = run_circuit(circuit)

    def prog(comm):
        dist = distributed_zero_state(comm, 2)
        run_compiled_distributed(dist, circuit)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_grouped_engine_moves_fewer_amplitudes():
    """The comm-avoidance claim: gate groups exchange strictly less volume
    than the naive per-gate walk on a deep circuit."""
    rng = np.random.default_rng(3)
    n = 6
    circuit = random_full_circuit(rng, n, 48)
    reference = run_circuit(circuit)

    def naive(comm):
        dist = distributed_zero_state(comm, n)
        run_circuit_distributed(dist, circuit)
        return gather_state(dist), dist.stats.amplitudes

    def grouped(comm):
        dist = distributed_zero_state(comm, n)
        run_compiled_distributed(dist, circuit)
        return gather_state(dist), dist.stats.amplitudes

    naive_out = run_spmd(naive, 4, timeout=120.0)
    grouped_out = run_spmd(grouped, 4, timeout=120.0)
    assert np.allclose(naive_out[0][0], reference, atol=1e-10)
    assert np.allclose(grouped_out[0][0], reference, atol=1e-10)
    naive_amps = sum(amps for _, amps in naive_out)
    grouped_amps = sum(amps for _, amps in grouped_out)
    assert grouped_amps < naive_amps


# ------------------------------------------------------------- run_sharded
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_run_sharded_batch_matches_reference(shards):
    rng = np.random.default_rng(21)
    n = 5
    circuit = random_full_circuit(rng, n, 30)
    states = np.stack([random_state(n, rng) for _ in range(6)])
    reference = run_circuit(circuit, state=states)

    out = run_sharded(circuit, states, shards)
    assert out.shape == states.shape
    assert np.abs(out - reference).max() <= 1e-10


def test_run_sharded_single_state_and_program():
    rng = np.random.default_rng(22)
    n = 4
    circuit = random_full_circuit(rng, n, 20)
    psi = random_state(n, rng)
    program = compile_circuit(circuit, max_width=2, cache=None)

    out = run_sharded(program, psi, 4)
    assert out.shape == psi.shape
    assert np.allclose(out, run_circuit(circuit, state=psi), atol=1e-10)


def test_run_sharded_validation():
    rng = np.random.default_rng(23)
    circuit = random_full_circuit(rng, 3, 5)
    psi = random_state(3, rng)
    with pytest.raises(ValueError, match="power of two"):
        run_sharded(circuit, psi, 3)
    with pytest.raises(ValueError, match="shards must be an int"):
        run_sharded(circuit, psi, True)
    with pytest.raises(ValueError, match="cannot span"):
        run_sharded(circuit, psi, 16)
    with pytest.raises(ValueError, match="program acts on"):
        run_sharded(circuit, random_state(4, rng), 2)


# ------------------------------------------------------------ observables
@pytest.mark.parametrize("qubit", [0, 1, 2, 3])
def test_expectation_z_without_gather(qubit):
    rng = np.random.default_rng(5)
    circuit = random_supported_circuit(rng, 4, 20)
    psi = run_circuit(circuit)
    exact = expectation(psi, PauliString("".join("Z" if i == qubit else "I" for i in range(4))))

    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        run_circuit_distributed(dist, circuit)
        return expectation_z_distributed(dist, qubit)

    values = run_spmd(prog, 4)
    # Allreduce: every rank holds the same expectation.
    for v in values:
        assert v == pytest.approx(exact, abs=1e-10)


def test_expectation_z_batched():
    rng = np.random.default_rng(9)
    n = 4
    states = np.stack([random_state(n, rng) for _ in range(5)])

    def prog(comm):
        dist = scatter_state(comm, states if comm.rank == 0 else None, n)
        return expectation_z_distributed(dist, 1)

    values = run_spmd(prog, 4)[0]
    exact = [
        expectation(s, PauliString("IZII")) for s in states
    ]
    assert np.allclose(values, exact, atol=1e-10)


def test_encoded_ensemble_evolution():
    """End-to-end: Fig. 7 encoding + Fig. 8 shifted Ansatz, distributed."""
    from repro.core.ansatz import fig8_ansatz
    from repro.data.encoding import encoding_circuit

    rng = np.random.default_rng(6)
    angles = rng.uniform(0, 2 * np.pi, (1, 4, 4))
    theta = np.zeros(8)
    theta[3] = np.pi / 2
    full = encoding_circuit(angles[0]).compose(fig8_ansatz().bind(theta))
    reference = run_circuit(full)

    def prog(comm):
        dist = distributed_zero_state(comm, 4)
        run_circuit_distributed(dist, full)
        return gather_state(dist)

    out = run_spmd(prog, 4)[0]
    assert np.allclose(out, reference, atol=1e-10)


def test_validation():
    def bad_size(comm):
        distributed_zero_state(comm, 4)

    with pytest.raises(SpmdError):
        run_spmd(bad_size, 3)  # not a power of two

    def bad_width(comm):
        distributed_zero_state(comm, 1)  # 1 qubit over 4 ranks

    with pytest.raises(SpmdError):
        run_spmd(bad_width, 4)
