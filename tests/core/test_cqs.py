"""CQS solver and Sec. III.E equivalence tests."""

import numpy as np
import pytest

from repro.core.cqs import (
    ansatz_tree_unitaries,
    decompose_hamiltonian_loss,
    hamiltonian_observable,
    solve_cqs,
)
from repro.data.linear_system import random_linear_system
from repro.ml.losses import mae_loss, rmse_loss


def test_hamiltonian_observable_properties():
    a, b, _ = random_linear_system(2, 3, seed=0)
    o = hamiltonian_observable(a, b)
    assert np.allclose(o, o.conj().T)  # Hermitian
    eigs = np.linalg.eigvalsh(o)
    assert np.all(eigs > -1e-10)  # PSD: A^dag P A with P a projector


def test_hamiltonian_loss_zero_iff_solution():
    a, b, x_true = random_linear_system(2, 3, seed=1)
    o = hamiltonian_observable(a, b)
    val = (x_true.conj() @ o @ x_true).real
    assert val == pytest.approx(0.0, abs=1e-10)


def test_ansatz_tree_deduplicates():
    a, _, _ = random_linear_system(2, 3, seed=2)
    unitaries = ansatz_tree_unitaries(a, 10)
    strings = [u.string for u in unitaries]
    assert len(set(strings)) == len(strings)
    assert strings[0] == "II"  # identity root


def test_ansatz_tree_respects_max_terms():
    a, _, _ = random_linear_system(3, 4, seed=3)
    assert len(ansatz_tree_unitaries(a, 5)) == 5
    assert len(ansatz_tree_unitaries(a, 1)) == 1


def test_residual_decreases_with_tree_size():
    a, b, _ = random_linear_system(3, 4, seed=4)
    residuals = [solve_cqs(a, b, max_terms=m).residual_norm for m in (1, 4, 16)]
    assert residuals[0] >= residuals[1] >= residuals[2] - 1e-12


def test_full_tree_solves_exactly():
    """With enough Pauli products the span covers the solution."""
    a, b, x_true = random_linear_system(2, 3, seed=5)
    result = solve_cqs(a, b, max_terms=16)
    assert result.residual_norm < 1e-8
    assert result.hamiltonian_loss == pytest.approx(0.0, abs=1e-10)
    assert np.allclose(a.to_matrix() @ result.x, b, atol=1e-8)


def test_section3e_identity():
    """Eqs. 8-13: L_Ham = sum_j alpha_j tr(O_j rho_b) = L_MAE <= L_RMSE."""
    a, b, _ = random_linear_system(3, 3, seed=6)
    result = solve_cqs(a, b, max_terms=6)
    alphas, observables = decompose_hamiltonian_loss(a, b, result)
    rho_b = np.outer(b, b.conj())

    # m = m_CQS^2 counting: diagonal + symmetrised cross terms.
    m_cqs = result.num_terms
    assert len(alphas) == m_cqs * (m_cqs + 1) // 2

    traces = np.array([np.trace(o @ rho_b).real for o in observables])
    total = float(alphas @ traces)
    assert total == pytest.approx(result.hamiltonian_loss, abs=1e-9)

    # MAE with ground truth 0 (Eq. 11-12), single data point d=1.
    l_mae = mae_loss([0.0], [total])
    l_rmse = rmse_loss([0.0], [total])
    assert l_mae == pytest.approx(result.hamiltonian_loss, abs=1e-9)
    assert l_mae <= l_rmse + 1e-12


def test_decomposed_observables_hermitian():
    a, b, _ = random_linear_system(2, 3, seed=7)
    result = solve_cqs(a, b, max_terms=4)
    _, observables = decompose_hamiltonian_loss(a, b, result)
    for o in observables:
        assert np.allclose(o, o.conj().T, atol=1e-10)


def test_unnormalised_b_rejected():
    a, b, _ = random_linear_system(2, 3, seed=8)
    with pytest.raises(ValueError):
        solve_cqs(a, 2.0 * b)
    with pytest.raises(ValueError):
        hamiltonian_observable(a, 2.0 * b)
    with pytest.raises(ValueError):
        ansatz_tree_unitaries(a, 0)
