"""Property tests for the batched structure-shared engine.

150 seeded random *templates* (bound 1q/2q gates mixed with unbound
single-qubit rotation slots) pin ``apply_batch`` to the per-sample oracle --
bind one row of angles, evolve with the naive gate walker -- to 1e-10, plus
segment bookkeeping (chain merging on the Fig. 7 encoder), exact agreement
with :func:`compile_circuit` on fully bound circuits, input validation and
picklability (the property that ships one parent-side compile to every
process worker).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data.encoding import encode_batch, encoding_template
from repro.quantum.batched import (
    AngleChain,
    ParametricCompiledCircuit,
    compile_parametric,
    extend_template,
    resolve_vectorize,
)
from repro.quantum.circuit import Circuit
from repro.quantum.compile import FusedBlock, compile_circuit
from repro.quantum.statevector import run_circuit

BOUND_ONE_QUBIT = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "phase"]
BOUND_TWO_QUBIT = ["cnot", "cx", "cz", "swap", "crx", "cry", "crz"]
SLOT_GATES = ["rx", "ry", "rz", "phase"]
PARAMETRIC = {"rx", "ry", "rz", "phase", "crx", "cry", "crz"}


def random_template(
    rng: np.random.Generator, num_qubits: int, num_gates: int, slot_prob: float = 0.35
) -> Circuit:
    """A random circuit template mixing bound gates and angle slots."""
    c = Circuit(num_qubits, name="template")
    for g in range(num_gates):
        if rng.random() < slot_prob:
            gate = SLOT_GATES[rng.integers(len(SLOT_GATES))]
            c.append(gate, int(rng.integers(num_qubits)), f"s{g}")
        elif num_qubits >= 2 and rng.random() < 0.4:
            gate = BOUND_TWO_QUBIT[rng.integers(len(BOUND_TWO_QUBIT))]
            qubits = tuple(rng.choice(num_qubits, size=2, replace=False).tolist())
            param = float(rng.uniform(-np.pi, np.pi)) if gate in PARAMETRIC else None
            c.append(gate, qubits, param)
        else:
            gate = BOUND_ONE_QUBIT[rng.integers(len(BOUND_ONE_QUBIT))]
            param = float(rng.uniform(-np.pi, np.pi)) if gate in PARAMETRIC else None
            c.append(gate, int(rng.integers(num_qubits)), param)
    return c


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("seed", range(150))
def test_apply_batch_matches_per_sample_oracle(seed):
    """The core property: one stacked pass == bind + evolve per sample."""
    rng = np.random.default_rng(31_000 + seed)
    n = int(rng.integers(2, 7))
    g = int(rng.integers(5, 35))
    k = int(rng.integers(1, 4))
    template = random_template(rng, n, g)
    program = compile_parametric(template, max_width=k)
    assert program.num_slots == template.num_parameters

    batch = 4
    angles = rng.uniform(-2 * np.pi, 2 * np.pi, size=(batch, template.num_parameters))
    stacked = program.apply_batch(angles)
    oracle = np.stack(
        [run_circuit(template.bind(angles[i])) for i in range(batch)]
    )
    assert np.abs(stacked - oracle).max() < 1e-10

    # From caller-supplied initial states too.
    states = rng.normal(size=(batch, 2**n)) + 1j * rng.normal(size=(batch, 2**n))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    stacked = program.apply_batch(angles, states=states)
    oracle = np.stack(
        [run_circuit(template.bind(angles[i]), state=states[i]) for i in range(batch)]
    )
    assert np.abs(stacked - oracle).max() < 1e-10


@pytest.mark.parametrize("k", [1, 2, 3])
def test_fully_bound_template_matches_compile_circuit(k):
    """With no slots the batched program is the fused program, same map."""
    rng = np.random.default_rng(7)
    template = random_template(rng, 4, 25, slot_prob=0.0)
    program = compile_parametric(template, max_width=k)
    assert program.num_slots == 0
    assert program.num_chains == 0
    fused = compile_circuit(template, max_width=k, cache=None)
    states = rng.normal(size=(3, 16)) + 1j * rng.normal(size=(3, 16))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    got = program.apply_batch(np.empty((3, 0)), states=states)
    assert np.abs(got - fused.apply(states)).max() < 1e-12


def test_encoder_template_matches_encode_batch():
    """The Fig. 7 template reproduces the vectorised encoder kernel."""
    rng = np.random.default_rng(3)
    rows, cols = 4, 5
    angles = rng.uniform(0, 2 * np.pi, size=(11, rows, cols))
    program = compile_parametric(encoding_template(rows, cols))
    assert np.abs(program.apply_batch(angles) - encode_batch(angles)).max() < 1e-10


def test_extend_template_appends_bound_suffix():
    rng = np.random.default_rng(5)
    template = encoding_template(2, 3)
    suffix = random_template(rng, 3, 10, slot_prob=0.0)
    full = extend_template(template, suffix)
    assert full.num_parameters == template.num_parameters
    assert full.num_gates == template.num_gates + suffix.num_gates
    # None suffix is the identity composition.
    assert extend_template(template, None) is template
    with pytest.raises(ValueError, match="bound"):
        extend_template(template, encoding_template(2, 3))
    with pytest.raises(ValueError, match="qubit count"):
        extend_template(template, random_template(rng, 2, 4, slot_prob=0.0))


# ----------------------------------------------------------------- structure
def test_encoder_chains_collapse_per_qubit():
    """rows alternating RZ/RX rotations per wire merge into ONE chain each,
    so encoding costs cols state-sized passes instead of rows * cols."""
    rows, cols = 6, 4
    program = compile_parametric(encoding_template(rows, cols))
    chains = [s for s in program.segments if isinstance(s, AngleChain)]
    assert len(chains) == cols
    assert sorted(c.qubit for c in chains) == list(range(cols))
    for chain in chains:
        assert chain.num_factors == rows
        # Slot indices are this qubit's column of the C-order angle grid.
        assert chain.slots == tuple(r * cols + chain.qubit for r in range(rows))
    # The H layer fuses into shared dense blocks.
    blocks = [s for s in program.segments if isinstance(s, FusedBlock)]
    assert sum(b.source_gates for b in blocks) == cols


def test_bound_gates_fold_into_neighbouring_chain():
    """A bound 1q gate adjacent to a slot chain rides along as a fixed
    factor instead of opening a new fused block."""
    c = Circuit(2)
    c.append("rx", 0, "a")
    c.append("h", 0)
    c.append("rz", 0, "b")
    program = compile_parametric(c)
    assert program.num_blocks == 0
    assert program.num_chains == 1
    assert program.segments[0].num_factors == 3

    rng = np.random.default_rng(0)
    angles = rng.uniform(-np.pi, np.pi, size=(5, 2))
    oracle = np.stack([run_circuit(c.bind(a)) for a in angles])
    assert np.abs(program.apply_batch(angles) - oracle).max() < 1e-12


def test_disjoint_runs_merge_past_chains():
    """Bound gates commute past support-disjoint chains into earlier runs,
    keeping the fused-block count independent of interleaving order."""
    c = Circuit(3)
    c.append("h", 0)
    c.append("rz", 1, "a")  # chain on wire 1
    c.append("cz", (0, 2))  # disjoint from wire 1: merges with the h run
    program = compile_parametric(c, max_width=3)
    assert program.num_blocks == 1
    assert program.num_chains == 1

    rng = np.random.default_rng(1)
    angles = rng.uniform(-np.pi, np.pi, size=(4, 1))
    oracle = np.stack([run_circuit(c.bind(a)) for a in angles])
    assert np.abs(program.apply_batch(angles) - oracle).max() < 1e-12


# ---------------------------------------------------------------- validation
def test_unbound_controlled_rotation_rejected():
    c = Circuit(2)
    c.append("crx", (0, 1), "theta")
    with pytest.raises(ValueError, match="single-qubit rotations"):
        compile_parametric(c)


def test_compile_off_rejected():
    with pytest.raises(ValueError, match="disabled"):
        compile_parametric(encoding_template(2, 2), max_width="off")


def test_apply_batch_shape_validation():
    program = compile_parametric(encoding_template(2, 2))
    with pytest.raises(ValueError, match="angle slots"):
        program.apply_batch(np.zeros((3, 5)))
    with pytest.raises(ValueError, match="states shape"):
        program.apply_batch(np.zeros((3, 4)), states=np.zeros((2, 4)))


def test_resolve_vectorize_knob():
    assert resolve_vectorize(None) == "off"
    assert resolve_vectorize("off") == "off"
    assert resolve_vectorize("auto") == "auto"
    for bad in ("on", True, 1, "batched"):
        with pytest.raises(ValueError, match="vectorize"):
            resolve_vectorize(bad)


# ------------------------------------------------------------------ pickling
def test_program_pickles_and_matches():
    """One parent-side compile must ship to process workers intact."""
    rng = np.random.default_rng(9)
    template = random_template(rng, 3, 20)
    program = compile_parametric(template)
    clone = pickle.loads(pickle.dumps(program))
    assert isinstance(clone, ParametricCompiledCircuit)
    angles = rng.uniform(-np.pi, np.pi, size=(6, template.num_parameters))
    assert np.array_equal(program.apply_batch(angles), clone.apply_batch(angles))
