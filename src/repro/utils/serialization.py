"""Experiment artifact persistence (NumPy archives + JSON-safe dicts).

A release needs feature matrices, circuits and experiment records to
round-trip to disk: Q matrices are expensive (they stand for quantum
runtime), so pipelines cache them; circuits serialise to plain dicts for
provenance logging.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.quantum.circuit import Circuit, Parameter

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "save_feature_matrix",
    "load_feature_matrix",
]


def circuit_to_dict(circuit: Circuit) -> dict[str, Any]:
    """JSON-safe description of a circuit (gates, qubits, params)."""
    ops = []
    for op in circuit:
        if isinstance(op.param, Parameter):
            param: Any = {"symbol": op.param.name}
        else:
            param = op.param
        ops.append({"gate": op.gate, "qubits": list(op.qubits), "param": param})
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "operations": ops,
    }


def circuit_from_dict(data: dict[str, Any]) -> Circuit:
    """Inverse of :func:`circuit_to_dict` (symbols re-registered in order)."""
    circuit = Circuit(int(data["num_qubits"]), name=data.get("name", "circuit"))
    for op in data["operations"]:
        param = op.get("param")
        if isinstance(param, dict):
            param = str(param["symbol"])
        circuit.append(op["gate"], tuple(op["qubits"]), param)
    return circuit


def save_feature_matrix(
    path: str | Path,
    q: np.ndarray,
    y: np.ndarray | None = None,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Persist a Q matrix (+ labels, + JSON metadata) as one ``.npz``."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {"q": np.asarray(q)}
    if y is not None:
        arrays["y"] = np.asarray(y)
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata or {}).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_feature_matrix(
    path: str | Path,
) -> tuple[np.ndarray, np.ndarray | None, dict[str, Any]]:
    """Inverse of :func:`save_feature_matrix`: ``(q, y_or_None, metadata)``."""
    with np.load(Path(path) if str(path).endswith(".npz") else f"{path}.npz") as data:
        q = data["q"]
        y = data["y"] if "y" in data.files else None
        metadata = json.loads(bytes(data["metadata"].tobytes()).decode() or "{}")
    return q, y, metadata
