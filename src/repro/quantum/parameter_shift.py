"""Parameter-shift differentiation of circuit expectation values.

The Ansatz-expansion strategy (paper Sec. IV.A) is built on the observation
(Mari et al. [59]) that for Pauli-rotation gates, any derivative of
``f(theta) = <0|S^dag U(theta)^dag O U(theta) S|0>`` is a linear combination
of the same circuit evaluated at shifted parameter vectors in ``{0, +-pi/2}``
around the expansion point.  This module provides

* :func:`gradient` -- first derivatives, the two-term rule
  ``df/du = (f(theta + pi/2 e_u) - f(theta - pi/2 e_u)) / 2``;
* :func:`hessian` -- second derivatives via the iterated rule;
* both are also used as the *exact-gradient* engine of the variational
  baseline (Table I, left column).

``f`` is abstracted as a callable ``theta -> float`` so the same rules apply
to exact simulation, finite shots, or hardware backends.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.observables import expectation
from repro.quantum.statevector import run_circuit

__all__ = [
    "expectation_function",
    "gradient",
    "hessian",
    "shift_rule_terms",
]

SHIFT = np.pi / 2


def expectation_function(
    circuit: Circuit,
    observable,
    state: np.ndarray | None = None,
) -> Callable[[np.ndarray], float]:
    """Build ``f(theta) = <psi(theta)|O|psi(theta)>`` for an unbound circuit.

    ``state`` is the input ket before the parameterised circuit (e.g. the
    data-encoded state); default |0...0>.
    """
    def f(theta: np.ndarray) -> float:
        psi = run_circuit(circuit, state=state, params=np.asarray(theta, dtype=float))
        return float(expectation(psi, observable))

    return f


def gradient(
    f: Callable[[np.ndarray], float], theta: Sequence[float]
) -> np.ndarray:
    """Exact gradient of ``f`` at ``theta`` via the two-term shift rule.

    Valid when every parameter feeds exactly one Pauli rotation (the library's
    Ansatz builders guarantee this); 2k evaluations for k parameters.
    """
    theta = np.asarray(theta, dtype=float)
    grad = np.empty_like(theta)
    for u in range(theta.size):
        e = np.zeros_like(theta)
        e[u] = SHIFT
        grad[u] = 0.5 * (f(theta + e) - f(theta - e))
    return grad


def hessian(
    f: Callable[[np.ndarray], float], theta: Sequence[float]
) -> np.ndarray:
    """Exact Hessian via the iterated parameter-shift rule.

    Off-diagonal: four evaluations at ``theta +- pi/2 e_u +- pi/2 e_v`` with
    coefficient 1/4.  Diagonal: the trigonometric identity
    ``f''_u = (f(theta + pi e_u) - f(theta)) / 2`` (single-frequency gates).
    """
    theta = np.asarray(theta, dtype=float)
    k = theta.size
    hess = np.empty((k, k))
    f0 = f(theta)
    for u in range(k):
        eu = np.zeros(k)
        eu[u] = 1.0
        hess[u, u] = 0.5 * (f(theta + np.pi * eu) - f0)
        for v in range(u + 1, k):
            ev = np.zeros(k)
            ev[v] = 1.0
            val = 0.25 * (
                f(theta + SHIFT * (eu + ev))
                - f(theta + SHIFT * (eu - ev))
                - f(theta - SHIFT * (eu - ev))
                + f(theta - SHIFT * (eu + ev))
            )
            hess[u, v] = hess[v, u] = val
    return hess


def shift_rule_terms(k: int, u: int) -> list[tuple[float, np.ndarray]]:
    """The (coefficient, shift-vector) pairs of the first-order rule for
    parameter ``u`` of ``k`` -- exposed so the Ansatz-expansion strategy can
    show that its enumerated circuits linearly span all gradients."""
    plus = np.zeros(k)
    plus[u] = SHIFT
    return [(0.5, plus), (-0.5, -plus)]
