"""E13 (extension) -- Sec. IV.B low-degree approximation, quantified.

Decomposes the Heisenberg observable U(theta)^dag O U(theta) of the Fig. 8
Ansatz (Appendix A) into the Pauli basis, truncates by locality L and
measures the retained Fourier weight and the induced expectation error --
the quantitative backing for "considering all Pauli observables within a
certain locality L [is] a good heuristic".
"""

from __future__ import annotations

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.core.decomposition import (
    decomposition_weight_profile,
    heisenberg_observable,
    truncate_by_locality,
)
from repro.data.encoding import encode_batch
from repro.quantum.observables import PauliString, expectation


def run_truncation(split):
    rng = np.random.default_rng(0)
    states = encode_batch(split.x_train[:30])
    records = []
    for scale in (0.25, 0.5, 1.0):
        theta = rng.uniform(-scale, scale, 8)
        full = heisenberg_observable(fig8_ansatz().bind(theta), PauliString("ZIII"))
        profile = decomposition_weight_profile(full)
        total_weight = sum(profile.values())
        exact = expectation(states, full)
        row = {"scale": scale, "terms": full.num_terms, "profile": profile, "errors": {}}
        for locality in (1, 2, 3, 4):
            approx = truncate_by_locality(full, locality)
            err = float(np.max(np.abs(expectation(states, approx) - exact)))
            kept = sum(w for level, w in profile.items() if level <= locality) / total_weight
            row["errors"][locality] = (err, kept)
        records.append(row)
    return records


def test_locality_truncation(benchmark, small_split):
    records = benchmark.pedantic(
        run_truncation, args=(small_split,), rounds=1, iterations=1
    )

    print("\n=== E13: locality truncation of U^dag O U (Fig. 8 Ansatz) ===")
    for rec in records:
        print(f"theta scale {rec['scale']}: {rec['terms']} Pauli terms")
        for locality, (err, kept) in rec["errors"].items():
            print(f"   L={locality}: weight kept {kept:6.1%}, max expectation error {err:.4f}")

    for rec in records:
        errors = [rec["errors"][loc][0] for loc in (1, 2, 3, 4)]
        kept = [rec["errors"][loc][1] for loc in (1, 2, 3, 4)]
        # Full locality is exact; error shrinks, weight grows with L.
        assert errors[-1] < 1e-10
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:], strict=False))
        assert all(b >= a - 1e-12 for a, b in zip(kept, kept[1:], strict=False))
        assert kept[-1] > 0.999
    # Small-angle regime: the observable stays essentially 2-local
    # (the derivative circuits' "limited extension" beyond L, Sec. IV.C).
    small = records[0]
    assert small["errors"][2][1] > 0.8
