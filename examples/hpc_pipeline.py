"""The hybrid HPC-QC pipeline: parallel dispatch, profiling, scaling model.

Shows the SC-track system layer end to end:

1. fit the post-variational model through the instrumented
   :class:`HybridPipeline` with a thread-pool executor;
2. read the stage timers and dispatch counters;
3. project the same circuit workload onto a simulated 16-node QPU cluster
   and print the strong-scaling curve and an ASCII Gantt chart of the LPT
   schedule.

Run:  python examples/hpc_pipeline.py
"""

import numpy as np

from repro.api import ExecutionConfig
from repro.core import HybridStrategy
from repro.core.pipeline import HybridPipeline
from repro.data import binary_coat_vs_shirt
from repro.hpc import (
    ClusterModel,
    NodeSpec,
    ParallelExecutor,
    Trace,
    scaling_report,
    strong_scaling,
)


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=60, test_per_class=15)

    # --- real parallel execution with instrumentation -------------------
    # One persistent runtime serves fit + both score sweeps; the context
    # manager releases the pool at the end.  The report's dispatch line
    # reconciles the LPT projection against measured per-task wall-clock.
    # All execution knobs travel as one ExecutionConfig (repro.api).
    with HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1),
        executor=ParallelExecutor("thread", max_workers=4),
        cluster=ClusterModel(node=NodeSpec(shot_rate=1e5), num_nodes=16),
        config=ExecutionConfig(
            dispatch_policy="lpt", chunk_size=30, compile="auto"
        ),
    ) as pipeline:
        pipeline.fit(split.x_train, split.y_train)
        print(pipeline.report_.summary())
        print(f"train acc: {pipeline.score(split.x_train, split.y_train):.3f}")
        print(f"test  acc: {pipeline.score(split.x_test, split.y_test):.3f}")

    # --- simulated-cluster scaling study ---------------------------------
    tasks = pipeline.circuit_tasks(split.num_train)
    print(f"\ndispatch grid: {len(tasks)} circuit tasks")
    points = strong_scaling(tasks, NodeSpec(shot_rate=1e5), [1, 2, 4, 8, 16, 32])
    print(scaling_report(points))

    # --- schedule visualisation ------------------------------------------
    model = ClusterModel(node=NodeSpec(shot_rate=1e5), num_nodes=8)
    costs = [model.task_compute_time(t) for t in tasks]
    from repro.hpc import schedule

    assignment = schedule(np.array(costs), 8, "lpt")
    trace = Trace.from_assignment(assignment, costs)
    print("\nLPT schedule (8 nodes):")
    print(trace.ascii_gantt(8, width=56))
    print(f"utilisation: {trace.utilization(8):.2%}")


if __name__ == "__main__":
    main()
