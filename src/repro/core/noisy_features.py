"""Noisy feature generation: Algorithm 1 under a Kraus noise model.

The NISQ deployment path: every gate of the *full* circuit (Fig. 7 encoder
followed by the strategy's fixed Ansatz) is followed by the noise model's
channel, and features become ``tr(O_j rho_noisy(x_i, theta_a))`` computed
with the density-matrix simulator.  O(4^n) memory per state -- intended for
the paper's n = 4 regime, where it quantifies how much ensemble signal
survives hardware-calibre depolarisation (integration-tested and used by
the noise-robustness example).
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies import Strategy
from repro.data.encoding import encoding_circuit
from repro.hpc.executor import ParallelExecutor
from repro.quantum.density import expectation_density, run_circuit_density
from repro.quantum.noise import NoiseModel

__all__ = ["generate_features_noisy"]


class _NoisyWorker:
    """Picklable per-sample worker: full-circuit density evolution."""

    def __init__(self, strategy: Strategy, noise_model: NoiseModel):
        self.strategy = strategy
        self.noise_model = noise_model
        self.observables = strategy.observables()
        self.parameter_sets = strategy.parameter_sets()

    def __call__(self, angles_one: np.ndarray) -> np.ndarray:
        q = len(self.observables)
        p = len(self.parameter_sets)
        row = np.empty(p * q)
        encoder = encoding_circuit(angles_one)
        for a, params in enumerate(self.parameter_sets):
            circuit = encoder
            ansatz = self.strategy.ansatz
            if ansatz is not None and ansatz.num_parameters:
                circuit = encoder.compose(ansatz.bind(params))
            rho = run_circuit_density(circuit, noise_model=self.noise_model)
            for b, obs in enumerate(self.observables):
                row[a * q + b] = expectation_density(rho, obs)
        return row


def generate_features_noisy(
    strategy: Strategy,
    angles: np.ndarray,
    noise_model: NoiseModel,
    executor: ParallelExecutor | None = None,
) -> np.ndarray:
    """Noisy Q matrix: (d, m) array of ``tr(O_j rho_noisy)`` values.

    Deterministic (channels are applied exactly, not sampled), so noise
    studies are reproducible without seed bookkeeping.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 3:
        raise ValueError("angles must be (d, rows, cols)")
    if angles.shape[2] != strategy.num_qubits:
        raise ValueError("angle grid width must equal the strategy's qubit count")
    executor = executor or ParallelExecutor()
    worker = _NoisyWorker(strategy, noise_model)
    rows = executor.map(worker, list(angles))
    return np.stack(rows)
