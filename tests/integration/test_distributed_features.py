"""Algorithm 1 under sharded distributed statevector execution.

Pins ``shards > 1`` (the :class:`DistributedStatevectorBackend`) to the
single-process oracle: the job grid, encoding and per-task seed derivation
are all shared, so exact sweeps agree to 1e-10 and shot-based sweeps are
seed-for-seed identical.  This is also the CI ``distributed-smoke`` job's
workload -- a real 4-rank feature sweep end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExecutionConfig, QuantumDevice
from repro.core.ansatz import fig8_ansatz
from repro.core.features import feature_circuit_tasks, feature_jobs, generate_features
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.quantum.backends import DistributedStatevectorBackend

STRATEGIES = [
    pytest.param(AnsatzExpansion(circuit=fig8_ansatz(4, 2), order=1), id="expansion"),
    pytest.param(ObservableConstruction(qubits=4, locality=2), id="observable"),
    pytest.param(HybridStrategy(circuit=fig8_ansatz(4, 1), order=1, locality=1), id="hybrid"),
]


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(42)
    return rng.uniform(0, 2 * np.pi, size=(11, 4, 4))


def _cfg(**kw):
    kw.setdefault("chunk_size", 4)
    return ExecutionConfig(**kw)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_sweep_matches_oracle(strategy, angles, shards):
    oracle = generate_features(strategy, angles, config=_cfg())
    sharded = generate_features(strategy, angles, config=_cfg(shards=shards))
    assert np.abs(sharded - oracle).max() < 1e-10


@pytest.mark.parametrize("compile", ["off", "auto"])
def test_sharded_sweep_compile_knob(angles, compile):
    strategy = HybridStrategy(circuit=fig8_ansatz(4, 1), order=1, locality=1)
    oracle = generate_features(strategy, angles, config=_cfg(compile=compile))
    sharded = generate_features(
        strategy, angles, config=_cfg(compile=compile, shards=4)
    )
    assert np.abs(sharded - oracle).max() < 1e-10


def test_sharded_shots_seed_identical(angles):
    """Measurement happens on the gathered states with the same per-task
    seeds, so finite-shot sweeps are draw-for-draw identical."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    oracle = generate_features(
        strategy, angles, config=_cfg(estimator="shots", shots=64, seed=11)
    )
    sharded = generate_features(
        strategy, angles,
        config=_cfg(estimator="shots", shots=64, seed=11, shards=2),
    )
    assert np.array_equal(oracle, sharded)


def test_sharded_tasks_carry_num_shards(angles):
    """The scheduler's cost model sees the slab split."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DistributedStatevectorBackend(shards=4)
    jobs = feature_jobs(strategy.num_ansatze, angles.shape[0], 4)
    tasks = feature_circuit_tasks(
        jobs, [None] * strategy.num_ansatze, strategy.num_qubits,
        strategy.num_observables, "exact", 0, 0, backend=backend,
    )
    assert tasks and all(t.num_shards == 4 for t in tasks)


def test_device_session_carries_shards(angles):
    strategy = ObservableConstruction(qubits=4, locality=1)
    oracle = generate_features(strategy, angles, config=_cfg())
    with QuantumDevice(_cfg(shards=4)) as dev:
        assert isinstance(dev.config.backend, DistributedStatevectorBackend)
        q, _ = dev.run(strategy, angles)
        q_single, _ = dev.reconfigured(shards=1, backend=None).run(strategy, angles)
    assert np.abs(q - oracle).max() < 1e-10
    assert np.array_equal(q_single, oracle)
