"""Sharded distributed execution: gate-group engine vs the per-gate walk.

The distributed layer's comm-avoidance claim, measured: the naive engine
(:func:`run_circuit_distributed`) pays a pairwise exchange for *every* gate
touching a global qubit, while the grouped engine
(:func:`run_compiled_distributed`) remaps the register at gate-group
boundaries only, so whole fused groups run with zero communication.  The
gate is on *amplitudes exchanged* (:class:`CommStats`) -- a deterministic
count, unlike wall time on an in-process thread communicator -- plus the
usual <=1e-10 correctness pin of both engines against the single-process
oracle.

Smoke mode (``DISTRIBUTED_BENCH_SMOKE=1``, the CI perf-guard job) shrinks
the register and depth.  Results are written to ``BENCH_distributed.json``
when ``BENCH_WRITE=1``.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import best_of, env_flag, write_bench_record
from repro.hpc.comm import run_spmd
from repro.quantum.circuit import Circuit
from repro.quantum.compile import compile_circuit, plan_shard_groups
from repro.quantum.distributed import (
    distributed_zero_state,
    gather_state,
    run_circuit_distributed,
    run_compiled_distributed,
)
from repro.quantum.statevector import run_circuit

SMOKE = env_flag("DISTRIBUTED_BENCH_SMOKE")

NUM_QUBITS = 6 if SMOKE else 8
SHARDS = 4
TARGET_DEPTH = 16 if SMOKE else 40
REPEATS = 2 if SMOKE else 5


def build_workload() -> Circuit:
    """A depth>=40 hardware-efficient circuit with global-qubit traffic.

    The entangling ladder runs across the global/local boundary every
    layer, so the per-gate engine cannot avoid exchanges by luck.
    """
    rng = np.random.default_rng(0)
    circuit = Circuit(NUM_QUBITS, name="distributed-hotpath")
    while circuit.depth() < TARGET_DEPTH:
        for q in range(NUM_QUBITS):
            circuit.append("ry", q, rng.uniform(-np.pi, np.pi))
            circuit.append("rz", q, rng.uniform(-np.pi, np.pi))
        for q in range(NUM_QUBITS - 1):
            circuit.append("cnot", (q, q + 1))
        circuit.append("crz", (NUM_QUBITS - 1, 0), rng.uniform(-np.pi, np.pi))
    return circuit


def run_speedup():
    circuit = build_workload()
    reference = run_circuit(circuit)
    g = SHARDS.bit_length() - 1
    program = compile_circuit(circuit, max_width=NUM_QUBITS - g, cache=None)
    plan = plan_shard_groups(program, g)

    def naive(comm):
        dist = distributed_zero_state(comm, NUM_QUBITS)
        run_circuit_distributed(dist, circuit)
        return gather_state(dist), dist.stats.messages, dist.stats.amplitudes

    def grouped(comm):
        dist = distributed_zero_state(comm, NUM_QUBITS)
        run_compiled_distributed(dist, program, plan=plan)
        return gather_state(dist), dist.stats.messages, dist.stats.amplitudes

    naive_out = run_spmd(naive, SHARDS, timeout=300.0)
    grouped_out = run_spmd(grouped, SHARDS, timeout=300.0)
    err_naive = float(np.abs(naive_out[0][0] - reference).max())
    err_grouped = float(np.abs(grouped_out[0][0] - reference).max())
    naive_msgs = sum(r[1] for r in naive_out)
    naive_amps = sum(r[2] for r in naive_out)
    grouped_msgs = sum(r[1] for r in grouped_out)
    grouped_amps = sum(r[2] for r in grouped_out)

    t_naive = best_of(lambda: run_spmd(naive, SHARDS, timeout=300.0), REPEATS)
    t_grouped = best_of(lambda: run_spmd(grouped, SHARDS, timeout=300.0), REPEATS)
    return {
        "benchmark": "distributed_speedup",
        "num_qubits": NUM_QUBITS,
        "shards": SHARDS,
        "smoke": SMOKE,
        "gates": circuit.num_gates,
        "depth": circuit.depth(),
        "blocks": program.num_blocks,
        "groups": len(plan),
        "naive_messages": naive_msgs,
        "naive_amplitudes": naive_amps,
        "grouped_messages": grouped_msgs,
        "grouped_amplitudes": grouped_amps,
        "comm_reduction": naive_amps / grouped_amps if grouped_amps else float("inf"),
        "t_naive": t_naive,
        "t_grouped": t_grouped,
        "speedup": t_naive / t_grouped,
        "err_naive": err_naive,
        "err_grouped": err_grouped,
    }


def test_distributed_comm_avoidance():
    result = run_speedup()
    # Correctness first: both engines pinned to the single-process oracle.
    assert result["err_naive"] <= 1e-10
    assert result["err_grouped"] <= 1e-10
    # The regression gate is the deterministic communication *volume* --
    # wall time on the in-process thread communicator is dominated by queue
    # overhead and is recorded, not gated.  Message count is recorded only:
    # remaps are many cheap half-slab exchanges, so the grouped engine can
    # send more (smaller) messages while shipping far fewer amplitudes.
    assert result["grouped_amplitudes"] < result["naive_amplitudes"]
    if not SMOKE:
        # Full workload: gate groups must cut exchanged volume decisively.
        # Every layer of the ladder workload touches all qubits, so one
        # remap per group is unavoidable; 1.5x is the structural win left.
        assert result["comm_reduction"] >= 1.5
    write_bench_record("BENCH_distributed.json", result)
    print(
        f"\ndistributed {result['num_qubits']}q x{result['shards']}: "
        f"amps {result['naive_amplitudes']} -> {result['grouped_amplitudes']} "
        f"({result['comm_reduction']:.1f}x less), "
        f"t {result['t_naive']:.3f}s -> {result['t_grouped']:.3f}s"
    )
