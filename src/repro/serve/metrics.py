"""Service observability: counters, coalescing, caches, latency quantiles.

:class:`ServiceMetrics` is the mutable recorder the service drives;
:meth:`ServiceMetrics.snapshot` freezes it into a :class:`MetricsSnapshot`
value object (JSON-safe via ``to_dict``) -- the thing ``repro serve`` dumps
and the CI smoke asserts on.  Latency quantiles are computed over a bounded
per-tenant reservoir (the most recent :data:`LATENCY_WINDOW` responses), so
a long-lived service's metrics cost stays O(1).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["LATENCY_WINDOW", "TenantStats", "MetricsSnapshot", "ServiceMetrics"]

#: Per-tenant latency reservoir size (most recent responses kept).
LATENCY_WINDOW = 4096


def _percentile_ms(latencies: deque[float], q: float) -> float:
    """The q-th percentile of a latency reservoir, in ms (nan when empty)."""
    if not latencies:
        return math.nan
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


@dataclass(frozen=True)
class TenantStats:
    """One tenant's view: traffic, rejections, latency quantiles."""

    requests: int
    responses: int
    rejected: int
    timeouts: int
    cache_hits: int
    outstanding: int
    p50_ms: float
    p99_ms: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "outstanding": self.outstanding,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen service-wide metrics at one instant.

    ``coalesce_ratio`` is the micro-batcher's payoff: flushed requests per
    flush (1.0 = no cross-request sharing; the CI smoke asserts > 1 under
    concurrent same-template load).  ``queue_depth`` counts admitted
    requests not yet resolved; cache dicts mirror
    ``CompileCache.info()`` / ``ResultCache.info()``.
    """

    requests_total: int
    responses_total: int
    rejected_total: int
    timeouts_total: int
    errors_total: int
    cache_hits_total: int
    flushes_total: int
    flushed_requests_total: int
    max_flush_size: int
    coalesce_ratio: float
    queue_depth: int
    compile_cache: dict[str, int]
    result_cache: dict[str, int]
    tenants: tuple[tuple[str, TenantStats], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests_total": self.requests_total,
            "responses_total": self.responses_total,
            "rejected_total": self.rejected_total,
            "timeouts_total": self.timeouts_total,
            "errors_total": self.errors_total,
            "cache_hits_total": self.cache_hits_total,
            "flushes_total": self.flushes_total,
            "flushed_requests_total": self.flushed_requests_total,
            "max_flush_size": self.max_flush_size,
            "coalesce_ratio": self.coalesce_ratio,
            "queue_depth": self.queue_depth,
            "compile_cache": dict(self.compile_cache),
            "result_cache": dict(self.result_cache),
            "tenants": {name: stats.to_dict() for name, stats in self.tenants},
        }


class _TenantRecorder:
    """Mutable per-tenant counters + latency reservoir."""

    __slots__ = (
        "requests",
        "responses",
        "rejected",
        "timeouts",
        "cache_hits",
        "latencies",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.responses = 0
        self.rejected = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)


class ServiceMetrics:
    """The service's mutable recorder.

    Thread-safe (one lock around every mutation): recording happens on the
    event loop, but ``snapshot()`` may be called from any thread -- e.g. a
    monitoring hook observing a running service.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantRecorder] = {}
        self._errors = 0
        self._flushes = 0
        self._flushed_requests = 0
        self._max_flush = 0

    def _tenant(self, tenant: str) -> _TenantRecorder:
        recorder = self._tenants.get(tenant)
        if recorder is None:
            recorder = self._tenants[tenant] = _TenantRecorder()
        return recorder

    # -------------------------------------------------------------- recording
    def record_request(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).requests += 1

    def record_rejected(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).rejected += 1

    def record_timeout(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).timeouts += 1

    def record_cache_hit(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).cache_hits += 1

    def record_response(self, tenant: str, latency_s: float) -> None:
        with self._lock:
            recorder = self._tenant(tenant)
            recorder.responses += 1
            recorder.latencies.append(latency_s)

    def record_error(self, count: int = 1) -> None:
        with self._lock:
            self._errors += count

    def record_flush(self, size: int) -> None:
        with self._lock:
            self._flushes += 1
            self._flushed_requests += size
            self._max_flush = max(self._max_flush, size)

    # -------------------------------------------------------------- snapshot
    def snapshot(
        self,
        *,
        queue_depth: int = 0,
        outstanding: dict[str, int] | None = None,
        compile_cache: dict[str, int] | None = None,
        result_cache: dict[str, int] | None = None,
    ) -> MetricsSnapshot:
        """Freeze the current counters into a :class:`MetricsSnapshot`."""
        outstanding = outstanding or {}
        with self._lock:
            tenants = tuple(
                (
                    name,
                    TenantStats(
                        requests=rec.requests,
                        responses=rec.responses,
                        rejected=rec.rejected,
                        timeouts=rec.timeouts,
                        cache_hits=rec.cache_hits,
                        outstanding=outstanding.get(name, 0),
                        p50_ms=_percentile_ms(rec.latencies, 50),
                        p99_ms=_percentile_ms(rec.latencies, 99),
                    ),
                )
                for name, rec in sorted(self._tenants.items())
            )
            flushes = self._flushes
            flushed = self._flushed_requests
            return MetricsSnapshot(
                requests_total=sum(r.requests for r in self._tenants.values()),
                responses_total=sum(r.responses for r in self._tenants.values()),
                rejected_total=sum(r.rejected for r in self._tenants.values()),
                timeouts_total=sum(r.timeouts for r in self._tenants.values()),
                errors_total=self._errors,
                cache_hits_total=sum(r.cache_hits for r in self._tenants.values()),
                flushes_total=flushes,
                flushed_requests_total=flushed,
                max_flush_size=self._max_flush,
                coalesce_ratio=(flushed / flushes) if flushes else math.nan,
                queue_depth=queue_depth,
                compile_cache=dict(compile_cache or {}),
                result_cache=dict(result_cache or {}),
                tenants=tenants,
            )
