"""End-to-end pipeline tests."""

import numpy as np
import pytest

from repro.core.pipeline import HybridPipeline
from repro.core.strategies import HybridStrategy, ObservableConstruction
from repro.hpc.cluster import ClusterModel, NodeSpec
from repro.hpc.executor import ParallelExecutor


@pytest.fixture(scope="module")
def small_task():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, size=(40, 4, 4))
    y = (angles[:, 0, 0] + angles[:, 1, 1] > 2 * np.pi).astype(int)
    return angles, y


def test_fit_predict_roundtrip(small_task):
    angles, y = small_task
    pipe = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    pipe.fit(angles, y)
    preds = pipe.predict(angles)
    assert preds.shape == y.shape
    assert pipe.score(angles, y) > 0.5
    assert pipe.loss(angles, y) < 1.0


def test_report_contents(small_task):
    angles, y = small_task
    pipe = HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1),
        cluster=ClusterModel(node=NodeSpec(), num_nodes=4),
    )
    pipe.fit(angles, y)
    report = pipe.report_
    assert report.num_features == 221
    assert report.num_ansatze == 17
    assert report.num_train == 40
    assert report.timer.total("generate_features") > 0
    assert report.projected_makespan is not None
    assert "ensemble" in report.summary()


def test_circuit_tasks_grid(small_task):
    angles, _ = small_task
    pipe = HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1), chunk_size=16
    )
    tasks = pipe.circuit_tasks(angles.shape[0])
    # p Ansatz instances x ceil(40/16)=3 chunks.
    assert len(tasks) == 17 * 3
    assert sum(t.num_circuits for t in tasks) == 17 * 40


def test_executor_backend_equivalence(small_task):
    angles, y = small_task
    serial = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    serial.fit(angles, y)
    threaded = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        executor=ParallelExecutor("thread", 4),
        chunk_size=8,
    )
    threaded.fit(angles, y)
    assert np.allclose(serial.predict(angles), threaded.predict(angles))


def test_shots_pipeline(small_task):
    angles, y = small_task
    pipe = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        estimator="shots",
        shots=256,
    )
    pipe.fit(angles, y)
    assert pipe.report_.counter.get("shots_fired") > 0
    assert 0.0 <= pipe.score(angles, y) <= 1.0


def test_multiclass_pipeline():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(30, 4, 4))
    y = rng.integers(0, 3, 30)
    pipe = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1), num_classes=3
    )
    pipe.fit(angles, y)
    assert set(np.unique(pipe.predict(angles))) <= {0, 1, 2}


def test_shots_fired_accounting(small_task):
    """Budget regression: shots pays per (d, p, q) entry, shadows per (d, p)."""
    angles, y = small_task
    d = angles.shape[0]
    strategy = ObservableConstruction(qubits=4, locality=1)
    p, q = strategy.num_ansatze, strategy.num_observables

    exact = HybridPipeline(strategy=strategy).fit(angles, y)
    assert exact.report_.counter.get("shots_fired") == 0

    shots = HybridPipeline(strategy=strategy, estimator="shots", shots=64).fit(angles, y)
    assert shots.report_.counter.get("shots_fired") == 64 * d * p * q

    shadows = HybridPipeline(
        strategy=strategy, estimator="shadows", snapshots=128
    ).fit(angles, y)
    # One shadow batch per (data point, Ansatz), reused across all q
    # observables -- NOT snapshots * Q.size.
    assert shadows.report_.counter.get("shots_fired") == 128 * d * p


def test_report_dispatch_reconciliation(small_task):
    angles, y = small_task
    pipe = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        executor=ParallelExecutor("thread", 2),
        chunk_size=8,
        scheduling_policy="lpt",
    )
    pipe.fit(angles, y)
    dispatch = pipe.report_.dispatch
    assert dispatch is not None
    assert dispatch.policy == "lpt"
    assert dispatch.num_tasks == len(pipe.circuit_tasks(angles.shape[0]))
    rec = dispatch.reconcile()
    assert rec["wall_s"] > 0
    assert rec["measured_total_s"] > 0
    assert "dispatch (lpt" in pipe.report_.summary()
    pipe.close()


def test_pipeline_persistent_runtime_across_sweeps(small_task):
    """One long-lived pool serves fit and every subsequent predict."""
    angles, y = small_task
    with HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        executor=ParallelExecutor("thread", 2),
        chunk_size=8,
    ) as pipe:
        pipe.fit(angles, y)
        pipe.predict(angles)
        pipe.predict(angles)
        assert pipe.executor.runtime.pools_created == 1
    assert pipe.executor._runtime is None  # context exit released the pool


def test_pipeline_leaves_caller_owned_runtime_open(small_task):
    """A bare ExecutionRuntime may be shared; the pipeline must not kill it."""
    from repro.hpc.runtime import ExecutionRuntime

    angles, y = small_task
    with ExecutionRuntime("thread", 2) as runtime:
        with HybridPipeline(
            strategy=ObservableConstruction(qubits=4, locality=1),
            executor=runtime,
            chunk_size=8,
        ) as pipe:
            pipe.fit(angles, y)
            assert pipe.score(angles, y) > 0.5
        # Pipeline exit must leave the caller's runtime usable (shutdown is
        # permanent, so only its owner may trigger it).
        assert not runtime.closed
        assert runtime.map(len, [[1, 2]]) == [2]
    assert runtime.closed


def test_model_classes_close_persistent_executor(small_task):
    from repro.core.model import PostVariationalClassifier

    angles, y = small_task
    ex = ParallelExecutor("thread", 2)
    with PostVariationalClassifier(
        strategy=ObservableConstruction(qubits=4, locality=1), executor=ex
    ) as clf:
        clf.fit(angles, y)
        assert clf.predict(angles).shape == y.shape
    assert ex._runtime is None  # pool released on exit


def test_scheduling_policies_do_not_change_predictions(small_task):
    angles, y = small_task
    strategy = ObservableConstruction(qubits=4, locality=1)
    reference = HybridPipeline(strategy=strategy).fit(angles, y).predict(angles)
    for policy in ("block", "cyclic", "lpt", "work_stealing"):
        pipe = HybridPipeline(
            strategy=strategy,
            executor=ParallelExecutor("thread", 2),
            chunk_size=8,
            scheduling_policy=policy,
        )
        assert np.array_equal(pipe.fit(angles, y).predict(angles), reference)
        pipe.close()


def test_unfitted_errors(small_task):
    angles, y = small_task
    pipe = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    with pytest.raises(RuntimeError):
        pipe.predict(angles)
    with pytest.raises(ValueError):
        HybridPipeline(strategy=None)
