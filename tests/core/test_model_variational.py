"""Post-variational model and variational baseline tests."""

import numpy as np
import pytest

from repro.core.model import PostVariationalClassifier, PostVariationalRegressor
from repro.core.strategies import ObservableConstruction
from repro.core.variational import VariationalClassifier


@pytest.fixture(scope="module")
def toy_task():
    """Angles whose label depends on a product of two columns -- learnable by
    2-local features, invisible to 1-local means."""
    rng = np.random.default_rng(7)
    angles = rng.uniform(0.3, 2 * np.pi - 0.3, size=(120, 4, 4))
    latent = rng.choice([-1.0, 1.0], size=120)
    angles[:, 0, 0] = np.pi + latent * 1.2
    flip = rng.choice([-1.0, 1.0], size=120)
    angles[:, 0, 3] = np.pi + latent * flip * 1.2
    y = (flip > 0).astype(int)
    return angles, y


def test_classifier_learns_correlation_task(toy_task):
    angles, y = toy_task
    clf = PostVariationalClassifier(strategy=ObservableConstruction(qubits=4, locality=2))
    clf.fit(angles, y)
    assert clf.score(angles, y) > 0.8
    # 1-local cannot see the product structure.
    weak = PostVariationalClassifier(strategy=ObservableConstruction(qubits=4, locality=1))
    weak.fit(angles, y)
    assert weak.score(angles, y) < clf.score(angles, y)


def test_classifier_caches_features(toy_task):
    angles, y = toy_task
    clf = PostVariationalClassifier(strategy=ObservableConstruction(qubits=4, locality=1))
    clf.fit(angles, y)
    assert clf.q_train_.shape == (120, 13)


def test_classifier_proba_and_loss(toy_task):
    angles, y = toy_task
    clf = PostVariationalClassifier(strategy=ObservableConstruction(qubits=4, locality=2))
    clf.fit(angles, y)
    probs = clf.predict_proba(angles)
    assert probs.shape == (120,)
    assert np.all((probs >= 0) & (probs <= 1))
    assert clf.loss(angles, y) < np.log(2)  # better than chance


def test_constrained_head(toy_task):
    angles, y = toy_task
    clf = PostVariationalClassifier(
        strategy=ObservableConstruction(qubits=4, locality=2), head="constrained"
    )
    clf.fit(angles, y)
    assert np.linalg.norm(clf.model_.coef_) <= 1.0 + 1e-6
    assert clf.score(angles, y) > 0.7


def test_multiclass_classifier():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(60, 4, 4))
    # Three classes keyed to the first-row mean: a 1-local-visible signal.
    means = angles[:, 0, :].mean(axis=1)
    y = np.digitize(means, np.quantile(means, [1 / 3, 2 / 3]))
    clf = PostVariationalClassifier(
        strategy=ObservableConstruction(qubits=4, locality=2), num_classes=3
    )
    clf.fit(angles, y)
    assert clf.score(angles, y) > 0.6
    assert clf.predict_proba(angles).shape == (60, 3)


def test_regressor_heads():
    rng = np.random.default_rng(2)
    angles = rng.uniform(0, 2 * np.pi, size=(50, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    # Ground truth linear in the features: exactly representable.
    from repro.core.features import generate_features

    q = generate_features(strategy, angles)
    alpha = rng.normal(size=q.shape[1]) * 0.2
    y = q @ alpha
    for head in ("pinv", "ridge", "constrained"):
        reg = PostVariationalRegressor(strategy=strategy, head=head)
        reg.fit(angles, y)
        assert reg.loss(angles, y) < 0.05, head


def test_regressor_pinv_exact():
    rng = np.random.default_rng(3)
    angles = rng.uniform(0, 2 * np.pi, size=(40, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    from repro.core.features import generate_features

    q = generate_features(strategy, angles)
    y = q @ (rng.normal(size=13) * 0.1)
    reg = PostVariationalRegressor(strategy=strategy, head="pinv").fit(angles, y)
    assert np.allclose(reg.predict(angles), y, atol=1e-8)


def test_model_validation():
    with pytest.raises(ValueError):
        PostVariationalClassifier(strategy=None)
    with pytest.raises(ValueError):
        PostVariationalClassifier(
            strategy=ObservableConstruction(), num_classes=3, head="constrained"
        )
    clf = PostVariationalClassifier(strategy=ObservableConstruction())
    with pytest.raises(RuntimeError):
        clf.predict(np.zeros((1, 4, 4)))


# ----------------------------------------------------------- variational
def test_variational_loss_decreases():
    rng = np.random.default_rng(4)
    angles = rng.uniform(0, 2 * np.pi, size=(30, 4, 4))
    y = (angles[:, 0, 0] > np.pi).astype(int)
    v = VariationalClassifier(epochs=8, learning_rate=0.3)
    v.fit(angles, y)
    assert v.history_[-1] <= v.history_[0] + 1e-9
    assert v.theta_.shape == (8,)


def test_variational_predict_labels():
    rng = np.random.default_rng(5)
    angles = rng.uniform(0, 2 * np.pi, size=(10, 4, 4))
    y = rng.integers(0, 2, 10)
    v = VariationalClassifier(epochs=2).fit(angles, y)
    preds = v.predict(angles)
    assert set(np.unique(preds)) <= {0, 1}


def test_variational_multiclass_probabilities():
    rng = np.random.default_rng(6)
    angles = rng.uniform(0, 2 * np.pi, size=(12, 4, 4))
    y = rng.integers(0, 3, 12)
    v = VariationalClassifier(num_classes=3, epochs=2)
    v.fit(angles, y)
    from repro.data.encoding import encode_batch

    probs = v._class_probs(encode_batch(angles), v.theta_)
    assert probs.shape == (12, 3)
    assert np.allclose(probs.sum(axis=1), 1.0)
    preds = v.predict(angles)
    assert set(np.unique(preds)) <= {0, 1, 2}


def test_variational_validation():
    with pytest.raises(ValueError):
        VariationalClassifier(num_classes=1)
    with pytest.raises(ValueError):
        VariationalClassifier(epochs=0)
    v = VariationalClassifier()
    with pytest.raises(RuntimeError):
        v.predict(np.zeros((1, 4, 4)))
