"""``ExecutionConfig`` -- the one typed object for every execution knob.

The hybrid HPC-QC workflow is a single pipeline (encode -> dispatch ensemble
-> gather Q -> convex head), but its execution knobs (estimator, shots,
snapshots, chunk_size, seed, compile, dispatch_policy, backend -- plus, since
PR 5, vectorize, which was born config-only) historically travelled as loose
keyword arguments copy-pasted across every entry point --
and drifted (the model classes silently dropped ``chunk_size`` / ``compile``
/ ``dispatch_policy``).  :class:`ExecutionConfig` bundles them into one
frozen, picklable, JSON-serializable value object with centralized
validation, so every surface (functions, pipelines, models, SPMD, CLI)
resolves the *same* configuration the same way.

This module is the validation root: :func:`check_regime` (estimator x
backend compatibility) and :func:`resolve_chunk_size` (work-grid
granularity) live here and are re-exported by :mod:`repro.core.features`
for backward compatibility.

Legacy keyword arguments remain accepted everywhere as deprecated shims:
:func:`resolve_call` detects explicitly-passed legacy knobs (via the
:data:`UNSET` sentinel), emits a :class:`DeprecationWarning` attributed to
the first stack frame *outside* ``repro`` (so ``-W
error::DeprecationWarning:repro`` catches internal violations without
punishing downstream callers), and folds them into a config -- bit-equal to
the old behaviour by construction.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.hpc.scheduler import SCHEDULING_POLICIES
from repro.quantum.backends import (
    DistributedStatevectorBackend,
    QuantumBackend,
    StatevectorBackend,
    backend_from_dict,
    backend_to_dict,
    resolve_backend,
)
from repro.quantum.batched import resolve_vectorize
from repro.quantum.compile import resolve_fusion_width
from repro.xp import resolve_array_backend, validate_array_backend

__all__ = [
    "UNSET",
    "ESTIMATORS",
    "CONFIG_FIELDS",
    "DEFAULT_CHUNK_SIZE",
    "EXPENSIVE_CHUNK_SIZE",
    "SERVE_CONFIG_FIELDS",
    "SERVE_POOLS",
    "TRANSPORT_CONFIG_FIELDS",
    "ExecutionConfig",
    "ServeConfig",
    "TransportConfig",
    "check_regime",
    "resolve_chunk_size",
    "resolve_call",
    "values_differ",
]

ESTIMATORS = ("exact", "shots", "shadows")

#: Default data-chunk width of the work grid for cheap vectorised
#: statevector evolution.
DEFAULT_CHUNK_SIZE = 128
#: Finer default for backends with heavy per-sample work (density /
#: mitigated Kraus evolution, flagged by ``parallel_prepare``): small noisy
#: datasets still split into enough jobs to occupy a worker pool.
EXPENSIVE_CHUNK_SIZE = 8


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from any real value."""

    _instance: _Unset | None = None

    def __new__(cls) -> _Unset:
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"

    def __reduce__(self):
        return (_Unset, ())


#: Default for every legacy execution kwarg: its presence means "build the
#: value from the active :class:`ExecutionConfig` instead".
UNSET: Any = _Unset()


def check_regime(estimator: str, backend: QuantumBackend) -> None:
    """Validate the estimator/backend combination (cheap; runs at config
    construction so bad arguments fail before any state preparation)."""
    if estimator not in ESTIMATORS:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    if estimator == "shadows" and not backend.supports_shadows:
        raise ValueError(
            f"backend {backend.name!r} does not support the shadows estimator "
            f"(classical shadows need direct pure-state snapshots, which "
            f"mixed-state evolution and ZNE extrapolation cannot provide)"
        )


def resolve_chunk_size(chunk_size: int | None, backend: QuantumBackend) -> int:
    """Work-grid granularity: an explicit value wins, ``None`` picks a
    backend-appropriate default (coarse ideal, fine noisy/mitigated)."""
    if chunk_size is None:
        return EXPENSIVE_CHUNK_SIZE if backend.parallel_prepare else DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size={chunk_size} must be >= 1")
    return int(chunk_size)


@dataclass(frozen=True)
class ExecutionConfig:
    """Frozen value object bundling every Q-matrix execution knob.

    Fields mirror the historical keyword arguments one-for-one, with the
    same defaults as the feature functions (``compile="off"`` keeps the
    naive reference semantics bit-for-bit; orchestrators that prefer the
    compiled engine construct their own defaults):

    * ``estimator``       -- ``"exact"`` / ``"shots"`` / ``"shadows"``;
    * ``shots``           -- per (data point, Ansatz, observable) budget;
    * ``snapshots``       -- shadow batch per (data point, Ansatz);
    * ``chunk_size``      -- work-grid rows per job (``None`` = backend
      default, see :func:`resolve_chunk_size`);
    * ``seed``            -- root RNG seed (int, ``None`` or a Generator;
      Generators are not serializable);
    * ``compile``         -- circuit engine: ``"auto"``/``"off"``/width;
    * ``dispatch_policy`` -- live submission order policy;
    * ``backend``         -- execution regime (``None`` -> ideal
      statevector; normalized to an instance at construction);
    * ``vectorize``       -- batched structure-shared execution:
      ``"auto"`` compiles each (encoder, Ansatz instance) template once and
      evolves whole data chunks per stacked pass on backends that support
      it (:class:`~repro.quantum.batched.ParametricCompiledCircuit`);
      ``"off"`` keeps the per-sample reference path;
    * ``shards``          -- statevector slab count for distributed
      execution (power of two).  ``shards > 1`` with the default backend
      substitutes a
      :class:`~repro.quantum.backends.DistributedStatevectorBackend`;
      constructing with a distributed backend mirrors its shard count into
      this field, so the two spellings stay consistent (a conflicting
      explicit pair raises);
    * ``array_backend``   -- the array namespace the hot kernels run under
      (:mod:`repro.xp`): ``"numpy"`` (default, bit-identical to the
      historical path), ``"cupy"`` / ``"torch"`` (must be installed), or
      ``"auto"`` (best available accelerator, resolved once per sweep via
      :attr:`resolved_array_backend`);
    * ``preflight``       -- static analysis at job-build time
      (:mod:`repro.analysis`): ``"off"`` (default) skips it, ``"warn"``
      surfaces every finding as a
      :class:`~repro.analysis.preflight.PreflightWarning`, ``"error"``
      rejects jobs with error-severity findings
      (:class:`~repro.analysis.preflight.PreflightError`) before any
      dispatch.

    Validation is centralized in ``__post_init__``; instances are picklable
    and round-trip through :meth:`to_dict` / :meth:`from_dict` / JSON.
    """

    estimator: str = "exact"
    shots: int = 1024
    snapshots: int = 512
    chunk_size: int | None = None
    seed: int | np.random.Generator | None = 0
    compile: str | int = "off"
    dispatch_policy: str = "work_stealing"
    backend: QuantumBackend | None = None
    vectorize: str | None = "off"
    shards: int = 1
    array_backend: str = "numpy"
    preflight: str | None = "off"

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", resolve_backend(self.backend))
        shards = self.shards
        if isinstance(shards, bool) or not isinstance(shards, (int, np.integer)):
            raise ValueError(f"shards must be an int >= 1, got {shards!r}")
        shards = int(shards)
        if shards < 1 or shards & (shards - 1):
            raise ValueError(f"shards={shards} must be a power of two >= 1")
        if isinstance(self.backend, DistributedStatevectorBackend):
            if shards == 1:
                shards = self.backend.shards
            elif shards != self.backend.shards:
                raise ValueError(
                    f"shards={shards} conflicts with the distributed backend's "
                    f"shards={self.backend.shards}; set one (or make them agree)"
                )
        elif shards > 1:
            if type(self.backend) is not StatevectorBackend:
                raise ValueError(
                    f"shards={shards} requires the ideal statevector backend; "
                    f"backend {self.backend.name!r} has no sharded execution path"
                )
            object.__setattr__(
                self, "backend", DistributedStatevectorBackend(shards=shards)
            )
        object.__setattr__(self, "shards", shards)
        check_regime(self.estimator, self.backend)
        if self.chunk_size is not None:
            if isinstance(self.chunk_size, bool) or not isinstance(
                self.chunk_size, (int, np.integer)
            ):
                raise ValueError(
                    f"chunk_size must be an int >= 1 or None, got {self.chunk_size!r}"
                )
            resolve_chunk_size(int(self.chunk_size), self.backend)
            object.__setattr__(self, "chunk_size", int(self.chunk_size))
        for name in ("shots", "snapshots"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise ValueError(f"{name} must be an int >= 0, got {value!r}")
            if value < 0:
                raise ValueError(f"{name}={value} must be >= 0")
            object.__setattr__(self, name, int(value))
        if self.seed is not None and not isinstance(
            self.seed, (int, np.integer, np.random.Generator)
        ):
            raise ValueError(
                f"seed must be an int, None or a numpy Generator, got {self.seed!r}"
            )
        if isinstance(self.seed, (int, np.integer)) and self.seed < 0:
            # SeedSequence would reject it deep inside the sweep; fail at
            # construction like every other knob.
            raise ValueError(f"seed={self.seed} must be >= 0")
        # ``None`` was always a legal legacy spelling of "off"; canonicalize
        # so equality and the JSON round trip see one representation.
        if self.compile is None:
            object.__setattr__(self, "compile", "off")
        # Validates the knob (raises on typos) without storing the width:
        # the compile field keeps its user-facing spelling for round-trips.
        try:
            resolve_fusion_width(self.compile)
        except ValueError as exc:
            # The width-range error speaks of "fusion width"; re-raise
            # naming the config field, like every other knob's error.
            if "compile" in str(exc):
                raise
            raise ValueError(f"compile: {exc}") from None
        # Lazy import: repro.analysis type-checks against this module.
        from repro.analysis.preflight import resolve_preflight

        object.__setattr__(self, "preflight", resolve_preflight(self.preflight))
        # Same canonicalization as compile: None is the legacy "off".
        object.__setattr__(self, "vectorize", resolve_vectorize(self.vectorize))
        # Fails here -- at construction -- on typos and on explicitly
        # requested libraries that are not importable, instead of deep in a
        # dispatched worker.  ``"auto"`` stays symbolic until resolution.
        validate_array_backend(self.array_backend)
        if self.dispatch_policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown dispatch_policy {self.dispatch_policy!r}; "
                f"choose from {SCHEDULING_POLICIES}"
            )

    # -------------------------------------------------------------- analysis
    def diagnose(self, *, num_qubits: int | None = None) -> Any:
        """Cross-field plan lint of this config: a
        :class:`~repro.analysis.diagnostics.DiagnosticReport`.

        Pure inspection regardless of the ``preflight`` knob (that knob
        only decides what happens at job-build time).  ``num_qubits``
        enables the register-width checks (shards vs ``2^n``).
        """
        from repro.analysis.plan import lint_config

        return lint_config(self, num_qubits=num_qubits)

    # ------------------------------------------------------------- derived
    @property
    def resolved_chunk_size(self) -> int:
        """The effective work-grid granularity for this config's backend."""
        return resolve_chunk_size(self.chunk_size, self.backend)

    @property
    def resolved_array_backend(self) -> str:
        """The concrete namespace name ``"auto"`` resolves to (cupy > torch
        with CUDA > numpy).  Resolution happens once, parent-side: the
        concrete name -- not ``"auto"`` -- ships to every worker, so a
        heterogeneous pool can never split across namespaces mid-sweep."""
        return resolve_array_backend(self.array_backend)

    # ---------------------------------------------------------- combinators
    def merged(self, **overrides: Any) -> ExecutionConfig:
        """A new config with ``overrides`` applied (and re-validated).

        Unknown keys raise ``TypeError``; ``UNSET`` values are ignored, so
        deprecation shims can forward their whole kwarg dict unfiltered.
        """
        overrides = {k: v for k, v in overrides.items() if v is not UNSET}
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe dict (inverse: :meth:`from_dict`)."""
        if isinstance(self.seed, np.random.Generator):
            raise TypeError(
                "ExecutionConfig with a Generator seed is not serializable; "
                "pass an int seed to round-trip configs"
            )
        return {
            "estimator": self.estimator,
            "shots": self.shots,
            "snapshots": self.snapshots,
            "chunk_size": self.chunk_size,
            "seed": None if self.seed is None else int(self.seed),
            "compile": self.compile if isinstance(self.compile, str) else int(self.compile),
            "dispatch_policy": self.dispatch_policy,
            "backend": backend_to_dict(self.backend),
            "vectorize": self.vectorize,
            "shards": self.shards,
            "array_backend": self.array_backend,
            "preflight": self.preflight,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ExecutionConfig:
        """Build (and validate) a config from :meth:`to_dict` output."""
        data = dict(data)
        backend = data.pop("backend", None)
        if isinstance(backend, Mapping):
            backend = backend_from_dict(dict(backend))
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ExecutionConfig fields {unknown}")
        return cls(backend=backend, **data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ExecutionConfig:
        return cls.from_dict(json.loads(text))


#: The execution-knob field names, in declaration order -- orchestrator
#: dataclasses (models, pipeline) mirror exactly these as attributes.
CONFIG_FIELDS = tuple(f.name for f in dataclasses.fields(ExecutionConfig))


#: Worker-pool kinds a :class:`ServeConfig` may ask its owned device for.
SERVE_POOLS = ("serial", "thread", "process")


def _require_number(
    name: str, value: Any, *, minimum: float | None = None, strict: bool = False
) -> float:
    """Validate one real-valued serve knob (bool is never a number here)."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    out = float(value)
    if not np.isfinite(out):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if minimum is not None and (out < minimum or (strict and out == minimum)):
        bound = f"> {minimum}" if strict else f">= {minimum}"
        raise ValueError(f"{name}={value!r} must be {bound}")
    return out


def _require_count(name: str, value: Any, minimum: int) -> int:
    """Validate one integer serve knob (bool is not an int here)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an int >= {minimum}, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name}={value} must be >= {minimum}")
    return int(value)


def _canonical_weights(value: Any) -> tuple[tuple[str, float], ...]:
    """Canonicalize ``tenant_weights`` to a sorted, hashable pair tuple.

    Accepts a mapping or an iterable of (name, weight) pairs; weights must
    be finite numbers but may be non-positive -- a starving weight is a
    *lint* finding (RPA112, and a service-start refusal), not a
    construction error, so ``repro lint --serve`` can describe it.
    """
    if value is None:
        return ()
    items = list(value.items()) if isinstance(value, Mapping) else list(value)
    out: list[tuple[str, float]] = []
    seen: set[str] = set()
    for item in items:
        try:
            name, weight = item
        except (TypeError, ValueError):
            raise ValueError(
                f"tenant_weights entries must be (name, weight) pairs, got {item!r}"
            ) from None
        if not isinstance(name, str) or not name:
            raise ValueError(f"tenant names must be non-empty strings, got {name!r}")
        if name in seen:
            raise ValueError(f"duplicate tenant {name!r} in tenant_weights")
        seen.add(name)
        out.append((name, _require_number(f"tenant_weights[{name!r}]", weight)))
    return tuple(sorted(out))


@dataclass(frozen=True)
class TransportConfig:
    """Frozen value object for the serving layer's network transport.

    Nested inside :class:`ServeConfig` exactly like
    :class:`ExecutionConfig` nests there: one picklable,
    JSON-round-trippable dataclass with centralized validation, so the
    socket front (:mod:`repro.serve.transport`) is configured through the
    same surface as everything else in :mod:`repro.api` and loose
    transport kwargs are rejected at construction.

    * ``host`` / ``port``       -- the TCP listen address; port ``0``
      binds an ephemeral port (the bound address is reported by
      ``FeatureServer.address``);
    * ``request_timeout_s``     -- default per-request deadline applied to
      socket requests that do not carry their own; ``None`` disables the
      default.  A deadline shorter than the batch window is lintable
      (RPA114) but constructible;
    * ``max_frame_bytes``       -- per-frame size bound (header +
      payload) enforced on both read and write; a bound too small to
      carry one feature row lints at error severity (RPA115);
    * ``stream_threshold_rows`` -- responses with more than this many
      feature rows stream as one frame per ansatz block instead of a
      single ``result`` frame; ``None`` streams only when a request asks;
    * ``streaming``             -- master switch for chunked responses; a
      threshold configured while this is off lints (RPA116).
    """

    host: str = "127.0.0.1"
    port: int = 0
    request_timeout_s: float | None = 30.0
    max_frame_bytes: int = 16 * 2**20
    stream_threshold_rows: int | None = None
    streaming: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ValueError(f"host must be a non-empty string, got {self.host!r}")
        port = _require_count("port", self.port, 0)
        if port > 65535:
            raise ValueError(f"port={port} must be <= 65535")
        object.__setattr__(self, "port", port)
        if self.request_timeout_s is not None:
            object.__setattr__(
                self,
                "request_timeout_s",
                _require_number(
                    "request_timeout_s", self.request_timeout_s, minimum=0, strict=True
                ),
            )
        # Tiny frame bounds stay constructible: RPA115 describes them.
        object.__setattr__(
            self, "max_frame_bytes", _require_count("max_frame_bytes", self.max_frame_bytes, 1)
        )
        if self.stream_threshold_rows is not None:
            object.__setattr__(
                self,
                "stream_threshold_rows",
                _require_count("stream_threshold_rows", self.stream_threshold_rows, 1),
            )
        if not isinstance(self.streaming, bool):
            raise ValueError(f"streaming must be a bool, got {self.streaming!r}")

    # ---------------------------------------------------------- combinators
    def merged(self, **overrides: Any) -> TransportConfig:
        """A new config with ``overrides`` applied (and re-validated)."""
        overrides = {k: v for k, v in overrides.items() if v is not UNSET}
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe dict (inverse: :meth:`from_dict`)."""
        return {
            "host": self.host,
            "port": self.port,
            "request_timeout_s": self.request_timeout_s,
            "max_frame_bytes": self.max_frame_bytes,
            "stream_threshold_rows": self.stream_threshold_rows,
            "streaming": self.streaming,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> TransportConfig:
        """Build (and validate) a config from :meth:`to_dict` output."""
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown TransportConfig fields {unknown}")
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> TransportConfig:
        return cls.from_dict(json.loads(text))


#: The transport-knob field names, in declaration order (CLI flags mirror
#: these).
TRANSPORT_CONFIG_FIELDS = tuple(f.name for f in dataclasses.fields(TransportConfig))


@dataclass(frozen=True)
class ServeConfig:
    """Frozen value object bundling every serving-layer knob.

    The serving layer (:mod:`repro.serve`) is configured exactly like
    execution is: one picklable, JSON-round-trippable dataclass with
    centralized validation.  An :class:`ExecutionConfig` nests inside it --
    the service executes requests under ``execution`` verbatim, so a served
    response is bit-equal to ``generate_features(..., config=execution)``.

    * ``execution``          -- the nested per-request execution config;
      ``None`` picks the serving default (``vectorize="auto"``,
      ``compile="auto"``: micro-batching coalesces requests into stacked
      ``apply_batch`` passes, which needs the batched engine);
    * ``batch_window_ms``    -- how long an admitted request may wait for
      peers to coalesce with before its micro-batch flushes.  ``0`` flushes
      every request alone (coalescing off; RPA110 lints it), negative
      values are constructible for lint but rejected at service start;
    * ``max_batch_size``     -- requests per flush; a full batch flushes
      before the window expires;
    * ``max_queue_depth``    -- admitted-but-unflushed requests allowed
      *per tenant*; admission beyond it raises
      :class:`~repro.serve.fairness.BackpressureError`;
    * ``max_queue_cost``     -- optional per-tenant bound in
      :class:`~repro.hpc.cluster.CircuitTask` cost units (the scheduler's
      cost model prices each request at admission);
    * ``tenant_weights``     -- weighted-round-robin shares for named
      tenants (unnamed tenants weigh 1.0); canonicalized to a sorted tuple
      of ``(name, weight)`` pairs;
    * ``cache_results``      -- serve repeated ``(template, x, config)``
      requests from a bounded LRU result cache;
    * ``result_cache_size``  -- LRU entry bound (0 disables storage;
      RPA111 lints the combination with ``cache_results=True``);
    * ``result_cache_ttl_s`` -- optional time-to-live per cached entry;
    * ``pool`` / ``max_workers`` -- the worker pool of the service-owned
      :class:`~repro.api.device.QuantumDevice` (ignored when a device is
      passed in); flushes are the pool's unit of parallelism;
    * ``transport``          -- the nested :class:`TransportConfig` for
      the TCP front (:mod:`repro.serve.transport`); ``None`` means the
      service is in-process only (no socket server).

    Validation is centralized in ``__post_init__``; instances are picklable
    and round-trip through :meth:`to_dict` / :meth:`from_dict` / JSON.
    """

    execution: ExecutionConfig | None = None
    batch_window_ms: float = 2.0
    max_batch_size: int = 32
    max_queue_depth: int = 256
    max_queue_cost: float | None = None
    tenant_weights: Any = ()
    cache_results: bool = True
    result_cache_size: int = 1024
    result_cache_ttl_s: float | None = None
    pool: str = "thread"
    max_workers: int | str | None = "auto"
    transport: TransportConfig | None = None

    def __post_init__(self) -> None:
        if self.transport is not None and not isinstance(self.transport, TransportConfig):
            raise ValueError(
                f"transport must be a TransportConfig or None, got {self.transport!r}"
            )
        execution = self.execution
        if execution is None:
            execution = ExecutionConfig(vectorize="auto", compile="auto")
        if not isinstance(execution, ExecutionConfig):
            raise ValueError(
                f"execution must be an ExecutionConfig or None, got {execution!r}"
            )
        object.__setattr__(self, "execution", execution)
        # Zero/negative windows stay constructible: RPA110 describes them.
        object.__setattr__(
            self, "batch_window_ms", _require_number("batch_window_ms", self.batch_window_ms)
        )
        object.__setattr__(
            self, "max_batch_size", _require_count("max_batch_size", self.max_batch_size, 1)
        )
        object.__setattr__(
            self, "max_queue_depth", _require_count("max_queue_depth", self.max_queue_depth, 1)
        )
        if self.max_queue_cost is not None:
            object.__setattr__(
                self,
                "max_queue_cost",
                _require_number("max_queue_cost", self.max_queue_cost, minimum=0, strict=True),
            )
        object.__setattr__(self, "tenant_weights", _canonical_weights(self.tenant_weights))
        if not isinstance(self.cache_results, bool):
            raise ValueError(f"cache_results must be a bool, got {self.cache_results!r}")
        object.__setattr__(
            self,
            "result_cache_size",
            _require_count("result_cache_size", self.result_cache_size, 0),
        )
        if self.result_cache_ttl_s is not None:
            object.__setattr__(
                self,
                "result_cache_ttl_s",
                _require_number(
                    "result_cache_ttl_s", self.result_cache_ttl_s, minimum=0, strict=True
                ),
            )
        if self.pool not in SERVE_POOLS:
            raise ValueError(f"unknown pool {self.pool!r}; choose from {SERVE_POOLS}")
        # Validates the knob without storing the resolved count (the field
        # keeps its user-facing spelling, like ExecutionConfig.compile).
        # Lazy import: hpc.runtime is not needed at config-import time.
        from repro.hpc.runtime import resolve_max_workers

        if self.max_workers is not None:
            resolve_max_workers(self.max_workers)

    # -------------------------------------------------------------- analysis
    def diagnose(self, *, num_qubits: int | None = None) -> Any:
        """Serve-plan lint of this config: a
        :class:`~repro.analysis.diagnostics.DiagnosticReport` merging the
        serve-layer checks (RPA110-RPA113) with the nested execution
        config's plan lint.  Pure inspection regardless of the nested
        ``preflight`` knob."""
        from repro.analysis.plan import lint_serve_config

        return lint_serve_config(self, num_qubits=num_qubits)

    # ------------------------------------------------------------- derived
    @property
    def batch_window_s(self) -> float:
        """The coalescing window in seconds (the event loop's unit)."""
        return self.batch_window_ms / 1e3

    def weights(self) -> dict[str, float]:
        """``tenant_weights`` as a plain dict (the WRR selector's input)."""
        return dict(self.tenant_weights)

    # ---------------------------------------------------------- combinators
    def merged(self, **overrides: Any) -> ServeConfig:
        """A new config with ``overrides`` applied (and re-validated).

        Unknown keys raise ``TypeError``; ``UNSET`` values are ignored,
        mirroring :meth:`ExecutionConfig.merged`.
        """
        overrides = {k: v for k, v in overrides.items() if v is not UNSET}
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe dict (inverse: :meth:`from_dict`)."""
        execution = self.execution
        assert execution is not None  # __post_init__ canonicalized it
        return {
            "execution": execution.to_dict(),
            "batch_window_ms": self.batch_window_ms,
            "max_batch_size": self.max_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "max_queue_cost": self.max_queue_cost,
            "tenant_weights": dict(self.tenant_weights),
            "cache_results": self.cache_results,
            "result_cache_size": self.result_cache_size,
            "result_cache_ttl_s": self.result_cache_ttl_s,
            "pool": self.pool,
            "max_workers": self.max_workers,
            "transport": None if self.transport is None else self.transport.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ServeConfig:
        """Build (and validate) a config from :meth:`to_dict` output."""
        data = dict(data)
        execution = data.pop("execution", None)
        if isinstance(execution, Mapping):
            execution = ExecutionConfig.from_dict(execution)
        transport = data.pop("transport", None)
        if isinstance(transport, Mapping):
            transport = TransportConfig.from_dict(transport)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ServeConfig fields {unknown}")
        return cls(execution=execution, transport=transport, **data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ServeConfig:
        return cls.from_dict(json.loads(text))


#: The serving-knob field names, in declaration order (CLI flags and the
#: load generator mirror these).
SERVE_CONFIG_FIELDS = tuple(f.name for f in dataclasses.fields(ServeConfig))


def values_differ(a: Any, b: Any) -> bool:
    """Inequality that tolerates array-bearing values (backends, seeds).

    Used by the orchestrators' live attribute mirrors to detect
    post-construction mutation without tripping over ambiguous NumPy
    truth values.
    """
    if a is b:
        return False
    try:
        return bool(a != b)
    except Exception:
        return True


def _warn_legacy(owner: str, names: list[str], stacklevel: int) -> None:
    """Deprecation warning attributed ``stacklevel`` frames above this call.

    The attribution matters: the CI filter ``-W
    error::DeprecationWarning:repro`` turns warnings registered *inside*
    ``repro`` modules into errors, so internal code exercising its own
    deprecated surface fails loudly while external callers (tests, user
    scripts) only see a warning.  Each entry point therefore passes the
    exact frame count from here to its caller instead of a heuristic.
    """
    warnings.warn(
        f"{owner}: execution kwargs {names} are deprecated; pass "
        f"config=ExecutionConfig(...) or device=QuantumDevice(...) instead "
        f"(see repro.api)",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


def resolve_call(
    config: ExecutionConfig | None,
    device: Any,
    executor: Any,
    legacy: Mapping[str, Any],
    *,
    owner: str,
    defaults: ExecutionConfig | None = None,
    stacklevel: int = 2,
    aliases: Mapping[str, str] | None = None,
) -> tuple[ExecutionConfig, Any]:
    """Resolve one entry-point call to ``(ExecutionConfig, executor)``.

    Exactly one configuration source wins:

    * ``device=`` -- supplies both config and runtime; combining it with
      ``config=`` or ``executor=`` is ambiguous and raises;
    * ``config=`` -- used as-is (legacy kwargs alongside it raise);
    * legacy kwargs -- deprecated: folded into ``defaults`` with a
      :class:`DeprecationWarning` attributed ``stacklevel`` frames above
      this call (2 = the entry point's own caller; dataclass entry points
      add frames for the generated ``__init__`` + ``__post_init__``);
    * nothing -- ``defaults`` (the entry point's historical defaults).

    ``aliases`` maps config field names to the owner's caller-facing
    spellings (the pipeline's ``scheduling_policy``) so the warning names
    a kwarg the caller can actually grep for.
    """
    passed = {k: v for k, v in legacy.items() if v is not UNSET}
    if device is not None:
        if config is not None:
            raise TypeError(f"{owner}: pass config= or device=, not both")
        if executor is not None:
            raise TypeError(
                f"{owner}: device= already binds a runtime; do not pass executor= too"
            )
        if passed:
            raise TypeError(
                f"{owner}: pass device= or legacy execution kwargs "
                f"{sorted(passed)}, not both"
            )
        # Structural check instead of isinstance (no import cycle on the
        # device module), but strict enough to reject the plausible mix-ups
        # -- a ParallelExecutor/ExecutionRuntime (no ExecutionConfig) or a
        # pipeline/feature map (config but no bound runtime): only a real
        # device carries both.
        from repro.hpc.runtime import ExecutionRuntime

        if not isinstance(
            getattr(device, "config", None), ExecutionConfig
        ) or not isinstance(getattr(device, "runtime", None), ExecutionRuntime):
            raise TypeError(
                f"{owner}: device= expects a QuantumDevice, got {device!r}"
            )
        return device.config, device.runtime
    if config is not None:
        if not isinstance(config, ExecutionConfig):
            raise TypeError(
                f"{owner}: config must be an ExecutionConfig, got {config!r}"
            )
        if passed:
            raise TypeError(
                f"{owner}: pass config= or legacy execution kwargs "
                f"{sorted(passed)}, not both"
            )
        return config, executor
    base = defaults if defaults is not None else ExecutionConfig()
    if passed:
        aliases = aliases or {}
        _warn_legacy(
            owner, sorted(aliases.get(k, k) for k in passed), stacklevel + 1
        )
        return base.merged(**passed), executor
    return base, executor
