"""Program lint: every RPA0xx code pinned by a trigger AND a pass case."""

import numpy as np
import pytest

from repro.analysis.program import SHARD_FAST_GATES, lint_circuit, lint_noise_model
from repro.quantum.circuit import Circuit, Operation, Parameter
from repro.quantum.noise import NoiseModel, bit_flip_channel, depolarizing_channel


def clean_circuit() -> Circuit:
    c = Circuit(2, name="clean")
    c.append("h", 0)
    c.append("rx", 0, "theta_0")
    c.append("cnot", (0, 1))
    return c


def test_clean_circuit_is_clean():
    assert lint_circuit(clean_circuit()).clean


# --------------------------------------------------------- RPA001 (wires)
def test_rpa001_wire_out_of_range():
    c = Circuit(2, name="bad-wire")
    # Circuit.append validates; the linter guards the open IR path.
    c.operations.append(Operation("h", (5,), None))
    report = lint_circuit(c)
    assert "RPA001" in report.codes()
    assert not report.ok


def test_rpa001_duplicate_wire():
    c = Circuit(2, name="dup-wire")
    c.operations.append(Operation("cnot", (1, 1), None))
    assert "RPA001" in lint_circuit(c).codes()


def test_rpa001_not_on_valid_wires():
    assert "RPA001" not in lint_circuit(clean_circuit()).codes()


# ----------------------------------------------------- RPA002 (malformed)
@pytest.mark.parametrize(
    "op",
    [
        Operation("warp", (0,), None),  # unknown gate
        Operation("cnot", (0,), None),  # wrong arity
        Operation("rx", (0,), None),  # parametric without angle/slot
        Operation("h", (0,), 0.5),  # fixed gate with a parameter
        Operation("rx", (0,), Parameter("t", -1)),  # negative slot
    ],
)
def test_rpa002_malformed_operations(op):
    c = Circuit(2, name="malformed")
    c.operations.append(op)
    report = lint_circuit(c)
    assert "RPA002" in report.codes()
    assert not report.ok


def test_rpa002_not_on_wellformed():
    assert "RPA002" not in lint_circuit(clean_circuit()).codes()


# ----------------------------------------- RPA003 (vectorize-defeating op)
def test_rpa003_unbound_nonrotation_defeats_batching():
    c = Circuit(2, name="template")
    c.append("crx", (0, 1), "theta_0")  # unbound 2q rotation: not chainable
    report = lint_circuit(c)
    assert "RPA003" in report.codes()
    assert report.ok  # warning, not error


def test_rpa003_not_on_chainable_or_bound():
    c = Circuit(2, name="ok")
    c.append("rx", 0, "theta_0")  # unbound single-qubit rotation: chainable
    c.append("crx", (0, 1), 0.3)  # bound: binds before compilation
    assert "RPA003" not in lint_circuit(c).codes()


# ------------------------------------------------- RPA004 (shard fallback)
def test_rpa004_dense_fallback_gate_under_shards():
    c = Circuit(3, name="sharded")
    c.append("swap", (0, 1))
    c.append("swap", (1, 2))  # deduplicated: one finding per gate name
    report = lint_circuit(c, shards=2)
    findings = [d for d in report if d.code == "RPA004"]
    assert len(findings) == 1
    assert "swap" in findings[0].message


def test_rpa004_not_without_shards_or_for_fast_gates():
    c = Circuit(3, name="sharded-ok")
    c.append("swap", (0, 1))
    assert "RPA004" not in lint_circuit(c, shards=1).codes()
    fast = Circuit(3, name="fast")
    for gate in sorted(SHARD_FAST_GATES):
        fast.append(gate, (0, 1))
    assert "RPA004" not in lint_circuit(fast, shards=4).codes()


# --------------------------------------------------- RPA005 (dead channel)
def test_rpa005_channel_that_never_fires():
    c = Circuit(2, name="oneq-only")
    c.append("h", 0)
    model = NoiseModel(two_qubit=depolarizing_channel(0.01))
    report = lint_circuit(c, noise_model=model)
    assert "RPA005" in report.codes()
    assert report.ok  # warning


def test_rpa005_not_when_channel_fires():
    model = NoiseModel(
        one_qubit=bit_flip_channel(0.1), two_qubit=depolarizing_channel(0.01)
    )
    assert "RPA005" not in lint_circuit(clean_circuit(), noise_model=model).codes()


# ------------------------------------------------ RPA006 (non-TP Kraus set)
@pytest.mark.parametrize(
    "kraus",
    [
        [np.eye(2) * 0.5],  # sum K^dag K != I
        [],  # annihilates every state
        [np.eye(2), np.eye(4)],  # mixed shapes
    ],
)
def test_rpa006_bad_kraus(kraus):
    model = NoiseModel(one_qubit=kraus)
    report = lint_noise_model(model)
    assert "RPA006" in report.codes()
    assert not report.ok


def test_rpa006_not_on_valid_channels():
    model = NoiseModel(
        one_qubit=bit_flip_channel(0.25), two_qubit=depolarizing_channel(0.05)
    )
    assert lint_noise_model(model).clean
    assert lint_noise_model(None).clean
