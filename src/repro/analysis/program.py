"""Program lint: circuit/template IR diagnostics without execution.

Analyzes a :class:`~repro.quantum.circuit.Circuit` -- bound or an unbound
template -- the way a compiler front-end would: structural validity first
(wires, gate table, parameter shape), then plan-dependent admissibility
(does every gate stay on the sharded fast path?  will the batched engine
accept the template, or silently fall back per-sample?), then the noise
model's physical consistency (trace preservation, channels that can never
fire).  Nothing here prepares a single amplitude, so a mis-built job is
rejected at admission instead of ``4^n`` stacked passes into a sweep.

``Circuit.append`` already validates most structural properties at build
time, but the IR is deliberately open -- the library itself constructs
circuits by assigning ``operations`` directly (``bind``, ``compose``,
``extend_template``), and serialized or generated programs enter the same
way -- so the linter re-checks the invariants on the final gate list.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quantum.circuit import Circuit

__all__ = ["SHARD_FAST_GATES", "lint_circuit", "lint_noise_model"]

#: Multi-qubit gates with a specialised global-qubit exchange kernel in the
#: distributed engine (:mod:`repro.quantum.distributed`): anything else on a
#: global qubit pays the generic dense fallback -- ``2^|G|`` full-slab
#: pairwise exchanges per application.
SHARD_FAST_GATES = frozenset({"cnot", "cx", "cz"})


def _op_location(circuit: Circuit, index: int) -> str:
    return f"circuit {circuit.name!r} op {index}"


def _lint_operations(circuit: Circuit) -> list[Diagnostic]:
    """RPA001/RPA002: structural validity of the raw gate list."""
    from repro.quantum.circuit import Parameter
    from repro.quantum.gates import GATE_NUM_QUBITS, is_parametric

    found: list[Diagnostic] = []
    n = circuit.num_qubits
    for index, op in enumerate(circuit.operations):
        where = _op_location(circuit, index)
        arity = GATE_NUM_QUBITS.get(op.gate)
        if arity is None:
            found.append(
                Diagnostic(
                    "RPA002",
                    f"unknown gate {op.gate!r}",
                    fix_hint="use a gate from repro.quantum.gates.GATE_NUM_QUBITS",
                    location=where,
                )
            )
            continue
        if len(op.qubits) != arity:
            found.append(
                Diagnostic(
                    "RPA002",
                    f"gate {op.gate!r} acts on {arity} qubit(s), got {op.qubits}",
                    fix_hint="match the operand count to the gate arity",
                    location=where,
                )
            )
        if is_parametric(op.gate):
            if op.param is None:
                found.append(
                    Diagnostic(
                        "RPA002",
                        f"parametric gate {op.gate!r} carries no angle or slot",
                        fix_hint="bind a float angle or register a Parameter",
                        location=where,
                    )
                )
        elif op.param is not None:
            found.append(
                Diagnostic(
                    "RPA002",
                    f"fixed gate {op.gate!r} carries a parameter {op.param!r}",
                    fix_hint="drop the parameter (fixed gates take none)",
                    location=where,
                )
            )
        bad_wires = sorted({q for q in op.qubits if not 0 <= q < n})
        if bad_wires:
            found.append(
                Diagnostic(
                    "RPA001",
                    f"gate {op.gate!r} touches wire(s) {bad_wires} outside the "
                    f"{n}-qubit register",
                    fix_hint=f"wires must lie in [0, {n}); widen the register "
                    f"or remap the gate",
                    location=where,
                )
            )
        if len(set(op.qubits)) != len(op.qubits):
            found.append(
                Diagnostic(
                    "RPA001",
                    f"gate {op.gate!r} repeats a wire in {op.qubits}",
                    fix_hint="multi-qubit gates need distinct wires",
                    location=where,
                )
            )
        if isinstance(op.param, Parameter) and op.param.index < 0:
            found.append(
                Diagnostic(
                    "RPA002",
                    f"parameter {op.param.name!r} has negative slot index "
                    f"{op.param.index}",
                    fix_hint="register parameters via Circuit.add_parameter",
                    location=where,
                )
            )
    return found


def _lint_vectorize(circuit: Circuit) -> list[Diagnostic]:
    """RPA003: unbound slots the batched engine cannot keep symbolic.

    ``compile_parametric`` only chains *single-qubit* rotations
    (:data:`~repro.quantum.batched.BATCHED_ROTATIONS`); any other unbound
    gate makes the template non-compilable, and the feature pipeline then
    silently runs the per-sample reference path under ``vectorize="auto"``.
    Reported as a warning with the defeating gate named, so the fallback is
    visible before a sweep is priced on stacked passes.
    """
    from repro.quantum.batched import BATCHED_ROTATIONS
    from repro.quantum.circuit import Parameter

    found: list[Diagnostic] = []
    for index, op in enumerate(circuit.operations):
        if isinstance(op.param, Parameter) and op.gate not in BATCHED_ROTATIONS:
            found.append(
                Diagnostic(
                    "RPA003",
                    f"unbound {op.gate!r} cannot stay symbolic in a batched "
                    f"template (only {sorted(BATCHED_ROTATIONS)} chain); "
                    f"vectorize='auto' will fall back to the per-sample path",
                    fix_hint="bind this gate before the sweep, or express the "
                    "slot as a single-qubit rotation",
                    location=_op_location(circuit, index),
                )
            )
    return found


def _lint_sharding(circuit: Circuit, shards: int) -> list[Diagnostic]:
    """RPA004: gates off the sharded fast path for this ``shards`` setting.

    With ``2^g`` shards the engine has specialised exchange kernels for
    single-qubit gates and :data:`SHARD_FAST_GATES` at any position; every
    other multi-qubit gate that lands on a global qubit routes through the
    dense fallback (``2^|G|`` full-slab exchanges).  Qubit placement moves
    under the group planner's remaps, so this is a may-hit warning keyed on
    gate identity, deduplicated per gate name.
    """
    if shards <= 1:
        return []
    seen: set[str] = set()
    found: list[Diagnostic] = []
    g = max(shards.bit_length() - 1, 0)
    for index, op in enumerate(circuit.operations):
        if len(op.qubits) < 2 or op.gate in SHARD_FAST_GATES or op.gate in seen:
            continue
        seen.add(op.gate)
        found.append(
            Diagnostic(
                "RPA004",
                f"gate {op.gate!r} has no specialised exchange kernel under "
                f"shards={shards} ({g} global qubit(s)) and may pay the dense "
                f"fallback (full-slab pairwise exchanges)",
                fix_hint="prefer cnot/cz-based decompositions, or rely on the "
                "grouped compiled engine (compile='auto') to keep such gates "
                "on local qubits",
                location=_op_location(circuit, index),
            )
        )
    return found


def lint_noise_model(
    noise_model: Any, circuit: Circuit | None = None, atol: float = 1e-10
) -> DiagnosticReport:
    """RPA005/RPA006: physical consistency of a gate-count noise model.

    ``noise_model`` is a :class:`~repro.quantum.noise.NoiseModel` (or any
    object with ``one_qubit`` / ``two_qubit`` Kraus lists).  RPA006 flags
    channels violating trace preservation ``sum_k K^dag K = I`` within
    ``atol`` (including empty Kraus lists, which annihilate the state);
    with a ``circuit``, RPA005 flags channel arities no gate ever triggers
    -- the noise the study claims to apply would never fire.
    """
    found: list[Diagnostic] = []
    if noise_model is None:
        return DiagnosticReport.collect(found)
    arities = {len(op.qubits) for op in circuit.operations} if circuit is not None else None
    for label, arity in (("one_qubit", 1), ("two_qubit", 2)):
        kraus = getattr(noise_model, label, None)
        if kraus is None:
            continue
        defect = _kraus_defect(kraus, atol)
        if defect is not None:
            found.append(
                Diagnostic(
                    "RPA006",
                    f"{label} channel is not trace-preserving: {defect}",
                    fix_hint="normalize the Kraus set so sum_k K^dag K = I "
                    "(see repro.quantum.noise.validate_kraus)",
                    location=f"noise_model.{label}",
                )
            )
        if arities is not None and arity not in arities:
            found.append(
                Diagnostic(
                    "RPA005",
                    f"{label} channel defined but the circuit has no "
                    f"{arity}-qubit gate, so it never fires",
                    fix_hint="drop the unused channel, or check the circuit "
                    "is the one you meant to run noisily",
                    location=f"noise_model.{label}",
                )
            )
    return DiagnosticReport.collect(found)


def _kraus_defect(kraus: Sequence[Any], atol: float) -> str | None:
    """A human-readable completeness defect, or None when trace-preserving."""
    ops = [np.asarray(k, dtype=np.complex128) for k in kraus]
    if not ops:
        return "empty Kraus list (annihilates every state)"
    dim = ops[0].shape[0]
    total = np.zeros((dim, dim), dtype=np.complex128)
    for op in ops:
        if op.shape != (dim, dim):
            return f"mixed operator shapes {sorted({o.shape for o in ops})}"
        total += op.conj().T @ op
    deviation = float(np.max(np.abs(total - np.eye(dim))))
    if deviation > atol:
        return f"max |sum K^dag K - I| = {deviation:.3e} (tol {atol:.0e})"
    return None


def lint_circuit(
    circuit: Circuit,
    *,
    shards: int = 1,
    noise_model: Any = None,
    kraus_atol: float = 1e-10,
) -> DiagnosticReport:
    """Full program lint of one circuit/template under a plan context.

    Pure inspection -- no state preparation, no binding, no compilation.
    ``shards`` enables the distributed-plan checks (RPA004) and
    ``noise_model`` the channel checks (RPA005/RPA006); both default to
    "not part of the plan".
    """
    found = _lint_operations(circuit)
    found += _lint_vectorize(circuit)
    found += _lint_sharding(circuit, int(shards))
    report = DiagnosticReport.collect(found)
    return report + lint_noise_model(noise_model, circuit, atol=kraus_atol)
