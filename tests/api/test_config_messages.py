"""Every ExecutionConfig ValueError names the offending field.

A config assembled from CLI flags, JSON, or a sweep grid fails with a
message the caller can map straight back to a knob -- no "invalid value"
archaeology.  Parametrized over one illegal value per field.
"""

import pytest

from repro.api.config import CONFIG_FIELDS, ExecutionConfig

BAD_VALUES = {
    "estimator": "nope",
    "shots": -1,
    "snapshots": -2,
    "chunk_size": 0,
    "seed": -5,
    "compile": "bogus",
    "dispatch_policy": "nope",
    "vectorize": "x",
    "shards": 3,
    "array_backend": "bogus",
    "preflight": "maybe",
    "backend": 123,
}


@pytest.mark.parametrize("field,value", sorted(BAD_VALUES.items(), key=str))
def test_value_error_names_the_field(field, value):
    with pytest.raises(ValueError) as excinfo:
        ExecutionConfig(**{field: value})
    assert field in str(excinfo.value)


def test_every_config_field_has_a_bad_case():
    """New knobs must register an illegal value here (or be exempt on
    purpose -- there is no unvalidated field today)."""
    assert set(BAD_VALUES) == set(CONFIG_FIELDS)


@pytest.mark.parametrize(
    "field,value,fragment",
    [
        ("compile", 0, "compile"),  # width error path, distinct from the typo path
        ("seed", "x", "seed"),
        ("backend", object(), "backend"),
    ],
)
def test_secondary_error_paths_name_the_field(field, value, fragment):
    with pytest.raises(ValueError) as excinfo:
        ExecutionConfig(**{field: value})
    assert fragment in str(excinfo.value)
