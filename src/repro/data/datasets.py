"""Dataset containers and the exact experimental splits of Sec. VII.

Table III: "binary classification of the classes coat and shirt, training on
200 samples and testing on 50 samples from each class".
Table IV: "training 400 evenly sampled classes for multiclass classification"
-- read as 400 training samples evenly drawn over the ten classes (40 each),
with an equally sized evenly-drawn test set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_fashion import CLASS_NAMES, generate_dataset

__all__ = ["Split", "binary_coat_vs_shirt", "multiclass_fashion", "train_test_split"]


@dataclass(frozen=True)
class Split:
    """A train/test split of pooled-and-rescaled images.

    ``x_*`` are (d, 4, 4) angle arrays ready for the Fig. 7 encoder;
    ``raw_*`` keep the 28x28 originals for the classical baselines that
    could, in principle, see full resolution (we feed baselines the same
    pooled features for a fair comparison, as the paper does).
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    class_names: tuple[str, ...]

    @property
    def num_train(self) -> int:
        return self.x_train.shape[0]

    @property
    def num_test(self) -> int:
        return self.x_test.shape[0]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split; ``test_fraction`` of samples go to test."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    from repro.utils.rng import as_rng

    rng = as_rng(seed)
    d = x.shape[0]
    order = rng.permutation(d)
    cut = int(round(d * (1.0 - test_fraction)))
    tr, te = order[:cut], order[cut:]
    return x[tr], y[tr], x[te], y[te]


def _pooled_split(
    labels: tuple[int, ...],
    train_per_class: int,
    test_per_class: int,
    seed: int,
    noise: float,
    texture: float,
) -> Split:
    # One generator; train and test draws are disjoint by construction
    # (sequential consumption of the stream).
    from repro.utils.rng import as_rng

    rng = as_rng(seed)
    x_train_raw, y_train = generate_dataset(labels, train_per_class, rng, noise=noise, texture=texture)
    x_test_raw, y_test = generate_dataset(labels, test_per_class, rng, noise=noise, texture=texture)
    # Pool/rescale with a shared affine map (fit on train, applied to both)
    # to avoid test-time leakage of the angle scaling.
    from repro.ml.preprocessing import max_pool

    pooled_train = max_pool(x_train_raw, 7)
    pooled_test = max_pool(x_test_raw, 7)
    lo, hi = pooled_train.min(), pooled_train.max()
    span = (hi - lo) or 1.0
    scale = lambda a: np.clip((a - lo) / span, 0.0, 1.0 - 1e-9) * 2 * np.pi  # noqa: E731
    return Split(
        x_train=scale(pooled_train),
        y_train=y_train,
        x_test=scale(pooled_test),
        y_test=y_test,
        class_names=tuple(CLASS_NAMES[label] for label in labels),
    )


def binary_coat_vs_shirt(
    train_per_class: int = 200,
    test_per_class: int = 50,
    seed: int = 7,
    noise: float = 0.08,
    texture: float = 0.5,
) -> Split:
    """The Table III task: coat (label 0) vs shirt (label 1)."""
    coat, shirt = CLASS_NAMES.index("coat"), CLASS_NAMES.index("shirt")
    return _pooled_split((coat, shirt), train_per_class, test_per_class, seed, noise, texture)


def multiclass_fashion(
    train_total: int = 400,
    test_total: int = 400,
    num_classes: int = 10,
    seed: int = 11,
    noise: float = 0.08,
    texture: float = 0.5,
) -> Split:
    """The Table IV task: ``train_total`` samples evenly over all classes."""
    if train_total % num_classes or test_total % num_classes:
        raise ValueError("totals must be divisible by num_classes")
    labels = tuple(range(num_classes))
    return _pooled_split(
        labels, train_total // num_classes, test_total // num_classes, seed, noise, texture
    )
