"""ServeConfig: validation, canonicalization, merge, wire form, pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.api import SERVE_POOLS, ExecutionConfig, ServeConfig, TransportConfig
from repro.api.config import SERVE_CONFIG_FIELDS, TRANSPORT_CONFIG_FIELDS


def test_defaults_canonicalize_execution():
    config = ServeConfig()
    assert isinstance(config.execution, ExecutionConfig)
    # Serving defaults to the batched path -- coalescing without it
    # forfeits the payoff (RPA113).
    assert config.execution.vectorize == "auto"
    assert config.execution.compile == "auto"
    assert config.pool == "thread"
    assert config.cache_results is True


def test_field_registry_matches_dataclass():
    config = ServeConfig()
    assert set(SERVE_CONFIG_FIELDS) == set(config.to_dict())


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(batch_window_ms=float("nan")), "batch_window_ms"),
        (dict(max_batch_size=0), "max_batch_size"),
        (dict(max_queue_depth=0), "max_queue_depth"),
        (dict(max_queue_cost=0.0), "max_queue_cost"),
        (dict(result_cache_size=-1), "result_cache_size"),
        (dict(result_cache_ttl_s=0.0), "result_cache_ttl_s"),
        (dict(pool="gpu"), "pool"),
        (dict(tenant_weights={"": 1.0}), "tenant"),
        (dict(tenant_weights=[("a", 1.0), ("a", 2.0)]), "tenant"),
        (dict(tenant_weights={"a": float("inf")}), "weight"),
        (dict(execution="nope"), "execution"),
    ],
)
def test_invalid_fields_rejected(kwargs, match):
    with pytest.raises((ValueError, TypeError), match=match):
        ServeConfig(**kwargs)


def test_negative_window_allowed_for_lint():
    # Construction keeps negative windows representable (the lint RPA110
    # flags them at error severity; service.start() refuses them).
    config = ServeConfig(batch_window_ms=-1.0)
    report = config.diagnose()
    assert not report.ok
    assert any(d.code == "RPA110" for d in report)


def test_weights_canonical_and_queryable():
    from_mapping = ServeConfig(tenant_weights={"b": 2.0, "a": 1.0})
    from_pairs = ServeConfig(tenant_weights=[("b", 2.0), ("a", 1.0)])
    assert from_mapping.tenant_weights == (("a", 1.0), ("b", 2.0))
    assert from_mapping == from_pairs
    assert from_mapping.weights() == {"a": 1.0, "b": 2.0}


def test_batch_window_s_property():
    assert ServeConfig(batch_window_ms=2.5).batch_window_s == 0.0025


def test_merged_overrides_and_preserves():
    base = ServeConfig(batch_window_ms=2.0, max_batch_size=16)
    merged = base.merged(batch_window_ms=8.0)
    assert merged.batch_window_ms == 8.0
    assert merged.max_batch_size == 16
    assert base.batch_window_ms == 2.0  # frozen original untouched


def test_json_round_trip():
    config = ServeConfig(
        execution=ExecutionConfig(estimator="shots", shots=64, seed=3),
        batch_window_ms=5.0,
        tenant_weights={"a": 3.0, "b": 1.0},
        result_cache_ttl_s=30.0,
        pool="serial",
        max_workers=2,
    )
    restored = ServeConfig.from_json(config.to_json())
    assert restored == config
    assert restored.execution.shots == 64


def test_pickle_round_trip():
    config = ServeConfig(tenant_weights={"a": 2.0})
    assert pickle.loads(pickle.dumps(config)) == config


def test_serve_pools_registry():
    assert set(SERVE_POOLS) == {"serial", "thread", "process"}
    for pool in SERVE_POOLS:
        assert ServeConfig(pool=pool).pool == pool


# ------------------------------------------------------ TransportConfig
def test_transport_defaults():
    transport = TransportConfig()
    assert transport.host == "127.0.0.1"
    assert transport.port == 0  # ephemeral: bind picks a free port
    assert transport.request_timeout_s == 30.0
    assert transport.max_frame_bytes == 16 * 2**20
    assert transport.stream_threshold_rows is None
    assert transport.streaming is True


def test_transport_field_registry_matches_dataclass():
    assert set(TRANSPORT_CONFIG_FIELDS) == set(TransportConfig().to_dict())


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(host=""), "host"),
        (dict(host=7), "host"),
        (dict(port=-1), "port"),
        (dict(port=65536), "port"),
        (dict(request_timeout_s=0.0), "request_timeout_s"),
        (dict(request_timeout_s=-1.0), "request_timeout_s"),
        (dict(request_timeout_s=float("nan")), "request_timeout_s"),
        (dict(max_frame_bytes=0), "max_frame_bytes"),
        (dict(stream_threshold_rows=0), "stream_threshold_rows"),
        (dict(streaming="yes"), "streaming"),
    ],
)
def test_transport_invalid_fields_rejected(kwargs, match):
    with pytest.raises((ValueError, TypeError), match=match):
        TransportConfig(**kwargs)


def test_transport_unknown_kwargs_rejected():
    with pytest.raises(TypeError):
        TransportConfig(portt=8080)
    with pytest.raises(ValueError, match="unknown"):
        TransportConfig.from_dict({"port": 8080, "compression": "zstd"})


def test_transport_merged_overrides_and_preserves():
    base = TransportConfig(port=9000, stream_threshold_rows=64)
    merged = base.merged(port=9001)
    assert merged.port == 9001
    assert merged.stream_threshold_rows == 64
    assert base.port == 9000


def test_transport_json_round_trip():
    transport = TransportConfig(
        host="0.0.0.0",
        port=8443,
        request_timeout_s=None,
        max_frame_bytes=2**16,
        stream_threshold_rows=128,
        streaming=True,
    )
    assert TransportConfig.from_json(transport.to_json()) == transport


def test_transport_pickle_round_trip():
    transport = TransportConfig(port=1234)
    assert pickle.loads(pickle.dumps(transport)) == transport


def test_serve_config_nests_transport():
    config = ServeConfig(transport=TransportConfig(port=7000))
    assert config.to_dict()["transport"]["port"] == 7000
    restored = ServeConfig.from_json(config.to_json())
    assert restored == config
    assert isinstance(restored.transport, TransportConfig)
    # transport stays optional: the default config has none and
    # round-trips that way too.
    bare = ServeConfig()
    assert bare.transport is None
    assert ServeConfig.from_json(bare.to_json()).transport is None


def test_serve_config_rejects_non_transport():
    with pytest.raises((ValueError, TypeError), match="transport"):
        ServeConfig(transport={"port": 7000})


def test_transport_diagnose_covered_by_serve_lint():
    config = ServeConfig(
        transport=TransportConfig(streaming=False, stream_threshold_rows=4)
    )
    assert any(d.code == "RPA116" for d in config.diagnose())


def test_diagnose_merges_nested_execution_findings():
    config = ServeConfig(
        execution=ExecutionConfig(
            estimator="exact", shots=0, vectorize="auto", compile="auto"
        ),
        cache_results=True,
        result_cache_size=0,
    )
    report = config.diagnose()
    codes = {d.code for d in report}
    assert "RPA111" in codes  # the serve-level finding is present
