"""Model Hamiltonians as Pauli sums.

Sec. IV.B's locality heuristic rests on "most physical Hamiltonians are
local"; these generators provide the canonical local families used by the
tests and by downstream users wanting physics-flavoured observables:
transverse-field Ising, Heisenberg XXZ, and random L-local Hamiltonians.
All are :class:`~repro.quantum.observables.PauliSum` instances, so they
plug directly into the estimation and decomposition machinery.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.observables import PauliString, PauliSum, local_pauli_strings
from repro.utils.rng import as_rng

__all__ = ["transverse_field_ising", "heisenberg_xxz", "random_local_hamiltonian"]


def _two_site(n: int, letter: str, i: int, j: int) -> PauliString:
    chars = ["I"] * n
    chars[i] = letter
    chars[j] = letter
    return PauliString("".join(chars))


def _one_site(n: int, letter: str, i: int) -> PauliString:
    chars = ["I"] * n
    chars[i] = letter
    return PauliString("".join(chars))


def transverse_field_ising(
    num_qubits: int, coupling: float = 1.0, field: float = 1.0, periodic: bool = False
) -> PauliSum:
    """``H = -J sum Z_i Z_{i+1} - h sum X_i`` (1-D chain).

    The workhorse of near-term benchmarking; critical point at |h/J| = 1.
    """
    if num_qubits < 2:
        raise ValueError("need at least 2 qubits")
    terms: list[tuple[complex, PauliString]] = []
    last = num_qubits if periodic else num_qubits - 1
    for i in range(last):
        terms.append((-coupling, _two_site(num_qubits, "Z", i, (i + 1) % num_qubits)))
    for i in range(num_qubits):
        terms.append((-field, _one_site(num_qubits, "X", i)))
    return PauliSum(terms)


def heisenberg_xxz(
    num_qubits: int, jxy: float = 1.0, jz: float = 1.0, periodic: bool = False
) -> PauliSum:
    """``H = sum Jxy (X_i X_{i+1} + Y_i Y_{i+1}) + Jz Z_i Z_{i+1}``."""
    if num_qubits < 2:
        raise ValueError("need at least 2 qubits")
    terms: list[tuple[complex, PauliString]] = []
    last = num_qubits if periodic else num_qubits - 1
    for i in range(last):
        j = (i + 1) % num_qubits
        terms.append((jxy, _two_site(num_qubits, "X", i, j)))
        terms.append((jxy, _two_site(num_qubits, "Y", i, j)))
        terms.append((jz, _two_site(num_qubits, "Z", i, j)))
    return PauliSum(terms)


def random_local_hamiltonian(
    num_qubits: int,
    locality: int,
    num_terms: int,
    seed: int | np.random.Generator | None = None,
) -> PauliSum:
    """Random Hermitian sum of ``num_terms`` distinct <=L-local Paulis with
    coefficients uniform in [-1, 1]."""
    rng = as_rng(seed)
    pool = [p for p in local_pauli_strings(num_qubits, locality) if not p.is_identity]
    if num_terms > len(pool):
        raise ValueError(f"only {len(pool)} strings available")
    chosen = rng.choice(len(pool), size=num_terms, replace=False)
    return PauliSum(
        [(float(rng.uniform(-1, 1)), pool[i]) for i in chosen]
    )
