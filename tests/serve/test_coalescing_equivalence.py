"""Coalescing bit-equality: served responses == standalone generate_features.

The serving layer's core contract, table-driven over the execution paths:
every micro-batched response must be bit-identical to
``generate_features(strategy, x, config=execution.merged(seed=request_seed))``
no matter which concurrent requests shared its flush.  The seed contract is
per request, not per flush -- so stochastic estimators are covered too.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api.config import ExecutionConfig
from repro.core.features import generate_features
from repro.core.strategies import strategy_from_name
from repro.quantum.backends import DensityMatrixBackend
from repro.serve import FeatureService, ServeConfig

QUBITS = 3
ROWS = 2

CASES = [
    pytest.param(
        "observable",
        ExecutionConfig(vectorize="auto", compile="auto"),
        id="exact-statevector-fast-path",
    ),
    pytest.param(
        "observable",
        ExecutionConfig(
            estimator="shots", shots=128, vectorize="auto", compile="auto"
        ),
        id="shots-statevector-fast-path",
    ),
    pytest.param(
        "hybrid",
        ExecutionConfig(
            estimator="shots",
            shots=64,
            backend=DensityMatrixBackend(),
            vectorize="auto",
            compile="auto",
        ),
        id="shots-density-multi-ansatz-fast-path",
    ),
    pytest.param(
        "hybrid",
        ExecutionConfig(vectorize="auto", compile="auto"),
        id="exact-multi-ansatz-statevector-fallback",
    ),
    pytest.param(
        "observable",
        ExecutionConfig(estimator="shots", shots=64, vectorize="off"),
        id="shots-vectorize-off-fallback",
    ),
    pytest.param(
        "observable",
        ExecutionConfig(
            estimator="shots", shots=64, chunk_size=2,
            vectorize="auto", compile="auto",
        ),
        id="shots-chunked-fast-path",
    ),
    pytest.param(
        "observable",
        ExecutionConfig(
            estimator="shadows", snapshots=32, vectorize="auto", compile="auto"
        ),
        id="shadows-statevector-fast-path",
    ),
]


def _strategy(kind: str):
    if kind == "hybrid":
        return strategy_from_name("hybrid", num_qubits=QUBITS, layers=1)
    return strategy_from_name(kind, num_qubits=QUBITS)


@pytest.mark.parametrize("kind,execution", CASES)
def test_coalesced_responses_bit_equal_standalone(kind, execution):
    strategy = _strategy(kind)
    config = ServeConfig(
        batch_window_ms=10.0,
        max_batch_size=64,
        pool="serial",
        cache_results=False,  # every request must really execute
        execution=execution,
    )
    service = FeatureService(config)
    service.register("t", strategy, rows=ROWS)

    rng = np.random.default_rng(42)
    inputs = [
        rng.uniform(0, np.pi, size=(1 + i % 3, ROWS, QUBITS)) for i in range(6)
    ]
    seeds = [100 + i for i in range(6)]

    async def main():
        async with service:
            responses = await asyncio.gather(
                *(
                    service.submit("t", x, tenant=f"u{i % 3}", seed=s)
                    for i, (x, s) in enumerate(zip(inputs, seeds))
                )
            )
            return responses, service.metrics()

    responses, metrics = asyncio.run(main())
    # The requests actually coalesced -- otherwise this tests nothing.
    assert metrics.coalesce_ratio > 1.0
    assert metrics.max_flush_size > 1
    for response, x, seed in zip(responses, inputs, seeds):
        reference = generate_features(
            strategy, x, config=execution.merged(seed=seed)
        )
        assert np.array_equal(response, reference)


def test_same_seed_same_input_identical_across_flush_compositions():
    """One request's bits never depend on who shared its flush."""
    strategy = _strategy("observable")
    execution = ExecutionConfig(
        estimator="shots", shots=128, vectorize="auto", compile="auto"
    )
    x = np.random.default_rng(7).uniform(0, np.pi, size=(2, ROWS, QUBITS))

    async def run_with_peers(num_peers: int) -> np.ndarray:
        config = ServeConfig(
            batch_window_ms=10.0,
            max_batch_size=64,
            pool="serial",
            cache_results=False,
            execution=execution,
        )
        service = FeatureService(config)
        service.register("t", strategy, rows=ROWS)
        peer_rng = np.random.default_rng(1000 + num_peers)
        peers = [
            peer_rng.uniform(0, np.pi, size=(3, ROWS, QUBITS))
            for _ in range(num_peers)
        ]
        async with service:
            results = await asyncio.gather(
                service.submit("t", x, seed=55),
                *(
                    service.submit("t", p, seed=2000 + i)
                    for i, p in enumerate(peers)
                ),
            )
            return results[0]

    alone = asyncio.run(run_with_peers(0))
    with_two = asyncio.run(run_with_peers(2))
    with_five = asyncio.run(run_with_peers(5))
    assert np.array_equal(alone, with_two)
    assert np.array_equal(alone, with_five)
