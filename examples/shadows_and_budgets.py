"""Classical shadows and measurement budgeting (Secs. II.B, VI; Table II).

Walks through the estimation stack:

1. estimate all 1-local Paulis of an encoded image from ONE batch of
   random-Pauli shadow snapshots;
2. compare against per-observable direct measurement at equal total budget;
3. print the paper's Table II budget formulas for the experiment at hand
   and the Theorem 4 entry-error target they are derived from.

Run:  python examples/shadows_and_budgets.py
"""


from repro.core import (
    proposition1_direct_measurements,
    proposition2_shadow_measurements,
    theorem4_required_entry_error,
)
from repro.data import binary_coat_vs_shirt, encode_batch
from repro.quantum import (
    collect_shadows,
    estimate_many,
    expectation,
    local_pauli_strings,
    measure_pauli,
)


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=5, test_per_class=2)
    psi = encode_batch(split.x_train[:1])[0]
    paulis = [p for p in local_pauli_strings(4, 1) if not p.is_identity]

    budget = 4800
    shadow = collect_shadows(psi, budget, seed=0)
    estimates = estimate_many(shadow, paulis)
    per_obs = budget // len(paulis)

    print(f"one encoded image, {len(paulis)} one-local Paulis, budget {budget} shots")
    print(f"{'Pauli':>6} {'exact':>8} {'shadows':>8} {'direct':>8}   (direct gets {per_obs}/obs)")
    for p, est in zip(paulis, estimates, strict=True):
        exact = expectation(psi, p)
        direct = measure_pauli(psi, p, per_obs, seed=1)
        print(f"{p.string:>6} {exact:>8.3f} {est:>8.3f} {direct:>8.3f}")

    # Budgets for the full Table III experiment (m = 13 features, d = 400).
    m, d = 13, 400
    epsilon, delta = 0.1, 0.05
    eps_h = theorem4_required_entry_error(m, epsilon)
    direct_total = proposition1_direct_measurements(m, d, eps_h, delta)
    shadow_total = proposition2_shadow_measurements(1, d, 4.0, eps_h, delta, m=m)
    print(f"\nTheorem 4 entry-error target for eps={epsilon}: eps_H = {eps_h:.4f}")
    print(f"Proposition 1 (direct) total shots : {direct_total:.3e}")
    print(f"Proposition 2 (shadows) total shots: {shadow_total:.3e}")


if __name__ == "__main__":
    main()
