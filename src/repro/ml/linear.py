"""Linear regression heads: closed form, ridge, and the pseudoinverse path.

Paper Sec. V: the post-variational head minimises
``L_RMSE = (1/sqrt(d)) ||Y - Q alpha||_2`` whose closed-form solution is
``alpha = Q^+ Y`` (Eq. 29 discussion).  Ridge (Tikhonov, Sec. VI.B second
method) trades bias for the noise robustness Theorem 4 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.losses import rmse_loss

__all__ = ["LinearRegression", "RidgeRegression", "lstsq_pinv"]


def lstsq_pinv(q: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``alpha = Q^+ Y`` via SVD pseudoinverse (paper's closed form)."""
    q = np.asarray(q, dtype=float)
    y = np.asarray(y, dtype=float)
    if q.ndim != 2 or y.shape[0] != q.shape[0]:
        raise ValueError(f"incompatible shapes Q{q.shape}, Y{y.shape}")
    return np.linalg.pinv(q) @ y


@dataclass
class LinearRegression:
    """Ordinary least squares with optional intercept.

    ``fit_intercept`` augments Q with a ones column -- the identity Pauli
    observable plays this role in the observable-construction strategy, so
    post-variational heads default to no intercept.
    """

    fit_intercept: bool = False
    coef_: np.ndarray | None = field(default=None, repr=False)
    intercept_: float = 0.0

    def _design(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if self.fit_intercept:
            return np.hstack([q, np.ones((q.shape[0], 1))])
        return q

    def fit(self, q: np.ndarray, y: np.ndarray) -> LinearRegression:
        design = self._design(q)
        sol = lstsq_pinv(design, np.asarray(y, dtype=float))
        if self.fit_intercept:
            self.coef_, self.intercept_ = sol[:-1], float(sol[-1])
        else:
            self.coef_, self.intercept_ = sol, 0.0
        return self

    def predict(self, q: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(q, dtype=float) @ self.coef_ + self.intercept_

    def loss(self, q: np.ndarray, y: np.ndarray) -> float:
        """Training-objective value (RMSE, the paper's L)."""
        return rmse_loss(np.asarray(y, dtype=float), self.predict(q))


@dataclass
class RidgeRegression:
    """Tikhonov-regularised least squares.

    Solves ``(Q^T Q + lambda d I) alpha = Q^T Y`` -- the MAP estimate with a
    Gaussian prior of variance ``1/(2 lambda)`` noted in Sec. VI.B.  The
    ``lambda_`` is scaled by d so its effect is dataset-size invariant.
    """

    lambda_: float = 1e-3
    fit_intercept: bool = False
    coef_: np.ndarray | None = field(default=None, repr=False)
    intercept_: float = 0.0

    def __post_init__(self) -> None:
        if self.lambda_ < 0:
            raise ValueError("lambda_ must be >= 0")

    def fit(self, q: np.ndarray, y: np.ndarray) -> RidgeRegression:
        q = np.asarray(q, dtype=float)
        y = np.asarray(y, dtype=float)
        if self.fit_intercept:
            mu_q, mu_y = q.mean(axis=0), y.mean()
            qc, yc = q - mu_q, y - mu_y
        else:
            qc, yc = q, y
        d, m = qc.shape
        gram = qc.T @ qc + self.lambda_ * d * np.eye(m)
        self.coef_ = np.linalg.solve(gram, qc.T @ yc)
        self.intercept_ = float(mu_y - mu_q @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, q: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(q, dtype=float) @ self.coef_ + self.intercept_

    def loss(self, q: np.ndarray, y: np.ndarray) -> float:
        return rmse_loss(np.asarray(y, dtype=float), self.predict(q))
