"""Bounded LRU (+ optional TTL) cache for served feature responses.

The service keys entries on the full request identity -- template group
(fingerprints + config-minus-seed), the exact input bytes, and the request
seed -- so a hit is *bit-identical* to recomputing.  There is no tolerance
matching: a cache that substitutes "close" features would silently change
results, which the serving layer's bit-equality contract forbids.

Stored and returned arrays are defensive copies: a caller mutating its
response can never poison later hits.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["ResultCacheInfo", "ResultCache", "result_key"]


def result_key(group_key: Any, x: np.ndarray, seed: Any) -> tuple:
    """Cache identity of one request.

    The payload hash runs over the raw bytes of the C-contiguous array, so
    two inputs collide only when they are bit-identical (same shape, dtype
    and every byte).  ``seed`` enters the key so stochastic estimators
    never alias responses across seeds; exact requests pass ``None``.
    """
    arr = np.ascontiguousarray(x)
    digest = hashlib.sha256(arr.tobytes()).hexdigest()
    return (group_key, arr.shape, str(arr.dtype), digest, seed)


@dataclass(frozen=True)
class ResultCacheInfo:
    """Snapshot of result-cache statistics (mirrors ``CompileCache.info``)."""

    hits: int
    misses: int
    currsize: int
    maxsize: int
    evictions: int
    expirations: int

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "currsize": self.currsize,
            "maxsize": self.maxsize,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }


class ResultCache:
    """Thread-safe LRU with optional per-entry TTL.

    ``maxsize=0`` disables storage entirely (every ``get`` misses, every
    ``put`` is dropped) -- the spelling the service uses when
    ``cache_results=False``.  ``ttl_s`` bounds entry age against ``clock``
    (injectable for tests; defaults to the monotonic clock).
    """

    def __init__(
        self,
        maxsize: int,
        ttl_s: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize={maxsize} must be >= 0")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s={ttl_s} must be > 0 or None")
        self.maxsize = int(maxsize)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, tuple[np.ndarray, float]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Any) -> np.ndarray | None:
        """The cached response (a copy), or ``None`` on miss/expiry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self.ttl_s is not None:
                if self._clock() - entry[1] > self.ttl_s:
                    del self._entries[key]
                    self._expirations += 1
                    entry = None
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0].copy()

    def put(self, key: Any, value: np.ndarray) -> None:
        """Store a response (LRU-evicting); no-op when storage is disabled."""
        if self.maxsize == 0:
            return
        stored = np.array(value, copy=True)
        with self._lock:
            self._entries[key] = (stored, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> ResultCacheInfo:
        """Statistics snapshot (feeds the service metrics)."""
        with self._lock:
            return ResultCacheInfo(
                hits=self._hits,
                misses=self._misses,
                currsize=len(self._entries),
                maxsize=self.maxsize,
                evictions=self._evictions,
                expirations=self._expirations,
            )
