"""Finite-shot estimator tests."""

import numpy as np
import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, PauliSum, expectation
from repro.quantum.sampling import (
    hoeffding_shots,
    measure_pauli,
    measure_pauli_batch,
    measure_pauli_sum,
)
from repro.quantum.statevector import run_circuit

from tests.conftest import random_state


def test_zero_shots_returns_exact():
    rng = np.random.default_rng(0)
    psi = random_state(3, rng)
    p = PauliString("XZY")
    assert measure_pauli(psi, p, shots=0) == pytest.approx(expectation(psi, p))


def test_identity_always_one():
    rng = np.random.default_rng(1)
    psi = random_state(2, rng)
    assert measure_pauli(psi, PauliString("II"), shots=7, seed=0) == 1.0


def test_estimates_converge():
    """Sample mean approaches the exact value as shots grow."""
    c = Circuit(2)
    c.append("h", 0).append("ry", 1, 0.8).append("cnot", (0, 1))
    psi = run_circuit(c)
    p = PauliString("ZX")
    exact = expectation(psi, p)
    errors = []
    for shots in (100, 10_000):
        est = measure_pauli(psi, p, shots, seed=42)
        errors.append(abs(est - exact))
    assert errors[1] < 0.05
    assert errors[1] <= errors[0] + 0.02


def test_eigenstate_is_deterministic():
    """|0> is a Z eigenstate: every shot gives +1."""
    psi = np.array([1, 0], dtype=complex)
    assert measure_pauli(psi, PauliString("Z"), shots=50, seed=3) == 1.0


def test_x_eigenstate():
    """|+> gives +1 for X deterministically."""
    psi = np.array([1, 1], dtype=complex) / np.sqrt(2)
    assert measure_pauli(psi, PauliString("X"), shots=50, seed=3) == pytest.approx(1.0)


def test_batch_shapes_and_seeding():
    rng = np.random.default_rng(2)
    batch = np.stack([random_state(2, rng) for _ in range(5)])
    p = PauliString("ZI")
    est1 = measure_pauli_batch(batch, p, shots=200, seed=7)
    est2 = measure_pauli_batch(batch, p, shots=200, seed=7)
    assert est1.shape == (5,)
    assert np.array_equal(est1, est2)  # deterministic under seed
    est3 = measure_pauli_batch(batch, p, shots=200, seed=8)
    assert not np.array_equal(est1, est3)


def test_batched_multinomial_matches_per_row_loop():
    """Seed-determinism contract of the vectorised estimator (mirrors the
    ``sample_counts`` batching contract): one batched ``rng.multinomial``
    over the whole chunk draws the same conditional binomials in the same
    order as sequential per-row calls, so estimates are bit-identical to
    the historical Python loop."""
    from repro.quantum.sampling import _eigenvalue_signs, _rotated_probabilities

    rng = np.random.default_rng(3)
    batch = np.stack([random_state(3, rng) for _ in range(6)])
    p = PauliString("XYZ")
    shots = 257
    est = measure_pauli_batch(batch, p, shots=shots, seed=99)

    # Reference: the pre-vectorisation per-row loop, same seed.
    ref_rng = np.random.default_rng(99)
    probs = _rotated_probabilities(batch, p)
    probs = probs / probs.sum(axis=1, keepdims=True)
    signs = _eigenvalue_signs(3, p.support)
    expected = np.empty(batch.shape[0])
    for b in range(batch.shape[0]):
        counts = ref_rng.multinomial(shots, probs[b])
        expected[b] = float(np.dot(counts, signs)) / shots
    assert np.array_equal(est, expected)


def test_estimates_bounded():
    rng = np.random.default_rng(5)
    batch = np.stack([random_state(3, rng) for _ in range(4)])
    vals = measure_pauli_batch(batch, PauliString("XYZ"), shots=64, seed=1)
    assert np.all(vals >= -1.0) and np.all(vals <= 1.0)


def test_pauli_sum_measurement():
    rng = np.random.default_rng(6)
    psi = random_state(2, rng)
    obs = PauliSum([(0.5, "ZI"), (-1.5, "XX")])
    exact = expectation(psi, obs)
    est = measure_pauli_sum(psi, obs, shots_per_term=40_000, seed=9)
    assert est == pytest.approx(exact, abs=0.05)


def test_hoeffding_shots_formula():
    assert hoeffding_shots(0.1, 0.05) == int(np.ceil(2 / 0.01 * np.log(2 / 0.05)))
    # Tighter epsilon => more shots; smaller delta => more shots.
    assert hoeffding_shots(0.05, 0.05) > hoeffding_shots(0.1, 0.05)
    assert hoeffding_shots(0.1, 0.01) > hoeffding_shots(0.1, 0.05)


def test_hoeffding_empirical_coverage():
    """The Hoeffding budget actually achieves the target error."""
    c = Circuit(1)
    c.append("ry", 0, 1.1)
    psi = run_circuit(c)
    p = PauliString("Z")
    exact = expectation(psi, p)
    shots = hoeffding_shots(0.1, 0.05)
    rng = np.random.default_rng(123)
    failures = sum(
        abs(measure_pauli(psi, p, shots, rng) - exact) > 0.1 for _ in range(40)
    )
    assert failures <= 4  # 5% nominal, generous slack


def test_validation_errors():
    psi = np.array([1, 0], dtype=complex)
    with pytest.raises(ValueError):
        measure_pauli(psi, PauliString("Z"), shots=-1)
    with pytest.raises(ValueError):
        measure_pauli_batch(psi, PauliString("Z"), shots=1)  # not 2-D
    with pytest.raises(ValueError):
        measure_pauli(psi, PauliString("ZZ"), shots=1)  # width mismatch
    with pytest.raises(ValueError):
        hoeffding_shots(-1.0, 0.05)
    with pytest.raises(ValueError):
        hoeffding_shots(0.1, 1.5)
