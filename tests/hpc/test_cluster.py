"""Simulated-cluster timing model tests."""

import numpy as np
import pytest

from repro.hpc.cluster import (
    CircuitTask,
    ClusterModel,
    NodeSpec,
    strong_scaling,
    weak_scaling,
)


def make_tasks(n=32, circuits=10, shots=1000):
    return [CircuitTask(num_circuits=circuits, shots=shots, result_bytes=80) for _ in range(n)]


def test_task_compute_time_components():
    model = ClusterModel(node=NodeSpec(shot_rate=1e3, circuit_overhead=0.01))
    t = model.task_compute_time(CircuitTask(num_circuits=5, shots=100))
    # 5 circuits x (0.01 overhead + 100/1000 shot time).
    assert t == pytest.approx(5 * (0.01 + 0.1))


def test_analytic_expectation_occupies_once():
    model = ClusterModel(node=NodeSpec(shot_rate=1e3, circuit_overhead=0.01))
    t = model.task_compute_time(CircuitTask(num_circuits=1, shots=0))
    assert t > 0.01  # overhead plus one effective shot


def test_comm_time():
    model = ClusterModel(link_latency=1e-3, link_bandwidth=1e6)
    t = model.task_comm_time(CircuitTask(num_circuits=1, result_bytes=1000))
    assert t == pytest.approx(1e-3 + 1e-3)


def test_makespan_decreases_with_nodes():
    tasks = make_tasks(64)
    times = []
    for n in (1, 2, 4, 8):
        model = ClusterModel(num_nodes=n)
        t, _ = model.makespan(tasks)
        times.append(t)
    assert all(times[i + 1] < times[i] for i in range(len(times) - 1))


def test_strong_scaling_near_linear_when_qpu_bound():
    """Many shots per circuit: compute dominates, speedup ~ nodes."""
    tasks = make_tasks(n=128, shots=10_000)
    points = strong_scaling(tasks, NodeSpec(), [1, 2, 4, 8, 16])
    for p in points:
        assert p.efficiency > 0.9


def test_strong_scaling_saturates_when_latency_bound():
    """One task total: more nodes cannot help."""
    tasks = make_tasks(n=1)
    points = strong_scaling(tasks, NodeSpec(), [1, 4, 16])
    assert points[-1].speedup == pytest.approx(points[0].speedup, rel=0.05)


def test_weak_scaling_efficiency_near_one():
    per_node = make_tasks(n=8)
    points = weak_scaling(per_node, NodeSpec(), [1, 2, 4, 8])
    for p in points:
        assert p.efficiency > 0.9


def test_comm_bound_regime():
    """Huge result payloads on a slow link: adding nodes helps because each
    node's NIC serialises only its own results (star topology), but
    efficiency drops versus the compute-bound case with same layout."""
    heavy = [
        CircuitTask(num_circuits=1, shots=10, result_bytes=10_000_000) for _ in range(32)
    ]
    light = [CircuitTask(num_circuits=1, shots=10, result_bytes=80) for _ in range(32)]
    slow_link = dict(link_latency=1e-3, link_bandwidth=1e7)
    heavy_pts = strong_scaling(heavy, NodeSpec(), [1, 8], **slow_link)
    light_pts = strong_scaling(light, NodeSpec(), [1, 8], **slow_link)
    assert heavy_pts[1].time > light_pts[1].time


def test_policies_affect_makespan():
    rng = np.random.default_rng(1)
    tasks = [
        CircuitTask(num_circuits=int(c), shots=100)
        for c in rng.integers(1, 100, size=40)
    ]
    model = ClusterModel(num_nodes=4)
    t_lpt, _ = model.makespan(tasks, "lpt")
    t_block, _ = model.makespan(tasks, "block")
    assert t_lpt <= t_block + 1e-12


def test_validation():
    with pytest.raises(ValueError):
        NodeSpec(shot_rate=0)
    with pytest.raises(ValueError):
        CircuitTask(num_circuits=-1)
    with pytest.raises(ValueError):
        ClusterModel(num_nodes=0)
    with pytest.raises(ValueError):
        ClusterModel(link_bandwidth=0)
