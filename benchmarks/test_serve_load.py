"""Serving layer -- micro-batched vs per-request dispatch under load.

The serving claim: when many concurrent requests share a template
fingerprint, coalescing them into one stacked ``evolve_batch`` pass per
flush amortizes the per-call program walk that per-request dispatch pays
over and over.  Measured here as a closed-loop load test through the real
:class:`~repro.serve.service.FeatureService` -- admission, fairness,
batcher and asyncio bridge all on the hot path -- with the acceptance bar
of >= 2x throughput for the micro-batched service over sequential
per-request dispatch on >= 64 concurrent requests sharing <= 4 templates
(deep single-Ansatz templates, where evolution dominates measurement).
Latency quantiles are recorded for both modes: micro-batching *trades
p50 latency for throughput* (a request waits out its batch window), which
the record makes visible rather than hiding.

Bit-equality under coalescing is asserted here too, on a seeded ``shots``
estimator: every served response must equal its standalone
``generate_features`` sweep no matter how requests were batched (the CI
gate; tests/serve/test_coalescing_equivalence.py covers the full table).

Smoke mode (``SERVE_BENCH_SMOKE=1``, the CI perf-guard job) shrinks the
load and gates on "batched is not slower" instead of the full 2x bar.
Results land in ``BENCH_serve.json`` only when ``BENCH_WRITE=1``.
"""

from __future__ import annotations

import asyncio

import numpy as np

from benchmarks.conftest import env_flag, write_bench_record
from repro.api import ExecutionConfig, ServeConfig
from repro.core.features import generate_features
from repro.core.strategies import strategy_from_name
from repro.serve import FeatureService, run_load

SMOKE = env_flag("SERVE_BENCH_SMOKE")

REQUESTS = 24 if SMOKE else 96
CONCURRENCY = REQUESTS  # every request in flight at once
TEMPLATES = 2 if SMOKE else 4
NUM_QUBITS = 4 if SMOKE else 6
LAYERS = 2 if SMOKE else 4
TENANTS = ("tenant-a", "tenant-b", "tenant-c")
SPEEDUP_BAR = 1.0 if SMOKE else 2.0


def build_service(*, batch_window_ms: float, max_batch_size: int) -> FeatureService:
    """The load-test service: <= TEMPLATES deep single-Ansatz templates."""
    config = ServeConfig(
        batch_window_ms=batch_window_ms,
        max_batch_size=max_batch_size,
        pool="serial",
        cache_results=False,  # measure execution, not cache hits
        execution=ExecutionConfig(vectorize="auto", compile="auto"),
    )
    service = FeatureService(config)
    for i in range(TEMPLATES):
        service.register(
            f"template-{i}",
            strategy_from_name(
                "ansatz", num_qubits=NUM_QUBITS, layers=LAYERS, order=0
            ),
            rows=2 + i,  # distinct encodings: distinct coalescing groups
        )
    return service


def drive(service: FeatureService, *, sequential: bool):
    async def main():
        async with service:
            report = await run_load(
                service,
                requests=REQUESTS,
                concurrency=CONCURRENCY,
                samples=1,
                tenants=TENANTS,
                seed=1,
                sequential=sequential,
            )
            return report, service.metrics()

    return asyncio.run(main())


def test_serve_load(benchmark):
    def measure():
        batched = drive(
            build_service(batch_window_ms=10.0, max_batch_size=64),
            sequential=False,
        )
        per_request = drive(
            build_service(batch_window_ms=0.0, max_batch_size=1),
            sequential=True,
        )
        return batched, per_request

    (batched_report, batched_metrics), (seq_report, seq_metrics) = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )

    speedup = batched_report.throughput / seq_report.throughput
    print(
        f"\n=== serve load: {REQUESTS} requests, {TEMPLATES} templates, "
        f"{len(TENANTS)} tenants ({'smoke' if SMOKE else 'full'}) ==="
    )
    for name, report, metrics in (
        ("micro-batched", batched_report, batched_metrics),
        ("per-request", seq_report, seq_metrics),
    ):
        print(
            f"{name:<14} {report.throughput:>8.0f} rps  "
            f"p50 {report.p50_ms:>7.2f} ms  p99 {report.p99_ms:>7.2f} ms  "
            f"coalesce {metrics.coalesce_ratio:>5.1f}"
        )
    print(f"speedup: {speedup:.2f}x (bar: {SPEEDUP_BAR:.1f}x)")

    assert batched_report.completed == REQUESTS
    assert seq_report.completed == REQUESTS
    assert batched_metrics.coalesce_ratio > 1.0
    assert seq_metrics.coalesce_ratio == 1.0
    assert speedup >= SPEEDUP_BAR

    write_bench_record(
        "BENCH_serve.json",
        {
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "templates": TEMPLATES,
            "tenants": len(TENANTS),
            "num_qubits": NUM_QUBITS,
            "smoke": SMOKE,
            "speedup": speedup,
            "speedup_bar": SPEEDUP_BAR,
            "micro_batched": {
                **batched_report.to_dict(),
                "coalesce_ratio": batched_metrics.coalesce_ratio,
                "max_flush_size": batched_metrics.max_flush_size,
            },
            "per_request": {
                **seq_report.to_dict(),
                "coalesce_ratio": seq_metrics.coalesce_ratio,
            },
        },
    )


def test_served_shots_bit_equal_standalone():
    """CI gate: seeded stochastic responses are batching-invariant."""
    strategy = strategy_from_name("observable", num_qubits=3)
    execution = ExecutionConfig(
        estimator="shots", shots=128, vectorize="auto", compile="auto"
    )
    service = FeatureService(
        ServeConfig(
            batch_window_ms=10.0,
            max_batch_size=64,
            pool="serial",
            cache_results=False,
            execution=execution,
        )
    )
    service.register("t", strategy, rows=2)
    rng = np.random.default_rng(9)
    inputs = [rng.uniform(0, np.pi, size=(2, 2, 3)) for _ in range(8)]

    async def main():
        async with service:
            return await asyncio.gather(
                *(
                    service.submit("t", x, tenant=TENANTS[i % 3], seed=500 + i)
                    for i, x in enumerate(inputs)
                )
            ), service.metrics()

    responses, metrics = asyncio.run(main())
    assert metrics.coalesce_ratio > 1.0  # they really shared flushes
    for i, (response, x) in enumerate(zip(responses, inputs)):
        reference = generate_features(
            strategy, x, config=execution.merged(seed=500 + i)
        )
        assert np.array_equal(response, reference)
