"""First-order optimisers for the MLP baseline and the variational QNN.

Minimal, dependency-free implementations of SGD (+momentum) and Adam with
the standard bias correction.  Each optimiser owns its state keyed by
parameter id, so a single instance can drive several parameter arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SGD", "Adam"]


@dataclass
class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    lr: float = 0.1
    momentum: float = 0.0
    _velocity: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")

    def step(self, params: np.ndarray, grad: np.ndarray, key: str | int | None = None) -> np.ndarray:
        """Return updated parameters (functional style: no in-place write).

        ``key`` identifies the parameter tensor across steps (required for
        stateful momentum when the caller rebinds arrays each step).
        """
        key = id(params) if key is None else key
        if self.momentum > 0:
            v = self._velocity.get(key, np.zeros_like(params))
            v = self.momentum * v - self.lr * grad
            self._velocity[key] = v
            return params + v
        return params - self.lr * grad


@dataclass
class Adam:
    """Adam with bias-corrected first/second moments (Kingma & Ba)."""

    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    _m: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _v: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _t: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= self.beta1 < 1 and 0 <= self.beta2 < 1):
            raise ValueError("betas must lie in [0, 1)")

    def step(self, params: np.ndarray, grad: np.ndarray, key: str | int | None = None) -> np.ndarray:
        """Return updated parameters; ``key`` as in :meth:`SGD.step`."""
        key = id(params) if key is None else key
        m = self._m.get(key, np.zeros_like(params))
        v = self._v.get(key, np.zeros_like(params))
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        mhat = m / (1 - self.beta1**t)
        vhat = v / (1 - self.beta2**t)
        out = params - self.lr * mhat / (np.sqrt(vhat) + self.eps)
        self._m[key], self._v[key], self._t[key] = m, v, t
        return out
