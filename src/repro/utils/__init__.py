"""Shared utilities: RNG handling, validation, combinatorics."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_power_of_two,
    check_probability,
    check_square,
    require,
)
from repro.utils.combinatorics import (
    bounded_subsets,
    count_bounded_subsets,
    signed_assignments,
)
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    load_feature_matrix,
    save_feature_matrix,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_power_of_two",
    "check_probability",
    "check_square",
    "require",
    "bounded_subsets",
    "count_bounded_subsets",
    "signed_assignments",
    "circuit_from_dict",
    "circuit_to_dict",
    "load_feature_matrix",
    "save_feature_matrix",
]
