"""End-to-end hybrid HPC-QC pipeline orchestrator.

This is the SC-track system layer: it stages the post-variational workflow
(encode -> dispatch circuit ensemble -> gather Q -> convex fit) through the
HPC substrate, instruments every stage (profiling guide: measure first), and
-- because real quantum hardware is replaced by the simulator -- also
projects wall-clock onto the deterministic cluster model so dispatch
policies can be compared reproducibly.

The quantum workload dispatched per node is exactly what a real deployment
would ship: (fixed circuit, data chunk, shot budget) triples returning
Q-matrix blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.features import FeatureJob, generate_features
from repro.core.strategies import Strategy
from repro.hpc.cluster import CircuitTask, ClusterModel
from repro.hpc.executor import ParallelExecutor
from repro.hpc.partition import chunk_ranges
from repro.hpc.profiling import Counter, StageTimer
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import accuracy

__all__ = ["PipelineReport", "HybridPipeline"]


@dataclass
class PipelineReport:
    """Everything a run log needs: sizes, timings, projected makespan."""

    num_features: int
    num_ansatze: int
    num_observables: int
    num_train: int
    timer: StageTimer
    counter: Counter
    projected_makespan: float | None = None
    scheduling_policy: str | None = None

    def summary(self) -> str:
        lines = [
            f"ensemble: p={self.num_ansatze} x q={self.num_observables} "
            f"= m={self.num_features} features, d={self.num_train} samples",
            self.timer.report(),
        ]
        if self.projected_makespan is not None:
            lines.append(
                f"projected cluster makespan ({self.scheduling_policy}): "
                f"{self.projected_makespan:.4f}s"
            )
        return "\n".join(lines)


@dataclass
class HybridPipeline:
    """Strategy + estimator + executor + classical head, fully instrumented."""

    strategy: Strategy = None  # type: ignore[assignment]
    num_classes: int = 2
    estimator: str = "exact"
    shots: int = 1024
    snapshots: int = 512
    l2: float = 1.0
    executor: ParallelExecutor | None = None
    cluster: ClusterModel | None = None
    scheduling_policy: str = "lpt"
    chunk_size: int = 128
    seed: int = 0
    # Compiled execution is the system-layer default: the ensemble circuits
    # are fixed, so each is fused once and reused for every chunk/worker.
    compile: str | int = "auto"
    report_: PipelineReport | None = field(default=None, repr=False)
    head_: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.strategy is None:
            raise ValueError("strategy is required")
        self.executor = self.executor or ParallelExecutor()

    # ------------------------------------------------------------ workload
    def circuit_tasks(self, num_samples: int) -> list[CircuitTask]:
        """The dispatch units a real cluster would receive."""
        q = self.strategy.num_observables
        shots_per_circuit = 0 if self.estimator == "exact" else (
            self.shots * q if self.estimator == "shots" else self.snapshots
        )
        tasks = []
        for _ in range(self.strategy.num_ansatze):
            for lo, hi in chunk_ranges(num_samples, self.chunk_size):
                chunk = hi - lo
                tasks.append(
                    CircuitTask(
                        num_circuits=chunk,
                        shots=shots_per_circuit,
                        result_bytes=8 * chunk * q,
                        classical_flops=float(chunk * q * 2 ** self.strategy.num_qubits),
                    )
                )
        return tasks

    # ----------------------------------------------------------------- fit
    def fit(self, angles: np.ndarray, y: np.ndarray) -> "HybridPipeline":
        timer = StageTimer()
        counter = Counter()
        angles = np.asarray(angles, dtype=float)
        y = np.asarray(y)

        with timer.stage("generate_features"):
            q_matrix = generate_features(
                self.strategy,
                angles,
                estimator=self.estimator,
                shots=self.shots,
                snapshots=self.snapshots,
                executor=self.executor,
                chunk_size=self.chunk_size,
                seed=self.seed,
                compile=self.compile,
            )
        counter.add("circuits_executed", self.strategy.num_ansatze * angles.shape[0])
        counter.add(
            "shots_fired",
            0 if self.estimator == "exact" else self.shots * q_matrix.size,
        )

        with timer.stage("fit_head"):
            if self.num_classes == 2:
                self.head_ = LogisticRegression(l2=self.l2).fit(q_matrix, y)
            else:
                self.head_ = SoftmaxRegression(
                    num_classes=self.num_classes, l2=self.l2
                ).fit(q_matrix, y)

        projected = None
        if self.cluster is not None:
            with timer.stage("cluster_projection"):
                projected, _ = self.cluster.makespan(
                    self.circuit_tasks(angles.shape[0]), self.scheduling_policy
                )

        self.report_ = PipelineReport(
            num_features=self.strategy.num_features,
            num_ansatze=self.strategy.num_ansatze,
            num_observables=self.strategy.num_observables,
            num_train=angles.shape[0],
            timer=timer,
            counter=counter,
            projected_makespan=projected,
            scheduling_policy=self.scheduling_policy if projected is not None else None,
        )
        return self

    # ------------------------------------------------------------- predict
    def _features(self, angles: np.ndarray) -> np.ndarray:
        return generate_features(
            self.strategy,
            np.asarray(angles, dtype=float),
            estimator=self.estimator,
            shots=self.shots,
            snapshots=self.snapshots,
            executor=self.executor,
            chunk_size=self.chunk_size,
            seed=self.seed,
            compile=self.compile,
        )

    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.predict(self._features(angles))

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))

    def loss(self, angles: np.ndarray, y: np.ndarray) -> float:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.loss(self._features(angles), np.asarray(y))
