"""Serve-plan lint (RPA11x) and the serve preflight gate."""

from __future__ import annotations

import warnings

import pytest

from repro.analysis.diagnostics import DIAGNOSTIC_CODES
from repro.analysis.plan import lint_serve_config
from repro.analysis.preflight import (
    PreflightError,
    PreflightWarning,
    run_serve_preflight,
)
from repro.api.config import ExecutionConfig, ServeConfig, TransportConfig


def test_serve_codes_registered():
    for code in ("RPA110", "RPA111", "RPA112", "RPA113", "RPA114", "RPA115", "RPA116"):
        assert code in DIAGNOSTIC_CODES


def test_default_serve_config_is_clean():
    assert lint_serve_config(ServeConfig()).clean


# ------------------------------------------------- RPA110 (batch window)
def test_rpa110_zero_window_warns():
    report = lint_serve_config(ServeConfig(batch_window_ms=0))
    (finding,) = [d for d in report if d.code == "RPA110"]
    assert finding.severity == "warning"
    assert report.ok  # zero is legal, just coalescing-free


def test_rpa110_negative_window_is_error():
    report = lint_serve_config(ServeConfig(batch_window_ms=-2.0))
    (finding,) = [d for d in report if d.code == "RPA110"]
    assert finding.severity == "error"
    assert not report.ok


def test_rpa110_not_on_positive_window():
    assert "RPA110" not in lint_serve_config(
        ServeConfig(batch_window_ms=2.0)
    ).codes()


# -------------------------------------------------- RPA111 (dead cache)
def test_rpa111_caching_with_zero_entries():
    cfg = ServeConfig(cache_results=True, result_cache_size=0)
    report = lint_serve_config(cfg)
    assert "RPA111" in report.codes()
    assert report.ok  # warning


def test_rpa111_not_when_cache_disabled_or_sized():
    assert "RPA111" not in lint_serve_config(
        ServeConfig(cache_results=False, result_cache_size=0)
    ).codes()
    assert "RPA111" not in lint_serve_config(
        ServeConfig(cache_results=True, result_cache_size=8)
    ).codes()


# -------------------------------------------- RPA112 (starved tenants)
def test_rpa112_nonpositive_weight_is_error():
    cfg = ServeConfig(tenant_weights={"paying": 1.0, "free": 0.0})
    report = lint_serve_config(cfg)
    findings = [d for d in report if d.code == "RPA112"]
    assert len(findings) == 1
    assert "free" in findings[0].message
    assert not report.ok


def test_rpa112_one_finding_per_starved_tenant():
    cfg = ServeConfig(tenant_weights={"a": -1.0, "b": 0.0, "c": 2.0})
    report = lint_serve_config(cfg)
    assert len([d for d in report if d.code == "RPA112"]) == 2


def test_rpa112_not_on_positive_weights():
    cfg = ServeConfig(tenant_weights={"a": 3.0, "b": 1.0})
    assert "RPA112" not in lint_serve_config(cfg).codes()


# ------------------------------------- RPA113 (window without batching)
def test_rpa113_window_with_vectorize_off():
    cfg = ServeConfig(
        batch_window_ms=2.0,
        execution=ExecutionConfig(vectorize="off"),
    )
    report = lint_serve_config(cfg)
    assert "RPA113" in report.codes()
    assert report.ok  # warning: correct, just not profitable


def test_rpa113_not_when_window_off_or_vectorized():
    assert "RPA113" not in lint_serve_config(
        ServeConfig(batch_window_ms=0, execution=ExecutionConfig(vectorize="off"))
    ).codes()
    assert "RPA113" not in lint_serve_config(
        ServeConfig(max_batch_size=1, execution=ExecutionConfig(vectorize="off"))
    ).codes()
    assert "RPA113" not in lint_serve_config(ServeConfig()).codes()


# ------------------------------------ RPA114 (deadline inside the window)
def test_rpa114_timeout_shorter_than_window():
    cfg = ServeConfig(
        batch_window_ms=5.0,
        transport=TransportConfig(request_timeout_s=0.001),
    )
    report = lint_serve_config(cfg)
    (finding,) = [d for d in report if d.code == "RPA114"]
    assert finding.severity == "warning"
    assert report.ok


def test_rpa114_not_on_sane_or_absent_deadline():
    assert "RPA114" not in lint_serve_config(
        ServeConfig(batch_window_ms=5.0, transport=TransportConfig())
    ).codes()
    assert "RPA114" not in lint_serve_config(
        ServeConfig(
            batch_window_ms=5.0,
            transport=TransportConfig(request_timeout_s=None),
        )
    ).codes()
    assert "RPA114" not in lint_serve_config(
        ServeConfig(batch_window_ms=5.0)  # no transport at all
    ).codes()


# ---------------------------------------- RPA115 (frame below one row)
def test_rpa115_tiny_frame_is_error():
    cfg = ServeConfig(transport=TransportConfig(max_frame_bytes=16))
    report = lint_serve_config(cfg, num_qubits=4)
    (finding,) = [d for d in report if d.code == "RPA115"]
    assert finding.severity == "error"
    assert not report.ok


def test_rpa115_scales_with_qubits():
    from repro.serve.protocol import FRAME_OVERHEAD

    # Enough for a 2-qubit row, too small for a 16-qubit one.
    cfg = ServeConfig(
        transport=TransportConfig(max_frame_bytes=FRAME_OVERHEAD + 8 * 2)
    )
    assert "RPA115" not in lint_serve_config(cfg, num_qubits=2).codes()
    assert "RPA115" in lint_serve_config(cfg, num_qubits=16).codes()


def test_rpa115_not_on_default_frame_bound():
    assert "RPA115" not in lint_serve_config(
        ServeConfig(transport=TransportConfig()), num_qubits=20
    ).codes()


# ------------------------------ RPA116 (dead threshold, streaming off)
def test_rpa116_threshold_without_streaming():
    cfg = ServeConfig(
        transport=TransportConfig(streaming=False, stream_threshold_rows=64)
    )
    report = lint_serve_config(cfg)
    (finding,) = [d for d in report if d.code == "RPA116"]
    assert finding.severity == "warning"
    assert report.ok


def test_rpa116_not_when_streaming_or_thresholdless():
    assert "RPA116" not in lint_serve_config(
        ServeConfig(transport=TransportConfig(stream_threshold_rows=64))
    ).codes()
    assert "RPA116" not in lint_serve_config(
        ServeConfig(transport=TransportConfig(streaming=False))
    ).codes()


def test_transport_defaults_are_clean():
    assert lint_serve_config(
        ServeConfig(transport=TransportConfig()), num_qubits=8
    ).clean


# ----------------------------------------------- nested execution merge
def test_nested_execution_findings_merged():
    cfg = ServeConfig(
        execution=ExecutionConfig(shards=8, compile="auto", vectorize="auto")
    )
    report = lint_serve_config(cfg, num_qubits=2)
    assert "RPA101" in report.codes()  # the execution-level finding


def test_diagnose_matches_lint_serve_config():
    cfg = ServeConfig(batch_window_ms=0)
    assert cfg.diagnose().codes() == lint_serve_config(cfg).codes()


# ----------------------------------------------------- preflight gate
def _flagged(preflight: str) -> ServeConfig:
    return ServeConfig(
        batch_window_ms=0,
        execution=ExecutionConfig(
            vectorize="auto", compile="auto", preflight=preflight
        ),
    )


def test_serve_preflight_off_is_free():
    report = run_serve_preflight(_flagged("off"))
    assert not report.codes()


def test_serve_preflight_warn_surfaces_findings():
    with pytest.warns(PreflightWarning, match="RPA110"):
        report = run_serve_preflight(_flagged("warn"))
    assert "RPA110" in report.codes()


def test_serve_preflight_error_raises_on_errors_only():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PreflightWarning)
        # RPA110-at-zero is a warning: error mode lets it pass.
        run_serve_preflight(_flagged("error"))
    starving = ServeConfig(
        tenant_weights={"a": 0.0},
        execution=ExecutionConfig(
            vectorize="auto", compile="auto", preflight="error"
        ),
    )
    with pytest.raises(PreflightError, match="RPA112"):
        run_serve_preflight(starving)


def test_service_register_runs_preflight():
    from repro.core.strategies import strategy_from_name
    from repro.serve import FeatureService

    service = FeatureService(
        ServeConfig(
            tenant_weights={"ghost": 0.0},
            execution=ExecutionConfig(
                vectorize="auto", compile="auto", preflight="error"
            ),
        )
    )
    with pytest.raises(PreflightError, match="RPA112"):
        service.register(
            "t", strategy_from_name("observable", num_qubits=2), rows=2
        )
