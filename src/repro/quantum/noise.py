"""Kraus noise channels and a per-gate noise model.

NISQ motivation is central to the paper (Sec. I, VIII); the release therefore
ships the standard single-qubit channels so users can stress the ensemble
under hardware-like noise.  Channels are exact Kraus decompositions --
completeness ``sum_k K^dag K = I`` is asserted at construction and property
tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.quantum.circuit import Operation
from repro.quantum.gates import I2, X, Y, Z
from repro.utils.validation import check_probability

__all__ = [
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "validate_kraus",
    "NoiseModel",
]


def _kraus_to_json(ops: Sequence[np.ndarray] | None) -> list | None:
    """Kraus list as nested ``[re, im]`` pairs (JSON doubles round-trip exactly)."""
    if ops is None:
        return None
    return [
        [[[float(z.real), float(z.imag)] for z in row] for row in np.asarray(op)]
        for op in ops
    ]


def _kraus_from_json(data: list | None) -> list[np.ndarray] | None:
    if data is None:
        return None
    return [
        np.array([[complex(re, im) for re, im in row] for row in op], dtype=np.complex128)
        for op in data
    ]


def validate_kraus(kraus_ops: Sequence[np.ndarray], atol: float = 1e-10) -> None:
    """Assert trace preservation ``sum_k K^dag K = I``."""
    total = sum(k.conj().T @ k for k in kraus_ops)
    dim = kraus_ops[0].shape[0]
    if not np.allclose(total, np.eye(dim), atol=atol):
        raise ValueError("Kraus operators do not satisfy completeness")


def depolarizing_channel(p: float) -> list[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``p``.

    ``rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z)``.
    """
    check_probability(p, "p")
    ops = [
        np.sqrt(1 - p) * I2,
        np.sqrt(p / 3) * X,
        np.sqrt(p / 3) * Y,
        np.sqrt(p / 3) * Z,
    ]
    validate_kraus(ops)
    return ops


def bit_flip_channel(p: float) -> list[np.ndarray]:
    """``rho -> (1-p) rho + p X rho X``."""
    check_probability(p, "p")
    ops = [np.sqrt(1 - p) * I2, np.sqrt(p) * X]
    validate_kraus(ops)
    return ops


def phase_flip_channel(p: float) -> list[np.ndarray]:
    """``rho -> (1-p) rho + p Z rho Z``."""
    check_probability(p, "p")
    ops = [np.sqrt(1 - p) * I2, np.sqrt(p) * Z]
    validate_kraus(ops)
    return ops


def amplitude_damping_channel(gamma: float) -> list[np.ndarray]:
    """T1 decay with damping parameter ``gamma``."""
    check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    ops = [k0, k1]
    validate_kraus(ops)
    return ops


@dataclass(eq=False)
class NoiseModel:
    """Gate-count-based noise: a channel after every 1q and/or 2q gate.

    ``one_qubit`` / ``two_qubit`` are Kraus lists applied per touched qubit
    after each gate of that arity (the standard depolarizing-per-gate model
    used in NISQ resource studies).
    """

    one_qubit: list[np.ndarray] | None = None
    two_qubit: list[np.ndarray] | None = None

    def __eq__(self, other: object) -> bool:
        # Fields are NumPy arrays, so the dataclass tuple comparison would
        # raise on ambiguous truth values; compare element-wise instead
        # (backend/config equality and serialization tests rely on this).
        if not isinstance(other, NoiseModel):
            return NotImplemented

        def same(a: list[np.ndarray] | None, b: list[np.ndarray] | None) -> bool:
            if a is None or b is None:
                return a is b
            return len(a) == len(b) and all(
                np.array_equal(x, y) for x, y in zip(a, b, strict=True)
            )

        return same(self.one_qubit, other.one_qubit) and same(
            self.two_qubit, other.two_qubit
        )

    def __hash__(self) -> int:
        # Content hash over the Kraus bytes: noise models are value objects
        # in practice (frozen backend dataclasses embed them), and without
        # this the dataclass-generated hash of every containing backend --
        # and of ExecutionConfig -- would raise.  Normalizing to complex128
        # keeps the hash contract with __eq__, which compares values across
        # dtypes (a float64 channel equals its complex128 round-trip).
        def key(ops: list[np.ndarray] | None):
            if ops is None:
                return None
            return tuple(
                np.ascontiguousarray(op, dtype=np.complex128).tobytes() for op in ops
            )

        return hash((key(self.one_qubit), key(self.two_qubit)))

    def to_dict(self) -> dict:
        """JSON-safe description (complex Kraus entries as ``[re, im]``)."""
        return {
            "one_qubit": _kraus_to_json(self.one_qubit),
            "two_qubit": _kraus_to_json(self.two_qubit),
        }

    @classmethod
    def from_dict(cls, data: dict) -> NoiseModel:
        """Inverse of :meth:`to_dict`; completeness is re-validated."""
        one = _kraus_from_json(data.get("one_qubit"))
        two = _kraus_from_json(data.get("two_qubit"))
        for ops in (one, two):
            if ops is not None:
                validate_kraus(ops)
        return cls(one_qubit=one, two_qubit=two)

    def channels_after(self, op: Operation) -> Iterator[tuple[list[np.ndarray], tuple[int, ...]]]:
        """Yield (kraus_ops, qubits) channels to insert after ``op``."""
        chan = self.one_qubit if len(op.qubits) == 1 else self.two_qubit
        if chan is None:
            return
        for q in op.qubits:
            yield chan, (q,)

    @classmethod
    def depolarizing(cls, p1: float, p2: float | None = None) -> NoiseModel:
        """Depolarizing after every gate: ``p1`` for 1q gates, ``p2`` for 2q
        (default ``10 * p1``, the usual hardware ratio)."""
        p2 = 10 * p1 if p2 is None else p2
        return cls(
            one_qubit=depolarizing_channel(p1),
            two_qubit=depolarizing_channel(min(p2, 1.0)),
        )
