"""Scheduler policy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.scheduler import (
    SCHEDULING_POLICIES,
    schedule,
    submission_order,
    work_stealing_schedule,
)


@given(
    costs=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=50),
    nodes=st.integers(1, 8),
    policy=st.sampled_from(SCHEDULING_POLICIES),
)
@settings(max_examples=80)
def test_every_policy_assigns_all_tasks_once(costs, nodes, policy):
    a = schedule(np.array(costs), nodes, policy)
    assigned = sorted(i for t in a.tasks_per_node for i in t)
    assert assigned == list(range(len(costs)))
    assert a.num_nodes == nodes
    # Loads consistent with costs.
    for node_tasks, load in zip(a.tasks_per_node, a.loads, strict=True):
        assert load == pytest.approx(sum(costs[i] for i in node_tasks))


@given(
    costs=st.lists(st.floats(0.1, 5.0), min_size=4, max_size=50),
    nodes=st.integers(1, 8),
)
@settings(max_examples=60)
def test_makespan_lower_bounds(costs, nodes):
    """Any schedule's makespan >= max(total/nodes, max single task)."""
    costs = np.array(costs)
    lower = max(costs.sum() / nodes, costs.max())
    for policy in SCHEDULING_POLICIES:
        a = schedule(costs, nodes, policy)
        assert a.makespan >= lower - 1e-9


def test_lpt_quality_on_skew():
    rng = np.random.default_rng(0)
    costs = rng.lognormal(0, 1.5, 64)
    lpt = schedule(costs, 8, "lpt")
    block = schedule(costs, 8, "block")
    assert lpt.makespan <= block.makespan + 1e-9
    # LPT guarantee: <= 4/3 OPT; OPT >= max(total/8, max cost).
    opt_lower = max(costs.sum() / 8, costs.max())
    assert lpt.makespan <= (4 / 3) * opt_lower + costs.max() * 1e-9


def test_work_stealing_is_greedy_list_schedule():
    costs = np.array([3.0, 1.0, 1.0, 1.0, 2.0])
    a = work_stealing_schedule(costs, 2)
    # Task 0 -> node 0; tasks 1,2 -> node 1; task 3 -> node 1 (finish 3 vs 3
    # ties to node 0 by argmin)... verify invariants rather than exact layout:
    assert sorted(i for t in a.tasks_per_node for i in t) == [0, 1, 2, 3, 4]
    assert a.makespan >= costs.sum() / 2


def test_single_node_degenerates():
    costs = np.array([1.0, 2.0, 3.0])
    for policy in SCHEDULING_POLICIES:
        a = schedule(costs, 1, policy)
        assert a.makespan == pytest.approx(6.0)
        assert a.speedup() == pytest.approx(1.0)
        assert a.efficiency() == pytest.approx(1.0)


def test_metrics():
    a = schedule(np.array([1.0, 1.0, 1.0, 1.0]), 2, "block")
    assert a.total_work == pytest.approx(4.0)
    assert a.makespan == pytest.approx(2.0)
    assert a.speedup() == pytest.approx(2.0)
    assert a.efficiency() == pytest.approx(1.0)
    assert a.imbalance == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ValueError):
        schedule([1.0], 2, "bogus")
    with pytest.raises(ValueError):
        schedule([1.0], 0, "lpt")
    with pytest.raises(ValueError):
        schedule([-1.0], 2, "lpt")


# ------------------------------------------------------------- edge cases
@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
def test_empty_task_list(policy):
    a = schedule(np.array([]), 3, policy)
    assert a.num_nodes == 3
    assert all(len(t) == 0 for t in a.tasks_per_node)
    assert a.makespan == 0.0
    assert a.total_work == 0.0
    # None of the derived metrics may divide by zero.
    assert a.imbalance == pytest.approx(1.0)
    assert np.isfinite(a.speedup())
    assert np.isfinite(a.efficiency())


@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
def test_all_zero_costs(policy):
    costs = np.zeros(7)
    a = schedule(costs, 3, policy)
    assert sorted(i for t in a.tasks_per_node for i in t) == list(range(7))
    assert a.makespan == 0.0
    assert a.imbalance == pytest.approx(1.0)
    assert np.isfinite(a.speedup())
    assert np.isfinite(a.efficiency())


@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
def test_more_nodes_than_tasks(policy):
    costs = np.array([2.0, 1.0])
    a = schedule(costs, 5, policy)
    assert a.num_nodes == 5
    assert sorted(i for t in a.tasks_per_node for i in t) == [0, 1]
    assert a.makespan == pytest.approx(2.0)
    # Idle nodes must not blow up any metric.
    assert np.isfinite(a.imbalance)
    assert np.isfinite(a.speedup())
    assert 0.0 < a.efficiency() <= 1.0


def test_work_stealing_is_deterministic():
    rng = np.random.default_rng(3)
    costs = rng.lognormal(0, 1.0, 40)
    a = work_stealing_schedule(costs, 4)
    b = work_stealing_schedule(costs, 4)
    assert a.tasks_per_node == b.tasks_per_node
    assert a.loads == b.loads


# -------------------------------------------------------- submission order
@given(
    costs=st.lists(st.floats(0.0, 5.0), min_size=0, max_size=40),
    workers=st.integers(1, 8),
    policy=st.sampled_from(SCHEDULING_POLICIES),
)
@settings(max_examples=80)
def test_submission_order_is_permutation(costs, workers, policy):
    order = submission_order(np.array(costs), workers, policy)
    assert sorted(order.tolist()) == list(range(len(costs)))
    # Deterministic for fixed inputs.
    assert np.array_equal(order, submission_order(np.array(costs), workers, policy))


def test_submission_order_semantics():
    costs = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
    assert submission_order(costs, 2, "work_stealing").tolist() == [0, 1, 2, 3, 4]
    lpt = submission_order(costs, 2, "lpt")
    assert list(costs[lpt]) == sorted(costs, reverse=True)
    # block: round-robin over contiguous blocks [0,1,2] / [3,4]
    assert submission_order(costs, 2, "block").tolist() == [0, 3, 1, 4, 2]
    # cyclic degenerates to index order for a shared queue
    assert submission_order(costs, 2, "cyclic").tolist() == [0, 1, 2, 3, 4]


def test_submission_order_lpt_stable_on_ties():
    costs = np.array([2.0, 2.0, 1.0, 2.0])
    assert submission_order(costs, 3, "lpt").tolist() == [0, 1, 3, 2]


def test_submission_order_validation():
    with pytest.raises(ValueError):
        submission_order([1.0], 2, "bogus")
    with pytest.raises(ValueError):
        submission_order([1.0], 0, "lpt")
