"""Network transport -- socket-path overhead vs in-process dispatch.

The transport claim: putting the serving layer behind a real TCP socket
(length-prefixed JSON+binary frames, request multiplexing, per-request
deadlines) costs framing and loopback copies but not batching -- requests
arriving over the wire coalesce in the same ``MicroBatcher`` flushes as
in-process ones, so the stacked-pass amortization survives the hop.
Measured as the same closed-loop load test as ``test_serve_load``, run
once through :class:`~repro.serve.client.InProcessTransport` and once
through :class:`~repro.serve.transport.TcpTransport` against a real
``asyncio.start_server`` loopback socket, with the acceptance bar that
the socket path stays within 1.5x of in-process throughput on the
96-request / 4-template workload and keeps ``coalesce_ratio > 1``.

Bit-equality over the wire is asserted too, on a seeded ``shots``
estimator: the decoded float64 payload must equal the standalone
``generate_features`` sweep byte for byte (the CI gate;
tests/serve/test_transport.py covers the full table).

Smoke mode (``TRANSPORT_BENCH_SMOKE=1``, the CI perf-guard job) shrinks
the load and loosens the overhead bar.  Results land in
``BENCH_transport.json`` only when ``BENCH_WRITE=1``.
"""

from __future__ import annotations

import asyncio

import numpy as np

from benchmarks.conftest import env_flag, write_bench_record
from repro.api import ExecutionConfig, ServeConfig
from repro.core.features import generate_features
from repro.core.strategies import strategy_from_name
from repro.serve import (
    FeatureServer,
    FeatureService,
    InProcessTransport,
    TcpTransport,
    run_load,
)

SMOKE = env_flag("TRANSPORT_BENCH_SMOKE")

REQUESTS = 24 if SMOKE else 96
CONCURRENCY = REQUESTS  # every request in flight at once
TEMPLATES = 2 if SMOKE else 4
NUM_QUBITS = 4 if SMOKE else 6
LAYERS = 2 if SMOKE else 4
TENANTS = ("tenant-a", "tenant-b", "tenant-c")
# The socket path must stay within this factor of in-process throughput.
# Smoke runs are too short to average out loopback jitter, so the bar
# loosens there; the full run holds the ISSUE's 1.5x.
OVERHEAD_BAR = 3.0 if SMOKE else 1.5


def build_service() -> FeatureService:
    """Same shape as the serve benchmark: deep single-Ansatz templates."""
    config = ServeConfig(
        batch_window_ms=10.0,
        max_batch_size=64,
        pool="serial",
        cache_results=False,  # measure execution + wire, not cache hits
        execution=ExecutionConfig(vectorize="auto", compile="auto"),
    )
    service = FeatureService(config)
    for i in range(TEMPLATES):
        service.register(
            f"template-{i}",
            strategy_from_name(
                "ansatz", num_qubits=NUM_QUBITS, layers=LAYERS, order=0
            ),
            rows=2 + i,  # distinct encodings: distinct coalescing groups
        )
    return service


def drive_in_process():
    async def main():
        service = build_service()
        async with service:
            report = await run_load(
                InProcessTransport(service),
                requests=REQUESTS,
                concurrency=CONCURRENCY,
                samples=1,
                tenants=TENANTS,
                seed=1,
            )
            return report, service.metrics()

    return asyncio.run(main())


def drive_tcp():
    async def main():
        service = build_service()
        async with service, FeatureServer(service) as server:
            host, port = server.address
            async with await TcpTransport.connect(host, port) as transport:
                report = await run_load(
                    transport,
                    requests=REQUESTS,
                    concurrency=CONCURRENCY,
                    samples=1,
                    tenants=TENANTS,
                    seed=1,
                )
            return report, service.metrics()

    return asyncio.run(main())


def test_transport_load(benchmark):
    # One drive lasts tens of milliseconds: scheduler jitter would
    # dominate a single sample, so each mode keeps its best of REPEATS
    # runs (min-time benchmarking) before the ratio is taken.
    repeats = 1 if SMOKE else 3

    def measure():
        in_best = max(
            (drive_in_process() for _ in range(repeats)),
            key=lambda pair: pair[0].throughput,
        )
        tcp_best = max(
            (drive_tcp() for _ in range(repeats)),
            key=lambda pair: pair[0].throughput,
        )
        return in_best, tcp_best

    (in_report, in_metrics), (tcp_report, tcp_metrics) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    overhead = in_report.throughput / tcp_report.throughput
    print(
        f"\n=== transport load: {REQUESTS} requests, {TEMPLATES} templates, "
        f"{len(TENANTS)} tenants ({'smoke' if SMOKE else 'full'}) ==="
    )
    for name, report, metrics in (
        ("in-process", in_report, in_metrics),
        ("tcp-socket", tcp_report, tcp_metrics),
    ):
        print(
            f"{name:<11} {report.throughput:>8.0f} rps  "
            f"p50 {report.p50_ms:>7.2f} ms  p99 {report.p99_ms:>7.2f} ms  "
            f"coalesce {metrics.coalesce_ratio:>5.1f}"
        )
    print(f"socket overhead: {overhead:.2f}x (bar: {OVERHEAD_BAR:.1f}x)")

    assert in_report.completed == REQUESTS
    assert tcp_report.completed == REQUESTS
    assert tcp_report.rejected == 0
    # Coalescing survives the socket hop.
    assert tcp_metrics.coalesce_ratio > 1.0
    assert overhead <= OVERHEAD_BAR

    write_bench_record(
        "BENCH_transport.json",
        {
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "templates": TEMPLATES,
            "tenants": len(TENANTS),
            "num_qubits": NUM_QUBITS,
            "smoke": SMOKE,
            "socket_overhead": overhead,
            "overhead_bar": OVERHEAD_BAR,
            "in_process": {
                **in_report.to_dict(),
                "coalesce_ratio": in_metrics.coalesce_ratio,
                "max_flush_size": in_metrics.max_flush_size,
            },
            "tcp_socket": {
                **tcp_report.to_dict(),
                "coalesce_ratio": tcp_metrics.coalesce_ratio,
                "max_flush_size": tcp_metrics.max_flush_size,
            },
        },
    )


def test_tcp_shots_bit_equal_standalone():
    """CI gate: seeded stochastic responses survive the wire bit-exact."""
    strategy = strategy_from_name("observable", num_qubits=3)
    execution = ExecutionConfig(
        estimator="shots", shots=128, vectorize="auto", compile="auto"
    )
    service = FeatureService(
        ServeConfig(
            batch_window_ms=10.0,
            max_batch_size=64,
            pool="serial",
            cache_results=False,
            execution=execution,
        )
    )
    service.register("t", strategy, rows=2)
    rng = np.random.default_rng(9)
    inputs = [rng.uniform(0, np.pi, size=(2, 2, 3)) for _ in range(8)]

    async def main():
        async with service, FeatureServer(service) as server:
            host, port = server.address
            async with await TcpTransport.connect(host, port) as transport:
                responses = await asyncio.gather(
                    *(
                        transport.submit(
                            "t", x, tenant=TENANTS[i % 3], seed=500 + i
                        )
                        for i, x in enumerate(inputs)
                    )
                )
            return responses, service.metrics()

    responses, metrics = asyncio.run(main())
    assert metrics.coalesce_ratio > 1.0  # they really shared flushes
    for i, (response, x) in enumerate(zip(responses, inputs)):
        reference = generate_features(
            strategy, x, config=execution.merged(seed=500 + i)
        )
        assert np.array_equal(response, reference)
