"""Fig. 7 data-encoding tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.encoding import encode_batch, encoded_dimension, encoding_circuit
from repro.quantum.statevector import run_circuit


def test_circuit_structure_matches_fig7():
    """H layer, then rows alternate RZ / RX, column c on qubit c."""
    feats = np.arange(16, dtype=float).reshape(4, 4)
    c = encoding_circuit(feats)
    assert c.num_qubits == 4
    ops = list(c)
    assert [op.gate for op in ops[:4]] == ["h"] * 4
    body = ops[4:]
    assert len(body) == 16
    for r in range(4):
        for q in range(4):
            op = body[r * 4 + q]
            assert op.gate == ("rz" if r % 2 == 0 else "rx")
            assert op.qubits == (q,)
            assert op.param == pytest.approx(feats[r, q])


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_batch_kernel_equals_circuit_path(seed):
    rng = np.random.default_rng(seed)
    feats = rng.uniform(0, 2 * np.pi, size=(3, 4, 4))
    batch = encode_batch(feats)
    for i in range(3):
        ref = run_circuit(encoding_circuit(feats[i]))
        assert np.allclose(batch[i], ref, atol=1e-12)


def test_encoded_states_normalised():
    rng = np.random.default_rng(0)
    states = encode_batch(rng.uniform(0, 2 * np.pi, size=(10, 4, 4)))
    assert np.allclose(np.sum(np.abs(states) ** 2, axis=1), 1.0)


def test_different_inputs_different_states():
    a = encode_batch(np.full((1, 4, 4), 0.5))
    b = encode_batch(np.full((1, 4, 4), 1.5))
    overlap = abs(np.vdot(a[0], b[0])) ** 2
    assert overlap < 0.999


def test_product_structure():
    """The encoding entangles nothing: single-qubit marginals are pure."""
    from repro.quantum.density import partial_trace, pure_density, purity

    feats = np.random.default_rng(1).uniform(0, 2 * np.pi, size=(1, 4, 4))
    psi = encode_batch(feats)[0]
    rho = pure_density(psi)
    for q in range(4):
        marginal = partial_trace(rho, keep=[q])
        assert purity(marginal) == pytest.approx(1.0, abs=1e-10)


def test_column_locality():
    """Changing column c only changes qubit c's marginal."""
    from repro.quantum.density import partial_trace, pure_density

    feats = np.full((1, 4, 4), 1.0)
    feats2 = feats.copy()
    feats2[0, :, 2] = 2.0  # perturb column 2 only
    rho_a = pure_density(encode_batch(feats)[0])
    rho_b = pure_density(encode_batch(feats2)[0])
    for q in range(4):
        ma = partial_trace(rho_a, keep=[q])
        mb = partial_trace(rho_b, keep=[q])
        if q == 2:
            assert not np.allclose(ma, mb, atol=1e-6)
        else:
            assert np.allclose(ma, mb, atol=1e-10)


def test_non_square_grid_supported():
    feats = np.random.default_rng(2).uniform(size=(2, 6, 3))  # 6 rows, 3 qubits
    states = encode_batch(feats)
    assert states.shape == (2, 8)


def test_validation():
    with pytest.raises(ValueError):
        encoding_circuit(np.zeros(4))
    with pytest.raises(ValueError):
        encode_batch(np.zeros((4, 4)))
    assert encoded_dimension(4) == 16
