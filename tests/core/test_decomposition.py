"""Appendix A decomposition tests."""

import numpy as np
import pytest

from repro.core.ansatz import fig8_ansatz
from repro.core.decomposition import (
    circuit_unitary,
    decomposition_weight_profile,
    heisenberg_observable,
    truncate_by_locality,
    truncate_by_weight,
)
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import run_circuit

from tests.conftest import random_state


def test_circuit_unitary_matches_statevector():
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1)).append("ry", 1, 0.4)
    u = circuit_unitary(c)
    assert np.allclose(u.conj().T @ u, np.eye(4), atol=1e-12)
    for basis in range(4):
        e = np.zeros(4, dtype=complex)
        e[basis] = 1
        assert np.allclose(u[:, basis], run_circuit(c, state=e), atol=1e-12)


def test_circuit_unitary_requires_bound():
    c = Circuit(1)
    c.append("rx", 0, "t")
    with pytest.raises(ValueError):
        circuit_unitary(c)
    with pytest.raises(ValueError):
        heisenberg_observable(c, PauliString("Z"))


def test_heisenberg_observable_reproduces_expectations():
    """tr(O U rho U^dag) == tr(U^dag O U rho) for every state (Eq. 3)."""
    rng = np.random.default_rng(0)
    circuit = fig8_ansatz().bind(rng.uniform(-1, 1, 8))
    o = PauliString("ZIII")
    o_heis = heisenberg_observable(circuit, o)
    for _ in range(5):
        psi = random_state(4, rng)
        direct = expectation(run_circuit(circuit, state=psi), o)
        via_decomposition = expectation(psi, o_heis)
        assert via_decomposition == pytest.approx(direct, abs=1e-9)


def test_identity_circuit_decomposition_is_trivial():
    circuit = fig8_ansatz().bind(np.zeros(8))
    o_heis = heisenberg_observable(circuit, PauliString("ZIII"))
    assert o_heis.num_terms == 1
    assert o_heis.coefficient("ZIII") == pytest.approx(1.0)


def test_term_count_bounded_by_4n():
    rng = np.random.default_rng(1)
    circuit = fig8_ansatz().bind(rng.uniform(-np.pi, np.pi, 8))
    o_heis = heisenberg_observable(circuit, PauliString("ZZZZ"))
    assert 1 <= o_heis.num_terms <= 4**4


def test_coefficients_are_real():
    rng = np.random.default_rng(2)
    circuit = fig8_ansatz().bind(rng.uniform(-1, 1, 8))
    o_heis = heisenberg_observable(circuit, PauliString("XIII"))
    for c, _ in o_heis.items():
        assert abs(np.imag(c)) < 1e-10


def test_truncate_by_locality():
    from repro.quantum.observables import PauliSum

    o = PauliSum([(1.0, "ZII"), (0.5, "ZZI"), (0.2, "ZZZ")])
    t1 = truncate_by_locality(o, 1)
    assert t1.num_terms == 1
    t2 = truncate_by_locality(o, 2)
    assert t2.num_terms == 2


def test_truncate_by_weight():
    from repro.quantum.observables import PauliSum

    o = PauliSum([(1.0, "ZII"), (0.5, "ZZI"), (-2.0, "XII")])
    top = truncate_by_weight(o, 1)
    assert top.num_terms == 1
    assert top.coefficient("XII") == pytest.approx(-2.0)
    with pytest.raises(ValueError):
        truncate_by_weight(o, -1)


def test_weight_profile_conservation():
    """Total Fourier weight is invariant under unitary conjugation:
    sum of squared coefficients equals that of the input observable."""
    rng = np.random.default_rng(3)
    circuit = fig8_ansatz().bind(rng.uniform(-1, 1, 8))
    o_heis = heisenberg_observable(circuit, PauliString("ZIII"))
    profile = decomposition_weight_profile(o_heis)
    assert sum(profile.values()) == pytest.approx(1.0, abs=1e-9)


def test_truncation_error_decreases_with_locality():
    """Low-degree approximation quality improves with the cutoff L."""
    rng = np.random.default_rng(4)
    circuit = fig8_ansatz().bind(rng.uniform(-0.6, 0.6, 8))
    full = heisenberg_observable(circuit, PauliString("ZZII"))
    psi = random_state(4, rng)
    exact = expectation(psi, full)
    errors = []
    for locality in (1, 2, 3, 4):
        approx = truncate_by_locality(full, locality)
        errors.append(abs(expectation(psi, approx) - exact))
    assert errors[-1] == pytest.approx(0.0, abs=1e-10)
    assert errors[0] >= errors[-1]
