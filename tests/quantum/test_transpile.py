"""Transpiler tests: passes must preserve the unitary and shrink circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Circuit
from repro.quantum.statevector import run_circuit
from repro.quantum.transpile import (
    cancel_adjacent_pairs,
    merge_rotations,
    optimize,
    remove_identity_rotations,
)

from tests.conftest import random_state


def random_circuit(rng: np.random.Generator, n: int = 3, gates: int = 20) -> Circuit:
    c = Circuit(n)
    for _ in range(gates):
        kind = rng.integers(0, 3)
        if kind == 0:
            c.append(rng.choice(["h", "x", "s"]), int(rng.integers(0, n)))
        elif kind == 1:
            c.append(
                rng.choice(["rx", "ry", "rz"]),
                int(rng.integers(0, n)),
                float(rng.uniform(-np.pi, np.pi)),
            )
        else:
            a, b = rng.choice(n, size=2, replace=False)
            c.append("cnot", (int(a), int(b)))
    return c


def states_equal_up_to_phase(a: np.ndarray, b: np.ndarray) -> bool:
    return abs(abs(np.vdot(a, b)) - 1.0) < 1e-9


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_optimize_preserves_state(seed):
    rng = np.random.default_rng(seed)
    c = random_circuit(rng)
    psi_in = random_state(3, rng)
    opt, report = optimize(c)
    assert report.gates_after <= report.gates_before
    out_orig = run_circuit(c, state=psi_in)
    out_opt = run_circuit(opt, state=psi_in)
    assert states_equal_up_to_phase(out_orig, out_opt)


def test_remove_identity_rotations():
    c = Circuit(2)
    c.append("rx", 0, 0.0).append("ry", 1, 2 * np.pi).append("rz", 0, 0.5)
    out = remove_identity_rotations(c)
    assert out.num_gates == 1
    assert out.operations[0].gate == "rz"


def test_cancel_cnot_pairs():
    c = Circuit(2)
    c.append("cnot", (0, 1)).append("cnot", (0, 1))
    assert cancel_adjacent_pairs(c).num_gates == 0


def test_cancel_blocked_by_intervening_gate():
    c = Circuit(2)
    c.append("cnot", (0, 1)).append("h", 0).append("cnot", (0, 1))
    assert cancel_adjacent_pairs(c).num_gates == 3


def test_cancel_not_blocked_by_disjoint_gate():
    c = Circuit(3)
    c.append("cnot", (0, 1)).append("h", 2).append("cnot", (0, 1))
    out = cancel_adjacent_pairs(c)
    assert out.num_gates == 1
    assert out.operations[0].gate == "h"


def test_cancel_different_qubit_order_not_cancelled():
    c = Circuit(2)
    c.append("cnot", (0, 1)).append("cnot", (1, 0))
    assert cancel_adjacent_pairs(c).num_gates == 2


def test_merge_rotations_additive():
    c = Circuit(1)
    c.append("rx", 0, 0.3).append("rx", 0, 0.4)
    out = merge_rotations(c)
    assert out.num_gates == 1
    assert out.operations[0].param == pytest.approx(0.7)


def test_merge_rotations_to_identity():
    c = Circuit(1)
    c.append("ry", 0, 0.5).append("ry", 0, -0.5)
    assert merge_rotations(c).num_gates == 0


def test_merge_blocked_by_other_axis():
    c = Circuit(1)
    c.append("rx", 0, 0.3).append("rz", 0, 0.1).append("rx", 0, 0.4)
    out = merge_rotations(c)
    assert out.num_gates == 3  # rz blocks the fusion


def test_zero_initialised_ansatz_collapses():
    """The paper's Sec. VIII claim: the theta=0 Fig. 8 circuit transpiles to
    almost nothing (rotations vanish; CNOT rings remain as adjacent pairs
    only if they align -- with a ring they do not fully cancel, but all 8
    rotations must go)."""
    from repro.core.ansatz import fig8_ansatz

    bound = fig8_ansatz().bind(np.zeros(8))
    opt, report = optimize(bound)
    assert report.gates_before == 16
    names = {op.gate for op in opt}
    assert "ry" not in names
    assert report.gate_reduction >= 0.5


def test_requires_bound_circuit():
    c = Circuit(1)
    c.append("rx", 0, "t")
    with pytest.raises(ValueError):
        remove_identity_rotations(c)
    with pytest.raises(ValueError):
        merge_rotations(c)
    with pytest.raises(ValueError):
        cancel_adjacent_pairs(c)


def test_report_metrics():
    c = Circuit(2)
    c.append("rx", 0, 0.0).append("cnot", (0, 1)).append("cnot", (0, 1))
    _, report = optimize(c)
    assert report.gates_before == 3
    assert report.gates_after == 0
    assert report.gate_reduction == pytest.approx(1.0)
