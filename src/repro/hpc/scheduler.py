"""Task-to-node scheduling policies with analytical makespans.

The hybrid HPC-QC system must place heterogeneous circuit batches (costs vary
with shift configuration after transpilation, with shot counts, with data
chunk sizes) onto QPU-equipped nodes.  Four policies are provided; each
returns an :class:`Assignment` whose makespan is computed analytically so
policies can be compared deterministically in benchmark E7.  The same
policies drive *live* dispatch: :func:`submission_order` turns a cost
vector into the queue order :class:`repro.hpc.runtime.ExecutionRuntime`
feeds its persistent worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.hpc.partition import block_partition, balanced_cost_partition, cyclic_partition

__all__ = [
    "Assignment",
    "schedule",
    "SCHEDULING_POLICIES",
    "work_stealing_schedule",
    "submission_order",
]

SCHEDULING_POLICIES = ("block", "cyclic", "lpt", "work_stealing")


@dataclass(frozen=True)
class Assignment:
    """A complete schedule: per-node task index arrays and derived metrics."""

    policy: str
    tasks_per_node: tuple[tuple[int, ...], ...]
    loads: tuple[float, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.tasks_per_node)

    @property
    def makespan(self) -> float:
        """Completion time assuming nodes run their tasks back to back."""
        return max(self.loads, default=0.0)

    @property
    def total_work(self) -> float:
        return float(sum(self.loads))

    @property
    def imbalance(self) -> float:
        """makespan / mean-load; 1.0 is a perfectly balanced schedule."""
        mean = self.total_work / max(self.num_nodes, 1)
        return self.makespan / mean if mean > 0 else 1.0

    def speedup(self) -> float:
        """Speedup over a single node executing all tasks serially."""
        return self.total_work / self.makespan if self.makespan > 0 else 1.0

    def efficiency(self) -> float:
        """Parallel efficiency: speedup / nodes."""
        return self.speedup() / max(self.num_nodes, 1)


def schedule(costs: Sequence[float], num_nodes: int, policy: str = "lpt") -> Assignment:
    """Assign tasks (given per-task ``costs``) to ``num_nodes`` nodes."""
    costs = np.asarray(costs, dtype=float)
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {SCHEDULING_POLICIES}")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")

    if policy == "block":
        parts = block_partition(costs.size, num_nodes)
    elif policy == "cyclic":
        parts = cyclic_partition(costs.size, num_nodes)
    elif policy == "lpt":
        parts = balanced_cost_partition(costs, num_nodes)
    else:
        return work_stealing_schedule(costs, num_nodes)

    loads = tuple(float(costs[p].sum()) for p in parts)
    return Assignment(
        policy=policy,
        tasks_per_node=tuple(tuple(int(i) for i in p) for p in parts),
        loads=loads,
    )


def submission_order(
    costs: Sequence[float], num_workers: int, policy: str = "work_stealing"
) -> np.ndarray:
    """Task order for *live* dispatch into a shared greedy worker queue.

    A pool whose idle workers pull from a shared queue is exactly a greedy
    list scheduler, so the queue order *is* the schedule:

    * ``work_stealing`` -- index order: pure dynamic self-scheduling;
    * ``lpt``           -- decreasing cost (stable): the classic longest-
      processing-time rule, realising the same greedy placement as
      :func:`repro.hpc.partition.balanced_cost_partition` projects;
    * ``block``         -- round-robin across contiguous blocks, so the
      queue interleaves one task from each node's block region;
    * ``cyclic``        -- round-robin across strided parts (for a shared
      queue this degenerates to index order, as it should).

    Deterministic for fixed inputs; returns a permutation of
    ``arange(len(costs))``.  Ordering never affects *results* (per-task RNG
    streams are derived by index), only load balance.
    """
    costs = np.asarray(costs, dtype=float)
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {SCHEDULING_POLICIES}")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    n = costs.size
    if n == 0:
        return np.empty(0, dtype=int)
    if policy == "work_stealing":
        return np.arange(n)
    if policy == "lpt":
        return np.argsort(-costs, kind="stable")
    parts = (
        block_partition(n, num_workers)
        if policy == "block"
        else cyclic_partition(n, num_workers)
    )
    order = np.empty(n, dtype=int)
    pos = 0
    depth = max((len(p) for p in parts), default=0)
    for i in range(depth):
        for part in parts:
            if i < len(part):
                order[pos] = part[i]
                pos += 1
    return order


def work_stealing_schedule(costs: Sequence[float], num_nodes: int) -> Assignment:
    """Simulate a central-queue/work-stealing execution.

    Tasks are pulled from a shared queue in index order by whichever node
    becomes idle first -- an event-driven simulation that models dynamic
    self-scheduling (the behaviour of the runtime's dynamic dispatcher).
    Near-optimal makespan when tasks are plentiful; exactly what a
    greedy list scheduler achieves.
    """
    costs = np.asarray(costs, dtype=float)
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    finish = np.zeros(num_nodes)
    owners: list[list[int]] = [[] for _ in range(num_nodes)]
    for idx, cost in enumerate(costs):
        node = int(np.argmin(finish))  # first idle node pulls the next task
        owners[node].append(idx)
        finish[node] += cost
    return Assignment(
        policy="work_stealing",
        tasks_per_node=tuple(tuple(o) for o in owners),
        loads=tuple(float(f) for f in finish),
    )
