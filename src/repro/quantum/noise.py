"""Kraus noise channels and a per-gate noise model.

NISQ motivation is central to the paper (Sec. I, VIII); the release therefore
ships the standard single-qubit channels so users can stress the ensemble
under hardware-like noise.  Channels are exact Kraus decompositions --
completeness ``sum_k K^dag K = I`` is asserted at construction and property
tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.quantum.circuit import Operation
from repro.quantum.gates import I2, X, Y, Z
from repro.utils.validation import check_probability

__all__ = [
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "validate_kraus",
    "NoiseModel",
]


def validate_kraus(kraus_ops: Sequence[np.ndarray], atol: float = 1e-10) -> None:
    """Assert trace preservation ``sum_k K^dag K = I``."""
    total = sum(k.conj().T @ k for k in kraus_ops)
    dim = kraus_ops[0].shape[0]
    if not np.allclose(total, np.eye(dim), atol=atol):
        raise ValueError("Kraus operators do not satisfy completeness")


def depolarizing_channel(p: float) -> list[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``p``.

    ``rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z)``.
    """
    check_probability(p, "p")
    ops = [
        np.sqrt(1 - p) * I2,
        np.sqrt(p / 3) * X,
        np.sqrt(p / 3) * Y,
        np.sqrt(p / 3) * Z,
    ]
    validate_kraus(ops)
    return ops


def bit_flip_channel(p: float) -> list[np.ndarray]:
    """``rho -> (1-p) rho + p X rho X``."""
    check_probability(p, "p")
    ops = [np.sqrt(1 - p) * I2, np.sqrt(p) * X]
    validate_kraus(ops)
    return ops


def phase_flip_channel(p: float) -> list[np.ndarray]:
    """``rho -> (1-p) rho + p Z rho Z``."""
    check_probability(p, "p")
    ops = [np.sqrt(1 - p) * I2, np.sqrt(p) * Z]
    validate_kraus(ops)
    return ops


def amplitude_damping_channel(gamma: float) -> list[np.ndarray]:
    """T1 decay with damping parameter ``gamma``."""
    check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    ops = [k0, k1]
    validate_kraus(ops)
    return ops


@dataclass
class NoiseModel:
    """Gate-count-based noise: a channel after every 1q and/or 2q gate.

    ``one_qubit`` / ``two_qubit`` are Kraus lists applied per touched qubit
    after each gate of that arity (the standard depolarizing-per-gate model
    used in NISQ resource studies).
    """

    one_qubit: list[np.ndarray] | None = None
    two_qubit: list[np.ndarray] | None = None

    def channels_after(self, op: Operation) -> Iterator[tuple[list[np.ndarray], tuple[int, ...]]]:
        """Yield (kraus_ops, qubits) channels to insert after ``op``."""
        chan = self.one_qubit if len(op.qubits) == 1 else self.two_qubit
        if chan is None:
            return
        for q in op.qubits:
            yield chan, (q,)

    @classmethod
    def depolarizing(cls, p1: float, p2: float | None = None) -> "NoiseModel":
        """Depolarizing after every gate: ``p1`` for 1q gates, ``p2`` for 2q
        (default ``10 * p1``, the usual hardware ratio)."""
        p2 = 10 * p1 if p2 is None else p2
        return cls(
            one_qubit=depolarizing_channel(p1),
            two_qubit=depolarizing_channel(min(p2, 1.0)),
        )
