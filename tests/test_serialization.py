"""Serialization round-trip tests."""

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import run_circuit
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    load_feature_matrix,
    save_feature_matrix,
)


def test_circuit_roundtrip_bound():
    c = Circuit(2, name="demo")
    c.append("h", 0).append("cnot", (0, 1)).append("ry", 1, 0.7)
    restored = circuit_from_dict(circuit_to_dict(c))
    assert restored.name == "demo"
    assert restored.num_qubits == 2
    assert np.allclose(run_circuit(restored), run_circuit(c))


def test_circuit_roundtrip_symbolic():
    c = fig8_ansatz()
    restored = circuit_from_dict(circuit_to_dict(c))
    assert restored.num_parameters == c.num_parameters
    assert [p.name for p in restored.parameters] == [p.name for p in c.parameters]
    theta = np.linspace(-1, 1, 8)
    assert np.allclose(
        run_circuit(restored.bind(theta)), run_circuit(c.bind(theta))
    )


def test_circuit_dict_is_json_safe():
    import json

    c = fig8_ansatz()
    text = json.dumps(circuit_to_dict(c))
    restored = circuit_from_dict(json.loads(text))
    assert restored.num_gates == c.num_gates


def test_feature_matrix_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    q = rng.normal(size=(20, 13))
    y = rng.integers(0, 2, 20)
    meta = {"strategy": "observable", "locality": 2, "seed": 7}
    path = tmp_path / "features.npz"
    save_feature_matrix(path, q, y, meta)
    q2, y2, meta2 = load_feature_matrix(path)
    assert np.array_equal(q, q2)
    assert np.array_equal(y, y2)
    assert meta2 == meta


def test_feature_matrix_without_labels(tmp_path):
    q = np.ones((3, 2))
    path = tmp_path / "q_only.npz"
    save_feature_matrix(path, q)
    q2, y2, meta = load_feature_matrix(path)
    assert y2 is None
    assert meta == {}
    assert np.array_equal(q2, q)
