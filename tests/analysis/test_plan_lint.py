"""Config/plan lint: every RPA1xx code pinned by a trigger AND a pass case."""

import numpy as np
import pytest

from repro.analysis.plan import MIN_EFFICIENT_CHUNK, lint_config
from repro.api.config import ExecutionConfig


def test_default_config_is_clean():
    assert lint_config(ExecutionConfig()).clean
    assert lint_config(ExecutionConfig(), num_qubits=4).clean


# --------------------------------------------- RPA101 (shards > register)
def test_rpa101_shards_exceed_register():
    cfg = ExecutionConfig(shards=8, compile="auto")
    report = lint_config(cfg, num_qubits=2)
    assert "RPA101" in report.codes()
    assert not report.ok
    (finding,) = [d for d in report if d.code == "RPA101"]
    assert finding.location == "config.shards"


def test_rpa101_not_without_width_or_when_it_fits():
    cfg = ExecutionConfig(shards=8, compile="auto")
    assert "RPA101" not in lint_config(cfg).codes()  # width unknown: skip
    assert "RPA101" not in lint_config(cfg, num_qubits=5).codes()


# ------------------------------------------- RPA102 (host round-trips)
def test_rpa102_stochastic_estimator_on_device_backend(monkeypatch):
    import repro.xp as xp

    monkeypatch.setattr(xp, "backend_available", lambda name: True)
    monkeypatch.setattr(xp, "_torch_has_cuda", lambda: True)
    cfg = ExecutionConfig(estimator="shots", shots=64, array_backend="auto")
    report = lint_config(cfg)
    assert "RPA102" in report.codes()
    (finding,) = [d for d in report if d.code == "RPA102"]
    assert "resolves to" in finding.message  # 'auto' resolution spelled out


def test_rpa102_not_on_numpy_or_exact():
    assert "RPA102" not in lint_config(
        ExecutionConfig(estimator="shots", shots=64)
    ).codes()
    assert "RPA102" not in lint_config(ExecutionConfig(estimator="exact")).codes()


# ------------------------------------------------ RPA103 (unpicklable)
def test_rpa103_generator_seed():
    cfg = ExecutionConfig(seed=np.random.default_rng(7))
    report = lint_config(cfg)
    assert "RPA103" in report.codes()
    assert report.ok  # warning: serial execution still works


def test_rpa103_not_on_int_seed():
    assert "RPA103" not in lint_config(ExecutionConfig(seed=7)).codes()


# ------------------------------------------------ RPA104 (tiny chunks)
def test_rpa104_chunk_below_crossover():
    cfg = ExecutionConfig(chunk_size=MIN_EFFICIENT_CHUNK - 1)
    assert "RPA104" in lint_config(cfg).codes()


def test_rpa104_not_at_crossover_or_default():
    assert "RPA104" not in lint_config(
        ExecutionConfig(chunk_size=MIN_EFFICIENT_CHUNK)
    ).codes()
    assert "RPA104" not in lint_config(ExecutionConfig()).codes()


# ------------------------------------- RPA105 (vectorize unsupported)
def test_rpa105_vectorize_on_per_sample_backend():
    cfg = ExecutionConfig(vectorize="auto", shards=2, compile="auto")
    if cfg.backend.supports_vectorize:
        pytest.skip("distributed backend grew a batched engine")
    assert "RPA105" in lint_config(cfg).codes()


def test_rpa105_not_on_vectorizing_backend():
    cfg = ExecutionConfig(vectorize="auto")
    assert cfg.backend.supports_vectorize
    assert "RPA105" not in lint_config(cfg).codes()


# ---------------------------------------------- RPA106 (zero budget)
@pytest.mark.parametrize(
    "kwargs", [dict(estimator="shots", shots=0), dict(estimator="shadows", snapshots=0)]
)
def test_rpa106_zero_measurement_budget(kwargs):
    report = lint_config(ExecutionConfig(**kwargs))
    assert "RPA106" in report.codes()
    assert not report.ok


def test_rpa106_not_when_budget_positive_or_unused():
    assert "RPA106" not in lint_config(
        ExecutionConfig(estimator="shots", shots=1)
    ).codes()
    # A zero budget for the *other* estimator is inert configuration.
    assert "RPA106" not in lint_config(
        ExecutionConfig(estimator="exact", shots=0)
    ).codes()


# ------------------------------------- RPA107 (shards without compile)
def test_rpa107_sharded_without_compiled_engine():
    cfg = ExecutionConfig(shards=2, compile="off")
    report = lint_config(cfg)
    assert "RPA107" in report.codes()
    assert report.ok  # info only


def test_rpa107_not_with_compile_or_unsharded():
    assert "RPA107" not in lint_config(
        ExecutionConfig(shards=2, compile="auto")
    ).codes()
    assert "RPA107" not in lint_config(ExecutionConfig(compile="off")).codes()
