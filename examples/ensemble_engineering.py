"""Ensemble engineering: inspect, select and mitigate a PV ensemble.

The paper's open problem (Table I) is choosing good fixed circuits from an
exponential candidate pool.  This example walks the engineering loop:

1. draw the Fig. 7 / Fig. 8 circuits (ASCII);
2. decompose the shifted Ansatz observable (Appendix A) and look at its
   locality weight profile;
3. greedily select a compact sub-ensemble from the 2-local feature pool and
   compare against the full ensemble;
4. error-mitigate one feature with zero-noise extrapolation.

Run:  python examples/ensemble_engineering.py
"""

import numpy as np

from repro.core import (
    ObservableConstruction,
    decomposition_weight_profile,
    fig8_ansatz,
    generate_features,
    greedy_forward_selection,
    heisenberg_observable,
)
from repro.data import binary_coat_vs_shirt, encoding_circuit
from repro.ml import LogisticRegression, accuracy
from repro.quantum import NoiseModel, PauliString, draw_circuit, zne_expectation
from repro.quantum.observables import expectation
from repro.quantum.statevector import run_circuit


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=50, test_per_class=15)

    print("Fig. 7 encoder (first training image):")
    print(draw_circuit(encoding_circuit(split.x_train[0]), max_width=100))
    print("\nFig. 8 Ansatz:")
    print(draw_circuit(fig8_ansatz(), max_width=100))

    # Appendix A: what does the Ansatz turn Z0 into at a generic point?
    # (At the +-pi/2 shift values the conjugation collapses to single Pauli
    # terms -- the very degeneracy that keeps the ensemble small; a generic
    # angle shows the full F_j(theta) spread of Eq. 3.)
    theta = np.zeros(8)
    theta[0], theta[3], theta[4] = 0.5, 0.8, 1.1  # generic angles, both layers
    heis = heisenberg_observable(fig8_ansatz().bind(theta), PauliString("ZIII"))
    profile = decomposition_weight_profile(heis)
    print(f"\nU(theta)^dag Z0 U(theta): {heis.num_terms} Pauli terms; "
          f"weight by locality: { {k: round(v, 3) for k, v in profile.items()} }")

    # Greedy sub-ensemble selection from the 2-local pool.
    strategy = ObservableConstruction(qubits=4, locality=2)
    q_train = generate_features(strategy, split.x_train)
    q_test = generate_features(strategy, split.x_test)
    y_pm = 2.0 * split.y_train - 1.0
    sel = greedy_forward_selection(q_train, y_pm.astype(float), max_features=20)
    head_full = LogisticRegression().fit(q_train, split.y_train)
    head_sel = LogisticRegression().fit(q_train[:, sel.selected], split.y_train)
    print(f"\nfull ensemble   m={strategy.num_features}: "
          f"train {accuracy(split.y_train, head_full.predict(q_train)):.3f} "
          f"test {accuracy(split.y_test, head_full.predict(q_test)):.3f}")
    print(f"greedy selected m={sel.num_selected}: "
          f"train {accuracy(split.y_train, head_sel.predict(q_train[:, sel.selected])):.3f} "
          f"test {accuracy(split.y_test, head_sel.predict(q_test[:, sel.selected])):.3f}")

    # Zero-noise extrapolation of one ensemble feature.
    circuit = encoding_circuit(split.x_train[0])
    obs = PauliString("ZZII")
    ideal = expectation(run_circuit(circuit), obs)
    mitigated, raw = zne_expectation(circuit, obs, NoiseModel.depolarizing(0.01))
    print(f"\nZNE on <ZZII>: ideal {ideal:+.4f}, noisy {raw[1]:+.4f}, "
          f"mitigated {mitigated:+.4f}")


if __name__ == "__main__":
    main()
