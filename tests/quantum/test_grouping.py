"""QWC measurement-grouping tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.grouping import (
    group_qubit_wise,
    measure_group,
    qubit_wise_commute,
)
from repro.quantum.observables import PauliString, expectation, local_pauli_strings

from tests.conftest import random_state

strings4 = st.text(alphabet="IXYZ", min_size=4, max_size=4)


def test_qwc_examples():
    assert qubit_wise_commute(PauliString("XI"), PauliString("IZ"))
    assert qubit_wise_commute(PauliString("XZ"), PauliString("XI"))
    assert not qubit_wise_commute(PauliString("XZ"), PauliString("ZZ"))
    # XX and YY commute globally but are NOT qubit-wise commuting.
    assert not qubit_wise_commute(PauliString("XX"), PauliString("YY"))


@given(a=strings4, b=strings4)
@settings(max_examples=60)
def test_qwc_implies_commutation(a, b):
    pa, pb = PauliString(a), PauliString(b)
    if qubit_wise_commute(pa, pb):
        assert pa.commutes_with(pb)


def test_grouping_covers_all_once():
    observables = local_pauli_strings(4, 2)
    groups = group_qubit_wise(observables)
    flattened = [m.string for g in groups for m in g.members]
    assert sorted(flattened) == sorted(o.string for o in observables)


def test_groups_internally_qwc():
    groups = group_qubit_wise(local_pauli_strings(4, 2))
    for g in groups:
        for i, a in enumerate(g.members):
            for b in g.members[i + 1 :]:
                assert qubit_wise_commute(a, b)


def test_grouping_reduces_settings():
    """The point: far fewer settings than observables."""
    observables = local_pauli_strings(4, 2)  # 67 observables
    groups = group_qubit_wise(observables)
    assert len(groups) < len(observables) / 2
    # Lower bound: at most 3^n QWC classes exist; upper sanity.
    assert len(groups) <= 3**4


def test_basis_covers_members():
    groups = group_qubit_wise(
        [PauliString("XI"), PauliString("XZ"), PauliString("IY")]
    )
    for g in groups:
        for m in g.members:
            for i, c in enumerate(m.string):
                if c != "I":
                    assert g.basis.string[i] == c


def test_empty_grouping():
    assert group_qubit_wise([]) == []


def test_measure_group_exact_path():
    rng = np.random.default_rng(0)
    psi = random_state(3, rng)
    group = group_qubit_wise([PauliString("ZII"), PauliString("ZZI"), PauliString("IIZ")])[0]
    estimates = measure_group(psi, group, shots=0)
    for s, val in estimates.items():
        assert val == pytest.approx(expectation(psi, PauliString(s)))


def test_measure_group_converges():
    rng = np.random.default_rng(1)
    psi = random_state(3, rng)
    observables = [PauliString("XII"), PauliString("XXI"), PauliString("IXX")]
    group = group_qubit_wise(observables)[0]
    estimates = measure_group(psi, group, shots=60_000, seed=2)
    for s, est in estimates.items():
        assert est == pytest.approx(expectation(psi, PauliString(s)), abs=0.03)


def test_measure_group_shared_samples_deterministic():
    rng = np.random.default_rng(3)
    psi = random_state(2, rng)
    group = group_qubit_wise([PauliString("ZI"), PauliString("IZ"), PauliString("ZZ")])[0]
    a = measure_group(psi, group, shots=100, seed=5)
    b = measure_group(psi, group, shots=100, seed=5)
    assert a == b
    # Shared-sample consistency: <ZZ> estimate equals the sample correlation
    # implied by the same shots (parity product), so Z*Z estimates cannot
    # disagree with ZZ beyond rounding on a single deterministic draw.
    assert set(a) == {"ZI", "IZ", "ZZ"}


def test_identity_member():
    rng = np.random.default_rng(4)
    psi = random_state(2, rng)
    group = group_qubit_wise([PauliString("II"), PauliString("ZI")])[0]
    estimates = measure_group(psi, group, shots=50, seed=0)
    assert estimates["II"] == 1.0


def test_validation():
    with pytest.raises(ValueError):
        qubit_wise_commute(PauliString("X"), PauliString("XX"))
    rng = np.random.default_rng(5)
    psi = random_state(2, rng)
    group = group_qubit_wise([PauliString("ZI")])[0]
    with pytest.raises(ValueError):
        measure_group(psi[:2], group, shots=1)  # wrong dim (psi is dim 4)
    with pytest.raises(ValueError):
        measure_group(psi, group, shots=-1)
