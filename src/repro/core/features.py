"""Post-variational feature generation -- paper Algorithm 1.

Builds the Q matrix ``Q_ij = tr(O_j rho_theta(x_i))`` (Eq. 26): every data
point is encoded (Fig. 7), pushed through each fixed Ansatz instance of the
strategy, and measured against each observable.  Feature columns are ordered
Ansatz-major: column ``a * q + b`` holds (parameter set a, observable b),
matching Definition 1's (p, q) indexing.

Three estimators exercise the paper's three measurement models:

* ``exact``   -- analytic expectations (ideal simulator, Tables III/IV);
* ``shots``   -- finite-sample direct measurement (Proposition 1 regime);
* ``shadows`` -- classical-shadow estimation, one shadow batch per
  (data point, Ansatz) reused across all q observables (Proposition 2).

The work grid (Ansatz instance x data chunk) is embarrassingly parallel and
is dispatched through the persistent
:class:`repro.hpc.runtime.ExecutionRuntime` (or a
:class:`repro.hpc.executor.ParallelExecutor` facade over one).  Dispatch is
*streaming*: a per-task cost model (chunk size x Ansatz depth x shot
budget, priced by :func:`repro.hpc.cluster.task_costs`) orders submission
via the scheduling policies, and each completed block is scattered into the
preallocated Q matrix as its future resolves -- no end-of-sweep barrier.
:func:`iter_feature_blocks` exposes the same stream to incremental
consumers.

Execution is configured through the unified API (:mod:`repro.api`): every
entry point takes ``config=`` (an
:class:`~repro.api.config.ExecutionConfig`) or ``device=`` (a
:class:`~repro.api.device.QuantumDevice` session); the historical loose
kwargs remain as deprecated shims that build a config internally.  The
regime itself is a :class:`~repro.quantum.backends.QuantumBackend`
(``config.backend``): ideal statevector (default, compiled engine), noisy
density-matrix (gate-level Kraus) or ZNE-mitigated -- every backend runs
through the *same* job grid, cost model (density evolution priced ~4^n vs
2^n) and streaming dispatch, so the noisy Q-matrix sweep parallelises
exactly like the ideal one.

Execution is per-sample-oracle or batched: with ``config.vectorize="auto"``
on a backend that supports it, :func:`generate_features` skips the separate
preparation pass entirely -- each (Ansatz instance, chunk) job encodes and
evolves its raw angle chunk through one
:class:`~repro.quantum.batched.ParametricCompiledCircuit` stacked pass
(shared fused blocks + per-sample angle chains).  The job grid and per-task
seed derivation are identical to the per-sample path, which remains the
reference oracle (``tests/integration/test_batched_features.py``).

All executor backends and policies produce identical matrices for
``exact`` and seed-deterministic matrices otherwise (child RNG streams are
derived per task index, independent of schedule).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.api.config import (
    ESTIMATORS,
    UNSET,
    ExecutionConfig,
    resolve_call,
    resolve_chunk_size,
)
from repro.core.strategies import Strategy
from repro.hpc.cluster import CircuitTask, stacked_pass_flops, task_costs
from repro.hpc.executor import ParallelExecutor
from repro.hpc.partition import chunk_ranges
from repro.hpc.runtime import DispatchReport, ExecutionRuntime, TaskCompletion
from repro.quantum.backends import QuantumBackend, resolve_backend
from repro.quantum.batched import (
    ParametricCompiledCircuit,
    compile_parametric,
)
from repro.quantum.circuit import Circuit
from repro.quantum.compile import (
    DEFAULT_FUSION_WIDTH,
    CompiledCircuit,
    compile_circuit,
    resolve_fusion_width,
)
from repro.quantum.observables import PauliString
from repro.utils.rng import spawn_rngs
from repro.xp import get_namespace

__all__ = [
    "FeatureJob",
    "feature_jobs",
    "generate_features",
    "evaluate_features",
    "iter_feature_blocks",
    "feature_circuit_tasks",
    "measure_block",
    "prepare_states",
    "resolve_chunk_size",
]


@dataclass(frozen=True)
class FeatureJob:
    """One schedulable unit: Ansatz instance ``a`` on data rows [lo, hi)."""

    ansatz_index: int
    lo: int
    hi: int


def feature_jobs(num_ansatze: int, num_samples: int, chunk_size: int) -> list[FeatureJob]:
    """The sweep's work grid: one job per (Ansatz instance, data chunk).

    The single source of truth for job enumeration -- both the live
    dispatch path and :meth:`HybridPipeline.circuit_tasks`' analytic
    projection build on it, so the two can never silently diverge.
    """
    return [
        FeatureJob(a, lo, hi)
        for a in range(num_ansatze)
        for (lo, hi) in chunk_ranges(num_samples, chunk_size)
    ]


def _bound_ansatz(strategy: Strategy, params: np.ndarray) -> Circuit | None:
    """The bound Ansatz instance, or None only when there is nothing to run.

    A circuit with gates but zero *parameters* (e.g. a fixed entangling
    layer) is still a real Ansatz and must be composed -- dropping it on
    ``num_parameters == 0`` silently produced encoder-only features (the
    bug this guard replaces).
    """
    circuit = strategy.ansatz
    if circuit is None or circuit.num_gates == 0:
        return None
    return circuit.bind(params)


def _parametric_programs(
    strategy: Strategy,
    compile: str | int,
    template: Circuit,
    backend: QuantumBackend,
    array_backend: str = "numpy",
) -> list:
    """One batched template program per Ansatz instance (``vectorize`` path).

    Each program covers the *whole* per-sample circuit ``U(theta_a) S(x)``:
    the encoder template's rotations stay as angle slots while the bound
    Ansatz joins it, so one compile per parameter set serves every data
    chunk (and, being picklable, every process worker).  The program *kind*
    is the backend's choice (:meth:`QuantumBackend.batch_program`): fused
    :class:`ParametricCompiledCircuit` for statevectors, fusion-free
    batched density programs (per-scale folded stacks for ZNE) where Kraus
    insertion points must survive.
    """
    return [
        backend.batch_program(
            template, _bound_ansatz(strategy, params), compile, array_backend
        )
        for params in strategy.parameter_sets()
    ]


def _use_vectorized(cfg: ExecutionConfig) -> bool:
    """Whether this config routes raw-angle sweeps through ``apply_batch``."""
    return cfg.vectorize == "auto" and cfg.backend.supports_vectorize


def _run_preflight(
    strategy: Strategy,
    angles: np.ndarray | None,
    cfg: ExecutionConfig,
    owner: str,
) -> None:
    """Static analysis at job-build time, per ``cfg.preflight``.

    Lints what the sweep will actually run: the *unbound* encoder template
    (its rotation slots are exactly what the batched engine must chain) and
    the first bound Ansatz instance -- Ansatz gates are bound before
    execution, so linting them unbound would spuriously flag RPA003.  In
    mode ``"error"`` this raises before any state is prepared or any job
    is submitted.
    """
    from repro.analysis.preflight import run_preflight

    circuits = []
    if angles is not None:
        from repro.data.encoding import encoding_template

        circuits.append(encoding_template(angles.shape[1], angles.shape[2]))
    for params in strategy.parameter_sets():
        bound = _bound_ansatz(strategy, params)
        if bound is not None:
            circuits.append(bound)
        break
    run_preflight(
        cfg, num_qubits=strategy.num_qubits, circuits=circuits, owner=owner
    )


def _ansatz_programs(
    strategy: Strategy, compile: str | int, backend: QuantumBackend
) -> list[Circuit | CompiledCircuit | None]:
    """One executable program per Ansatz instance, prepared once per sweep.

    Binding (and, when ``compile`` is on, fusion) happens here -- up front
    and once per parameter set -- instead of once per (Ansatz, chunk) job,
    so the Q-matrix sweep reuses each artifact across every data chunk and,
    because :class:`CompiledCircuit` pickles, across process workers too.

    Backends with gate-level noise insertion evolve raw circuits only
    (``supports_compile=False``); the compile knob is a no-op for them, but
    it is still validated so a typo fails identically on every backend.
    """
    width = resolve_fusion_width(compile)
    if not backend.supports_compile:
        width = None
    programs: list[Circuit | CompiledCircuit | None] = []
    for params in strategy.parameter_sets():
        bound = _bound_ansatz(strategy, params)
        if bound is not None and width is not None:
            bound = compile_circuit(bound, max_width=width)
        programs.append(bound)
    return programs


def _program_ops(program: Circuit | CompiledCircuit | ParametricCompiledCircuit | None) -> int:
    """Kernel launches one program costs: gate count, fused-block count,
    batched segment count (blocks + angle chains), stacked density passes
    (gates + Kraus operators, folded copies included), or 0."""
    if program is None:
        return 0
    passes = getattr(program, "num_kernel_passes", None)
    if passes is not None:
        return passes
    if isinstance(program, ParametricCompiledCircuit):
        return program.num_segments
    if isinstance(program, CompiledCircuit):
        return program.num_blocks
    return program.num_gates


def _evaluate_block(
    states: np.ndarray,
    program: Circuit | CompiledCircuit | ParametricCompiledCircuit | None,
    observables: list[PauliString],
    estimator: str,
    shots: int,
    snapshots: int,
    rng: np.random.Generator | None,
    backend: QuantumBackend,
    xp=None,
) -> np.ndarray:
    """Feature block for one Ansatz instance on a chunk of prepared states
    (or, for a batched template program, of raw encoding angles).

    Returns (chunk, q).  This is the module-level worker so the process
    executor backend can pickle it via functools.partial-free closures.
    ``xp`` is the resolved array namespace; ``None`` (the default config)
    never reaches backend signatures, so third-party backends without the
    keyword keep working.
    """
    # vectorize="auto" templates consume raw (chunk, rows, cols) angles and
    # run encoding + Ansatz evolution in one stacked pass (evolve_batch).
    evolve = (
        backend.evolve_batch
        if getattr(program, "consumes_angles", False)
        else backend.evolve
    )
    evolved = (
        evolve(states, program) if xp is None else evolve(states, program, xp=xp)
    )
    return measure_block(
        evolved, observables, estimator, shots, snapshots, rng, backend
    )


def measure_block(
    evolved: np.ndarray,
    observables: list[PauliString],
    estimator: str,
    shots: int,
    snapshots: int,
    rng: np.random.Generator | None,
    backend: QuantumBackend,
) -> np.ndarray:
    """Feature block from *already-evolved* states: the measurement half of
    :func:`_evaluate_block`, shared verbatim with the serving layer
    (:mod:`repro.serve.engine`), whose coalesced flushes must measure
    exactly like a standalone sweep to stay bit-equal per request.

    ``evolved`` has data points on axis 0 in the backend's evolved
    representation (statevectors, density matrices, or a mitigated
    ``(d, scales, ...)`` fold stack); returns ``(d, q)``.
    """
    q = len(observables)
    d = int(evolved.shape[0])
    if estimator == "exact":
        block = np.empty((d, q))
        for b, obs in enumerate(observables):
            block[:, b] = backend.expectation(evolved, obs)
    elif estimator == "shots":
        block = np.empty((d, q))
        for b, obs in enumerate(observables):
            block[:, b] = backend.sample(evolved, obs, shots, rng)
    elif estimator == "shadows":
        block = backend.shadow_block(evolved, observables, snapshots, rng)
    else:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    return block


class _BlockWorker:
    """Picklable task callable for the process executor backend.

    Holds only the sweep-wide artifacts (programs, observables, seeds);
    each task carries its *own* state chunk, so a process pool ships
    O(chunk) state per submission rather than re-pickling the full
    (d, ...) prepared batch with every task -- which for density states
    (4^n entries each) would dominate the sweep.
    """

    def __init__(
        self,
        strategy: Strategy,
        estimator: str,
        shots: int,
        snapshots: int,
        seeds: list[int] | None,
        compile: str | int,
        backend: QuantumBackend,
        template: Circuit | None = None,
        array_backend: str = "numpy",
    ):
        self.observables = strategy.observables()
        self.backend = backend
        # The already-resolved concrete namespace *name* (never "auto"):
        # plain strings pickle to process workers, and each worker resolves
        # its own process-wide namespace singleton lazily on first use.
        self.array_backend = array_backend
        # Bind/compile each Ansatz instance exactly once for the whole sweep
        # (not per chunk); compiled programs pickle to process workers.
        # With an encoder ``template`` (the vectorize="auto" path) each
        # program is a batched template covering encoder + Ansatz, and tasks
        # carry raw angle chunks instead of states.
        if template is None:
            self.programs = _ansatz_programs(strategy, compile, self.backend)
        else:
            self.programs = _parametric_programs(
                strategy, compile, template, self.backend, array_backend
            )
        self.estimator = estimator
        self.shots = shots
        self.snapshots = snapshots
        self.seeds = seeds

    def __call__(
        self, task: tuple[int, FeatureJob, np.ndarray]
    ) -> tuple[FeatureJob, np.ndarray]:
        task_id, job, states = task
        rng = None if self.seeds is None else np.random.default_rng(self.seeds[task_id])
        xp = None if self.array_backend == "numpy" else get_namespace(self.array_backend)
        block = _evaluate_block(
            states,
            self.programs[job.ansatz_index],
            self.observables,
            self.estimator,
            self.shots,
            self.snapshots,
            rng,
            self.backend,
            xp,
        )
        return job, block


def feature_circuit_tasks(
    jobs: list[FeatureJob],
    programs: list[Circuit | CompiledCircuit | None],
    num_qubits: int,
    num_observables: int,
    estimator: str,
    shots: int,
    snapshots: int,
    backend: QuantumBackend | None = None,
) -> list[CircuitTask]:
    """Cost-model view of the sweep: one :class:`CircuitTask` per job.

    Chunk size, per-circuit shot budget and Ansatz depth (gate/fused-block
    count, scaled by the backend's state size -- 2**n statevector
    amplitudes, 4**n density-matrix entries, times the fold factor for
    mitigated sweeps) all enter the cost, so the scheduling policies see
    the same heterogeneity the real execution pays.  A sharded backend's
    slab count carries through as ``num_shards``, which divides the
    simulation flops but adds remap-synchronisation latency per circuit.
    """
    q = num_observables
    backend = resolve_backend(backend)
    dim = backend.evolution_cost_weight(num_qubits)
    # Sampling repeats per fold scale on mitigated backends, exactly like
    # the evolutions -- the projection must price both.
    reps = backend.circuit_repetitions
    num_shards = int(getattr(backend, "shards", 1))
    shots_per_circuit = 0 if estimator == "exact" else (
        shots * q * reps if estimator == "shots" else snapshots * reps
    )
    tasks = []
    for job in jobs:
        chunk = job.hi - job.lo
        program = programs[job.ansatz_index]
        ops = _program_ops(program)
        # Vectorized density programs count every stacked pass directly
        # (Kraus operators and folded ZNE copies included), so they are
        # priced at the raw density state size -- multiplying by the
        # mitigated backend's fold weight too would double-count.
        flops = (
            stacked_pass_flops(chunk, num_qubits, ops, q)
            if getattr(program, "num_kernel_passes", None) is not None
            else float(chunk * dim * (4 * ops + q))
        )
        tasks.append(
            CircuitTask(
                num_circuits=chunk,
                shots=shots_per_circuit,
                result_bytes=8 * chunk * q,
                classical_flops=flops,
                num_shards=num_shards,
            )
        )
    return tasks


def _resolve_runtime(
    executor: ParallelExecutor | ExecutionRuntime | None,
) -> ExecutionRuntime:
    """Accept the facade, a bare runtime, or None (inline serial runtime)."""
    if executor is None:
        return ExecutionRuntime()
    if isinstance(executor, ExecutionRuntime):
        return executor
    return executor.runtime


class _PrepareWorker:
    """Picklable chunked state preparation for expensive backends."""

    def __init__(self, backend: QuantumBackend):
        self.backend = backend

    def __call__(self, angles_chunk: np.ndarray) -> np.ndarray:
        return self.backend.prepare(angles_chunk)


def prepare_states(
    backend: QuantumBackend | None,
    angles: np.ndarray,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Encode ``angles`` into the backend's prepared representation.

    Backends whose preparation evolves a circuit per sample (density,
    mitigated: O(4^n) Kraus work each) fan the encoder stage out over the
    same executor as the sweep itself, chunked like the job grid -- the
    parallelism the retired noisy fork had, kept.  The statevector
    backend's vectorised ``encode_batch`` stays a single in-process call.
    """
    backend = resolve_backend(backend)
    chunk_size = resolve_chunk_size(chunk_size, backend)
    chunks = chunk_ranges(angles.shape[0], chunk_size)
    if not backend.parallel_prepare or len(chunks) <= 1:
        return backend.prepare(angles)
    parts = _resolve_runtime(executor).map(
        _PrepareWorker(backend), [angles[lo:hi] for lo, hi in chunks]
    )
    return np.concatenate(parts, axis=0)


def _sweep_stream(
    strategy: Strategy,
    states: np.ndarray,
    cfg: ExecutionConfig,
    executor: ParallelExecutor | ExecutionRuntime | None,
    records: list[TaskCompletion] | None,
    template: Circuit | None = None,
) -> tuple[Iterator[TaskCompletion], np.ndarray, ExecutionRuntime]:
    """Shared sweep setup: completion stream, cost vector, runtime.

    ``cfg`` is already validated (backend resolved, regime checked) -- the
    :class:`~repro.api.config.ExecutionConfig` constructor guarantees it.
    ``template`` switches the sweep to batched structure-shared execution:
    ``states`` is then the raw ``(d, rows, cols)`` angle batch and every
    job evolves its chunk through one
    :class:`~repro.quantum.batched.ParametricCompiledCircuit` pass.  The
    job grid and the per-task seed derivation are identical either way, so
    the two paths are directly comparable estimator by estimator.
    """
    runtime = _resolve_runtime(executor)
    jobs = feature_jobs(
        strategy.num_ansatze, states.shape[0], cfg.resolved_chunk_size
    )
    # Per-task independent RNG streams, keyed by task *index*: results do
    # not depend on the executor backend, policy or completion order.
    if cfg.estimator == "exact":
        seeds = None
    else:
        children = spawn_rngs(cfg.seed, len(jobs))
        seeds = [int(c.integers(0, 2**63)) for c in children]

    worker = _BlockWorker(
        strategy,
        cfg.estimator,
        cfg.shots,
        cfg.snapshots,
        seeds,
        cfg.compile,
        cfg.backend,
        template=template,
        array_backend=cfg.resolved_array_backend,
    )
    costs = task_costs(
        feature_circuit_tasks(
            jobs,
            worker.programs,
            strategy.num_qubits,
            strategy.num_observables,
            cfg.estimator,
            cfg.shots,
            cfg.snapshots,
            cfg.backend,
        )
    )
    # Each task ships its own chunk (a view in-process; O(chunk) pickled
    # bytes for process pools) instead of the whole prepared batch.
    stream = runtime.stream(
        worker,
        [(i, job, states[job.lo : job.hi]) for i, job in enumerate(jobs)],
        costs=costs,
        policy=cfg.dispatch_policy,
        records=records,
    )
    return stream, costs, runtime


def generate_features(
    strategy: Strategy,
    angles: np.ndarray,
    estimator: str = UNSET,
    shots: int = UNSET,
    snapshots: int = UNSET,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int | None = UNSET,
    seed: int | np.random.Generator | None = UNSET,
    compile: str | int = UNSET,
    dispatch_policy: str = UNSET,
    out: np.ndarray | None = None,
    return_report: bool = False,
    backend: QuantumBackend | None = UNSET,
    *,
    config: ExecutionConfig | None = None,
    device=None,
) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
    """Algorithm 1: the full Q matrix for pooled-angle images ``angles``.

    ``angles`` is (d, rows, cols) with cols == strategy.num_qubits; returns
    (d, m).  Execution is configured by ``config=`` (an
    :class:`~repro.api.config.ExecutionConfig`) or ``device=`` (a
    :class:`~repro.api.device.QuantumDevice`, which also supplies the
    runtime); with neither, the config defaults apply (exact estimator,
    ideal statevector backend, ``compile="off"`` -- the naive reference
    semantics bit-for-bit).

    The loose execution kwargs (``estimator``/``shots``/``snapshots``/
    ``chunk_size``/``seed``/``compile``/``dispatch_policy``/``backend``)
    are **deprecated**: they still work, bit-equal, by constructing a
    config internally, but emit a :class:`DeprecationWarning`.

    ``executor`` binds the dispatch runtime (facade, bare runtime or None
    for inline serial) and may accompany ``config=``; with
    ``return_report=True`` the measured-vs-projected
    :class:`~repro.hpc.runtime.DispatchReport` is returned alongside Q.

    With ``config.vectorize="auto"`` (and a backend that supports it) the
    sweep runs batched: encoding and Ansatz evolution happen in one
    structure-shared stacked pass per (Ansatz instance, chunk) job instead
    of sample at a time -- same job grid, same per-task seeds, numerically
    equal to the per-sample oracle to <= 1e-10.
    """
    cfg, executor = resolve_call(
        config,
        device,
        executor,
        dict(
            estimator=estimator,
            shots=shots,
            snapshots=snapshots,
            chunk_size=chunk_size,
            seed=seed,
            compile=compile,
            dispatch_policy=dispatch_policy,
            backend=backend,
        ),
        owner="generate_features",
    )
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 3:
        raise ValueError("angles must be (d, rows, cols)")
    if angles.shape[2] != strategy.num_qubits:
        raise ValueError(
            f"angles encode {angles.shape[2]} qubits, strategy expects {strategy.num_qubits}"
        )
    if cfg.preflight != "off":
        _run_preflight(strategy, angles, cfg, owner="generate_features")
    if _use_vectorized(cfg):
        from repro.data.encoding import encoding_template

        template = encoding_template(angles.shape[1], angles.shape[2])
        if strategy.num_ansatze == 1 or cfg.backend.representation == "density":
            # Encoder + Ansatz compile into ONE batched program per
            # instance, and each job encodes *and* evolves its raw angle
            # chunk in stacked passes -- no separate preparation, no
            # intermediate prepared-state array.  Density-representation
            # backends take this path even with many instances: their
            # encoder stage carries gate-level noise (and ZNE folding), so
            # the noiseless shared-encoder shortcut below cannot apply.
            return _assemble_features(
                strategy, angles, cfg, executor, out, return_report, template
            )
        # Multiple statevector instances share the encoding work: one
        # batched-encoder pass (per-qubit angle chains: ~rows fewer
        # state-sized kernels than the per-gate encode_batch), then the
        # standard chunked sweep reuses the prepared batch across every
        # Ansatz instance.  The batched engine is fusion by construction,
        # so evolution is pinned to a concrete fusion width even under
        # compile="off".
        width = resolve_fusion_width(cfg.compile) or DEFAULT_FUSION_WIDTH
        name = cfg.resolved_array_backend
        xp = None if name == "numpy" else get_namespace(name)
        states = compile_parametric(
            template, max_width=width, array_backend=name
        ).apply_batch(angles, xp=xp)
        return _assemble_features(
            strategy, states, cfg.merged(compile=width), executor, out, return_report
        )
    states = prepare_states(cfg.backend, angles, executor, cfg.chunk_size)
    return evaluate_features(
        strategy,
        states,
        executor=executor,
        out=out,
        return_report=return_report,
        # Preflight already ran above; don't lint (and warn) twice.
        config=cfg.merged(preflight="off"),
    )


def evaluate_features(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str = UNSET,
    shots: int = UNSET,
    snapshots: int = UNSET,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int | None = UNSET,
    seed: int | np.random.Generator | None = UNSET,
    compile: str | int = UNSET,
    dispatch_policy: str = UNSET,
    out: np.ndarray | None = None,
    return_report: bool = False,
    backend: QuantumBackend | None = UNSET,
    *,
    config: ExecutionConfig | None = None,
    device=None,
) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
    """Q matrix from prepared states ``states``.

    ``states`` is either pre-encoded ``(d, 2**n)`` statevectors -- lifted
    into the backend's representation noiselessly -- or an array obtained
    from ``backend.prepare(angles)`` (which, for noisy backends, applies
    encoder-stage noise too).

    Execution is configured exactly as in :func:`generate_features`
    (``config=``/``device=``; loose kwargs are deprecated shims).

    Assembly is streaming: blocks land in the (optionally caller-supplied)
    preallocated ``out`` matrix as their futures resolve, in completion
    order.  ``out`` must be float64 of shape (d, p*q).

    ``config.vectorize`` is a no-op here: prepared states have already lost
    their encoding angles, so chunk evolution is batched exactly as before
    (one :class:`CompiledCircuit` pass per job); only the raw-angle entry
    point :func:`generate_features` can fold encoding into the stacked pass.
    """
    cfg, executor = resolve_call(
        config,
        device,
        executor,
        dict(
            estimator=estimator,
            shots=shots,
            snapshots=snapshots,
            chunk_size=chunk_size,
            seed=seed,
            compile=compile,
            dispatch_policy=dispatch_policy,
            backend=backend,
        ),
        owner="evaluate_features",
    )
    if cfg.preflight != "off":
        # Prepared states have already lost their encoding template, so
        # only the config/plan layer (+ the bound Ansatz) can be linted.
        _run_preflight(strategy, None, cfg, owner="evaluate_features")
    states = cfg.backend.coerce_states(np.asarray(states))
    return _assemble_features(strategy, states, cfg, executor, out, return_report)


def _assemble_features(
    strategy: Strategy,
    payload: np.ndarray,
    cfg: ExecutionConfig,
    executor: ParallelExecutor | ExecutionRuntime | None,
    out: np.ndarray | None,
    return_report: bool,
    template: Circuit | None = None,
) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
    """Streaming Q-matrix assembly shared by both execution paths.

    ``payload`` is prepared states (per-sample path) or the raw angle batch
    (batched path, signalled by ``template``); either way axis 0 indexes
    data points and blocks scatter into ``out`` as futures resolve.
    """
    d = payload.shape[0]
    p = strategy.num_ansatze
    q = strategy.num_observables
    if out is None:
        out = np.empty((d, p * q))
    elif out.shape != (d, p * q) or out.dtype != np.float64:
        raise ValueError(f"out must be float64 of shape {(d, p * q)}, got {out.dtype} {out.shape}")

    # Timing records are only collected when a report is requested; they
    # are result-free (index + seconds), so nothing pins completed blocks.
    records: list[TaskCompletion] | None = [] if return_report else None
    stream, costs, runtime = _sweep_stream(
        strategy, payload, cfg, executor, records, template
    )
    # Timed window covers dispatch + assembly only: binding/compilation,
    # RNG spawning and (via warm()) pool construction are one-time setup
    # the replayed makespan never models, so including them would inflate
    # wall_over_replay.
    runtime.warm()
    start = time.perf_counter()
    for completion in stream:
        job, block = completion.result
        out[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
    wall = time.perf_counter() - start

    if return_report:
        report = DispatchReport.from_records(
            cfg.dispatch_policy, runtime.backend, runtime.max_workers, costs,
            records or (), wall,
        )
        return out, report
    return out


def iter_feature_blocks(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str = UNSET,
    shots: int = UNSET,
    snapshots: int = UNSET,
    executor: ParallelExecutor | ExecutionRuntime | None = None,
    chunk_size: int | None = UNSET,
    seed: int | np.random.Generator | None = UNSET,
    compile: str | int = UNSET,
    dispatch_policy: str = UNSET,
    backend: QuantumBackend | None = UNSET,
    *,
    config: ExecutionConfig | None = None,
    device=None,
) -> Iterator[tuple[FeatureJob, np.ndarray]]:
    """Stream Q-matrix blocks as ``(FeatureJob, (chunk, q) block)`` pairs.

    Blocks arrive in *completion* order (submission order for serial
    runtimes) -- the incremental-consumer view of Algorithm 1: online
    learners, progress reporting, or out-of-core assembly can consume
    features without ever materialising the full matrix.  Every job is
    yielded exactly once; the union of blocks tiles the full Q matrix.
    Identical numerics to :func:`evaluate_features` (same per-task seeds,
    same ``config=``/``device=`` resolution, loose kwargs deprecated).

    Setup (validation, binding/compilation, cost model) runs eagerly at the
    call, so bad arguments raise here rather than at the first ``next()``.
    """
    cfg, executor = resolve_call(
        config,
        device,
        executor,
        dict(
            estimator=estimator,
            shots=shots,
            snapshots=snapshots,
            chunk_size=chunk_size,
            seed=seed,
            compile=compile,
            dispatch_policy=dispatch_policy,
            backend=backend,
        ),
        owner="iter_feature_blocks",
    )
    states = cfg.backend.coerce_states(np.asarray(states))
    stream, _, _ = _sweep_stream(strategy, states, cfg, executor, None)
    return (completion.result for completion in stream)
