"""Gantt-style execution traces for dispatch debugging.

Each trace event records (node, task, start, stop); traces can be rendered
as ASCII timelines -- enough to eyeball load imbalance without matplotlib,
which is not available offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled interval on one node."""

    node: int
    label: str
    start: float
    stop: float

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError("TraceEvent stop precedes start")

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass
class Trace:
    """An append-only event log with summary statistics."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, node: int, label: str, start: float, stop: float) -> None:
        self.events.append(TraceEvent(node, label, start, stop))

    @property
    def makespan(self) -> float:
        return max((e.stop for e in self.events), default=0.0)

    def node_busy(self, node: int) -> float:
        return sum(e.duration for e in self.events if e.node == node)

    def utilization(self, num_nodes: int) -> float:
        """Mean busy fraction across ``num_nodes`` over the makespan."""
        span = self.makespan
        if span == 0 or num_nodes == 0:
            return 0.0
        busy = sum(self.node_busy(n) for n in range(num_nodes))
        return busy / (span * num_nodes)

    @classmethod
    def from_assignment(cls, assignment, costs: Sequence[float]) -> Trace:
        """Materialise a trace from a scheduler assignment (back-to-back)."""
        trace = cls()
        for node, tasks in enumerate(assignment.tasks_per_node):
            clock = 0.0
            for idx in tasks:
                trace.record(node, f"task{idx}", clock, clock + costs[idx])
                clock += costs[idx]
        return trace

    def ascii_gantt(self, num_nodes: int, width: int = 60) -> str:
        """Render as fixed-width ASCII rows, '#' = busy."""
        span = self.makespan or 1.0
        lines = []
        for node in range(num_nodes):
            row = [" "] * width
            for e in self.events:
                if e.node != node:
                    continue
                lo = int(e.start / span * (width - 1))
                hi = max(lo + 1, int(e.stop / span * (width - 1)))
                for i in range(lo, min(hi, width)):
                    row[i] = "#"
            lines.append(f"node{node:>3} |{''.join(row)}|")
        return "\n".join(lines)
