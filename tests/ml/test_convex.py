"""Constrained convex solver tests (Theorem 4 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.convex import (
    ConstrainedLeastSquares,
    ConstrainedLogistic,
    project_l2_ball,
)


@given(v=st.lists(st.floats(-100, 100), min_size=1, max_size=20), r=st.floats(0.1, 10))
@settings(max_examples=80)
def test_projection_properties(v, r):
    arr = np.array(v)
    proj = project_l2_ball(arr, r)
    assert np.linalg.norm(proj) <= r + 1e-9
    if np.linalg.norm(arr) <= r:
        assert np.allclose(proj, arr)
    else:
        # Projection preserves direction.
        assert np.allclose(proj / np.linalg.norm(proj), arr / np.linalg.norm(arr))


def test_projection_idempotent():
    v = np.array([3.0, 4.0])
    once = project_l2_ball(v, 1.0)
    assert np.allclose(project_l2_ball(once, 1.0), once)


def test_projection_radius_validation():
    with pytest.raises(ValueError):
        project_l2_ball(np.ones(2), 0.0)


def test_interior_solution_matches_ols():
    """When the OLS solution lies inside the ball the constraint is inactive."""
    rng = np.random.default_rng(0)
    q = rng.normal(size=(60, 4))
    alpha = rng.normal(size=4)
    alpha = alpha / (2 * np.linalg.norm(alpha))  # ||alpha|| = 0.5 < 1
    model = ConstrainedLeastSquares().fit(q, q @ alpha)
    assert np.allclose(model.coef_, alpha, atol=1e-6)


def test_boundary_solution_on_ball():
    """When the unconstrained optimum is outside, the solution saturates."""
    rng = np.random.default_rng(1)
    q = rng.normal(size=(60, 4))
    alpha = rng.normal(size=4)
    alpha = alpha * (5.0 / np.linalg.norm(alpha))  # far outside
    model = ConstrainedLeastSquares().fit(q, q @ alpha)
    assert np.linalg.norm(model.coef_) == pytest.approx(1.0, abs=1e-6)


def test_kkt_optimality_on_boundary():
    """At a boundary optimum the gradient is anti-parallel to alpha."""
    rng = np.random.default_rng(2)
    q = rng.normal(size=(80, 3))
    y = q @ np.array([3.0, 0.0, 0.0])
    model = ConstrainedLeastSquares(max_iter=5000, tol=1e-14).fit(q, y)
    grad = 2.0 / q.shape[0] * (q.T @ (q @ model.coef_ - y))
    # grad = -lambda * alpha for some lambda >= 0.
    cos = grad @ model.coef_ / (np.linalg.norm(grad) * np.linalg.norm(model.coef_))
    assert cos == pytest.approx(-1.0, abs=1e-4)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_global_optimality_vs_random_feasible_points(seed):
    """Convexity promise: no feasible point beats the solver's objective."""
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(30, 3))
    y = rng.normal(size=30)
    model = ConstrainedLeastSquares().fit(q, y)
    best = np.mean((q @ model.coef_ - y) ** 2)
    for _ in range(20):
        candidate = project_l2_ball(rng.normal(size=3) * 2, 1.0)
        assert best <= np.mean((q @ candidate - y) ** 2) + 1e-6


def test_constrained_logistic_learns_separable():
    rng = np.random.default_rng(3)
    x = np.vstack([rng.normal(-1, 0.3, (40, 2)), rng.normal(1, 0.3, (40, 2))])
    y = np.array([0] * 40 + [1] * 40)
    model = ConstrainedLogistic(fit_intercept=True).fit(x, y)
    assert np.mean(model.predict(x) == y) > 0.95
    assert np.linalg.norm(model.coef_) <= 1.0 + 1e-6


def test_constrained_logistic_loss_bounded():
    """||alpha|| <= 1 keeps probabilities away from 0/1 for bounded features,
    so BCE stays moderate -- the noise-robustness rationale of Sec. VI.B."""
    rng = np.random.default_rng(4)
    x = rng.uniform(-1, 1, size=(50, 5))
    y = rng.integers(0, 2, size=50)
    model = ConstrainedLogistic().fit(x, y)
    probs = model.predict_proba(x)
    # |z| <= ||alpha|| * ||x||_2 <= sqrt(5).
    z_max = np.sqrt(5)
    assert probs.min() >= 1 / (1 + np.exp(z_max)) - 1e-9


def test_unfitted_errors():
    with pytest.raises(RuntimeError):
        ConstrainedLeastSquares().predict(np.ones((2, 2)))
    with pytest.raises(RuntimeError):
        ConstrainedLogistic().predict_proba(np.ones((2, 2)))
