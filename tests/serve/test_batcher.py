"""Micro-batcher: windowing, size-triggered flushes, fair batch selection."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.fairness import WeightedRoundRobin


class FlushRecorder:
    """Flush callable that records (key, tenants) per flush."""

    def __init__(self) -> None:
        self.flushes: list[tuple[object, list[str]]] = []

    async def __call__(self, key, batch) -> None:
        self.flushes.append((key, [p.tenant for p in batch]))
        for pending in batch:
            if not pending.future.done():
                pending.future.set_result(pending.payload)


def _pending(tenant: str, payload: object = None) -> PendingRequest:
    loop = asyncio.get_running_loop()
    return PendingRequest(tenant, payload, 1.0, loop.create_future())


def _batcher(recorder, **kwargs) -> MicroBatcher:
    defaults = dict(
        window_s=0.005,
        max_batch_size=8,
        selector=WeightedRoundRobin(),
        flush=recorder,
    )
    defaults.update(kwargs)
    return MicroBatcher(**defaults)


def test_window_coalesces_same_key():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder)
        futures = []
        for i in range(3):
            req = _pending("t", payload=i)
            futures.append(req.future)
            batcher.add("k", req)
        assert batcher.pending == 3
        results = await asyncio.gather(*futures)
        assert sorted(results) == [0, 1, 2]

    asyncio.run(main())
    assert len(recorder.flushes) == 1
    assert recorder.flushes[0][0] == "k"


def test_distinct_keys_never_share_a_flush():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder)
        reqs = [_pending("t") for _ in range(4)]
        for i, req in enumerate(reqs):
            batcher.add(f"k{i % 2}", req)
        await asyncio.gather(*(r.future for r in reqs))

    asyncio.run(main())
    assert len(recorder.flushes) == 2
    assert {key for key, _ in recorder.flushes} == {"k0", "k1"}


def test_max_batch_size_flushes_early():
    recorder = FlushRecorder()

    async def main():
        # A long window that the size trigger must beat.
        batcher = _batcher(recorder, window_s=30.0, max_batch_size=2)
        reqs = [_pending("t") for _ in range(4)]
        for req in reqs:
            batcher.add("k", req)
        await asyncio.wait_for(
            asyncio.gather(*(r.future for r in reqs)), timeout=5.0
        )

    asyncio.run(main())
    assert len(recorder.flushes) == 2
    assert all(len(tenants) == 2 for _, tenants in recorder.flushes)


def test_zero_window_flushes_per_request():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=0.0)
        reqs = [_pending("t") for _ in range(3)]
        for req in reqs:
            batcher.add("k", req)
        await asyncio.gather(*(r.future for r in reqs))

    asyncio.run(main())
    assert len(recorder.flushes) == 3


def test_batch_selection_is_weighted_fair():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(
            recorder,
            window_s=30.0,
            max_batch_size=4,
            selector=WeightedRoundRobin({"heavy": 3.0, "light": 1.0}),
        )
        reqs = [_pending("heavy") for _ in range(3)] + [_pending("light")]
        # "light" floods first; the selector still gives "heavy" its share.
        batcher.add("k", reqs[3])
        for req in reqs[:3]:
            batcher.add("k", req)
        await asyncio.gather(*(r.future for r in reqs))

    asyncio.run(main())
    (_, tenants), = recorder.flushes
    assert tenants.count("heavy") == 3 and tenants.count("light") == 1
    assert tenants[:2] != ["light", "light"]


def test_drain_flushes_pending_and_waits():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=30.0)
        req = _pending("t")
        batcher.add("k", req)
        await batcher.drain()
        assert batcher.pending == 0
        assert batcher.inflight_flushes == 0
        assert req.future.done()

    asyncio.run(main())
    assert len(recorder.flushes) == 1


def test_discard_withdraws_queued_request():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=0.005)
        keep = _pending("t", payload="keep")
        drop = _pending("t", payload="drop")
        batcher.add("k", keep)
        batcher.add("k", drop)
        assert batcher.discard("k", drop) is True
        assert batcher.pending == 1
        assert await keep.future == "keep"
        assert not drop.future.done()  # withdrawal never resolves it

    asyncio.run(main())
    # The survivor flushed alone; the discarded request never joined.
    assert recorder.flushes == [("k", ["t"])]


def test_discard_last_request_cancels_group_timer():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=30.0)
        req = _pending("t")
        batcher.add("k", req)
        assert batcher.discard("k", req) is True
        assert batcher.pending == 0
        # The 30 s window timer is gone: drain returns immediately with
        # nothing to flush.
        await asyncio.wait_for(batcher.drain(), timeout=1.0)

    asyncio.run(main())
    assert recorder.flushes == []


def test_discard_after_flush_returns_false():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=0.0)  # flushes immediately
        req = _pending("t")
        batcher.add("k", req)
        await req.future
        assert batcher.discard("k", req) is False
        assert batcher.discard("other", req) is False  # never added there

    asyncio.run(main())


def test_selection_skips_resolved_futures():
    recorder = FlushRecorder()

    async def main():
        batcher = _batcher(recorder, window_s=30.0, max_batch_size=3)
        reqs = [_pending("t", payload=i) for i in range(3)]
        for req in reqs[:2]:
            batcher.add("k", req)
        # Request 1's future resolves while queued (deadline elapsed /
        # client vanished) without a discard call: the size-triggered
        # flush must drop it rather than ship it to the flush worker.
        reqs[1].future.cancel()
        batcher.add("k", reqs[2])
        await asyncio.gather(reqs[0].future, reqs[2].future)

    asyncio.run(main())
    (_, tenants), = recorder.flushes
    assert len(tenants) == 2


def test_invalid_parameters():
    recorder = FlushRecorder()
    with pytest.raises(ValueError, match="max_batch_size"):
        _batcher(recorder, max_batch_size=0)
    with pytest.raises(ValueError, match="window_s"):
        _batcher(recorder, window_s=-1.0)
