"""ExecutionConfig: validation, round-trips, combinators."""

import json
import pickle

import numpy as np
import pytest

from repro.api import ExecutionConfig
from repro.quantum.backends import (
    DensityMatrixBackend,
    DistributedStatevectorBackend,
    MitigatedBackend,
    StatevectorBackend,
    backend_from_dict,
    backend_to_dict,
)
from repro.quantum.noise import NoiseModel


def _backends():
    noise = NoiseModel.depolarizing(0.01)
    return [
        StatevectorBackend(),
        DistributedStatevectorBackend(shards=2),
        DensityMatrixBackend(),
        DensityMatrixBackend(noise),
        MitigatedBackend(DensityMatrixBackend(noise), scales=(1, 3)),
    ]


# ------------------------------------------------------------------ defaults
def test_defaults_match_historical_function_defaults():
    cfg = ExecutionConfig()
    assert cfg.estimator == "exact"
    assert cfg.shots == 1024
    assert cfg.snapshots == 512
    assert cfg.chunk_size is None
    assert cfg.seed == 0
    assert cfg.compile == "off"
    assert cfg.dispatch_policy == "work_stealing"
    assert isinstance(cfg.backend, StatevectorBackend)
    assert cfg.vectorize == "off"


def test_backend_none_normalized_to_statevector():
    assert isinstance(ExecutionConfig(backend=None).backend, StatevectorBackend)
    assert isinstance(ExecutionConfig(backend="statevector").backend, StatevectorBackend)


def test_resolved_chunk_size_tracks_backend():
    assert ExecutionConfig().resolved_chunk_size == 128
    assert ExecutionConfig(backend=DensityMatrixBackend()).resolved_chunk_size == 8
    assert ExecutionConfig(chunk_size=5).resolved_chunk_size == 5


# ---------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(estimator="nope"),
        dict(estimator="shadows", backend=DensityMatrixBackend()),
        dict(estimator="shadows", backend=MitigatedBackend(DensityMatrixBackend())),
        dict(chunk_size=0),
        dict(chunk_size=-3),
        dict(chunk_size=7.9),
        dict(chunk_size="8"),
        dict(shots=-1),
        dict(shots=2.5),
        dict(snapshots=-1),
        dict(compile="fast"),
        dict(compile=0),
        dict(dispatch_policy="random"),
        dict(seed="seven"),
        dict(seed=-1),
        dict(backend="density"),
        dict(vectorize="on"),
        dict(vectorize=True),
        dict(vectorize=1),
    ],
)
def test_invalid_combinations_raise(kwargs):
    with pytest.raises(ValueError):
        ExecutionConfig(**kwargs)


def test_frozen():
    cfg = ExecutionConfig()
    with pytest.raises(Exception):
        cfg.shots = 7


@pytest.mark.parametrize("backend", _backends(), ids=lambda b: repr(b))
def test_hashable_value_object_every_backend(backend):
    """Configs work as dict keys/set members for every regime, and equal
    configs hash equal (NoiseModel carries a content hash)."""
    a = ExecutionConfig(estimator="shots", backend=backend)
    b = ExecutionConfig(estimator="shots", backend=backend)
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


# ---------------------------------------------------------------- combinator
def test_merged_overrides_and_revalidates():
    cfg = ExecutionConfig(estimator="shots", shots=64)
    merged = cfg.merged(shots=128, dispatch_policy="lpt")
    assert merged.shots == 128
    assert merged.dispatch_policy == "lpt"
    assert merged.estimator == "shots"
    assert cfg.shots == 64  # original untouched
    with pytest.raises(ValueError):
        cfg.merged(dispatch_policy="bogus")
    with pytest.raises(TypeError):
        cfg.merged(bogus_field=1)


def test_merged_no_overrides_returns_self():
    cfg = ExecutionConfig()
    assert cfg.merged() is cfg


def test_merged_overrides_vectorize():
    cfg = ExecutionConfig(vectorize="off")
    assert cfg.merged(vectorize="auto").vectorize == "auto"
    assert cfg.merged(vectorize="auto").merged(vectorize="off") == cfg
    with pytest.raises(ValueError):
        cfg.merged(vectorize="sometimes")


def test_vectorize_none_canonicalized_to_off():
    """None spells "off" for vectorize exactly as it does for compile."""
    cfg = ExecutionConfig(vectorize=None)
    assert cfg.vectorize == "off"
    assert cfg == ExecutionConfig()
    assert ExecutionConfig.from_json(cfg.to_json()) == cfg


def test_vectorize_json_roundtrip():
    cfg = ExecutionConfig(vectorize="auto", compile="auto")
    data = json.loads(cfg.to_json())
    assert data["vectorize"] == "auto"
    assert ExecutionConfig.from_json(cfg.to_json()) == cfg
    # Wire forms written before the knob existed still load (field default).
    del data["vectorize"]
    assert ExecutionConfig.from_dict(data).vectorize == "off"


def test_compile_none_canonicalized_to_off():
    """None was always a legal legacy spelling of compile='off'; it must
    normalize so equality and the JSON round trip hold."""
    cfg = ExecutionConfig(compile=None)
    assert cfg.compile == "off"
    assert cfg == ExecutionConfig()
    assert ExecutionConfig.from_json(cfg.to_json()) == cfg


# ---------------------------------------------------------------- round-trip
@pytest.mark.parametrize("backend", _backends(), ids=lambda b: repr(b))
def test_dict_roundtrip_every_backend(backend):
    cfg = ExecutionConfig(
        estimator="shots", shots=77, snapshots=33, chunk_size=9, seed=5,
        compile=3, dispatch_policy="lpt", backend=backend,
    )
    restored = ExecutionConfig.from_dict(cfg.to_dict())
    assert restored == cfg


@pytest.mark.parametrize("backend", _backends(), ids=lambda b: repr(b))
def test_json_roundtrip_every_backend(backend):
    cfg = ExecutionConfig(backend=backend)
    text = cfg.to_json()
    assert json.loads(text)  # valid JSON
    assert ExecutionConfig.from_json(text) == cfg


@pytest.mark.parametrize("backend", _backends(), ids=lambda b: repr(b))
def test_pickle_roundtrip_every_backend(backend):
    cfg = ExecutionConfig(estimator="shots", backend=backend)
    restored = pickle.loads(pickle.dumps(cfg))
    assert restored == cfg


def test_noise_model_hash_consistent_across_dtypes():
    """Equal models hash equal even when one is float64 and the other is
    its complex128 dict round-trip (the hash/eq contract)."""
    a = NoiseModel(one_qubit=[np.eye(2)])
    b = NoiseModel.from_dict(a.to_dict())
    assert a == b
    assert hash(a) == hash(b)


def test_noise_model_kraus_roundtrip_exact():
    noise = NoiseModel.depolarizing(0.013, 0.1)
    restored = NoiseModel.from_dict(noise.to_dict())
    for a, b in zip(noise.one_qubit, restored.one_qubit, strict=True):
        assert np.array_equal(a, b)  # JSON doubles round-trip bit-exactly
    assert restored == noise


def test_backend_dict_unknown_kind_raises():
    with pytest.raises(ValueError):
        backend_from_dict({"kind": "tensor_network"})


def test_backend_subclass_not_flattened_to_base_kind():
    """A subclass of a built-in must use its own to_dict (or fail loudly),
    never silently serialize as the base kind and lose itself on reload."""

    class Custom(StatevectorBackend):
        def to_dict(self):
            return {"kind": "custom"}

    class Silent(StatevectorBackend):
        pass

    assert backend_to_dict(Custom()) == {"kind": "custom"}
    with pytest.raises(TypeError, match="to_dict"):
        backend_to_dict(Silent())


def test_backend_to_dict_resolves_none():
    assert backend_to_dict(None) == {"kind": "statevector"}


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown"):
        ExecutionConfig.from_dict({"estimator": "exact", "warp_factor": 9})


def test_generator_seed_not_serializable():
    cfg = ExecutionConfig(seed=np.random.default_rng(0))
    with pytest.raises(TypeError):
        cfg.to_dict()


def test_mitigated_scales_roundtrip_as_tuple():
    cfg = ExecutionConfig(
        backend=MitigatedBackend(DensityMatrixBackend(), scales=(1, 5, 7))
    )
    restored = ExecutionConfig.from_json(cfg.to_json())
    assert restored.backend.scales == (1, 5, 7)


# -------------------------------------------------------------------- shards
def test_shards_default_is_one():
    cfg = ExecutionConfig()
    assert cfg.shards == 1
    assert type(cfg.backend) is StatevectorBackend


def test_shards_substitutes_distributed_backend():
    cfg = ExecutionConfig(shards=4)
    assert isinstance(cfg.backend, DistributedStatevectorBackend)
    assert cfg.backend.shards == 4
    assert cfg.shards == 4


def test_distributed_backend_mirrors_shards_field():
    cfg = ExecutionConfig(backend=DistributedStatevectorBackend(shards=8))
    assert cfg.shards == 8
    # Agreeing explicit pair is fine; both spellings are one config.
    same = ExecutionConfig(backend=DistributedStatevectorBackend(shards=8), shards=8)
    assert same == cfg


def test_shards_conflict_raises():
    with pytest.raises(ValueError, match="conflicts"):
        ExecutionConfig(backend=DistributedStatevectorBackend(shards=2), shards=4)


def test_shards_requires_ideal_backend():
    with pytest.raises(ValueError, match="no sharded execution path"):
        ExecutionConfig(backend=DensityMatrixBackend(), shards=2)
    with pytest.raises(ValueError, match="no sharded execution path"):
        ExecutionConfig(
            backend=MitigatedBackend(DensityMatrixBackend()), shards=2
        )


@pytest.mark.parametrize("bad", [0, 3, -2, 2.0, "2", True])
def test_shards_validation(bad):
    with pytest.raises(ValueError):
        ExecutionConfig(shards=bad)


def test_shards_json_roundtrip():
    cfg = ExecutionConfig(shards=4, estimator="shots", shots=99)
    data = json.loads(cfg.to_json())
    assert data["shards"] == 4
    assert data["backend"] == {"kind": "distributed", "shards": 4}
    assert ExecutionConfig.from_json(cfg.to_json()) == cfg
    # Wire forms written before the knob existed still load (field default).
    legacy = cfg.to_dict()
    del legacy["shards"]
    legacy["backend"] = {"kind": "statevector"}
    assert ExecutionConfig.from_dict(legacy).shards == 1


def test_shards_merged_combinator():
    cfg = ExecutionConfig()
    sharded = cfg.merged(shards=2)
    assert sharded.shards == 2
    assert isinstance(sharded.backend, DistributedStatevectorBackend)
    assert cfg.shards == 1  # original untouched


# ------------------------------------------------------------- array backend
def test_array_backend_default_is_numpy():
    cfg = ExecutionConfig()
    assert cfg.array_backend == "numpy"
    assert cfg.resolved_array_backend == "numpy"


@pytest.mark.parametrize("bad", ["bogus", "Numpy", "", 1, None, True])
def test_array_backend_unknown_names_raise_at_construction(bad):
    with pytest.raises(ValueError, match="array_backend"):
        ExecutionConfig(array_backend=bad)


def test_array_backend_json_roundtrip():
    cfg = ExecutionConfig(array_backend="auto", estimator="shots", shots=3)
    data = json.loads(cfg.to_json())
    assert data["array_backend"] == "auto"
    assert ExecutionConfig.from_json(cfg.to_json()) == cfg
    # Wire forms written before the knob existed still load (field default).
    legacy = cfg.to_dict()
    del legacy["array_backend"]
    assert ExecutionConfig.from_dict(legacy).array_backend == "numpy"


def test_array_backend_merged_combinator():
    cfg = ExecutionConfig()
    merged = cfg.merged(array_backend="auto")
    assert merged.array_backend == "auto"
    assert cfg.array_backend == "numpy"  # original untouched
    with pytest.raises(ValueError):
        cfg.merged(array_backend="gpu")
