"""Learning an unknown observable by regression (the paper's Sec. III.A
problem in its regression form).

A hidden 2-local observable ``O*`` generates labels ``y_i = tr(O* rho(x_i))``
for encoded images.  Because the 2-local Pauli expectations span exactly the
space O* lives in, the post-variational regressor with the Eq. 29 closed
form recovers the labels to machine precision -- and its fitted alpha
recovers O*'s Pauli coefficients (the CQO decomposition, learned from data).
With finite shots, the Theorem 4 budget predicts the loss degradation.

Run:  python examples/observable_regression.py
"""

import numpy as np

from repro.api import ExecutionConfig
from repro.core import (
    ObservableConstruction,
    PostVariationalRegressor,
    theorem4_required_entry_error,
)
from repro.data import binary_coat_vs_shirt, encode_batch
from repro.quantum import expectation
from repro.quantum.hamiltonians import random_local_hamiltonian


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=40, test_per_class=10)
    states_train = encode_batch(split.x_train)
    states_test = encode_batch(split.x_test)

    # Hidden observable: random 2-local Hamiltonian with 5 terms.
    hidden = random_local_hamiltonian(4, locality=2, num_terms=5, seed=3)
    y_train = np.asarray(expectation(states_train, hidden))
    y_test = np.asarray(expectation(states_test, hidden))
    print(f"hidden observable: {hidden.num_terms} Pauli terms, locality <= 2")

    strategy = ObservableConstruction(qubits=4, locality=2)
    model = PostVariationalRegressor(strategy=strategy, head="pinv")
    model.fit(split.x_train, y_train)
    print(f"train RMSE (exact estimator): {model.loss(split.x_train, y_train):.2e}")
    print(f"test  RMSE (exact estimator): {model.loss(split.x_test, y_test):.2e}")

    # The fitted alpha IS the Pauli decomposition of the hidden observable.
    recovered = dict(
        zip((o.string for o in strategy.observables()), model.model_.coef_, strict=True)
    )
    print("recovered coefficients vs truth (nonzero terms):")
    for coeff, pauli in hidden.items():
        print(f"  {pauli.string}: fitted {recovered[pauli.string]:+.4f}  "
              f"true {coeff.real:+.4f}")

    # Finite shots: Theorem 4 budgeting.
    m = strategy.num_features
    epsilon = 0.1
    eps_h = theorem4_required_entry_error(m, epsilon)
    shots = int(np.ceil(2.0 / eps_h**2 * np.log(2 * m * split.num_train / 0.05)))
    noisy = PostVariationalRegressor(
        strategy=strategy,
        head="constrained",
        config=ExecutionConfig(estimator="shots", shots=shots),
    )
    noisy.fit(split.x_train, y_train)
    print(f"\nshots/neuron for eps={epsilon} (Thm 4): {shots}")
    print(f"train RMSE (shot estimator, constrained head): "
          f"{noisy.loss(split.x_train, y_train):.4f}")


if __name__ == "__main__":
    main()
