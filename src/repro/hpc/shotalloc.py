"""Shot allocation across observables.

Given a total measurement budget ``T`` and ``m`` observables, how many shots
does each observable receive?  The paper's analysis (Propositions 1-2,
Table II) assumes uniform allocation; this module adds the two standard
refinements used in production VQE/QML stacks so the benchmarks can quantify
what uniform allocation leaves on the table:

* ``uniform``  -- T/m each (the paper's baseline);
* ``weighted`` -- proportional to |c_j| for a weighted sum sum_j c_j <P_j>
  (minimises the variance bound for fixed T by Cauchy-Schwarz when per-term
  variances are equal);
* ``variance`` -- proportional to |c_j| * sigma_j given variance estimates
  (the Neyman allocation, optimal for independent estimators).
"""

from __future__ import annotations

import numpy as np

__all__ = ["allocate_shots"]


def allocate_shots(
    total_shots: int,
    num_observables: int,
    coefficients: np.ndarray | None = None,
    variances: np.ndarray | None = None,
    policy: str = "uniform",
) -> np.ndarray:
    """Integer shot counts per observable summing to ``total_shots``.

    Remainders from rounding are given to the largest-weight observables, so
    the full budget is always spent (an invariant the tests pin).
    """
    if total_shots < 0:
        raise ValueError("total_shots must be >= 0")
    if num_observables < 1:
        raise ValueError("num_observables must be >= 1")

    if policy == "uniform":
        weights = np.ones(num_observables)
    elif policy == "weighted":
        if coefficients is None:
            raise ValueError("weighted policy requires coefficients")
        weights = np.abs(np.asarray(coefficients, dtype=float))
    elif policy == "variance":
        if coefficients is None or variances is None:
            raise ValueError("variance policy requires coefficients and variances")
        v = np.asarray(variances, dtype=float)
        if np.any(v < 0):
            raise ValueError("variances must be non-negative")
        weights = np.abs(np.asarray(coefficients, dtype=float)) * np.sqrt(v)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    if weights.shape != (num_observables,):
        raise ValueError("weight vector length mismatch")
    if weights.sum() == 0:
        weights = np.ones(num_observables)

    raw = total_shots * weights / weights.sum()
    shots = np.floor(raw).astype(int)
    remainder = total_shots - int(shots.sum())
    if remainder > 0:
        # Hand leftover shots to observables with the largest fractional part.
        frac_order = np.argsort(-(raw - shots), kind="stable")
        shots[frac_order[:remainder]] += 1
    return shots
