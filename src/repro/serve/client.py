"""Transport-agnostic client and load generator for the serving layer.

:class:`FeatureClient` is the tenant-side handle tests and demos use -- it
pins a tenant name so call sites read like remote clients would
(``await client.features("mnist", x)``).  Since the network transport
landed, the client speaks to any :class:`Transport`:

* :class:`InProcessTransport` -- same-loop calls straight into a
  :class:`FeatureService` (zero copies, zero sockets);
* :class:`~repro.serve.transport.TcpTransport` -- the length-prefixed
  wire protocol over a socket (see :mod:`repro.serve.protocol`).

The two are interchangeable by construction: the TCP response is decoded
from the raw bytes of the in-process array, so swapping transports never
changes a single bit of a response.  ``FeatureClient(service)`` still
works as a deprecated shim for ``FeatureClient(transport=
InProcessTransport(service))``.

:func:`run_load` drives a whole closed-loop benchmark over a service,
transport, or client: N concurrent logical clients submitting requests
round-robin over templates, returning a :class:`LoadReport` with
throughput and latency quantiles.  The perf-guard benchmark runs it twice
(micro-batched vs sequential per-request dispatch) and asserts on the
ratio; the transport benchmark runs it once per transport and asserts
on *that* ratio.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.api.config import UNSET
from repro.serve.metrics import _percentile_ms
from repro.serve.service import FeatureService

__all__ = [
    "Transport",
    "InProcessTransport",
    "FeatureClient",
    "LoadReport",
    "run_load",
]


@runtime_checkable
class Transport(Protocol):
    """What a client needs from any serving transport.

    ``templates()`` / ``template_shape()`` are synchronous because every
    transport knows its catalog up front (in-process: the registry; TCP:
    the ``welcome`` handshake).  ``submit`` / ``predict`` mirror
    :meth:`FeatureService.submit` / :meth:`~FeatureService.predict`
    exactly -- same tri-state seed, same deadline semantics, same typed
    errors -- so code written against a transport cannot tell where the
    service lives.
    """

    def templates(self) -> tuple[str, ...]: ...

    def template_shape(self, name: str) -> tuple[int, int]: ...

    async def submit(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray: ...

    async def predict(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray: ...

    async def aclose(self) -> None: ...


class InProcessTransport:
    """The null transport: direct same-loop calls into a service.

    ``aclose()`` is a no-op -- the transport borrows the service, it does
    not own its lifecycle (stop the service itself, or use it as an async
    context manager).
    """

    def __init__(self, service: FeatureService) -> None:
        if not isinstance(service, FeatureService):
            raise TypeError(f"service must be a FeatureService, got {service!r}")
        self.service = service

    def templates(self) -> tuple[str, ...]:
        return self.service.templates()

    def template_shape(self, name: str) -> tuple[int, int]:
        return self.service.template_shape(name)

    async def submit(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        return await self.service.submit(
            template, x, tenant=tenant, seed=seed, timeout_s=timeout_s
        )

    async def predict(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        return await self.service.predict(
            template, x, tenant=tenant, seed=seed, timeout_s=timeout_s
        )

    async def aclose(self) -> None:
        return None


def _as_transport(target: Any, *, owner: str) -> Transport:
    """Normalize a service / transport / client into a transport."""
    if isinstance(target, FeatureClient):
        return target.transport
    if isinstance(target, FeatureService):
        return InProcessTransport(target)
    if isinstance(target, Transport):
        return target
    raise TypeError(
        f"{owner} needs a FeatureService, a Transport, or a FeatureClient; "
        f"got {target!r}"
    )


class FeatureClient:
    """A tenant's handle on a serving transport.

    Build it over any transport::

        client = FeatureClient(transport=InProcessTransport(service))
        client = FeatureClient(transport=await TcpTransport.connect(host, port))

    The pre-transport form ``FeatureClient(service)`` still works but is
    deprecated: it wraps the service in an :class:`InProcessTransport`
    and warns at the caller's frame.
    """

    def __init__(
        self,
        service: FeatureService | Transport | None = None,
        tenant: str = "default",
        *,
        transport: Transport | None = None,
    ) -> None:
        if (service is None) == (transport is None):
            raise TypeError(
                "FeatureClient takes exactly one of a positional transport "
                "or transport=...; FeatureClient(service) is the deprecated "
                "spelling of FeatureClient(transport=InProcessTransport(service))"
            )
        if transport is None:
            if isinstance(service, FeatureService):
                warnings.warn(
                    "FeatureClient(service) is deprecated; pass "
                    "FeatureClient(transport=InProcessTransport(service)) "
                    "(or any other Transport) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                transport = InProcessTransport(service)
            else:
                transport = _as_transport(service, owner="FeatureClient")
        elif not isinstance(transport, Transport):
            raise TypeError(f"transport must implement Transport, got {transport!r}")
        self.transport = transport
        self.tenant = tenant

    @property
    def service(self) -> FeatureService | None:
        """The in-process service behind the transport, when there is one."""
        return getattr(self.transport, "service", None)

    async def features(
        self,
        template: str,
        x: np.ndarray,
        *,
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        return await self.transport.submit(
            template, x, tenant=self.tenant, seed=seed, timeout_s=timeout_s
        )

    async def predict(
        self,
        template: str,
        x: np.ndarray,
        *,
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        return await self.transport.predict(
            template, x, tenant=self.tenant, seed=seed, timeout_s=timeout_s
        )

    async def aclose(self) -> None:
        """Close the underlying transport (no-op for in-process)."""
        await self.transport.aclose()


@dataclass(frozen=True)
class LoadReport:
    """One closed-loop load run: counts, wall time, latency quantiles."""

    requests: int
    completed: int
    rejected: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float

    @property
    def throughput(self) -> float:
        """Completed requests per second over the run's wall time."""
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    target: FeatureService | Transport | FeatureClient,
    *,
    requests: int,
    concurrency: int,
    samples: int = 1,
    templates: tuple[str, ...] | None = None,
    tenants: tuple[str, ...] = ("default",),
    seed: int = 0,
    sequential: bool = False,
) -> LoadReport:
    """Drive ``requests`` total requests at ``concurrency`` through ``target``.

    ``target`` is a service (driven in-process, no deprecation -- the
    wrap is internal), any :class:`Transport`, or a
    :class:`FeatureClient` (its transport is used; per-request tenants
    still come from ``tenants``).  Request ``i`` targets template
    ``templates[i % len(templates)]`` as tenant ``tenants[i %
    len(tenants)]`` with deterministic angles drawn from ``seed`` and
    request seed ``seed + i`` -- so two runs over the same service config
    (on any transport) produce bit-identical responses.
    ``sequential=True`` awaits requests one at a time (the no-coalescing
    baseline); rejected requests (backpressure) are counted, not retried.
    """
    if requests < 1:
        raise ValueError(f"requests={requests} must be >= 1")
    if concurrency < 1:
        raise ValueError(f"concurrency={concurrency} must be >= 1")
    transport = _as_transport(target, owner="run_load")
    names = templates if templates is not None else transport.templates()
    if not names:
        raise ValueError("run_load needs at least one registered template")
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.uniform(0, np.pi, size=(samples, *transport.template_shape(name)))
        for name in names
    }
    latencies: list[float] = []
    rejected = 0

    async def one(i: int) -> None:
        nonlocal rejected
        name = names[i % len(names)]
        tenant = tenants[i % len(tenants)]
        t0 = time.perf_counter()
        try:
            await transport.submit(name, inputs[name], tenant=tenant, seed=seed + i)
        except Exception:
            rejected += 1
            return
        latencies.append(time.perf_counter() - t0)

    gate = asyncio.Semaphore(concurrency)

    async def gated(i: int) -> None:
        async with gate:
            await one(i)

    start = time.perf_counter()
    if sequential:
        for i in range(requests):
            await one(i)
    else:
        await asyncio.gather(*(gated(i) for i in range(requests)))
    elapsed = time.perf_counter() - start
    reservoir = deque(latencies)
    return LoadReport(
        requests=requests,
        completed=len(latencies),
        rejected=rejected,
        elapsed_s=elapsed,
        p50_ms=_percentile_ms(reservoir, 50),
        p99_ms=_percentile_ms(reservoir, 99),
    )
