"""Unified quantum execution backends for the Q-matrix sweep.

The paper treats noisy execution as a first-class regime (Table II,
Sec. IV.B), but the original code base forked it into a separate function
that bypassed the compiled engine, the persistent runtime and the scheduler
cost model.  This module collapses the fork: a :class:`QuantumBackend` is
the single substrate abstraction the feature pipeline talks to, and every
implementation streams through the same ``FeatureJob`` grid,
:class:`~repro.hpc.cluster.CircuitTask` cost model and
:class:`~repro.hpc.runtime.ExecutionRuntime` dispatch.

Three implementations cover the paper's regimes:

* :class:`StatevectorBackend` -- ideal pure-state simulation; wraps the
  compiled-circuit engine (the default, bit-for-bit the historical path);
* :class:`DensityMatrixBackend` -- exact Kraus evolution under a gate-level
  :class:`~repro.quantum.noise.NoiseModel` (O(4^n) state, the NISQ
  deployment path);
* :class:`MitigatedBackend` -- zero-noise extrapolation layered over any
  other backend: circuits are unitarily folded per noise scale
  (:func:`~repro.quantum.mitigation.fold_circuit`) and expectations are
  Richardson-extrapolated to zero
  (:func:`~repro.quantum.mitigation.richardson_weights`).

Backends are small frozen dataclasses of plain NumPy payloads, hence
picklable -- the property that lets one parent-side backend instance be
shipped to every process-pool worker.  The prepared-state *representation*
is backend-specific (``(d, 2^n)`` statevectors, ``(d, 2^n, 2^n)`` density
matrices, ``(d, scales, 2^n, 2^n)`` folded stacks); ``coerce_states`` lifts
plain statevectors into it so pre-encoded data keeps working everywhere.

Noise placement is gate-level, so density-based backends refuse fused
:class:`~repro.quantum.compile.CompiledCircuit` programs
(``supports_compile = False``): fusing gates would silently move the Kraus
insertion points.  The feature pipeline honours the flag by disabling
compilation for such backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.hpc.cluster import simulation_dim
from repro.quantum.batched import (
    GLOBAL_PARAMETRIC_CACHE,
    ParametricCompiledCircuit,
    compile_parametric,
    extend_template,
)
from repro.quantum.circuit import Circuit
from repro.quantum.compile import (
    DEFAULT_FUSION_WIDTH,
    CompiledCircuit,
    resolve_fusion_width,
)
from repro.quantum.density import (
    BatchedDensityProgram,
    apply_unitary,
    compile_density_template,
    concat_density_programs,
    fold_density_program,
    pure_density,
    run_batched_density,
    run_circuit_density,
)
from repro.quantum.mitigation import fold_circuit, richardson_weights
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import PauliString, expectation
from repro.quantum.sampling import estimate_from_probabilities, measure_pauli_batch
from repro.quantum.shadows import collect_shadows, estimate_pauli
from repro.quantum.statevector import run_circuit

__all__ = [
    "QuantumBackend",
    "StatevectorBackend",
    "DistributedStatevectorBackend",
    "DensityMatrixBackend",
    "MitigatedBackend",
    "MitigatedBatchProgram",
    "resolve_backend",
    "backend_to_dict",
    "backend_from_dict",
]


class QuantumBackend(ABC):
    """One execution substrate: state preparation, evolution, measurement.

    The contract the feature pipeline relies on:

    * ``prepare(angles)`` / ``coerce_states(states)`` produce a batch-first
      prepared-state array (axis 0 indexes data points, whatever the
      trailing representation), so chunk slicing ``states[lo:hi]`` works for
      every backend;
    * ``evolve``/``expectation``/``sample`` are pure functions of their
      inputs -- no hidden state -- so results are independent of the
      dispatch schedule;
    * instances are picklable value objects, shipped once per sweep to
      process workers.
    """

    #: Identifier used in logs and error messages.
    name: str = "backend"
    #: State representation driving the dispatch cost model
    #: (see :func:`repro.hpc.cluster.simulation_dim`).
    representation: str = "statevector"
    #: Whether gate-fused ``CompiledCircuit`` programs preserve this
    #: backend's semantics (False for gate-level noise insertion).
    supports_compile: bool = True
    #: Whether the classical-shadow estimator is available (pure states only).
    supports_shadows: bool = False
    #: Whether :meth:`batch_program`/:meth:`evolve_batch` can run a whole
    #: raw-angle chunk in stacked passes -- i.e. whether ``vectorize="auto"``
    #: batches this backend's sweep.  The program *kind* is backend-specific
    #: (fused :class:`~repro.quantum.batched.ParametricCompiledCircuit` for
    #: statevectors, fusion-free
    #: :class:`~repro.quantum.density.BatchedDensityProgram` for gate-level
    #: noise, where the per-gate Kraus insertion points must survive).
    supports_vectorize: bool = False
    #: Whether :meth:`prepare` is expensive enough (per-sample circuit
    #: evolution) to be worth fanning out across executor workers.  False
    #: for the statevector backend, whose ``encode_batch`` is already one
    #: vectorised kernel pass.
    parallel_prepare: bool = False
    #: Underlying circuit executions per logical circuit (1 except for
    #: mitigation, which runs one folded copy per noise scale).  Feeds the
    #: pipeline's resource accounting.
    circuit_repetitions: int = 1

    # ------------------------------------------------------------ preparation
    def prepare(self, angles: np.ndarray) -> np.ndarray:
        """Encode a ``(d, rows, cols)`` angle batch into prepared states.

        Default: run the explicit Fig. 7 encoder circuit per sample through
        :meth:`run_bound`, so encoder gates see the backend's full regime
        (Kraus noise, folding).  The statevector backend overrides this
        with the vectorised batch kernel.
        """
        from repro.data.encoding import encoding_circuit

        angles = np.asarray(angles, dtype=float)
        if angles.ndim != 3:
            raise ValueError("angles must be (d, rows, cols)")
        return np.stack([self.run_bound(encoding_circuit(a)) for a in angles])

    @abstractmethod
    def coerce_states(self, states: np.ndarray) -> np.ndarray:
        """Accept pre-encoded ``(d, 2^n)`` statevectors *or* an array already
        in this backend's representation; return the latter.

        Lifting pure statevectors happens noiselessly (the encoder already
        ran); use :meth:`prepare` to apply encoder-stage noise.
        """

    @abstractmethod
    def run_bound(self, circuit: Circuit) -> np.ndarray:
        """One prepared state: evolve ``circuit`` from ``|0...0>``."""

    # -------------------------------------------------------------- evolution
    @abstractmethod
    def evolve(
        self, states: np.ndarray, program: Circuit | CompiledCircuit | None
    ) -> np.ndarray:
        """Push a prepared-state batch through one Ansatz program.

        Concrete backends additionally accept a keyword-only ``xp`` (an
        array namespace from :mod:`repro.xp`); the pipeline only passes it
        when a non-NumPy namespace is selected, so third-party subclasses
        that ignore the knob keep working under the default config.
        """

    def batch_program(
        self,
        template: Circuit,
        ansatz: Circuit | None,
        compile: str | int = "auto",
        array_backend: str = "numpy",
    ):
        """Compile encoder ``template`` + bound ``ansatz`` into the program
        :meth:`evolve_batch` consumes (the ``vectorize="auto"`` artifact).

        Backend-specific: the statevector backend fuses into a
        :class:`~repro.quantum.batched.ParametricCompiledCircuit`; density
        backends build a fusion-free
        :class:`~repro.quantum.density.BatchedDensityProgram` so Kraus
        insertion points stay per-gate; the mitigated backend stacks one
        folded density program per noise scale.
        """
        raise NotImplementedError(
            f"backend {self.name!r} has no batched structure-shared execution "
            f"(supports_vectorize=False)"
        )

    def evolve_batch(
        self, angles: np.ndarray, program, *, xp=None
    ) -> np.ndarray:
        """Encode *and* evolve a raw angle chunk in one stacked pass.

        The batched counterpart of ``prepare`` + ``evolve``: ``program`` is
        the artifact :meth:`batch_program` compiled (encoder angle slots +
        one Ansatz instance) and ``angles`` is the raw
        ``(chunk, rows, cols)`` slice.  Only backends with
        ``supports_vectorize = True`` implement it; the feature pipeline
        falls back to the per-sample path everywhere else.  ``xp`` selects
        the array namespace (:mod:`repro.xp`); results return as NumPy.
        """
        raise NotImplementedError(
            f"backend {self.name!r} has no batched structure-shared execution "
            f"(supports_vectorize=False)"
        )

    # ------------------------------------------------------------ measurement
    @abstractmethod
    def expectation(self, evolved: np.ndarray, observable: PauliString) -> np.ndarray:
        """Analytic ``tr(O rho_i)`` per batch entry; returns shape (batch,)."""

    @abstractmethod
    def sample(
        self,
        evolved: np.ndarray,
        observable: PauliString,
        shots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Finite-shot estimates per batch entry (``shots == 0`` -> exact)."""

    def shadow_block(
        self,
        evolved: np.ndarray,
        observables: Sequence[PauliString],
        snapshots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Classical-shadow feature block; pure-state backends only.

        The pipeline rejects the combination up front with a detailed
        message (``repro.api.config.check_regime``); this guard covers
        direct calls only.
        """
        raise NotImplementedError(
            f"backend {self.name!r} has no classical-shadow support"
        )

    # ------------------------------------------------------------- cost model
    def evolution_cost_weight(self, num_qubits: int) -> float:
        """State-size factor entering the per-task dispatch cost.

        ``2^n`` amplitudes for statevectors, ``4^n`` entries for density
        matrices -- the scheduler prices noisy tasks accordingly.
        """
        return float(simulation_dim(num_qubits, self.representation))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class StatevectorBackend(QuantumBackend):
    """Ideal pure-state execution over the compiled-circuit engine.

    The historical default path, bit-for-bit: vectorised Fig. 7 encoding,
    fused-block (or naive) evolution, analytic/shot/shadow measurement.
    """

    name = "statevector"
    representation = "statevector"
    supports_compile = True
    supports_shadows = True
    supports_vectorize = True

    def prepare(self, angles: np.ndarray) -> np.ndarray:
        from repro.data.encoding import encode_batch

        return encode_batch(angles)

    def coerce_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.complex128)
        if states.ndim != 2:
            raise ValueError(
                f"statevector backend expects (d, 2**n) states, got shape {states.shape}"
            )
        return states

    def run_bound(self, circuit: Circuit) -> np.ndarray:
        return run_circuit(circuit)

    def evolve(
        self, states: np.ndarray, program: Circuit | CompiledCircuit | None, *, xp=None
    ) -> np.ndarray:
        if program is None:
            return states
        if isinstance(program, CompiledCircuit):
            return program.apply(states, xp=xp)
        # Raw-circuit evolution is the naive reference walk and stays on the
        # host namespace regardless of ``xp`` (it is never the hot path).
        return run_circuit(program, state=states)

    def batch_program(
        self,
        template: Circuit,
        ansatz: Circuit | None,
        compile: str | int = "auto",
        array_backend: str = "numpy",
    ) -> ParametricCompiledCircuit:
        # The batched engine is fusion by construction, so compile="off"
        # only means "no explicit width choice" -- the default applies.
        width = resolve_fusion_width(compile) or DEFAULT_FUSION_WIDTH
        return compile_parametric(
            extend_template(template, ansatz),
            max_width=width,
            array_backend=array_backend,
        )

    def evolve_batch(
        self, angles: np.ndarray, program: ParametricCompiledCircuit, *, xp=None
    ) -> np.ndarray:
        if not isinstance(program, ParametricCompiledCircuit):
            raise TypeError(
                f"evolve_batch expects a ParametricCompiledCircuit, got {program!r}"
            )
        return program.apply_batch(angles, xp=xp)

    def expectation(self, evolved: np.ndarray, observable: PauliString) -> np.ndarray:
        return np.asarray(expectation(evolved, observable))

    def sample(
        self,
        evolved: np.ndarray,
        observable: PauliString,
        shots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        return measure_pauli_batch(evolved, observable, shots, rng)

    def shadow_block(
        self,
        evolved: np.ndarray,
        observables: Sequence[PauliString],
        snapshots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        block = np.empty((evolved.shape[0], len(observables)))
        for i in range(evolved.shape[0]):
            shadow = collect_shadows(evolved[i], snapshots, rng)
            for b, obs in enumerate(observables):
                block[i, b] = estimate_pauli(shadow, obs)
        return block


@dataclass(frozen=True)
class DistributedStatevectorBackend(StatevectorBackend):
    """Sharded pure-state execution: the statevector slab-split across ranks.

    Semantically identical to :class:`StatevectorBackend` (the property the
    tests pin to <=1e-10) but every Ansatz evolution runs through
    :func:`~repro.quantum.distributed.run_sharded`: the chunk's states are
    slab-partitioned over ``shards`` SPMD ranks, fused blocks execute in
    communication-free gate groups, and qubit remaps happen only at group
    boundaries.  Encoding and measurement stay node-local (encoding is one
    vectorised kernel pass; measurement sees the gathered states), matching
    the paper's split where only the state evolution outgrows one node.

    ``supports_vectorize`` is False: the structure-shared batched engine is
    a single-address-space fast path, and sharding replaces it as the
    scale-out axis.  The scheduler prices the slab split through
    ``CircuitTask.num_shards`` instead of a changed cost weight, so the
    speedup and its sync overhead stay visible to dispatch.
    """

    shards: int = 2

    name = "distributed"
    supports_vectorize = False

    def __post_init__(self) -> None:
        shards = self.shards
        if not isinstance(shards, (int, np.integer)) or isinstance(shards, bool):
            raise ValueError(f"shards must be an int, got {shards!r}")
        shards = int(shards)
        if shards < 1 or shards & (shards - 1):
            raise ValueError(f"shards={shards} must be a power of two >= 1")
        object.__setattr__(self, "shards", shards)

    def run_bound(self, circuit: Circuit) -> np.ndarray:
        from repro.quantum.statevector import zero_state

        return self.evolve(zero_state(circuit.num_qubits), circuit)

    def evolve(
        self, states: np.ndarray, program: Circuit | CompiledCircuit | None, *, xp=None
    ) -> np.ndarray:
        # ``xp`` is accepted but unused: the sharded SPMD kernels are a
        # host-NumPy scale-out axis, not a device fast path.
        if program is None:
            return states
        from repro.quantum.distributed import run_sharded

        return run_sharded(program, states, self.shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistributedStatevectorBackend(shards={self.shards})"


def _density_pauli_probabilities(rhos: np.ndarray, pauli: PauliString) -> np.ndarray:
    """Measurement-outcome probabilities of ``pauli`` for a density batch.

    Rotates each rho into the Pauli eigenbasis (X -> H, Y -> H S^dag, the
    same basis changes as statevector sampling) and reads the diagonal.
    """
    from repro.quantum.gates import H, SDG

    probs = np.empty((rhos.shape[0], rhos.shape[1]))
    for i in range(rhos.shape[0]):
        rho = rhos[i]
        for qubit, letter in enumerate(pauli.string):
            if letter == "X":
                rho = apply_unitary(rho, H, (qubit,))
            elif letter == "Y":
                rho = apply_unitary(rho, H @ SDG, (qubit,))
        probs[i] = np.real(np.diagonal(rho))
    # Kraus roundoff can leave tiny negative diagonal entries.
    probs = np.clip(probs, 0.0, None)
    return probs / probs.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class DensityMatrixBackend(QuantumBackend):
    """Exact gate-level Kraus evolution: the NISQ deployment path.

    ``noise_model = None`` gives ideal (but O(4^n)) evolution -- the
    equivalence oracle the property suite checks against the statevector
    backend.  Preparation runs the explicit Fig. 7 encoder circuit per
    sample so encoder gates pick up noise too, exactly as the retired
    ``generate_features_noisy`` fork did.

    ``vectorize="auto"`` runs the sweep through the fusion-free batched
    engine (:class:`~repro.quantum.density.BatchedDensityProgram`): the
    whole chunk evolves gate by gate as one stacked tensor, so every
    gate/Kraus operator costs one ``(B, 4^n)`` kernel pass instead of ``B``
    Python-level walks -- same insertion points, same numerics to 1e-10
    (``benchmarks/test_density_batched_speedup.py``).
    """

    noise_model: NoiseModel | None = None

    name = "density"
    representation = "density"
    supports_compile = False
    supports_shadows = False
    supports_vectorize = True
    parallel_prepare = True

    def coerce_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.complex128)
        if states.ndim == 2:  # pre-encoded pure statevectors: lift noiselessly
            return np.stack([pure_density(s) for s in states])
        if states.ndim == 3 and states.shape[1] == states.shape[2]:
            return states
        raise ValueError(
            f"density backend expects (d, 2**n) statevectors or (d, 2**n, 2**n) "
            f"density matrices, got shape {states.shape}"
        )

    def run_bound(self, circuit: Circuit) -> np.ndarray:
        return run_circuit_density(circuit, noise_model=self.noise_model)

    def evolve(
        self, states: np.ndarray, program: Circuit | CompiledCircuit | None, *, xp=None
    ) -> np.ndarray:
        if program is None:
            return states
        if isinstance(program, CompiledCircuit):
            raise TypeError(
                "density backends evolve raw circuits only: gate fusion would "
                "move the per-gate Kraus insertion points (supports_compile=False)"
            )
        return np.stack(
            [
                run_circuit_density(
                    program, rho=rho, noise_model=self.noise_model, xp=xp
                )
                for rho in states
            ]
        )

    def batch_program(
        self,
        template: Circuit,
        ansatz: Circuit | None,
        compile: str | int = "auto",
        array_backend: str = "numpy",
    ) -> BatchedDensityProgram:
        # Validate the knob so a typo fails identically on every backend;
        # fusion itself never applies here (supports_compile=False).
        resolve_fusion_width(compile)
        return compile_density_template(
            extend_template(template, ansatz),
            self.noise_model,
            cache=GLOBAL_PARAMETRIC_CACHE,
            array_backend=array_backend,
        )

    def evolve_batch(
        self, angles: np.ndarray, program: BatchedDensityProgram, *, xp=None
    ) -> np.ndarray:
        if not isinstance(program, BatchedDensityProgram):
            raise TypeError(
                f"evolve_batch expects a BatchedDensityProgram, got {program!r}"
            )
        return run_batched_density(program, angles, xp=xp)

    def expectation(self, evolved: np.ndarray, observable: PauliString) -> np.ndarray:
        # tr(O rho) batched: one einsum over the whole chunk.
        matrix = observable.to_matrix()
        return np.real(np.einsum("ij,bji->b", matrix, evolved))

    def sample(
        self,
        evolved: np.ndarray,
        observable: PauliString,
        shots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        if shots < 0:
            raise ValueError(f"shots={shots} must be >= 0")
        if observable.is_identity:
            return np.ones(evolved.shape[0])
        if shots == 0:
            return self.expectation(evolved, observable)
        probs = _density_pauli_probabilities(evolved, observable)
        return estimate_from_probabilities(probs, observable, shots, rng)


@dataclass(frozen=True)
class MitigatedBatchProgram:
    """One folded :class:`BatchedDensityProgram` per ZNE noise scale.

    The ``vectorize="auto"`` artifact of :class:`MitigatedBackend` over a
    density backend: ``programs[k]`` is the *whole* per-sample circuit
    (encoder and Ansatz folded separately, then concatenated -- the same
    per-segment folding the per-sample path applies via ``fold_circuit``)
    at ``scales[k]``.  Evolving all of them yields the ``(d, scales, ...)``
    stack the mitigated estimators extrapolate over.
    """

    programs: tuple[BatchedDensityProgram, ...]

    #: Dispatch marker shared with the other batched program types.
    consumes_angles = True

    @property
    def num_qubits(self) -> int:
        return self.programs[0].num_qubits

    @property
    def num_slots(self) -> int:
        return self.programs[0].num_slots

    @property
    def num_kernel_passes(self) -> int:
        """Total stacked passes across all fold scales (the cost model's
        per-evolution count; folded copies are already included, so this
        must be priced at the *wrapped* backend's state size)."""
        return sum(p.num_kernel_passes for p in self.programs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MitigatedBatchProgram(scales={len(self.programs)}, "
            f"passes={self.num_kernel_passes})"
        )


@dataclass(frozen=True)
class MitigatedBackend(QuantumBackend):
    """Zero-noise extrapolation layered over another backend.

    Every circuit segment (encoder during :meth:`prepare`, Ansatz during
    :meth:`evolve`) is unitarily folded at each scale in ``scales`` and
    executed on the wrapped ``backend``; expectations (and shot estimates)
    are Richardson-extrapolated to scale 0 across the stack.  Per-segment
    folding amplifies each segment's gate noise by its scale, the local
    variant of the global ``C (C^dag C)^k`` scheme in
    :func:`~repro.quantum.mitigation.zne_expectation`.

    Prepared states carry one copy per scale -- shape
    ``(d, len(scales), *inner)`` -- so memory is ``len(scales)`` times the
    wrapped backend's.  Mitigated values are extrapolations and may leave
    the raw expectation's [-1, 1] range slightly.
    """

    backend: QuantumBackend = field(default_factory=DensityMatrixBackend)
    scales: tuple[int, ...] = (1, 3, 5)

    name = "mitigated"
    supports_compile = False
    supports_shadows = False
    parallel_prepare = True

    def __post_init__(self) -> None:
        if not isinstance(self.backend, QuantumBackend):
            raise TypeError(f"backend must be a QuantumBackend, got {self.backend!r}")
        if isinstance(self.backend, MitigatedBackend):
            raise TypeError("cannot nest MitigatedBackend inside MitigatedBackend")
        scales = tuple(int(s) for s in self.scales)
        if len(scales) < 2 or len(set(scales)) != len(scales):
            raise ValueError(f"scales={scales} must hold >= 2 distinct values")
        if any(s < 1 or s % 2 == 0 for s in scales):
            raise ValueError(f"scales={scales} must be odd positive integers")
        object.__setattr__(self, "scales", scales)
        # Extrapolation weights depend only on the (frozen) scales, so they
        # are computed once here rather than per chunk x observable.
        object.__setattr__(
            self, "_zne_weights", richardson_weights(np.asarray(scales, dtype=float))
        )

    @property
    def representation(self) -> str:  # type: ignore[override]
        return self.backend.representation

    @property
    def supports_vectorize(self) -> bool:  # type: ignore[override]
        # Folding happens at density-step level, so the batched mitigated
        # path exists exactly when the wrapped backend is the density engine
        # (statevector wrapping keeps the per-sample fold_circuit path).
        return isinstance(self.backend, DensityMatrixBackend)

    @property
    def circuit_repetitions(self) -> int:  # type: ignore[override]
        return len(self.scales) * self.backend.circuit_repetitions

    def evolution_cost_weight(self, num_qubits: int) -> float:
        # One evolution per scale, each `scale` times the gates.
        return float(sum(self.scales)) * self.backend.evolution_cost_weight(num_qubits)

    def coerce_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.complex128)
        num_scales = len(self.scales)
        # A per-scale stack from prepare() has exactly two more axes than a
        # single inner-representation state (batch + scale); matching on
        # the scale axis alone would misread e.g. 1-qubit (d, 2, 2) density
        # batches as stacks whenever 2**n happens to equal len(scales).
        inner_state_ndim = 2 if self.backend.representation == "density" else 1
        if states.ndim == inner_state_ndim + 2 and states.shape[1] == num_scales:
            return states
        # Pure statevectors (or inner-representation states): lift through
        # the wrapped backend, then replicate across scales -- a noiseless
        # input state is the same at every fold scale.
        inner = self.backend.coerce_states(states)
        return np.repeat(inner[:, None, ...], num_scales, axis=1)

    def run_bound(self, circuit: Circuit) -> np.ndarray:
        return np.stack(
            [self.backend.run_bound(fold_circuit(circuit, s)) for s in self.scales]
        )

    def evolve(
        self, states: np.ndarray, program: Circuit | CompiledCircuit | None, *, xp=None
    ) -> np.ndarray:
        if program is None:
            return states
        if isinstance(program, CompiledCircuit):
            raise TypeError(
                "mitigated backends fold raw circuits; compiled programs are "
                "not foldable (supports_compile=False)"
            )
        # Forward ``xp`` only when set: arbitrary wrapped backends need not
        # accept the keyword under the default NumPy config.
        kwargs = {} if xp is None else {"xp": xp}
        return np.stack(
            [
                self.backend.evolve(states[:, k], fold_circuit(program, s), **kwargs)
                for k, s in enumerate(self.scales)
            ],
            axis=1,
        )

    def batch_program(
        self,
        template: Circuit,
        ansatz: Circuit | None,
        compile: str | int = "auto",
        array_backend: str = "numpy",
    ) -> MitigatedBatchProgram:
        if not isinstance(self.backend, DensityMatrixBackend):
            raise NotImplementedError(
                "batched mitigated execution requires a wrapped "
                "DensityMatrixBackend (supports_vectorize is False otherwise)"
            )
        resolve_fusion_width(compile)  # validate the knob; fusion never applies
        noise = self.backend.noise_model
        encoder = compile_density_template(
            template, noise, cache=GLOBAL_PARAMETRIC_CACHE, array_backend=array_backend
        )
        suffix = None
        if ansatz is not None:
            suffix = compile_density_template(
                ansatz, noise, cache=GLOBAL_PARAMETRIC_CACHE, array_backend=array_backend
            )
        programs = []
        for s in self.scales:
            # Per-segment folding, exactly as the per-sample path: encoder
            # folds during prepare(), Ansatz folds during evolve().
            parts = [fold_density_program(encoder, s)]
            if suffix is not None:
                parts.append(fold_density_program(suffix, s))
            programs.append(concat_density_programs(*parts))
        return MitigatedBatchProgram(programs=tuple(programs))

    def evolve_batch(
        self, angles: np.ndarray, program: MitigatedBatchProgram, *, xp=None
    ) -> np.ndarray:
        if not isinstance(program, MitigatedBatchProgram):
            raise TypeError(
                f"evolve_batch expects a MitigatedBatchProgram, got {program!r}"
            )
        # (d, scales, 2^n, 2^n): the same stack shape prepare()+evolve()
        # produce, so the extrapolating estimators index it unchanged.
        return np.stack(
            [run_batched_density(p, angles, xp=xp) for p in program.programs],
            axis=1,
        )

    def expectation(self, evolved: np.ndarray, observable: PauliString) -> np.ndarray:
        values = np.stack(
            [
                self.backend.expectation(evolved[:, k], observable)
                for k in range(len(self.scales))
            ]
        )
        return self._zne_weights @ values

    def sample(
        self,
        evolved: np.ndarray,
        observable: PauliString,
        shots: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        from repro.utils.rng import as_rng

        rng = as_rng(rng) if shots else rng
        values = np.stack(
            [
                self.backend.sample(evolved[:, k], observable, shots, rng)
                for k in range(len(self.scales))
            ]
        )
        return self._zne_weights @ values


def backend_to_dict(backend: QuantumBackend | str | None) -> dict:
    """JSON-safe description of a backend (the ``ExecutionConfig`` wire form).

    Covers the three built-in regimes; a custom backend participates by
    providing its own ``to_dict`` returning a dict with a distinct
    ``kind`` (and a matching branch in a custom loader).
    """
    backend = resolve_backend(backend)
    # Exact-type matches only: a *subclass* of a built-in must provide its
    # own to_dict (below) rather than being silently flattened to the base
    # kind and losing its behavior on the round trip.
    if type(backend) is StatevectorBackend:
        return {"kind": "statevector"}
    if type(backend) is DistributedStatevectorBackend:
        return {"kind": "distributed", "shards": int(backend.shards)}
    if type(backend) is DensityMatrixBackend:
        noise = backend.noise_model
        return {
            "kind": "density",
            "noise_model": None if noise is None else noise.to_dict(),
        }
    if type(backend) is MitigatedBackend:
        return {
            "kind": "mitigated",
            "scales": [int(s) for s in backend.scales],
            "backend": backend_to_dict(backend.backend),
        }
    to_dict = getattr(backend, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(
        f"backend {type(backend).__name__} is not serializable; "
        f"implement a to_dict() returning a JSON-safe dict"
    )


def backend_from_dict(data: dict | None) -> QuantumBackend:
    """Inverse of :func:`backend_to_dict` (``None`` -> the ideal default)."""
    if data is None:
        return StatevectorBackend()
    kind = data.get("kind")
    if kind == "statevector":
        return StatevectorBackend()
    if kind == "distributed":
        return DistributedStatevectorBackend(shards=int(data.get("shards", 2)))
    if kind == "density":
        noise = data.get("noise_model")
        return DensityMatrixBackend(
            noise_model=None if noise is None else NoiseModel.from_dict(noise)
        )
    if kind == "mitigated":
        return MitigatedBackend(
            backend=backend_from_dict(data.get("backend")),
            scales=tuple(int(s) for s in data.get("scales", (1, 3, 5))),
        )
    raise ValueError(
        f"unknown backend kind {kind!r}; expected one of "
        f"('statevector', 'distributed', 'density', 'mitigated')"
    )


def resolve_backend(backend: QuantumBackend | str | None) -> QuantumBackend:
    """Coerce the user-facing ``backend`` knob to an instance.

    ``None`` and ``"statevector"`` give the ideal default; other regimes
    need configuration (a noise model, fold scales), so they must be passed
    as instances.
    """
    if backend is None or backend == "statevector":
        return StatevectorBackend()
    if isinstance(backend, QuantumBackend):
        return backend
    raise ValueError(
        f'backend must be a QuantumBackend instance, "statevector" or None, '
        f"got {backend!r}"
    )
