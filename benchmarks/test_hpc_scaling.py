"""E7 -- hybrid HPC-QC scaling: the SC-track headline experiment.

Three panels:

1. *Strong scaling* (simulated cluster): the Table III hybrid workload's
   dispatch grid over 1..64 nodes; near-linear until per-node work
   approaches the per-circuit overhead.
2. *Weak scaling*: per-node workload held constant; efficiency ~ 1.
3. *Scheduling policies*: LPT / work-stealing vs naive block/cyclic on the
   heterogeneous post-transpilation cost profile (shift circuits of higher
   derivative order are deeper).

Also times the *real* thread-parallel feature generation as a smoke check
that the executor path works outside simulation (no speedup assertion --
host-dependent).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import HybridPipeline
from repro.core.strategies import HybridStrategy
from repro.hpc.cluster import ClusterModel, NodeSpec, strong_scaling, weak_scaling
from repro.hpc.executor import ParallelExecutor
from repro.hpc.profiling import scaling_report
from repro.hpc.scheduler import SCHEDULING_POLICIES, schedule


def build_workload(split):
    """The E1 hybrid ensemble as cluster dispatch units."""
    pipe = HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1),
        estimator="shots",
        shots=1024,
        chunk_size=25,
    )
    return pipe, pipe.circuit_tasks(split.num_train)


def run_scaling(split):
    pipe, tasks = build_workload(split)
    node = NodeSpec(shot_rate=1e5, circuit_overhead=1e-3)
    node_counts = [1, 2, 4, 8, 16, 32, 64]
    strong = strong_scaling(tasks, node, node_counts)
    weak = weak_scaling(tasks[: max(1, len(tasks) // 8)], node, [1, 2, 4, 8])

    # Heterogeneous per-task costs: deeper shift circuits cost more.
    model = ClusterModel(node=node, num_nodes=8)
    rng = np.random.default_rng(0)
    costs = np.array(
        [model.task_compute_time(t) * rng.uniform(0.5, 2.0) for t in tasks]
    )
    policies = {p: schedule(costs, 8, p) for p in SCHEDULING_POLICIES}
    return strong, weak, policies


def test_hpc_scaling(benchmark, small_split):
    strong, weak, policies = benchmark.pedantic(
        run_scaling, args=(small_split,), rounds=1, iterations=1
    )

    print("\n=== E7a: strong scaling (simulated cluster, hybrid 1+1 ensemble) ===")
    print(scaling_report(strong))
    print("=== E7b: weak scaling ===")
    print(scaling_report(weak))
    print("=== E7c: scheduling policies (8 nodes, heterogeneous costs) ===")
    for name, a in policies.items():
        print(
            f"{name:<15} makespan={a.makespan:.4f}s  imbalance={a.imbalance:.3f}  "
            f"efficiency={a.efficiency():.3f}"
        )

    # Near-linear strong scaling in the QPU-bound region.
    by_nodes = {p.num_nodes: p for p in strong}
    assert by_nodes[2].efficiency > 0.9
    assert by_nodes[8].efficiency > 0.85
    # Speedup is monotone in node count.
    speedups = [p.speedup for p in strong]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:], strict=False))
    # But efficiency decays once nodes outnumber work granularity.
    assert by_nodes[64].efficiency <= by_nodes[2].efficiency + 1e-9

    # Weak scaling stays efficient.
    assert all(p.efficiency > 0.85 for p in weak)

    # LPT and work stealing beat static block on heterogeneous costs.
    assert policies["lpt"].makespan <= policies["block"].makespan + 1e-12
    assert policies["work_stealing"].makespan <= policies["block"].makespan * 1.05


def test_real_executor_smoke(benchmark, small_split):
    """Wall-clock sanity of the real thread backend on the same ensemble
    (results equality is asserted in the unit suite; here we just measure)."""

    def run():
        pipe = HybridPipeline(
            strategy=HybridStrategy(order=1, locality=1),
            executor=ParallelExecutor("thread", 4),
            chunk_size=25,
        )
        start = time.perf_counter()
        pipe.fit(small_split.x_train, small_split.y_train)
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreal thread-pool fit (m=221, d={small_split.num_train}): {elapsed:.2f}s")
    assert elapsed < 120.0
