"""Data re-uploading variational classifier (paper Sec. III.B, ref. [47]).

The paper notes that variational models with *alternating* data-encoding
layers and trainable Ansaetze (Perez-Salinas et al.) map exactly onto the
simple encode-once construction it analyses, at the cost of more qubits.
This module ships the re-uploading model itself so the repository covers
the full baseline family: ``r`` repetitions of [Fig. 7 encoder -> trainable
Fig. 8 layer], trained with exact parameter-shift gradients.

Frequency-spectrum intuition (Schuld et al. [40]): each re-upload doubles
the reachable Fourier spectrum of the decision function, which the tests
verify on a synthetic frequency-discrimination task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ansatz import hardware_efficient_ansatz
from repro.ml.metrics import accuracy
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import run_circuit, zero_state
from repro.quantum.statevector import apply_matrix_batch
from repro.quantum.gates import H

__all__ = ["ReuploadingClassifier"]

_SHIFT = np.pi / 2


@dataclass
class ReuploadingClassifier:
    """``r`` x [encode + trainable layer] variational classifier.

    ``reuploads`` = r; the trainable block per repetition is one RY layer +
    CNOT ring (num_qubits parameters), so k = r * n parameters total.
    Binary labels; readout ``<Z_0>``; squared loss on +-1 targets.
    """

    num_qubits: int = 4
    reuploads: int = 2
    learning_rate: float = 0.2
    epochs: int = 30
    theta_: np.ndarray | None = field(default=None, repr=False)
    history_: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.reuploads < 1:
            raise ValueError("reuploads must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._block = hardware_efficient_ansatz(
            self.num_qubits, 1, rotation="ry", mirror=False
        )
        self._observable = PauliString("Z" + "I" * (self.num_qubits - 1))

    @property
    def num_parameters(self) -> int:
        return self.reuploads * self.num_qubits

    # ----------------------------------------------------------- forward
    def _forward(self, angles: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """<Z_0> after r alternations of encode / trainable block.

        Re-encoding applies the Fig. 7 rotations to the *current* state (no
        reset): implemented by re-running the batched encoder kernels.
        """
        d = angles.shape[0]
        n = self.num_qubits
        states = zero_state(n, batch=d)
        for q in range(n):
            states = apply_matrix_batch(states, H, (q,))
        blocks = theta.reshape(self.reuploads, n)
        from repro.quantum.gates import rx_batch, rz_batch

        for r in range(self.reuploads):
            for row in range(angles.shape[1]):
                maker = rz_batch if row % 2 == 0 else rx_batch
                for q in range(n):
                    states = apply_matrix_batch(states, maker(angles[:, row, q]), (q,))
            states = run_circuit(self._block.bind(blocks[r]), state=states)
        return np.asarray(expectation(states, self._observable))

    # ------------------------------------------------------------- train
    def fit(self, angles: np.ndarray, y: np.ndarray) -> ReuploadingClassifier:
        angles = np.asarray(angles, dtype=float)
        y = np.asarray(y).ravel().astype(int)
        targets = 2.0 * y - 1.0
        k = self.num_parameters
        theta = np.zeros(k)
        self.history_ = []
        for _ in range(self.epochs):
            pred = self._forward(angles, theta)
            self.history_.append(float(np.mean((pred - targets) ** 2)))
            residual = 2.0 * (pred - targets) / targets.size
            grad = np.zeros(k)
            for u in range(k):
                e = np.zeros(k)
                e[u] = _SHIFT
                grad[u] = float(
                    residual
                    @ (0.5 * (self._forward(angles, theta + e) - self._forward(angles, theta - e)))
                )
            theta = theta - self.learning_rate * grad
        self.theta_ = theta
        return self

    # ------------------------------------------------------------ predict
    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("model is not fitted")
        return (self._forward(np.asarray(angles, dtype=float), self.theta_) >= 0).astype(int)

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))
