"""Loss-function tests, including the paper's MAE <= RMSE ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.losses import (
    bce_loss,
    cross_entropy_loss,
    mae_loss,
    rmse_loss,
    sigmoid,
    softmax,
)

vectors = st.lists(st.floats(-10, 10), min_size=1, max_size=50)


def test_rmse_known_value():
    assert rmse_loss([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0 / np.sqrt(2))


def test_mae_known_value():
    assert mae_loss([0.0, 0.0], [3.0, 4.0]) == pytest.approx(3.5)


@given(y=vectors, data=st.data())
@settings(max_examples=60)
def test_mae_le_rmse(y, data):
    """Paper Eq. 13: L_MAE <= L_RMSE (Cauchy-Schwarz)."""
    yhat = data.draw(
        st.lists(st.floats(-10, 10), min_size=len(y), max_size=len(y))
    )
    assert mae_loss(y, yhat) <= rmse_loss(y, yhat) + 1e-12


@given(y=vectors)
@settings(max_examples=30)
def test_perfect_prediction_is_zero(y):
    assert rmse_loss(y, y) == 0.0
    assert mae_loss(y, y) == 0.0


def test_bce_known_values():
    assert bce_loss([1.0], [1.0]) == pytest.approx(0.0, abs=1e-9)
    assert bce_loss([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))


def test_bce_clipping_no_inf():
    assert np.isfinite(bce_loss([1.0], [0.0]))


@given(z=st.lists(st.floats(-500, 500), min_size=1, max_size=20))
@settings(max_examples=60)
def test_sigmoid_stable_and_bounded(z):
    out = sigmoid(np.array(z))
    assert np.all(np.isfinite(out))
    assert np.all((out >= 0) & (out <= 1))


def test_sigmoid_symmetry():
    z = np.linspace(-5, 5, 11)
    assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)


@given(z=st.lists(st.floats(-300, 300), min_size=2, max_size=10))
@settings(max_examples=60)
def test_softmax_normalised(z):
    p = softmax(np.array(z))
    assert np.all(np.isfinite(p))
    assert p.sum() == pytest.approx(1.0)


def test_softmax_batch():
    z = np.array([[1.0, 2.0], [0.0, 0.0]])
    p = softmax(z)
    assert np.allclose(p.sum(axis=1), 1.0)
    assert p[1, 0] == pytest.approx(0.5)


def test_cross_entropy_perfect():
    onehot = np.eye(3)
    assert cross_entropy_loss(onehot, onehot) == pytest.approx(0.0, abs=1e-9)


def test_shape_mismatches():
    with pytest.raises(ValueError):
        rmse_loss([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        mae_loss([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        bce_loss([1.0], [0.5, 0.5])
    with pytest.raises(ValueError):
        cross_entropy_loss(np.eye(2), np.eye(3))
