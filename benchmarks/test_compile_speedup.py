"""E12 -- compiled-circuit engine: naive vs fused wall time.

The Q-matrix sweep (paper Algorithm 1) re-executes the same fixed circuit on
every data chunk, so ahead-of-time fusion (paper Sec. VIII argument applied
to execution rather than gate count) should amortise: blocks of support <= k
collapse ~3-4 gates into one tensordot.  Measured here on the reference
workload -- 8 qubits, depth >= 40, batch 256 -- with the acceptance bar of a
>= 2x speedup over the naive per-gate engine.

Smoke mode (``COMPILE_BENCH_SMOKE=1``, the CI perf-guard job) shrinks the
workload and gates on correctness + "fused is not slower" only.  Results
are written to ``BENCH_compile.json`` when ``BENCH_WRITE=1`` (opt-in, so
local runs never dirty the tree; the perf-guard job uploads the file as a
workflow artifact).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import best_of, env_flag, write_bench_record
from repro.quantum.circuit import Circuit
from repro.quantum.compile import DEFAULT_FUSION_WIDTH, compile_circuit
from repro.quantum.statevector import run_circuit

SMOKE = env_flag("COMPILE_BENCH_SMOKE")

NUM_QUBITS = 8
TARGET_DEPTH = 10 if SMOKE else 40
BATCH = 16 if SMOKE else 256
REPEATS = 2 if SMOKE else 5


def build_workload() -> tuple[Circuit, np.ndarray]:
    """A depth>=40 hardware-efficient circuit and a batch-256 state block."""
    rng = np.random.default_rng(0)
    circuit = Circuit(NUM_QUBITS, name="qmatrix-hotpath")
    while circuit.depth() < TARGET_DEPTH:
        for q in range(NUM_QUBITS):
            circuit.append("ry", q, rng.uniform(-np.pi, np.pi))
            circuit.append("rz", q, rng.uniform(-np.pi, np.pi))
        for q in range(NUM_QUBITS - 1):
            circuit.append("cnot", (q, q + 1))
    states = rng.normal(size=(BATCH, 2**NUM_QUBITS)) + 1j * rng.normal(
        size=(BATCH, 2**NUM_QUBITS)
    )
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    return circuit, states


def run_speedup():
    circuit, states = build_workload()
    compile_start = time.perf_counter()
    program = compile_circuit(circuit, cache=None)
    compile_time = time.perf_counter() - compile_start

    naive = run_circuit(circuit, state=states)
    fused = program.apply(states)
    max_err = float(np.abs(naive - fused).max())

    t_naive = best_of(lambda: run_circuit(circuit, state=states), REPEATS)
    t_fused = best_of(lambda: program.apply(states), REPEATS)
    return {
        "benchmark": "compile_speedup",
        "num_qubits": NUM_QUBITS,
        "batch": BATCH,
        "smoke": SMOKE,
        "gates": circuit.num_gates,
        "depth": circuit.depth(),
        "blocks": program.num_blocks,
        "fusion_width": DEFAULT_FUSION_WIDTH,
        "compile_time": compile_time,
        "t_naive": t_naive,
        "t_fused": t_fused,
        "speedup": t_naive / t_fused,
        "max_err": max_err,
    }


def test_compile_speedup(benchmark):
    r = benchmark.pedantic(run_speedup, rounds=1, iterations=1)
    write_bench_record("BENCH_compile.json", r)

    print("\n=== E12: compiled engine on the Q-matrix hot path ===")
    print(
        f"workload: {NUM_QUBITS} qubits, depth {r['depth']}, "
        f"{r['gates']} gates, batch {BATCH}"
    )
    print(
        f"fusion (k={r['fusion_width']}): {r['gates']} gates -> {r['blocks']} blocks, "
        f"compiled once in {r['compile_time']*1e3:.1f} ms"
    )
    print(
        f"naive {r['t_naive']*1e3:.1f} ms  compiled {r['t_fused']*1e3:.1f} ms  "
        f"speedup {r['speedup']:.2f}x  (max |diff| {r['max_err']:.1e})"
    )

    # Correctness first: fused execution is the same map.
    assert r["max_err"] < 1e-10
    if SMOKE:
        # The CI perf-guard gate: fusion must never lose to the naive
        # engine, even on the shrunken workload.
        assert r["speedup"] >= 1.0
    else:
        # The tentpole acceptance bar: >= 2x on the reference workload.
        # (The sweep reuses one compiled artifact across hundreds of
        # chunks, so the steady-state per-call time is the honest
        # comparison; compile cost is reported above and amortises after
        # the first chunk.)
        assert r["speedup"] >= 2.0
    # Fusion actually fused: at least a 2x reduction in kernel launches.
    assert r["blocks"] * 2 <= r["gates"]
