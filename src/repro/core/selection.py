"""Greedy ensemble selection -- attacking the paper's stated hard problem.

Table I, last row: the post-variational challenge is the "heuristic choice
of fixed circuits and observables from an exponential amount of possible
circuits".  Beyond the paper's static recipes (locality cutoffs, derivative
orders, pruning), this module implements *forward greedy selection*: start
from the empty ensemble and repeatedly add the feature column whose
inclusion most reduces validation loss of the convex head.

Because the head is least squares, each candidate evaluation is an O(d)
rank-one update via the QR-less orthogonalisation trick (project candidate
and residual against the selected span), so a full greedy pass over m
candidates costs O(k m d) for k selected features -- fast enough to sweep
the 1677-column hybrid ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GreedySelectionResult", "greedy_forward_selection"]


@dataclass
class GreedySelectionResult:
    """Selected column indices (in order) and the loss trajectory."""

    selected: list[int]
    train_loss_path: list[float]
    validation_loss_path: list[float] = field(default_factory=list)

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def greedy_forward_selection(
    q: np.ndarray,
    y: np.ndarray,
    max_features: int,
    q_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    tol: float = 1e-12,
) -> GreedySelectionResult:
    """Orthogonal-matching-pursuit-style selection of Q-matrix columns.

    Maintains an orthonormal basis of the selected span; at each step the
    candidate maximising squared correlation with the current residual is
    added (equivalently: minimises the post-refit squared loss).  Stops at
    ``max_features`` or when no candidate reduces the residual by ``tol``.

    ``q_val``/``y_val`` record an out-of-sample loss trajectory, letting
    callers pick the elbow (validation-optimal ensemble size).
    """
    q = np.asarray(q, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    d, m = q.shape
    if y.shape != (d,):
        raise ValueError("y length mismatch")
    if max_features < 1:
        raise ValueError("max_features must be >= 1")
    if (q_val is None) != (y_val is None):
        raise ValueError("provide both q_val and y_val, or neither")

    residual = y.copy()
    basis: list[np.ndarray] = []
    selected: list[int] = []
    remaining = list(range(m))
    train_path: list[float] = []
    val_path: list[float] = []

    # Orthogonalised copies of the candidate columns (updated in place).
    candidates = q.copy()

    for _ in range(min(max_features, m)):
        norms = np.linalg.norm(candidates[:, remaining], axis=0)
        scores = np.zeros(len(remaining))
        valid = norms > 1e-12
        projections = candidates[:, remaining].T @ residual
        scores[valid] = (projections[valid] ** 2) / (norms[valid] ** 2)
        best_pos = int(np.argmax(scores))
        if scores[best_pos] <= tol:
            break
        col_index = remaining.pop(best_pos)
        direction = candidates[:, col_index]
        direction = direction / np.linalg.norm(direction)
        basis.append(direction)
        selected.append(col_index)
        # Deflate residual and remaining candidates against the new basis
        # vector (classical Gram-Schmidt step).
        residual = residual - (direction @ residual) * direction
        candidates[:, remaining] -= np.outer(
            direction, direction @ candidates[:, remaining]
        )
        train_path.append(float(np.linalg.norm(residual) / np.sqrt(d)))
        if q_val is not None:
            coef, *_ = np.linalg.lstsq(q[:, selected], y, rcond=None)
            val_pred = np.asarray(q_val, dtype=float)[:, selected] @ coef
            val_path.append(
                float(np.linalg.norm(np.asarray(y_val, float) - val_pred) / np.sqrt(len(val_pred)))
            )

    return GreedySelectionResult(
        selected=selected,
        train_loss_path=train_path,
        validation_loss_path=val_path,
    )
