"""Static diagnostics engine: program, config/plan, and codebase lint.

Three layers behind one stable-code surface (``RPAxxx``,
:data:`~repro.analysis.diagnostics.DIAGNOSTIC_CODES`):

* :func:`lint_circuit` -- circuit/template IR analysis, no execution;
* :func:`lint_config`  -- cross-field ``ExecutionConfig`` plan checks;
* :mod:`repro.analysis.astlint` -- repo-invariant AST lint
  (``python -m repro.analysis.astlint src/``).

Entry points: the ``repro lint`` CLI subcommand,
``QuantumDevice.check(program)``, ``ExecutionConfig.diagnose()``, and the
opt-in ``ExecutionConfig(preflight=...)`` knob that runs
:func:`run_preflight` at job-build time.
"""

from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    CodeSpec,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.plan import lint_config, lint_serve_config
from repro.analysis.preflight import (
    PREFLIGHT_MODES,
    PreflightError,
    PreflightWarning,
    resolve_preflight,
    run_preflight,
    run_serve_preflight,
)
from repro.analysis.program import lint_circuit, lint_noise_model

__all__ = [
    "DIAGNOSTIC_CODES",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "CodeSpec",
    "Diagnostic",
    "DiagnosticReport",
    "PREFLIGHT_MODES",
    "PreflightError",
    "PreflightWarning",
    "lint_circuit",
    "lint_config",
    "lint_noise_model",
    "lint_serve_config",
    "resolve_preflight",
    "run_preflight",
    "run_serve_preflight",
]
