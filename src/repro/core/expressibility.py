"""Expressibility and entangling-capability metrics (Sim et al.).

The post-variational trade (paper Sec. III.C): "exchange expressibility of
the circuit with trainability of the entire model".  These metrics make the
exchanged quantity measurable:

* :func:`expressibility_kl` -- KL divergence between the Ansatz's pairwise
  state-fidelity distribution and the Haar distribution
  ``P_Haar(F) = (2^n - 1)(1 - F)^{2^n - 2}`` (smaller = more expressive);
* :func:`entangling_capability` -- mean Meyer-Wallach entanglement Q over
  random parameters.

Benchmark users can thereby quantify how much expressibility each strategy
keeps (the order-R shift ensembles sample the Ansatz at finitely many
points, bounding their reachable set).
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.density import partial_trace, pure_density
from repro.quantum.statevector import run_circuit
from repro.utils.rng import as_rng

__all__ = ["haar_fidelity_pdf", "expressibility_kl", "meyer_wallach_q", "entangling_capability"]


def haar_fidelity_pdf(fidelity: np.ndarray, num_qubits: int) -> np.ndarray:
    """Haar-random pure-state pairwise fidelity density."""
    dim = 2**num_qubits
    f = np.asarray(fidelity, dtype=float)
    return (dim - 1) * np.power(np.clip(1.0 - f, 0.0, 1.0), dim - 2)


def expressibility_kl(
    circuit: Circuit,
    num_pairs: int = 300,
    bins: int = 30,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """KL(P_circuit || P_Haar) over binned pairwise fidelities.

    0 means Haar-indistinguishable (maximally expressive); an identity-only
    circuit gives a large value (all fidelities = 1).
    """
    rng = as_rng(seed)
    k = circuit.num_parameters
    fids = np.empty(num_pairs)
    for i in range(num_pairs):
        a = run_circuit(circuit, params=rng.uniform(-np.pi, np.pi, k))
        b = run_circuit(circuit, params=rng.uniform(-np.pi, np.pi, k))
        fids[i] = abs(np.vdot(a, b)) ** 2
    edges = np.linspace(0.0, 1.0, bins + 1)
    counts, _ = np.histogram(fids, bins=edges)
    p = counts / counts.sum()
    centers = 0.5 * (edges[:-1] + edges[1:])
    q = haar_fidelity_pdf(centers, circuit.num_qubits)
    q = q / q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], 1e-12))))


def meyer_wallach_q(state: np.ndarray, num_qubits: int) -> float:
    """Meyer-Wallach global entanglement: ``Q = 2 (1 - mean_k tr(rho_k^2))``.

    0 for product states, -> 1 for highly entangled states.
    """
    rho = pure_density(np.asarray(state, dtype=np.complex128))
    purities = []
    for q in range(num_qubits):
        marginal = partial_trace(rho, keep=[q])
        purities.append(float(np.trace(marginal @ marginal).real))
    return float(2.0 * (1.0 - np.mean(purities)))


def entangling_capability(
    circuit: Circuit,
    num_samples: int = 100,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Mean Meyer-Wallach Q of the Ansatz over random parameters."""
    rng = as_rng(seed)
    k = circuit.num_parameters
    total = 0.0
    for _ in range(num_samples):
        psi = run_circuit(circuit, params=rng.uniform(-np.pi, np.pi, k))
        total += meyer_wallach_q(psi, circuit.num_qubits)
    return total / num_samples
