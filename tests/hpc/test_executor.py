"""Executor backend equivalence and ordering tests."""

import numpy as np
import pytest

from repro.hpc.executor import ExecutorConfig, ParallelExecutor


def square(x):
    return x * x


def test_config_validation():
    with pytest.raises(ValueError):
        ExecutorConfig(backend="gpu")
    with pytest.raises(ValueError):
        ExecutorConfig(max_workers=0)


def test_serial_map():
    ex = ParallelExecutor()
    assert ex.map(square, [1, 2, 3]) == [1, 4, 9]


def test_empty_tasks():
    assert ParallelExecutor("thread", 4).map(square, []) == []


@pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 4), ("process", 2)])
def test_backends_agree(backend, workers):
    tasks = list(range(20))
    expected = [square(t) for t in tasks]
    ex = ParallelExecutor(backend, workers)
    assert ex.map(square, tasks) == expected


def test_order_preserved_despite_uneven_work():
    """Results must follow task order, not completion order."""
    import time

    def slow_then_fast(x):
        time.sleep(0.02 if x == 0 else 0.0)
        return x

    ex = ParallelExecutor("thread", 4)
    assert ex.map(slow_then_fast, list(range(8))) == list(range(8))


def test_starmap_thread():
    ex = ParallelExecutor("thread", 2)
    assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]


def add(a, b):
    return a + b


def test_starmap_process():
    ex = ParallelExecutor("process", 2)
    assert ex.starmap(add, [(1, 2), (3, 4)]) == [3, 7]


def test_numpy_payloads_roundtrip():
    ex = ParallelExecutor("thread", 3)
    arrays = [np.full(4, i) for i in range(6)]
    out = ex.map(lambda a: a.sum(), arrays)
    assert out == [0, 4, 8, 12, 16, 20]
