"""repro -- Post-variational quantum neural networks on a hybrid HPC-QC system.

Reproduction of Huang & Rebentrost, "Post-variational quantum neural
networks" (arXiv:2307.10560), with a simulated hybrid HPC-QC execution
substrate.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Public API highlights
---------------------
* :mod:`repro.api` -- **the unified execution API**: ``ExecutionConfig``
  (one typed, serializable object for every execution knob),
  ``QuantumDevice`` (a context-managed session over the persistent
  runtime) and the sklearn-style ``QuantumFeatureMap``.
* :mod:`repro.quantum` -- batched statevector simulator, Pauli observables,
  classical shadows, parameter-shift differentiation.
* :mod:`repro.core` -- the post-variational strategies (Ansatz expansion,
  observable construction, hybrid), models, measurement budgets, CQS.
* :mod:`repro.hpc` -- MPI-style communicator, parallel executors, schedulers
  and a deterministic simulated-cluster timing model.
* :mod:`repro.ml` -- the classical heads and baselines (linear/logistic/MLP).
* :mod:`repro.data` -- synthetic Fashion-MNIST and the Fig. 7 data encoding.
"""

__version__ = "1.0.0"
