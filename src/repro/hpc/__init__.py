"""HPC substrate: communicator, executors, schedulers, cluster model.

Substitutes the paper's HPC stack (see DESIGN.md): an mpi4py-style SPMD
communicator, real thread/process execution backends, scheduling policies
with analytic makespans and a deterministic simulated-cluster timing model
for reproducible scaling studies.
"""

from repro.hpc.comm import Communicator, Request, SpmdError, run_spmd
from repro.hpc.executor import ExecutorConfig, ParallelExecutor
from repro.hpc.runtime import (
    DispatchReport,
    ExecutionRuntime,
    TaskCompletion,
    resolve_max_workers,
)
from repro.hpc.partition import (
    balanced_cost_partition,
    block_partition,
    chunk_ranges,
    cyclic_partition,
)
from repro.hpc.scheduler import (
    SCHEDULING_POLICIES,
    Assignment,
    schedule,
    submission_order,
    work_stealing_schedule,
)
from repro.hpc.cluster import (
    CircuitTask,
    ClusterModel,
    NodeSpec,
    ScalingPoint,
    strong_scaling,
    task_costs,
    weak_scaling,
)
from repro.hpc.shotalloc import allocate_shots
from repro.hpc.profiling import Counter, StageTimer, dispatch_summary, scaling_report
from repro.hpc.tracing import Trace, TraceEvent

__all__ = [
    "Communicator",
    "Request",
    "SpmdError",
    "run_spmd",
    "ExecutorConfig",
    "ParallelExecutor",
    "ExecutionRuntime",
    "DispatchReport",
    "TaskCompletion",
    "resolve_max_workers",
    "balanced_cost_partition",
    "block_partition",
    "chunk_ranges",
    "cyclic_partition",
    "SCHEDULING_POLICIES",
    "Assignment",
    "schedule",
    "submission_order",
    "work_stealing_schedule",
    "CircuitTask",
    "ClusterModel",
    "NodeSpec",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "task_costs",
    "allocate_shots",
    "Counter",
    "StageTimer",
    "scaling_report",
    "dispatch_summary",
    "Trace",
    "TraceEvent",
]
