"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_state(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """A Haar-ish random pure state (normalised complex Gaussian)."""
    vec = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return vec / np.linalg.norm(vec)


@pytest.fixture
def random_state_3q(rng: np.random.Generator) -> np.ndarray:
    return random_state(3, rng)
