"""In-process async client and load generator for a :class:`FeatureService`.

:class:`FeatureClient` is the tenant-side handle tests and demos use -- it
pins a tenant name so call sites read like remote clients would
(``await client.features("mnist", x)``).  :func:`run_load` drives a whole
closed-loop benchmark: N concurrent logical clients submitting requests
round-robin over templates, returning a :class:`LoadReport` with
throughput and latency quantiles.  The perf-guard benchmark runs it twice
(micro-batched vs sequential per-request dispatch) and asserts on the
ratio.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.config import UNSET
from repro.serve.metrics import _percentile_ms
from repro.serve.service import FeatureService

__all__ = ["FeatureClient", "LoadReport", "run_load"]


class FeatureClient:
    """A tenant's handle on an in-process service."""

    def __init__(self, service: FeatureService, tenant: str = "default") -> None:
        self.service = service
        self.tenant = tenant

    async def features(
        self, template: str, x: np.ndarray, *, seed: Any = UNSET
    ) -> np.ndarray:
        return await self.service.submit(template, x, tenant=self.tenant, seed=seed)

    async def predict(
        self, template: str, x: np.ndarray, *, seed: Any = UNSET
    ) -> np.ndarray:
        return await self.service.predict(template, x, tenant=self.tenant, seed=seed)


@dataclass(frozen=True)
class LoadReport:
    """One closed-loop load run: counts, wall time, latency quantiles."""

    requests: int
    completed: int
    rejected: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float

    @property
    def throughput(self) -> float:
        """Completed requests per second over the run's wall time."""
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    service: FeatureService,
    *,
    requests: int,
    concurrency: int,
    samples: int = 1,
    templates: tuple[str, ...] | None = None,
    tenants: tuple[str, ...] = ("default",),
    seed: int = 0,
    sequential: bool = False,
) -> LoadReport:
    """Drive ``requests`` total requests at ``concurrency`` through a service.

    Request ``i`` targets template ``templates[i % len(templates)]`` as
    tenant ``tenants[i % len(tenants)]`` with deterministic angles drawn
    from ``seed`` and request seed ``seed + i`` -- so two runs over the
    same service config produce bit-identical responses.
    ``sequential=True`` awaits requests one at a time (the
    no-coalescing baseline); rejected requests (backpressure) are counted,
    not retried.
    """
    if requests < 1:
        raise ValueError(f"requests={requests} must be >= 1")
    if concurrency < 1:
        raise ValueError(f"concurrency={concurrency} must be >= 1")
    names = templates if templates is not None else service.templates()
    if not names:
        raise ValueError("run_load needs at least one registered template")
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.uniform(0, np.pi, size=(samples, *service.template_shape(name)))
        for name in names
    }
    latencies: list[float] = []
    rejected = 0

    async def one(i: int) -> None:
        nonlocal rejected
        name = names[i % len(names)]
        tenant = tenants[i % len(tenants)]
        t0 = time.perf_counter()
        try:
            await service.submit(name, inputs[name], tenant=tenant, seed=seed + i)
        except Exception:
            rejected += 1
            return
        latencies.append(time.perf_counter() - t0)

    gate = asyncio.Semaphore(concurrency)

    async def gated(i: int) -> None:
        async with gate:
            await one(i)

    start = time.perf_counter()
    if sequential:
        for i in range(requests):
            await one(i)
    else:
        await asyncio.gather(*(gated(i) for i in range(requests)))
    elapsed = time.perf_counter() - start
    reservoir = deque(latencies)
    return LoadReport(
        requests=requests,
        completed=len(latencies),
        rejected=rejected,
        elapsed_s=elapsed,
        p50_ms=_percentile_ms(reservoir, 50),
        p99_ms=_percentile_ms(reservoir, 99),
    )
