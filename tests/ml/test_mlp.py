"""MLP baseline tests."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy
from repro.ml.mlp import MLPClassifier


def test_learns_xor():
    """XOR is the canonical non-linear task a 2-layer net must solve."""
    x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
    y = np.array([0, 1, 1, 0])
    x_big = np.tile(x, (25, 1)) + np.random.default_rng(0).normal(0, 0.05, (100, 2))
    y_big = np.tile(y, 25)
    model = MLPClassifier(hidden=8, epochs=600, lr=0.05, seed=1).fit(x_big, y_big)
    assert accuracy(y_big, model.predict(x_big)) > 0.95


def test_loss_decreases():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(80, 4))
    y = (x[:, 0] > 0).astype(int)
    model = MLPClassifier(hidden=8, epochs=150, seed=0).fit(x, y)
    assert model.history_[-1] < model.history_[0]


def test_seeded_determinism():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(40, 3))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    a = MLPClassifier(hidden=4, epochs=50, seed=7).fit(x, y)
    b = MLPClassifier(hidden=4, epochs=50, seed=7).fit(x, y)
    assert np.array_equal(a.w1, b.w1)
    assert np.array_equal(a.predict_proba(x), b.predict_proba(x))


def test_multiclass():
    rng = np.random.default_rng(4)
    centres = np.array([[-2, 0], [2, 0], [0, 3]])
    x = np.vstack([rng.normal(c, 0.4, (30, 2)) for c in centres])
    y = np.repeat([0, 1, 2], 30)
    model = MLPClassifier(hidden=16, num_classes=3, epochs=400, lr=0.02, seed=0).fit(x, y)
    assert accuracy(y, model.predict(x)) > 0.9
    probs = model.predict_proba(x)
    assert probs.shape == (90, 3)
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_binary_proba_shape():
    rng = np.random.default_rng(5)
    x = rng.normal(size=(20, 2))
    y = (x[:, 0] > 0).astype(int)
    model = MLPClassifier(hidden=4, epochs=20, seed=0).fit(x, y)
    assert model.predict_proba(x).shape == (20,)
    assert set(np.unique(model.predict(x))) <= {0, 1}


def test_validation():
    with pytest.raises(ValueError):
        MLPClassifier(hidden=0)
    with pytest.raises(ValueError):
        MLPClassifier(num_classes=1)
    with pytest.raises(ValueError):
        MLPClassifier(epochs=0)
    with pytest.raises(RuntimeError):
        MLPClassifier().predict(np.ones((1, 2)))
