"""E1 -- paper Table III: binary coat-vs-shirt across all design principles.

Regenerates every row (classical logistic, MLP, variational, Ansatz
expansion R=1/2, observable construction L=1/2/3, hybrid 1+1/2+1/1+2) and
prints the table.  Absolute numbers differ from the paper (synthetic data,
own simulator -- see DESIGN.md); the assertions pin the paper's *shape*:

  (i)   the variational baseline sits near chance;
  (ii)  every post-variational strategy with >= 2-local observables or
        >= 1-order derivatives beats the variational baseline in train acc;
  (iii) observable construction is monotone in locality;
  (iv)  >= 2-local strategies beat plain logistic regression in train acc;
  (v)   the largest hybrid reaches/tops MLP train accuracy while its test
        loss exceeds the train loss (overfitting, as in the paper).
"""

from __future__ import annotations


from benchmarks.conftest import flatten_angles
from repro.core.model import PostVariationalClassifier
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.core.variational import VariationalClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLPClassifier

PAPER_TABLE3 = {
    # name: (train_loss, train_acc, test_loss, test_acc) from the paper.
    "logistic": (0.5379, 0.6925, 0.5913, 0.6533),
    "mlp": (0.4457, 0.7792, 0.7176, 0.6767),
    "variational": (None, 0.5583, None, 0.5067),
    "ansatz_1": (0.6849, 0.5608, 0.6996, 0.5500),
    "ansatz_2": (0.6593, 0.5775, 0.7078, 0.5367),
    "observable_1": (0.6228, 0.6542, 0.6630, 0.6000),
    "observable_2": (0.5441, 0.7242, 0.7313, 0.5867),
    "observable_3": (0.4610, 0.7867, 0.7482, 0.5967),
    "hybrid_1_1": (0.5912, 0.6733, 0.6977, 0.6167),
    "hybrid_2_1": (0.4971, 0.7542, 0.8017, 0.5567),
    "hybrid_1_2": (0.4337, 0.7800, 0.8881, 0.5767),
}


def run_table3(split) -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    xtr = flatten_angles(split.x_train)
    xte = flatten_angles(split.x_test)

    logistic = LogisticRegression().fit(xtr, split.y_train)
    rows["logistic"] = _row(logistic, xtr, split.y_train, xte, split.y_test)

    mlp = MLPClassifier(hidden=8, epochs=300, seed=0).fit(xtr, split.y_train)
    rows["mlp"] = _row(mlp, xtr, split.y_train, xte, split.y_test)

    var = VariationalClassifier(epochs=30).fit(split.x_train, split.y_train)
    rows["variational"] = {
        "train_loss": float("nan"),
        "train_acc": var.score(split.x_train, split.y_train),
        "test_loss": float("nan"),
        "test_acc": var.score(split.x_test, split.y_test),
        "m": 0,
    }

    strategies = {
        "ansatz_1": AnsatzExpansion(order=1),
        "ansatz_2": AnsatzExpansion(order=2),
        "observable_1": ObservableConstruction(qubits=4, locality=1),
        "observable_2": ObservableConstruction(qubits=4, locality=2),
        "observable_3": ObservableConstruction(qubits=4, locality=3),
        "hybrid_1_1": HybridStrategy(order=1, locality=1),
        "hybrid_2_1": HybridStrategy(order=2, locality=1),
        "hybrid_1_2": HybridStrategy(order=1, locality=2),
    }
    for name, strategy in strategies.items():
        clf = PostVariationalClassifier(strategy=strategy).fit(
            split.x_train, split.y_train
        )
        rows[name] = {
            "train_loss": clf.loss(split.x_train, split.y_train),
            "train_acc": clf.score(split.x_train, split.y_train),
            "test_loss": clf.loss(split.x_test, split.y_test),
            "test_acc": clf.score(split.x_test, split.y_test),
            "m": strategy.num_features,
        }
    return rows


def _row(model, xtr, ytr, xte, yte) -> dict[str, float]:
    return {
        "train_loss": model.loss(xtr, ytr),
        "train_acc": accuracy(ytr, model.predict(xtr)),
        "test_loss": model.loss(xte, yte),
        "test_acc": accuracy(yte, model.predict(xte)),
        "m": xtr.shape[1],
    }


def print_table(rows: dict[str, dict[str, float]]) -> None:
    print("\n=== Table III reproduction (binary coat vs shirt) ===")
    header = (
        f"{'model':<14} {'m':>5} {'train loss':>10} {'train acc':>9} "
        f"{'test loss':>10} {'test acc':>9}   paper(train/test acc)"
    )
    print(header)
    for name, r in rows.items():
        paper = PAPER_TABLE3[name]
        print(
            f"{name:<14} {r['m']:>5} {r['train_loss']:>10.4f} {r['train_acc']:>9.3f} "
            f"{r['test_loss']:>10.4f} {r['test_acc']:>9.3f}   "
            f"{paper[1]:.3f}/{paper[3]:.3f}"
        )


def test_table3(benchmark, table3_split):
    rows = benchmark.pedantic(run_table3, args=(table3_split,), rounds=1, iterations=1)
    print_table(rows)

    # (i) variational near chance.
    assert rows["variational"]["train_acc"] < 0.65
    # (ii) PV strategies beat variational in train accuracy.
    for name in ("observable_2", "observable_3", "hybrid_1_1", "hybrid_2_1", "hybrid_1_2"):
        assert rows[name]["train_acc"] > rows["variational"]["train_acc"], name
    # (iii) locality-monotone observable construction.
    assert (
        rows["observable_1"]["train_acc"]
        <= rows["observable_2"]["train_acc"] + 0.02
        <= rows["observable_3"]["train_acc"] + 0.04
    )
    # (iv) >=2-local PV beats plain logistic in train accuracy.
    assert rows["observable_2"]["train_acc"] > rows["logistic"]["train_acc"]
    assert rows["observable_3"]["train_acc"] > rows["logistic"]["train_acc"]
    # (v) the largest hybrid reaches MLP-level train accuracy (paper:
    # 0.780 vs 0.779; we allow a 5-point band) and overfits.
    assert rows["hybrid_1_2"]["train_acc"] >= rows["mlp"]["train_acc"] - 0.05
    assert rows["hybrid_1_2"]["test_loss"] > rows["hybrid_1_2"]["train_loss"]
    # Ansatz expansion improves with derivative order (paper rows 4-5).
    assert rows["ansatz_2"]["train_acc"] >= rows["ansatz_1"]["train_acc"] - 0.01
