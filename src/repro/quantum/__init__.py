"""Quantum simulation substrate.

A from-scratch, NumPy-only replacement for the qiskit simulator the paper
uses: batched statevector evolution, Pauli observables, density matrices
with Kraus noise, a transpiler for fixed circuits, finite-shot sampling,
parameter-shift differentiation and classical shadows.
"""

from repro.quantum.circuit import Circuit, Operation, Parameter
from repro.quantum.gates import gate_matrix
from repro.quantum.observables import (
    PauliString,
    PauliSum,
    count_local_paulis,
    expectation,
    local_pauli_strings,
)
from repro.quantum.statevector import (
    StatevectorSimulator,
    basis_state,
    fidelity,
    probabilities,
    run_circuit,
    sample_counts,
    zero_state,
)
from repro.quantum.sampling import hoeffding_shots, measure_pauli, measure_pauli_batch
from repro.quantum.shadows import (
    ShadowData,
    collect_shadows,
    estimate_many,
    estimate_pauli,
    shadow_budget,
)
from repro.quantum.parameter_shift import expectation_function, gradient, hessian
from repro.quantum.transpile import TranspileReport, fuse_blocks, optimize
from repro.quantum.compile import (
    CompileCache,
    CompiledCircuit,
    FusedBlock,
    ShardGroup,
    clear_compile_cache,
    compile_cache_info,
    compile_circuit,
    plan_shard_groups,
)
from repro.quantum.distributed import (
    DistributedState,
    distributed_zero_state,
    gather_state,
    run_circuit_distributed,
    run_compiled_distributed,
    run_sharded,
    scatter_state,
)
from repro.quantum.batched import (
    AngleChain,
    ParametricCompiledCircuit,
    compile_parametric,
    extend_template,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.grouping import (
    MeasurementGroup,
    group_qubit_wise,
    measure_group,
    qubit_wise_commute,
)
from repro.quantum.hamiltonians import (
    heisenberg_xxz,
    random_local_hamiltonian,
    transverse_field_ising,
)
from repro.quantum.mitigation import (
    fold_circuit,
    richardson_extrapolate,
    richardson_weights,
    zne_expectation,
)
from repro.quantum.backends import (
    DensityMatrixBackend,
    DistributedStatevectorBackend,
    MitigatedBackend,
    QuantumBackend,
    StatevectorBackend,
    resolve_backend,
)
from repro.quantum.drawing import draw_circuit

__all__ = [
    "Circuit",
    "Operation",
    "Parameter",
    "gate_matrix",
    "PauliString",
    "PauliSum",
    "count_local_paulis",
    "expectation",
    "local_pauli_strings",
    "StatevectorSimulator",
    "basis_state",
    "fidelity",
    "probabilities",
    "run_circuit",
    "sample_counts",
    "zero_state",
    "hoeffding_shots",
    "measure_pauli",
    "measure_pauli_batch",
    "ShadowData",
    "collect_shadows",
    "estimate_many",
    "estimate_pauli",
    "shadow_budget",
    "expectation_function",
    "gradient",
    "hessian",
    "TranspileReport",
    "fuse_blocks",
    "optimize",
    "CompileCache",
    "CompiledCircuit",
    "FusedBlock",
    "ShardGroup",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_circuit",
    "plan_shard_groups",
    "DistributedState",
    "distributed_zero_state",
    "gather_state",
    "run_circuit_distributed",
    "run_compiled_distributed",
    "run_sharded",
    "scatter_state",
    "AngleChain",
    "ParametricCompiledCircuit",
    "compile_parametric",
    "extend_template",
    "NoiseModel",
    "MeasurementGroup",
    "group_qubit_wise",
    "measure_group",
    "qubit_wise_commute",
    "heisenberg_xxz",
    "random_local_hamiltonian",
    "transverse_field_ising",
    "fold_circuit",
    "richardson_extrapolate",
    "richardson_weights",
    "zne_expectation",
    "QuantumBackend",
    "StatevectorBackend",
    "DistributedStatevectorBackend",
    "DensityMatrixBackend",
    "MitigatedBackend",
    "resolve_backend",
    "draw_circuit",
]
