"""Density-matrix simulator and noise-channel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Circuit
from repro.quantum.density import (
    apply_kraus,
    apply_unitary,
    expectation_density,
    partial_trace,
    pure_density,
    purity,
    run_circuit_density,
)
from repro.quantum.gates import H
from repro.quantum.noise import (
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
    validate_kraus,
)
from repro.quantum.observables import PauliString
from repro.quantum.statevector import run_circuit

from tests.conftest import random_state


def test_pure_density_properties():
    rng = np.random.default_rng(0)
    psi = random_state(2, rng)
    rho = pure_density(psi)
    assert np.allclose(rho, rho.conj().T)
    assert np.trace(rho) == pytest.approx(1.0)
    assert purity(rho) == pytest.approx(1.0)


def test_unitary_evolution_matches_statevector():
    c = Circuit(3)
    c.append("h", 0).append("cnot", (0, 2)).append("ry", 1, 0.9).append("cz", (1, 2))
    rho = run_circuit_density(c)
    psi = run_circuit(c)
    assert np.allclose(rho, pure_density(psi), atol=1e-12)


def test_apply_unitary_on_subsystem():
    rng = np.random.default_rng(1)
    psi = random_state(2, rng)
    rho = pure_density(psi)
    rho2 = apply_unitary(rho, H, [1])
    from repro.quantum.statevector import apply_matrix

    psi2 = apply_matrix(psi, H, [1])
    assert np.allclose(rho2, pure_density(psi2), atol=1e-12)


@given(p=st.floats(0.0, 1.0))
@settings(max_examples=30)
def test_channels_trace_preserving(p):
    for chan in (
        depolarizing_channel(p),
        bit_flip_channel(p),
        phase_flip_channel(p),
        amplitude_damping_channel(p),
    ):
        validate_kraus(chan)


@given(p=st.floats(0.01, 0.99), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_channels_preserve_density_properties(p, seed):
    rng = np.random.default_rng(seed)
    rho = pure_density(random_state(2, rng))
    out = apply_kraus(rho, depolarizing_channel(p), [0])
    assert np.trace(out).real == pytest.approx(1.0, abs=1e-10)
    assert np.allclose(out, out.conj().T, atol=1e-10)
    eigs = np.linalg.eigvalsh(out)
    assert np.all(eigs > -1e-10)


def test_depolarizing_shrinks_bloch_vector():
    """<Z> of |0> shrinks by exactly (1 - 4p/3) under depolarizing."""
    rho = pure_density(np.array([1, 0], dtype=complex))
    p = 0.3
    out = apply_kraus(rho, depolarizing_channel(p), [0])
    z = expectation_density(out, PauliString("Z"))
    assert z == pytest.approx(1 - 4 * p / 3)


def test_amplitude_damping_fixed_point():
    """|1><1| decays toward |0><0|."""
    rho = pure_density(np.array([0, 1], dtype=complex))
    out = apply_kraus(rho, amplitude_damping_channel(0.4), [0])
    assert out[0, 0].real == pytest.approx(0.4)
    assert out[1, 1].real == pytest.approx(0.6)


def test_noise_model_inserts_channels():
    c = Circuit(1)
    c.append("x", 0)
    model = NoiseModel(one_qubit=bit_flip_channel(0.25))
    rho = run_circuit_density(c, noise_model=model)
    # X then 25% bit flip: population of |1> is 0.75.
    assert rho[1, 1].real == pytest.approx(0.75)
    assert purity(rho) < 1.0


def test_noise_model_depolarizing_factory():
    model = NoiseModel.depolarizing(0.01)
    assert model.one_qubit is not None and model.two_qubit is not None
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1))
    rho = run_circuit_density(c, noise_model=model)
    assert np.trace(rho).real == pytest.approx(1.0, abs=1e-10)
    assert purity(rho) < 1.0


def test_expectation_density_matches_pure():
    rng = np.random.default_rng(4)
    psi = random_state(2, rng)
    from repro.quantum.observables import expectation

    p = PauliString("XZ")
    assert expectation_density(pure_density(psi), p) == pytest.approx(
        expectation(psi, p)
    )


def test_partial_trace_product_state():
    """Tracing B out of |psi_A> x |psi_B> returns |psi_A><psi_A|."""
    rng = np.random.default_rng(6)
    a = random_state(1, rng)
    b = random_state(1, rng)
    joint = np.kron(a, b)
    reduced = partial_trace(pure_density(joint), keep=[0])
    assert np.allclose(reduced, pure_density(a), atol=1e-12)


def test_partial_trace_bell_state_is_maximally_mixed():
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1))
    rho = run_circuit_density(c)
    reduced = partial_trace(rho, keep=[0])
    assert np.allclose(reduced, np.eye(2) / 2, atol=1e-12)


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        depolarizing_channel(1.5)
    with pytest.raises(ValueError):
        bit_flip_channel(-0.1)
