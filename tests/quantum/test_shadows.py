"""Classical-shadows protocol tests."""

import numpy as np
import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, expectation, local_pauli_strings
from repro.quantum.shadows import (
    ShadowData,
    collect_shadows,
    estimate_many,
    estimate_pauli,
    median_of_means,
    shadow_budget,
)
from repro.quantum.statevector import run_circuit

from tests.conftest import random_state


def entangled_state() -> np.ndarray:
    c = Circuit(3)
    c.append("h", 0).append("cnot", (0, 1)).append("ry", 2, 0.7).append("cz", (1, 2))
    return run_circuit(c)


def test_shadow_data_shapes():
    psi = entangled_state()
    shadow = collect_shadows(psi, 500, seed=0)
    assert shadow.num_snapshots == 500
    assert shadow.num_qubits == 3
    assert shadow.bases.shape == shadow.outcomes.shape == (500, 3)
    assert set(np.unique(shadow.bases)) <= {0, 1, 2}
    assert set(np.unique(shadow.outcomes)) <= {0, 1}


def test_estimator_unbiased_on_z_eigenstate():
    """<Z> of |0> is 1; shadow estimate converges to it."""
    psi = np.array([1, 0], dtype=complex)
    shadow = collect_shadows(psi, 30_000, seed=1)
    est = estimate_pauli(shadow, PauliString("Z"))
    assert est == pytest.approx(1.0, abs=0.05)


def test_estimator_converges_on_entangled_state():
    psi = entangled_state()
    shadow = collect_shadows(psi, 60_000, seed=2)
    for s in ("ZII", "IXI", "ZZI", "XXI"):
        p = PauliString(s)
        est = estimate_pauli(shadow, p)
        assert est == pytest.approx(expectation(psi, p), abs=0.1), s


def test_identity_estimate_is_exact():
    psi = entangled_state()
    shadow = collect_shadows(psi, 10, seed=3)
    assert estimate_pauli(shadow, PauliString("III")) == 1.0


def test_higher_locality_has_higher_variance():
    """Empirical check of the 4^L shadow-norm scaling: variance of the
    per-snapshot estimator grows with locality."""
    rng = np.random.default_rng(4)
    psi = random_state(3, rng)
    shadow = collect_shadows(psi, 20_000, seed=5)
    from repro.quantum.shadows import _snapshot_values

    var1 = np.var(_snapshot_values(shadow, PauliString("ZII")))
    var3 = np.var(_snapshot_values(shadow, PauliString("ZZZ")))
    assert var3 > var1


def test_one_batch_estimates_many_observables():
    """The protocol's point (paper Sec. II.B): one shadow batch serves all
    1-local observables at once."""
    psi = entangled_state()
    shadow = collect_shadows(psi, 50_000, seed=6)
    paulis = [p for p in local_pauli_strings(3, 1) if not p.is_identity]
    estimates = estimate_many(shadow, paulis, delta=0.05)
    exact = np.array([expectation(psi, p) for p in paulis])
    assert np.max(np.abs(estimates - exact)) < 0.15


def test_median_of_means_robust_to_outliers():
    values = np.concatenate([np.zeros(100), np.array([1e6])])
    assert abs(median_of_means(values, 11)) < 1.0  # plain mean would be ~1e4


def test_median_of_means_group_clamping():
    values = np.arange(5.0)
    assert median_of_means(values, 100) == pytest.approx(np.median(values))


def test_shadow_budget_scalings():
    base = shadow_budget(4.0, 0.1, 0.05, 10)
    assert shadow_budget(16.0, 0.1, 0.05, 10) > base  # locality up
    assert shadow_budget(4.0, 0.05, 0.05, 10) > base  # tighter eps
    # Log dependence on observable count: doubling M is cheap.
    assert shadow_budget(4.0, 0.1, 0.05, 10_000) < 4 * base


def test_budget_validation():
    with pytest.raises(ValueError):
        shadow_budget(4.0, -0.1, 0.05, 10)
    with pytest.raises(ValueError):
        shadow_budget(4.0, 0.1, 1.5, 10)
    with pytest.raises(ValueError):
        collect_shadows(np.array([1, 0], dtype=complex), 0)


def test_estimate_width_mismatch():
    shadow = ShadowData(bases=np.zeros((5, 2), dtype=int), outcomes=np.zeros((5, 2), dtype=int))
    with pytest.raises(ValueError):
        estimate_pauli(shadow, PauliString("ZZZ"))


def test_seeded_determinism():
    psi = entangled_state()
    a = collect_shadows(psi, 100, seed=9)
    b = collect_shadows(psi, 100, seed=9)
    assert np.array_equal(a.bases, b.bases)
    assert np.array_equal(a.outcomes, b.outcomes)
