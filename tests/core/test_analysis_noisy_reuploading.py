"""Tests for the extension modules: Q diagnostics, noisy features,
data re-uploading."""

import numpy as np
import pytest

from repro.core.analysis import diagnose_q_matrix, effective_rank
from repro.core.features import generate_features
from repro.core.reuploading import ReuploadingClassifier
from repro.core.strategies import ObservableConstruction
from repro.quantum.backends import DensityMatrixBackend
from repro.quantum.noise import NoiseModel


# ---------------------------------------------------------------- analysis
def test_effective_rank_bounds():
    assert effective_rank(np.array([1.0, 0.0])) == pytest.approx(1.0)
    assert effective_rank(np.ones(5)) == pytest.approx(5.0)
    assert effective_rank(np.array([])) == 0.0
    mixed = effective_rank(np.array([10.0, 1.0, 1.0]))
    assert 1.0 < mixed < 3.0


def test_diagnose_identity_matrix():
    diag = diagnose_q_matrix(np.eye(4))
    assert diag.rank == 4
    assert diag.condition_number == pytest.approx(1.0)
    assert diag.sigma_min == pytest.approx(1.0)
    assert diag.coherence == 1.0


def test_diagnose_rank_deficient():
    q = np.ones((5, 3))
    diag = diagnose_q_matrix(q)
    assert diag.rank == 1
    assert diag.effective_rank == pytest.approx(1.0, abs=0.01)


def test_theorem3_regime_ratios():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, (50, 4, 4))
    q = generate_features(ObservableConstruction(qubits=4, locality=1), angles)
    diag = diagnose_q_matrix(q)
    ratios = diag.theorem3_regime(np.ones(50))
    # Pauli features are bounded by 1, so ||Q|| <= sqrt(d * m).
    assert diag.coherence <= 1.0 + 1e-9
    assert ratios["norm_Y_over_sqrt_d"] == pytest.approx(1.0)
    assert ratios["norm_Q_over_sqrt_d"] > 0.5  # identity column alone gives 1
    assert np.isfinite(ratios["kappa_Q"])


def test_diagnose_validation():
    with pytest.raises(ValueError):
        diagnose_q_matrix(np.zeros(3))


# ------------------------------------------------------------------- noisy
def test_noisy_features_match_ideal_at_zero_noise():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, (4, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    ideal = generate_features(strategy, angles)
    noisy = generate_features(
        strategy, angles, backend=DensityMatrixBackend(NoiseModel.depolarizing(0.0))
    )
    assert np.allclose(noisy, ideal, atol=1e-10)


def test_noisy_features_contract_toward_zero():
    """Depolarizing noise shrinks non-identity Pauli expectations."""
    rng = np.random.default_rng(2)
    angles = rng.uniform(0, 2 * np.pi, (4, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    ideal = generate_features(strategy, angles)
    noisy = generate_features(
        strategy, angles, backend=DensityMatrixBackend(NoiseModel.depolarizing(0.05))
    )
    # Identity column untouched.
    assert np.allclose(noisy[:, 0], 1.0, atol=1e-10)
    # Other columns contract on average.
    assert np.mean(np.abs(noisy[:, 1:])) < np.mean(np.abs(ideal[:, 1:]))
    # And shrink monotonically with the error rate.
    noisier = generate_features(
        strategy, angles, backend=DensityMatrixBackend(NoiseModel.depolarizing(0.15))
    )
    assert np.mean(np.abs(noisier[:, 1:])) < np.mean(np.abs(noisy[:, 1:]))


def test_noisy_features_validation():
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DensityMatrixBackend(NoiseModel.depolarizing(0.01))
    with pytest.raises(ValueError):
        generate_features(strategy, np.zeros((4, 4)), backend=backend)
    with pytest.raises(ValueError):
        generate_features(strategy, np.zeros((2, 4, 3)), backend=backend)


# (The deprecation shim's warn-and-match contract is pinned in
# tests/core/test_backend_features.py::test_deprecated_shim_warns_and_matches_backend_path.)


# ------------------------------------------------------------- reuploading
def test_reuploading_loss_decreases():
    rng = np.random.default_rng(3)
    angles = rng.uniform(0, 2 * np.pi, (24, 4, 4))
    y = (angles[:, 0, 0] > np.pi).astype(int)
    model = ReuploadingClassifier(reuploads=1, epochs=6)
    model.fit(angles, y)
    assert model.history_[-1] <= model.history_[0] + 1e-9
    assert model.theta_.shape == (4,)


def test_reuploading_parameter_count():
    assert ReuploadingClassifier(num_qubits=4, reuploads=3).num_parameters == 12


def test_reuploading_predict_labels():
    rng = np.random.default_rng(4)
    angles = rng.uniform(0, 2 * np.pi, (10, 4, 4))
    y = rng.integers(0, 2, 10)
    model = ReuploadingClassifier(reuploads=1, epochs=2).fit(angles, y)
    assert set(np.unique(model.predict(angles))) <= {0, 1}


def test_reuploading_single_matches_variational_forward():
    """One re-upload with theta=0 reduces to the plain encoded state: the
    readout is the encoded <Z_0> (CNOT ring after RY(0) only entangles,
    but theta=0 keeps the ring active -- check against explicit circuit)."""
    rng = np.random.default_rng(5)
    angles = rng.uniform(0, 2 * np.pi, (3, 4, 4))
    model = ReuploadingClassifier(reuploads=1, epochs=1)
    out = model._forward(angles, np.zeros(4))
    # Reference: encode, then the bound single block.
    from repro.core.ansatz import hardware_efficient_ansatz
    from repro.data.encoding import encode_batch
    from repro.quantum.observables import PauliString, expectation
    from repro.quantum.statevector import run_circuit

    block = hardware_efficient_ansatz(4, 1, mirror=False).bind(np.zeros(4))
    ref = expectation(
        run_circuit(block, state=encode_batch(angles)), PauliString("ZIII")
    )
    assert np.allclose(out, ref, atol=1e-10)


def test_reuploading_validation():
    with pytest.raises(ValueError):
        ReuploadingClassifier(reuploads=0)
    with pytest.raises(ValueError):
        ReuploadingClassifier(epochs=0)
    with pytest.raises(RuntimeError):
        ReuploadingClassifier().predict(np.zeros((1, 4, 4)))
