"""Statevector-kernel tests: correctness against dense linear algebra,
batched/single equivalence, norm preservation (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import gates
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import (
    StatevectorSimulator,
    apply_matrix,
    apply_matrix_batch,
    basis_state,
    fidelity,
    probabilities,
    run_circuit,
    sample_counts,
    zero_state,
)

from tests.conftest import random_state


def dense_embed(matrix: np.ndarray, qubits: list[int], n: int) -> np.ndarray:
    """Reference embedding via explicit permutation (slow but obvious)."""
    dim = 2**n
    k = len(qubits)
    full = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        col_bits = [(col >> (n - 1 - q)) & 1 for q in range(n)]
        sub_col = 0
        for q in qubits:
            sub_col = (sub_col << 1) | col_bits[q]
        for sub_row in range(2**k):
            val = matrix[sub_row, sub_col]
            if val == 0:
                continue
            row_bits = list(col_bits)
            for i, q in enumerate(qubits):
                row_bits[q] = (sub_row >> (k - 1 - i)) & 1
            row = 0
            for b in row_bits:
                row = (row << 1) | b
            full[row, col] += val
    return full


@pytest.mark.parametrize("n,qubits", [(1, [0]), (2, [0]), (2, [1]), (3, [1]), (3, [2])])
def test_single_qubit_gate_matches_dense(n, qubits):
    rng = np.random.default_rng(n)
    psi = random_state(n, rng)
    for gate in (gates.H, gates.X, gates.S, gates.rx(0.7)):
        ours = apply_matrix(psi, gate, qubits)
        ref = dense_embed(gate, qubits, n) @ psi
        assert np.allclose(ours, ref, atol=1e-12)


@pytest.mark.parametrize(
    "n,qubits", [(2, [0, 1]), (2, [1, 0]), (3, [0, 2]), (3, [2, 0]), (4, [1, 3])]
)
def test_two_qubit_gate_matches_dense(n, qubits):
    rng = np.random.default_rng(n + 10)
    psi = random_state(n, rng)
    for gate in (gates.CNOT, gates.CZ, gates.SWAP, gates.crz(0.3)):
        ours = apply_matrix(psi, gate, qubits)
        ref = dense_embed(gate, qubits, n) @ psi
        assert np.allclose(ours, ref, atol=1e-12)


def test_batch_matches_single():
    rng = np.random.default_rng(0)
    batch = np.stack([random_state(3, rng) for _ in range(7)])
    out_batch = apply_matrix_batch(batch, gates.H, [1])
    for i in range(7):
        assert np.allclose(out_batch[i], apply_matrix(batch[i], gates.H, [1]))


def test_per_sample_matrices():
    """The (batch, 2, 2) path must apply matrix b to state b."""
    rng = np.random.default_rng(5)
    batch = np.stack([random_state(2, rng) for _ in range(4)])
    angles = rng.uniform(0, 2 * np.pi, 4)
    mats = np.stack([gates.rx(a) for a in angles])
    out = apply_matrix_batch(batch, mats, [0])
    for i in range(4):
        assert np.allclose(out[i], apply_matrix(batch[i], gates.rx(angles[i]), [0]))


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 4),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_gates_preserve_norm(seed, n, data):
    rng = np.random.default_rng(seed)
    psi = random_state(n, rng)
    gate_name = data.draw(st.sampled_from(["h", "x", "s", "t"]))
    qubit = data.draw(st.integers(0, n - 1))
    out = apply_matrix(psi, gates.FIXED_GATES[gate_name], [qubit])
    assert np.isclose(np.linalg.norm(out), 1.0, atol=1e-10)


def test_zero_and_basis_states():
    z = zero_state(3)
    assert z[0] == 1 and np.count_nonzero(z) == 1
    zb = zero_state(2, batch=5)
    assert zb.shape == (5, 4) and np.all(zb[:, 0] == 1)
    b = basis_state(2, 3)
    assert b[3] == 1
    with pytest.raises(ValueError):
        basis_state(2, 4)


def test_run_circuit_bell_state():
    c = Circuit(2)
    c.append("h", 0).append("cnot", (0, 1))
    psi = run_circuit(c)
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert np.allclose(psi, expected)


def test_run_circuit_param_requirements():
    c = Circuit(1)
    c.append("rx", 0, "t")
    with pytest.raises(ValueError):
        run_circuit(c)  # unbound without params
    psi = run_circuit(c, params=[np.pi])
    assert np.allclose(np.abs(psi), [0, 1])  # RX(pi)|0> = -i|1>


def test_probabilities_and_sampling():
    c = Circuit(1)
    c.append("h", 0)
    psi = run_circuit(c)
    probs = probabilities(psi)
    assert np.allclose(probs, [0.5, 0.5])
    counts = sample_counts(psi, shots=10_000, seed=1)
    assert counts.sum() == 10_000
    assert abs(counts[0] / 10_000 - 0.5) < 0.03


def test_fidelity_properties():
    rng = np.random.default_rng(2)
    a = random_state(3, rng)
    b = random_state(3, rng)
    assert fidelity(a, a) == pytest.approx(1.0)
    f = fidelity(a, b)
    assert 0.0 <= f <= 1.0
    # Symmetric.
    assert f == pytest.approx(fidelity(b, a))


def test_simulator_width_check():
    sim = StatevectorSimulator(3)
    c = Circuit(2)
    c.append("h", 0)
    with pytest.raises(ValueError):
        sim.run(c)


def test_simulator_expectation_entry_point():
    from repro.quantum.observables import PauliString

    sim = StatevectorSimulator(2)
    c = Circuit(2)
    c.append("x", 0)
    psi = sim.run(c)
    assert sim.expectation(psi, PauliString("ZI")) == pytest.approx(-1.0)


def _sample_counts_reference(state, shots, seed):
    """The pre-vectorisation sample_counts: one multinomial call per row."""
    rng = np.random.default_rng(seed)
    batch = np.atleast_2d(np.asarray(state))
    probs = np.abs(batch) ** 2
    probs = probs / probs.sum(axis=1, keepdims=True)
    counts = np.stack([rng.multinomial(shots, p) for p in probs])
    return counts[0] if np.asarray(state).ndim == 1 else counts


@pytest.mark.parametrize("batch", [1, 5, 64])
@pytest.mark.parametrize("n", [2, 4])
def test_sample_counts_vectorised_matches_per_row_loop(batch, n):
    """The batched multinomial draws the same stream as sequential per-row
    calls -- the output contract of the original Python-level loop."""
    rng = np.random.default_rng(100 + batch + n)
    states = rng.normal(size=(batch, 2**n)) + 1j * rng.normal(size=(batch, 2**n))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    for seed in (0, 7, 123):
        assert np.array_equal(
            sample_counts(states, shots=500, seed=seed),
            _sample_counts_reference(states, 500, seed),
        )


def test_sample_counts_single_state_contract():
    psi = run_circuit(Circuit(2).append("h", 0).append("cnot", (0, 1)))
    counts = sample_counts(psi, shots=1000, seed=9)
    assert counts.shape == (4,)  # unbatched in, unbatched out
    assert counts.sum() == 1000
    assert np.array_equal(counts, _sample_counts_reference(psi, 1000, 9))
    # Large batch: one vectorised call, row sums exact.
    batch = np.tile(psi, (256, 1))
    batch_counts = sample_counts(batch, shots=64, seed=1)
    assert batch_counts.shape == (256, 4)
    assert np.array_equal(batch_counts.sum(axis=1), np.full(256, 64))
