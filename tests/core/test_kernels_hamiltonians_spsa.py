"""Quantum kernel, Hamiltonian generator and SPSA tests."""

import numpy as np
import pytest

from repro.core.kernels import QuantumKernelClassifier, fidelity_kernel
from repro.data.encoding import encode_batch
from repro.ml.spsa import SPSA
from repro.quantum.hamiltonians import (
    heisenberg_xxz,
    random_local_hamiltonian,
    transverse_field_ising,
)


# ----------------------------------------------------------------- kernels
def test_fidelity_kernel_properties():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, (10, 4, 4))
    states = encode_batch(angles)
    gram = fidelity_kernel(states, states)
    assert gram.shape == (10, 10)
    assert np.allclose(np.diag(gram), 1.0)
    assert np.allclose(gram, gram.T)
    assert np.all(gram >= -1e-12) and np.all(gram <= 1 + 1e-12)
    # PSD (fidelity kernel of pure states is a valid kernel).
    eigs = np.linalg.eigvalsh(gram)
    assert np.all(eigs > -1e-9)


def test_kernel_classifier_learns():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0.5, 2 * np.pi - 0.5, (60, 4, 4))
    y = (angles[:, 0, 0] > np.pi).astype(int)
    model = QuantumKernelClassifier().fit(angles, y)
    assert model.score(angles, y) > 0.85


def test_kernel_classifier_validation():
    with pytest.raises(ValueError):
        QuantumKernelClassifier().fit(np.zeros((3, 4, 4)), np.array([0, 1, 2]))
    with pytest.raises(RuntimeError):
        QuantumKernelClassifier().predict(np.zeros((1, 4, 4)))
    with pytest.raises(ValueError):
        fidelity_kernel(np.zeros((2, 4)), np.zeros((2, 8)))


# ------------------------------------------------------------ Hamiltonians
def test_tfim_structure():
    h = transverse_field_ising(4, coupling=1.0, field=0.5)
    assert h.max_locality() == 2
    assert h.coefficient("ZZII") == pytest.approx(-1.0)
    assert h.coefficient("XIII") == pytest.approx(-0.5)
    # Open chain: 3 ZZ bonds + 4 X fields.
    assert h.num_terms == 7
    periodic = transverse_field_ising(4, periodic=True)
    assert periodic.num_terms == 8


def test_tfim_hermitian_spectrum():
    h = transverse_field_ising(3, coupling=1.0, field=1.0)
    dense = h.to_matrix()
    assert np.allclose(dense, dense.conj().T)
    # Known ground-state energy at criticality (n=3, open):
    # E0 = -1 - sqrt(3)? just check it's below -n*max(J,h) lower bound sanity.
    eigs = np.linalg.eigvalsh(dense)
    assert eigs[0] < -2.0


def test_xxz_structure():
    h = heisenberg_xxz(3, jxy=1.0, jz=0.5)
    assert h.coefficient("XXI") == pytest.approx(1.0)
    assert h.coefficient("ZZI") == pytest.approx(0.5)
    assert h.num_terms == 6


def test_xxz_conserves_magnetisation():
    """[H, sum Z_i] = 0 -- the U(1) symmetry of the XXZ chain."""
    from repro.quantum.observables import PauliSum

    n = 3
    h = heisenberg_xxz(n)
    mz = PauliSum(
        [(1.0, "".join("Z" if i == k else "I" for i in range(n))) for k in range(n)]
    )
    hm = (h @ mz).to_matrix()
    mh = (mz @ h).to_matrix()
    assert np.allclose(hm, mh, atol=1e-12)


def test_random_local_hamiltonian():
    h = random_local_hamiltonian(4, locality=2, num_terms=5, seed=0)
    assert h.num_terms == 5
    assert h.max_locality() <= 2
    dense = h.to_matrix()
    assert np.allclose(dense, dense.conj().T)
    with pytest.raises(ValueError):
        random_local_hamiltonian(1, 1, 99)


# ----------------------------------------------------------------- SPSA
def test_spsa_minimises_quadratic():
    opt = SPSA(a=0.5, seed=0)
    best = opt.minimize(lambda t: float(np.sum((t - 3.0) ** 2)), np.zeros(4), iterations=300)
    assert np.allclose(best, 3.0, atol=0.3)
    assert opt.history_[-1] < opt.history_[0]


def test_spsa_noisy_objective():
    rng = np.random.default_rng(1)

    def noisy(t):
        return float(np.sum(t**2)) + float(rng.normal(0, 0.05))

    best = SPSA(a=0.3, seed=2).minimize(noisy, np.full(3, 2.0), iterations=400)
    assert np.linalg.norm(best) < 1.0


def test_spsa_on_variational_circuit():
    """SPSA trains the Fig. 8 circuit's energy with 2 evals/step."""
    from repro.core.ansatz import fig8_ansatz
    from repro.quantum.parameter_shift import expectation_function
    from repro.quantum.observables import PauliString

    f = expectation_function(fig8_ansatz(), PauliString("ZIII"))
    opt = SPSA(a=0.4, seed=3)
    # theta = 0 is a stationary maximum of <Z_0>; start off-axis.
    theta0 = np.full(8, 0.3)
    best = opt.minimize(lambda t: f(t), theta0, iterations=150)
    assert f(best) < f(theta0) - 0.3  # <Z> driven well below the start


def test_spsa_validation():
    with pytest.raises(ValueError):
        SPSA().minimize(lambda t: 0.0, np.zeros(2), iterations=0)
