"""E6 -- Propositions 1/2: empirical estimation error vs measurement budget.

Direct measurement: max entry error of a shot-estimated Q matrix must decay
like 1/sqrt(shots) (Hoeffding regime).  Shadows: the error at fixed
snapshot count grows with observable locality (the 4^L shadow norm), while
the count of *jointly estimated* observables is free.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import generate_features
from repro.core.strategies import ObservableConstruction
from repro.quantum.observables import expectation, local_pauli_strings
from repro.quantum.shadows import collect_shadows, estimate_pauli
from repro.data.encoding import encode_batch


def run_direct_sweep(split):
    strategy = ObservableConstruction(qubits=4, locality=1)
    angles = split.x_train[:20]
    exact = generate_features(strategy, angles)
    shot_grid = [64, 256, 1024, 4096]
    errors = []
    for shots in shot_grid:
        est = generate_features(strategy, angles, estimator="shots", shots=shots, seed=7)
        errors.append(float(np.max(np.abs(est - exact))))
    return shot_grid, errors


def run_shadow_locality_sweep(split):
    angles = split.x_train[:6]
    states = encode_batch(angles)
    snapshots = 6000
    errors_by_locality = {}
    for locality in (1, 2, 3):
        paulis = [
            p
            for p in local_pauli_strings(4, locality)
            if p.locality == locality
        ][:12]
        errs = []
        for i in range(states.shape[0]):
            shadow = collect_shadows(states[i], snapshots, seed=100 + i)
            for p in paulis:
                errs.append(
                    abs(estimate_pauli(shadow, p) - expectation(states[i], p))
                )
        errors_by_locality[locality] = float(np.mean(errs))
    return errors_by_locality


def test_measurement_scaling(benchmark, small_split):
    (shot_grid, direct_errors), shadow_errors = benchmark.pedantic(
        lambda s: (run_direct_sweep(s), run_shadow_locality_sweep(s)),
        args=(small_split,),
        rounds=1,
        iterations=1,
    )

    print("\n=== Proposition 1: direct-measurement error vs shots ===")
    for shots, err in zip(shot_grid, direct_errors, strict=True):
        print(f"shots={shots:>6}  max|Qhat - Q| = {err:.4f}  (1/sqrt = {1/np.sqrt(shots):.4f})")
    print("=== Proposition 2: shadow error vs observable locality (6000 snapshots) ===")
    for loc, err in shadow_errors.items():
        print(f"L={loc}  mean abs error = {err:.4f}  (shadow norm 4^L = {4**loc})")

    # Hoeffding decay: 64 -> 4096 shots is an 8x error reduction in theory;
    # demand at least 3x empirically.
    assert direct_errors[-1] < direct_errors[0] / 3
    # Error monotone (weakly) in the shot budget at the endpoints.
    assert direct_errors[-1] <= direct_errors[0]

    # Shadow-norm effect: higher locality, larger error at equal snapshots.
    assert shadow_errors[1] < shadow_errors[2] < shadow_errors[3]
    # And the L=1 error is in the expected Hoeffding-like ballpark.
    assert shadow_errors[1] < 0.2
