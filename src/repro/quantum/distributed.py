"""Distributed statevector simulation over the SPMD communicator.

The HPC-QC system's second parallel axis: when circuit-ensemble parallelism
is exhausted (or a register outgrows one node), the *statevector itself* is
partitioned across ranks.  Standard amplitude-slab decomposition:

* rank ``r`` of ``2^g`` ranks stores amplitudes whose top ``g`` bits equal
  ``r`` -- a contiguous slab of ``2^(n-g)`` amplitudes;
* gates on qubits ``>= g`` ("local" qubits) touch only the slab and apply
  with the node-local batched kernel;
* single-qubit gates on qubits ``< g`` ("global" qubits) pair each rank
  with a partner differing in that bit: one pairwise exchange + local
  linear combination (the textbook distributed update);
* CNOT/CZ with global qubits reduce to a conditional exchange / local
  phase.

Every public function is verified against the single-node simulator in the
test suite, rank counts 2/4/8.
"""

from __future__ import annotations

import numpy as np

from repro.hpc.comm import Communicator
from repro.quantum.circuit import Circuit
from repro.quantum.gates import gate_matrix
from repro.quantum.statevector import apply_matrix_batch

__all__ = [
    "DistributedState",
    "distributed_zero_state",
    "scatter_state",
    "gather_state",
    "apply_gate_distributed",
    "run_circuit_distributed",
    "expectation_z_distributed",
]


class DistributedState:
    """One rank's slab of a distributed statevector.

    ``num_qubits`` total register width; ``comm.size`` must be a power of
    two; ``g = log2(size)`` qubits are "global" (their bits select the
    owning rank).
    """

    def __init__(self, comm: Communicator, num_qubits: int, slab: np.ndarray):
        size = comm.size
        if size & (size - 1):
            raise ValueError("communicator size must be a power of two")
        g = size.bit_length() - 1
        if num_qubits < g:
            raise ValueError(f"{num_qubits} qubits cannot span {size} ranks")
        expected = 2 ** (num_qubits - g)
        if slab.shape != (expected,):
            raise ValueError(f"slab shape {slab.shape} != ({expected},)")
        self.comm = comm
        self.num_qubits = num_qubits
        self.global_qubits = g
        self.slab = np.ascontiguousarray(slab, dtype=np.complex128)

    @property
    def local_qubits(self) -> int:
        return self.num_qubits - self.global_qubits

    def local_norm_sq(self) -> float:
        return float(np.sum(np.abs(self.slab) ** 2))

    def norm(self) -> float:
        """Global 2-norm (collective call)."""
        total = self.comm.allreduce(self.local_norm_sq())
        return float(np.sqrt(total))


def distributed_zero_state(comm: Communicator, num_qubits: int) -> DistributedState:
    """|0...0> distributed: rank 0 holds the single nonzero amplitude."""
    size = comm.size
    g = size.bit_length() - 1
    slab = np.zeros(2 ** (num_qubits - g), dtype=np.complex128)
    if comm.rank == 0:
        slab[0] = 1.0
    return DistributedState(comm, num_qubits, slab)


def scatter_state(comm: Communicator, state: np.ndarray | None, num_qubits: int) -> DistributedState:
    """Rank 0 scatters a full statevector into per-rank slabs."""
    size = comm.size
    g = size.bit_length() - 1
    chunk = 2 ** (num_qubits - g)
    if comm.rank == 0:
        state = np.asarray(state, dtype=np.complex128).ravel()
        if state.size != 2**num_qubits:
            raise ValueError("state dimension mismatch")
        parts = [state[r * chunk : (r + 1) * chunk] for r in range(size)]
    else:
        parts = None
    slab = comm.scatter(parts, root=0)
    return DistributedState(comm, num_qubits, np.array(slab, copy=True))


def gather_state(dist: DistributedState) -> np.ndarray | None:
    """Gather slabs to rank 0; other ranks receive None."""
    parts = dist.comm.gather(dist.slab, root=0)
    if dist.comm.rank != 0:
        return None
    return np.concatenate(parts)


def _apply_local(dist: DistributedState, matrix: np.ndarray, qubits: list[int]) -> None:
    """Gate entirely on local qubits: node-local batched kernel."""
    local_idx = [q - dist.global_qubits for q in qubits]
    dist.slab = apply_matrix_batch(dist.slab[None, :], matrix, local_idx)[0]


def _apply_global_single(dist: DistributedState, matrix: np.ndarray, qubit: int) -> None:
    """Single-qubit gate on a global qubit: pairwise exchange + combine.

    Partner rank differs in bit ``qubit`` (counted from the top).  The rank
    whose bit is 0 holds the |0> component; after exchanging slabs each rank
    forms its own updated slab from the 2x2 action.
    """
    comm = dist.comm
    g = dist.global_qubits
    bit = g - 1 - qubit  # position of this qubit inside the rank index
    partner = comm.rank ^ (1 << bit)
    my_bit = (comm.rank >> bit) & 1

    comm.send(dist.slab, dest=partner, tag=400 + qubit)
    other = comm.recv(source=partner, tag=400 + qubit)
    if my_bit == 0:
        dist.slab = matrix[0, 0] * dist.slab + matrix[0, 1] * other
    else:
        dist.slab = matrix[1, 0] * other + matrix[1, 1] * dist.slab


def _apply_cnot_global_control(dist: DistributedState, control: int, target: int) -> None:
    """CNOT with global control: ranks with control bit 1 apply X(target)."""
    g = dist.global_qubits
    bit = g - 1 - control
    if (dist.comm.rank >> bit) & 1:
        if target >= g:
            _apply_local(dist, gate_matrix("x"), [target])
        else:
            _apply_global_single(dist, gate_matrix("x"), target)
    elif target < g:
        # Global-target exchange is collective: partner ranks with control
        # bit 0 still participate in the send/recv pattern of the 1-bit
        # exchange *only* among control=1 ranks, so nothing to do here.
        pass


def _apply_cnot_global_target(dist: DistributedState, control: int, target: int) -> None:
    """CNOT with local control, global target: conditional slab exchange.

    Amplitudes with control bit 1 swap between the target-bit partners; the
    control bit is local, so each rank exchanges only the control=1 half of
    its slab.
    """
    comm = dist.comm
    g = dist.global_qubits
    bit = g - 1 - target
    partner = comm.rank ^ (1 << bit)
    local_control = control - g
    # Mask of local indices with control bit set.
    idx = np.arange(dist.slab.size)
    shift = dist.local_qubits - 1 - local_control
    mask = ((idx >> shift) & 1).astype(bool)

    comm.send(dist.slab[mask], dest=partner, tag=500 + target)
    other = comm.recv(source=partner, tag=500 + target)
    new_slab = dist.slab.copy()
    new_slab[mask] = other
    dist.slab = new_slab


def apply_gate_distributed(
    dist: DistributedState, gate: str, qubits: tuple[int, ...], param: float | None = None
) -> None:
    """Apply one gate to the distributed state (collective call).

    Supports all 1-qubit gates anywhere, and CNOT/CZ on any qubit pair.
    """
    g = dist.global_qubits
    matrix = gate_matrix(gate, param)
    if len(qubits) == 1:
        q = qubits[0]
        if q >= g:
            _apply_local(dist, matrix, [q])
        else:
            _apply_global_single(dist, matrix, q)
        return
    if gate in ("cnot", "cx"):
        control, target = qubits
        if control >= g and target >= g:
            _apply_local(dist, matrix, list(qubits))
        elif control < g:
            _apply_cnot_global_control(dist, control, target)
        else:
            _apply_cnot_global_target(dist, control, target)
        return
    if gate == "cz":
        control, target = qubits
        if control >= g and target >= g:
            _apply_local(dist, matrix, list(qubits))
        else:
            # CZ is diagonal: phase -1 where both bits are 1; no exchange.
            idx = np.arange(dist.slab.size)
            phase = np.ones(dist.slab.size)
            both = np.ones(dist.slab.size, dtype=bool)
            for q in (control, target):
                if q < g:
                    bit = (dist.comm.rank >> (g - 1 - q)) & 1
                    if not bit:
                        both &= False
                else:
                    shift = dist.local_qubits - 1 - (q - g)
                    both &= ((idx >> shift) & 1).astype(bool)
            phase[both] = -1.0
            dist.slab = dist.slab * phase
        return
    raise NotImplementedError(f"distributed application of {gate!r} on {qubits}")


def run_circuit_distributed(dist: DistributedState, circuit: Circuit) -> DistributedState:
    """Evolve the distributed state through a bound circuit (collective)."""
    if not circuit.is_bound:
        raise ValueError("run_circuit_distributed requires a bound circuit")
    if circuit.num_qubits != dist.num_qubits:
        raise ValueError("circuit width mismatch")
    for op in circuit:
        apply_gate_distributed(dist, op.gate, op.qubits, op.param)
    return dist


def expectation_z_distributed(dist: DistributedState, qubit: int) -> float:
    """``<Z_qubit>`` without gathering (collective allreduce).

    Z is diagonal, so each rank sums |amp|^2 with the qubit-bit sign and one
    allreduce finishes the job -- the communication-avoiding pattern used
    for diagonal observables in production distributed simulators.
    """
    g = dist.global_qubits
    if qubit < g:
        bit = (dist.comm.rank >> (g - 1 - qubit)) & 1
        local = (1.0 - 2.0 * bit) * dist.local_norm_sq()
    else:
        idx = np.arange(dist.slab.size)
        shift = dist.local_qubits - 1 - (qubit - g)
        signs = 1.0 - 2.0 * ((idx >> shift) & 1)
        local = float(np.sum(signs * np.abs(dist.slab) ** 2))
    return float(dist.comm.allreduce(local))
