"""``FeatureService`` -- the asyncio front-end over a shared device.

A service binds a :class:`~repro.api.config.ServeConfig` to one shared
:class:`~repro.api.device.QuantumDevice` and serves concurrent feature /
predict requests from many tenants:

* **registration** names a template: a strategy + encoding rows (+ an
  optional per-template execution config and classical head).  Artifacts
  (batched programs via the fingerprint-keyed compile cache, the
  coalescing group key, preflight lint) are built once here, not per
  request;
* **submission** is async: a request is cache-checked, priced by the
  scheduler's cost model, admitted against its tenant's bounds
  (:class:`~repro.serve.fairness.BackpressureError` at the door when
  full), then parked in the micro-batcher until its group flushes;
* **flushing** bridges the event loop to the runtime pool:
  ``asyncio.wrap_future(runtime.submit(execute_flush, ...))`` runs one
  stacked pass per coalesced batch and resolves every request future,
  bit-equal per request to a standalone ``generate_features`` call.

One service per event loop: ``start()`` binds the running loop and every
``submit`` must come from it (use one service per loop, or serialize loops).
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.config import UNSET, ExecutionConfig, ServeConfig
from repro.api.device import QuantumDevice
from repro.quantum.batched import GLOBAL_PARAMETRIC_CACHE
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.engine import (
    FlushRequest,
    TemplateArtifacts,
    build_artifacts,
    execute_flush,
    plan_request,
    request_cost,
)
from repro.serve.fairness import AdmissionController, WeightedRoundRobin
from repro.serve.metrics import MetricsSnapshot, ServiceMetrics
from repro.serve.result_cache import ResultCache, result_key

__all__ = [
    "ServiceClosedError",
    "RequestTimeoutError",
    "Registration",
    "FeatureService",
]


class ServiceClosedError(RuntimeError):
    """The service is not accepting requests (not started, or stopped)."""


class RequestTimeoutError(TimeoutError):
    """One request exceeded its deadline; its flush-mates are unaffected.

    Structured (``template`` / ``tenant`` / ``timeout_s`` attributes plus
    the stable wire ``code``) so the transport layer can answer the one
    timed-out client with a typed error frame while coalesced peers in
    the same flush complete normally.
    """

    code = "timeout"

    def __init__(
        self,
        message: str,
        *,
        template: str = "",
        tenant: str = "",
        timeout_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.template = template
        self.tenant = tenant
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class Registration:
    """One named template: strategy, encoding rows, artifacts, head."""

    name: str
    rows: int
    artifacts: TemplateArtifacts
    head: Any = None

    @property
    def strategy(self) -> Any:
        return self.artifacts.strategy


class FeatureService:
    """Async multi-tenant feature service with cross-request micro-batching.

    Usage::

        service = FeatureService(ServeConfig(batch_window_ms=2.0))
        service.register("fashion", strategy, rows=2)
        async with service:
            features = await service.submit("fashion", angles, tenant="a")

    Pass ``device=`` to serve on an existing session (the service then
    never closes it); otherwise the service owns a device built from
    ``config.pool`` / ``config.max_workers`` around
    ``config.execution``.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        device: QuantumDevice | None = None,
    ) -> None:
        if config is None:
            config = ServeConfig()
        if not isinstance(config, ServeConfig):
            raise TypeError(f"config must be a ServeConfig, got {config!r}")
        self.config = config
        self._device = device
        self._owns_device = device is None
        self._registrations: dict[str, Registration] = {}
        self._artifacts_by_key: dict[Any, TemplateArtifacts] = {}
        self._metrics = ServiceMetrics()
        self._cache = ResultCache(
            config.result_cache_size if config.cache_results else 0,
            config.result_cache_ttl_s,
        )
        self._admission = AdmissionController(
            config.max_queue_depth, config.max_queue_cost
        )
        self._batcher: MicroBatcher | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------ properties
    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def device(self) -> QuantumDevice | None:
        """The shared device (``None`` until an owning service starts)."""
        return self._device

    def templates(self) -> tuple[str, ...]:
        """Registered template names, sorted."""
        return tuple(sorted(self._registrations))

    def template_shape(self, name: str) -> tuple[int, int]:
        """The ``(rows, cols)`` one sample of template ``name`` encodes."""
        registration = self._require_registration(name)
        return (registration.rows, registration.strategy.num_qubits)

    def template_info(self, name: str) -> dict[str, Any]:
        """Wire-facing description of one registration.

        This is what the transport handshake advertises per template:
        input shape (``rows`` x ``cols``), feature ``layout``
        ``[num_ansatze, num_observables]`` (the response's column blocks),
        whether a classical ``head`` is registered, and the template's
        resolved ``chunk_size`` (the streaming block granularity).
        """
        registration = self._require_registration(name)
        strategy = registration.strategy
        return {
            "rows": registration.rows,
            "cols": strategy.num_qubits,
            "layout": [strategy.num_ansatze, strategy.num_observables],
            "head": registration.head is not None,
            "chunk_size": registration.artifacts.cfg.resolved_chunk_size,
        }

    # ---------------------------------------------------------- registration
    def register(
        self,
        name: str,
        strategy: Any,
        *,
        rows: int,
        config: ExecutionConfig | None = None,
        head: Any = None,
    ) -> None:
        """Register a named template (before or after ``start()``).

        ``config`` overrides the service-wide execution config for this
        template only; its seed is the template's *default* request seed
        (``submit(seed=...)`` overrides per request).  ``head`` is any
        object with ``predict(features)`` -- it makes :meth:`predict`
        available for this template.  Registration compiles the batched
        programs once and runs the serve preflight per the execution
        config's ``preflight`` knob.
        """
        from repro.analysis.preflight import run_serve_preflight

        if not name or not isinstance(name, str):
            raise ValueError(f"template name must be a non-empty string, got {name!r}")
        if name in self._registrations:
            raise ValueError(f"template {name!r} is already registered")
        if self._closed:
            raise ServiceClosedError("cannot register on a stopped service")
        if rows < 1:
            raise ValueError(f"rows={rows} must be >= 1")
        execution = config if config is not None else self.config.execution
        assert execution is not None  # ServeConfig canonicalized it
        if isinstance(execution.seed, np.random.Generator):
            raise TypeError(
                "served templates need an int (or None) seed: a live Generator "
                "has no serializable identity for the result cache or group key"
            )
        if head is not None and not callable(getattr(head, "predict", None)):
            raise TypeError(f"head must expose predict(features), got {head!r}")
        artifacts = build_artifacts(strategy, rows, execution)
        if execution.preflight != "off":
            from repro.core.features import _bound_ansatz

            circuits = [artifacts.template]
            parameter_sets = strategy.parameter_sets()
            if parameter_sets:
                bound = _bound_ansatz(strategy, parameter_sets[0])
                if bound is not None:
                    circuits.append(bound)
            run_serve_preflight(
                self.config.merged(execution=execution),
                num_qubits=strategy.num_qubits,
                circuits=circuits,
                owner=f"FeatureService.register({name!r})",
            )
        self._registrations[name] = Registration(
            name=name, rows=rows, artifacts=artifacts, head=head
        )
        # Identical templates coalesce across registrations: last one wins
        # the mapping, but equal keys imply interchangeable artifacts.
        self._artifacts_by_key[artifacts.group_key] = artifacts

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> FeatureService:
        """Bind the running loop, refuse broken configs, warm the device."""
        from repro.analysis.preflight import run_serve_preflight

        if self._closed:
            raise ServiceClosedError("service was stopped; build a new one")
        if self._started:
            raise RuntimeError("service is already started")
        starving = [name for name, weight in self.config.tenant_weights if weight <= 0]
        if starving:
            raise ValueError(
                f"tenant_weights would starve {starving} (RPA112): every "
                f"named tenant needs a positive weight"
            )
        if self.config.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms={self.config.batch_window_ms} is negative "
                f"(RPA110); use 0 to disable coalescing"
            )
        run_serve_preflight(self.config, owner="FeatureService.start")
        self._loop = asyncio.get_running_loop()
        if self._device is None:
            self._device = QuantumDevice(
                self.config.execution,
                pool=self.config.pool,
                max_workers=self.config.max_workers,
            )
        self._device.warm()
        self._batcher = MicroBatcher(
            window_s=self.config.batch_window_s,
            max_batch_size=self.config.max_batch_size,
            selector=WeightedRoundRobin(self.config.weights()),
            flush=self._run_flush,
        )
        self._started = True
        return self

    async def stop(self) -> None:
        """Stop admitting, drain every pending flush, release the device."""
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None:
            await self._batcher.drain()
        if self._owns_device and self._device is not None:
            self._device.close()

    async def __aenter__(self) -> FeatureService:
        if not self._started:
            await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -------------------------------------------------------------- requests
    async def submit(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        """Features for ``x`` under ``template``; coalesces with peers.

        ``x`` is ``(k, rows, cols)`` (or a single ``(rows, cols)`` sample,
        returned as ``(m,)``).  ``seed`` defaults to the template's
        execution seed; per-request seeds keep the standalone seed
        contract -- the response equals
        ``generate_features(strategy, x, config=execution.merged(seed=seed))``
        bit for bit.  Raises
        :class:`~repro.serve.fairness.BackpressureError` when the tenant's
        admission bounds are full.

        ``timeout_s`` is this request's deadline, covering the batch
        window *and* the flush: on expiry the request is withdrawn from
        its coalescing group (still-queued) or abandoned (mid-flush) and
        :class:`RequestTimeoutError` is raised -- its flush-mates complete
        normally either way.  Cancelling the coroutine (a disconnected
        client) withdraws the request the same way.
        """
        self._check_serving()
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or not timeout_s > 0
        ):
            raise ValueError(f"timeout_s={timeout_s!r} must be > 0 or None")
        registration = self._require_registration(template)
        artifacts = registration.artifacts
        cfg = artifacts.cfg
        x = np.asarray(x, dtype=float)
        single = x.ndim == 2
        if single:
            x = x[None]
        if x.ndim != 3 or x.shape[1:] != (
            registration.rows,
            registration.strategy.num_qubits,
        ):
            raise ValueError(
                f"template {template!r} expects (k, {registration.rows}, "
                f"{registration.strategy.num_qubits}) angles, got {x.shape}"
            )
        if seed is UNSET:
            seed = cfg.seed
        if isinstance(seed, np.random.Generator):
            raise TypeError("per-request seeds must be int or None, not a Generator")
        seed = None if seed is None else int(seed)
        self._metrics.record_request(tenant)
        # Stochastic estimators with seed None draw fresh entropy per call;
        # caching would freeze one draw, so those requests bypass the cache.
        stochastic = cfg.estimator != "exact"
        cache_key = None
        if self.config.cache_results and not (stochastic and seed is None):
            cache_key = result_key(
                artifacts.group_key, x, seed if stochastic else None
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._metrics.record_cache_hit(tenant)
                return cached[0] if single else cached
        cost = request_cost(artifacts, x.shape[0])
        try:
            self._admission.try_acquire(tenant, cost)
        except Exception:
            self._metrics.record_rejected(tenant)
            raise
        start = time.perf_counter()
        # Everything between admission and resolution runs under this
        # try/finally: an exception anywhere (planning, enqueueing, the
        # flush itself, a deadline, a cancelled caller) must release the
        # tenant's admission units, or a failing group would permanently
        # leak capacity and eventually backpressure a healthy tenant.
        try:
            assert self._loop is not None and self._batcher is not None
            future: asyncio.Future = self._loop.create_future()
            plan = plan_request(
                registration.strategy.num_ansatze, x.shape[0], cfg, seed
            )
            payload = FlushRequest(angles=x, seed=seed, plan=plan)
            pending = PendingRequest(tenant, payload, cost, future)
            self._batcher.add(artifacts.group_key, pending)
            try:
                if timeout_s is None:
                    result = await future
                else:
                    try:
                        result = await asyncio.wait_for(
                            asyncio.shield(future), timeout_s
                        )
                    except asyncio.TimeoutError:
                        self._abandon(artifacts.group_key, pending)
                        self._metrics.record_timeout(tenant)
                        raise RequestTimeoutError(
                            f"request for template {template!r} (tenant "
                            f"{tenant!r}) exceeded its {timeout_s} s deadline; "
                            f"coalesced peers are unaffected",
                            template=template,
                            tenant=tenant,
                            timeout_s=timeout_s,
                        ) from None
            except asyncio.CancelledError:
                # Disconnected client: withdraw from the window (queued)
                # or leave the flush to skip the resolved future (inflight).
                self._abandon(artifacts.group_key, pending)
                raise
        finally:
            self._admission.release(tenant, cost)
        self._metrics.record_response(tenant, time.perf_counter() - start)
        if cache_key is not None:
            self._cache.put(cache_key, result)
        return result[0] if single else result

    def _abandon(self, group_key: Any, pending: PendingRequest) -> None:
        """Withdraw one request: dequeue if still windowed, resolve future."""
        assert self._batcher is not None
        self._batcher.discard(group_key, pending)
        future = pending.future
        if not future.done():
            future.cancel()
        elif not future.cancelled():
            # Lost race: the flush resolved just as the deadline fired.
            # Retrieve a possible exception so the loop never logs an
            # "exception was never retrieved" for an abandoned request.
            future.exception()

    async def predict(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        """Features via :meth:`submit`, then the template's classical head."""
        registration = self._require_registration(template)
        if registration.head is None:
            raise ValueError(
                f"template {template!r} has no head; register(head=...) to "
                f"serve predictions"
            )
        features = await self.submit(
            template, x, tenant=tenant, seed=seed, timeout_s=timeout_s
        )
        if features.ndim == 1:
            features = features[None]
        return np.asarray(registration.head.predict(features))

    # --------------------------------------------------------------- metrics
    def metrics(self) -> MetricsSnapshot:
        """Freeze the service's counters into a snapshot (any thread)."""
        outstanding = {
            tenant: int(entry["depth"])
            for tenant, entry in self._admission.snapshot().items()
        }
        return self._metrics.snapshot(
            queue_depth=self._admission.depth(),
            outstanding=outstanding,
            compile_cache=dataclasses.asdict(GLOBAL_PARAMETRIC_CACHE.info()),
            result_cache=self._cache.info().to_dict(),
        )

    # -------------------------------------------------------------- internals
    def _require_registration(self, name: str) -> Registration:
        registration = self._registrations.get(name)
        if registration is None:
            raise KeyError(
                f"unknown template {name!r}; registered: {self.templates()}"
            )
        return registration

    def _check_serving(self) -> None:
        if not self._started:
            raise ServiceClosedError("service is not started; await start()")
        if self._closed:
            raise ServiceClosedError("service is stopped")
        if asyncio.get_running_loop() is not self._loop:
            raise RuntimeError(
                "submit() must run on the loop the service started on"
            )

    async def _run_flush(self, key: Any, batch: list[PendingRequest]) -> None:
        """Bridge one coalesced batch to the runtime pool and resolve it."""
        self._metrics.record_flush(len(batch))
        try:
            artifacts = self._artifacts_by_key[key]
            requests = [pending.payload for pending in batch]
            assert self._device is not None
            results = await asyncio.wrap_future(
                self._device.runtime.submit(execute_flush, artifacts, requests)
            )
        except Exception as exc:
            self._metrics.record_error(len(batch))
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending, block in zip(batch, results, strict=True):
            if not pending.future.done():
                pending.future.set_result(block)
