"""Backend-equivalence property suite (unified QuantumBackend layer).

The contract: every backend is a drop-in execution substrate for the same
pipeline.  The density backend with no noise model must reproduce the
statevector backend's physics exactly; the mitigated backend must beat the
raw noisy values it extrapolates from; all three must pickle (they ship to
process workers once per sweep).
"""

import pickle

import numpy as np
import pytest

from repro.quantum.backends import (
    DensityMatrixBackend,
    MitigatedBackend,
    QuantumBackend,
    StatevectorBackend,
    resolve_backend,
)
from repro.quantum.circuit import Circuit
from repro.quantum.compile import compile_circuit
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import PauliString, local_pauli_strings

GATES_1Q = ("h", "x", "y", "z", "s", "t")
ROTATIONS = ("rx", "ry", "rz")
GATES_2Q = ("cnot", "cz")


def random_circuit(num_qubits: int, depth: int, rng: np.random.Generator) -> Circuit:
    c = Circuit(num_qubits)
    for _ in range(depth):
        kind = rng.integers(0, 3)
        if kind == 0:
            c.append(str(rng.choice(GATES_1Q)), int(rng.integers(num_qubits)))
        elif kind == 1:
            c.append(
                str(rng.choice(ROTATIONS)),
                int(rng.integers(num_qubits)),
                float(rng.uniform(0, 2 * np.pi)),
            )
        else:
            q1, q2 = rng.choice(num_qubits, size=2, replace=False)
            c.append(str(rng.choice(GATES_2Q)), (int(q1), int(q2)))
    return c


# ------------------------------------------------------- density == ideal
@pytest.mark.parametrize("num_qubits", [2, 3])
def test_noiseless_density_matches_statevector_on_random_circuits(num_qubits):
    """DensityMatrixBackend(noise_model=None) is the statevector oracle."""
    rng = np.random.default_rng(7)
    sv = StatevectorBackend()
    dm = DensityMatrixBackend(noise_model=None)
    observables = local_pauli_strings(num_qubits, num_qubits)
    for trial in range(25):
        circuit = random_circuit(num_qubits, depth=12, rng=rng)
        psi = sv.run_bound(circuit)[None, :]
        rho = dm.run_bound(circuit)[None, :, :]
        for obs in observables:
            assert dm.expectation(rho, obs)[0] == pytest.approx(
                sv.expectation(psi, obs)[0], abs=1e-10
            ), (trial, obs.string)


def test_noiseless_density_evolve_matches_statevector_batch():
    rng = np.random.default_rng(8)
    sv, dm = StatevectorBackend(), DensityMatrixBackend()
    angles = rng.uniform(0, 2 * np.pi, (5, 4, 3))
    states = sv.prepare(angles)
    program = random_circuit(3, depth=10, rng=rng)
    obs = PauliString("XZY")
    ideal = sv.expectation(sv.evolve(states, program), obs)
    noisefree = dm.expectation(dm.evolve(dm.coerce_states(states), program), obs)
    assert np.allclose(ideal, noisefree, atol=1e-10)


def test_density_sampling_converges_and_is_seed_deterministic():
    rng = np.random.default_rng(9)
    dm = DensityMatrixBackend(NoiseModel.depolarizing(0.01))
    circuit = random_circuit(2, depth=8, rng=rng)
    rho = dm.run_bound(circuit)[None, :, :]
    obs = PauliString("ZX")
    exact = dm.expectation(rho, obs)[0]
    est1 = dm.sample(rho, obs, 40_000, np.random.default_rng(5))[0]
    est2 = dm.sample(rho, obs, 40_000, np.random.default_rng(5))[0]
    assert est1 == est2  # deterministic under seed
    assert est1 == pytest.approx(exact, abs=0.02)
    # shots == 0 falls back to the exact expectation; identity is exactly 1.
    assert dm.sample(rho, obs, 0, None)[0] == pytest.approx(exact)
    assert dm.sample(rho, PauliString("II"), 64, np.random.default_rng(0))[0] == 1.0


# ------------------------------------------------------------- mitigation
def test_mitigated_backend_beats_raw_noisy_expectation():
    """The ZNE contract, folded into the backend API: mitigated values land
    closer to ideal than the scale-1 noisy values they extrapolate from."""
    noise = NoiseModel.depolarizing(0.01)
    sv = StatevectorBackend()
    noisy = DensityMatrixBackend(noise)
    mitigated = MitigatedBackend(noisy, scales=(1, 3, 5))
    circuit = Circuit(2)
    circuit.append("h", 0).append("cnot", (0, 1)).append("ry", 1, 0.9).append("rz", 0, 0.4)
    obs = PauliString("ZZ")
    ideal = sv.expectation(sv.run_bound(circuit)[None, :], obs)[0]
    raw = noisy.expectation(noisy.run_bound(circuit)[None, :, :], obs)[0]
    zne = mitigated.expectation(mitigated.run_bound(circuit)[None, :, :, :], obs)[0]
    assert abs(zne - ideal) < abs(raw - ideal)


def test_mitigated_backend_noiseless_is_exact():
    rng = np.random.default_rng(11)
    sv = StatevectorBackend()
    mitigated = MitigatedBackend(DensityMatrixBackend(None), scales=(1, 3))
    circuit = random_circuit(2, depth=6, rng=rng)
    obs = PauliString("XI")
    ideal = sv.expectation(sv.run_bound(circuit)[None, :], obs)[0]
    zne = mitigated.expectation(mitigated.run_bound(circuit)[None, :, :, :], obs)[0]
    assert zne == pytest.approx(ideal, abs=1e-10)


def test_mitigated_validation():
    inner = DensityMatrixBackend(NoiseModel.depolarizing(0.01))
    with pytest.raises(ValueError):
        MitigatedBackend(inner, scales=(1,))  # need >= 2
    with pytest.raises(ValueError):
        MitigatedBackend(inner, scales=(1, 1, 3))  # distinct
    with pytest.raises(ValueError):
        MitigatedBackend(inner, scales=(1, 2))  # odd only
    with pytest.raises(TypeError):
        MitigatedBackend(MitigatedBackend(inner))  # no nesting
    with pytest.raises(TypeError):
        MitigatedBackend("density")  # type: ignore[arg-type]


# --------------------------------------------------- representation rules
def test_density_backend_refuses_compiled_programs():
    rng = np.random.default_rng(12)
    circuit = random_circuit(2, depth=6, rng=rng)
    compiled = compile_circuit(circuit, max_width=2)
    dm = DensityMatrixBackend(NoiseModel.depolarizing(0.01))
    rho = dm.run_bound(circuit)[None, :, :]
    assert not dm.supports_compile
    with pytest.raises(TypeError):
        dm.evolve(rho, compiled)
    mit = MitigatedBackend(dm)
    with pytest.raises(TypeError):
        mit.evolve(mit.coerce_states(rho), compiled)


def test_shadow_block_requires_pure_states():
    dm = DensityMatrixBackend()
    rho = dm.run_bound(Circuit(2).append("h", 0))[None, :, :]
    with pytest.raises(NotImplementedError):
        dm.shadow_block(rho, [PauliString("ZI")], 8, np.random.default_rng(0))
    assert StatevectorBackend().supports_shadows


def test_mitigated_coerce_survives_scale_dimension_collision():
    """Regression: a 1-qubit density batch (d, 2, 2) with two fold scales
    used to be misread as an already-lifted per-scale stack (shape[1] ==
    len(scales)); it must be replicated across scales instead."""
    mit = MitigatedBackend(DensityMatrixBackend(), scales=(1, 3))
    circuit = Circuit(1).append("ry", 0, 0.7)
    rho = DensityMatrixBackend().run_bound(circuit)[None, :, :]  # (1, 2, 2)
    stack = mit.coerce_states(rho)
    assert stack.shape == (1, 2, 2, 2)
    obs = PauliString("Z")
    ideal = DensityMatrixBackend().expectation(rho, obs)[0]
    assert mit.expectation(stack, obs)[0] == pytest.approx(ideal, abs=1e-10)
    # A genuine per-scale stack still passes through untouched.
    prepared = mit.run_bound(circuit)[None, :, :, :]
    assert mit.coerce_states(prepared) is prepared


def test_circuit_repetitions_accounting():
    assert StatevectorBackend().circuit_repetitions == 1
    assert DensityMatrixBackend().circuit_repetitions == 1
    assert MitigatedBackend(DensityMatrixBackend(), scales=(1, 3, 5)).circuit_repetitions == 3


def test_coerce_states_lifts_statevectors():
    rng = np.random.default_rng(13)
    sv = StatevectorBackend()
    angles = rng.uniform(0, 2 * np.pi, (3, 4, 2))
    psi = sv.prepare(angles)
    dm = DensityMatrixBackend()
    rho = dm.coerce_states(psi)
    assert rho.shape == (3, 4, 4)
    assert dm.coerce_states(rho) is rho  # already in representation
    mit = MitigatedBackend(dm, scales=(1, 3))
    stack = mit.coerce_states(psi)
    assert stack.shape == (3, 2, 4, 4)
    assert np.allclose(stack[:, 0], rho) and np.allclose(stack[:, 1], rho)
    with pytest.raises(ValueError):
        sv.coerce_states(psi[0])
    with pytest.raises(ValueError):
        dm.coerce_states(np.zeros((2, 3, 4)))


def test_backends_are_picklable():
    backends = [
        StatevectorBackend(),
        DensityMatrixBackend(NoiseModel.depolarizing(0.02)),
        MitigatedBackend(DensityMatrixBackend(NoiseModel.depolarizing(0.02))),
    ]
    rng = np.random.default_rng(14)
    circuit = random_circuit(2, depth=5, rng=rng)
    obs = PauliString("ZI")
    for backend in backends:
        clone = pickle.loads(pickle.dumps(backend))
        a = backend.expectation(
            np.asarray(backend.run_bound(circuit))[None, ...], obs
        )[0]
        b = clone.expectation(np.asarray(clone.run_bound(circuit))[None, ...], obs)[0]
        assert a == b


# ------------------------------------------------------------- cost model
def test_cost_weights_price_density_above_statevector():
    n = 4
    sv = StatevectorBackend().evolution_cost_weight(n)
    dm = DensityMatrixBackend().evolution_cost_weight(n)
    mit = MitigatedBackend(DensityMatrixBackend(), scales=(1, 3, 5)).evolution_cost_weight(n)
    assert sv == 2**n
    assert dm == 4**n
    assert mit == (1 + 3 + 5) * 4**n


def test_resolve_backend():
    assert isinstance(resolve_backend(None), StatevectorBackend)
    assert isinstance(resolve_backend("statevector"), StatevectorBackend)
    dm = DensityMatrixBackend()
    assert resolve_backend(dm) is dm
    assert isinstance(dm, QuantumBackend)
    with pytest.raises(ValueError):
        resolve_backend("density")


# --------------------------------------------------- distributed == ideal
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_distributed_backend_matches_statevector(shards):
    """Sharded evolution is a drop-in for the ideal backend, <=1e-10."""
    from repro.quantum.backends import DistributedStatevectorBackend

    rng = np.random.default_rng(31)
    sv = StatevectorBackend()
    dist = DistributedStatevectorBackend(shards=shards)
    for _ in range(4):
        circuit = random_circuit(4, depth=15, rng=rng)
        assert np.abs(dist.run_bound(circuit) - sv.run_bound(circuit)).max() <= 1e-10
        states = sv.prepare(rng.uniform(0, 2 * np.pi, size=(3, 4, 4)))
        program = compile_circuit(circuit, cache=None)
        got = dist.evolve(states, program)
        want = sv.evolve(states, program)
        assert np.abs(got - want).max() <= 1e-10
        obs = PauliString("ZZII")
        assert np.allclose(
            dist.expectation(got, obs), sv.expectation(want, obs), atol=1e-10
        )


def test_distributed_backend_contract():
    from repro.quantum.backends import DistributedStatevectorBackend

    backend = DistributedStatevectorBackend(shards=4)
    assert backend.name == "distributed"
    assert backend.supports_compile is True
    assert backend.supports_vectorize is False
    assert backend.shards == 4
    # evolve(None) is the identity, like the parent backend.
    states = np.eye(4, dtype=np.complex128)[:2]
    assert backend.evolve(states, None) is states
    clone = pickle.loads(pickle.dumps(backend))
    assert clone == backend and clone.shards == 4


def test_distributed_backend_validation():
    from repro.quantum.backends import DistributedStatevectorBackend

    with pytest.raises(ValueError, match="power of two"):
        DistributedStatevectorBackend(shards=3)
    with pytest.raises(ValueError, match="power of two"):
        DistributedStatevectorBackend(shards=0)
    with pytest.raises(ValueError, match="must be an int"):
        DistributedStatevectorBackend(shards=True)


def test_distributed_backend_serialization():
    from repro.quantum.backends import (
        DistributedStatevectorBackend,
        backend_from_dict,
        backend_to_dict,
    )

    backend = DistributedStatevectorBackend(shards=8)
    data = backend_to_dict(backend)
    assert data == {"kind": "distributed", "shards": 8}
    clone = backend_from_dict(data)
    assert isinstance(clone, DistributedStatevectorBackend)
    assert clone.shards == 8
