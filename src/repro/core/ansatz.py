"""Ansatz builders.

:func:`fig8_ansatz` is the paper's exact circuit (Fig. 8): "a simple Ansatz
made of 2 alternations of RY gates and circular CNOT gates", with all
parameters initialised to zero so the Ansatz evaluates to the identity --
the initialisation shown by Grant et al. [21] to avoid barren plateaus and
the expansion point of the Ansatz-expansion strategy.

:func:`hardware_efficient_ansatz` generalises to arbitrary depth/rotation
axes for ablations.
"""

from __future__ import annotations

from repro.quantum.circuit import Circuit

__all__ = ["fig8_ansatz", "hardware_efficient_ansatz"]


def fig8_ansatz(num_qubits: int = 4, layers: int = 2) -> Circuit:
    """RY layer + circular CNOT ring, repeated ``layers`` times, mirrored.

    Odd layers apply the CNOT ring in *reversed* order, so with all
    parameters at zero (RY(0) = I) adjacent rings cancel pairwise and the
    whole Ansatz evaluates to the identity -- the paper's Sec. VII.A
    statement "We set initial parameters to 0, on which the Ansatz would
    evaluate to identity" and the Grant et al. [21] identity-block
    initialisation that avoids barren plateaus.

    Parameters are named ``theta_{layer}_{qubit}`` in application order, so
    the parameter vector has length ``layers * num_qubits`` (k = 8 in the
    paper's 4-qubit configuration).
    """
    return hardware_efficient_ansatz(num_qubits, layers, rotation="ry", mirror=True)


def hardware_efficient_ansatz(
    num_qubits: int,
    layers: int,
    rotation: str = "ry",
    entangle: str = "ring",
    mirror: bool = True,
) -> Circuit:
    """Generic problem-agnostic Ansatz (Kandala et al. style).

    ``rotation`` in {rx, ry, rz}; ``entangle`` in {ring, line}.  The ring
    couples qubit i to (i+1) mod n -- "circular CNOT gates"; the line drops
    the wrap-around link.  With ``mirror=True`` odd layers reverse the
    entangler order so an even-layer Ansatz is the identity at theta = 0.
    """
    if rotation not in ("rx", "ry", "rz"):
        raise ValueError(f"rotation must be rx/ry/rz, got {rotation!r}")
    if entangle not in ("ring", "line"):
        raise ValueError(f"entangle must be ring/line, got {entangle!r}")
    if num_qubits < 2:
        raise ValueError("ansatz needs >= 2 qubits")
    if layers < 1:
        raise ValueError("layers must be >= 1")
    circuit = Circuit(num_qubits, name=f"ansatz[{rotation}x{layers}]")
    last = num_qubits if entangle == "ring" else num_qubits - 1
    pairs = [(q, (q + 1) % num_qubits) for q in range(last)]
    for layer in range(layers):
        for q in range(num_qubits):
            circuit.append(rotation, q, f"theta_{layer}_{q}")
        ordered = pairs if (not mirror or layer % 2 == 0) else list(reversed(pairs))
        for control, target in ordered:
            circuit.append("cnot", (control, target))
    return circuit
