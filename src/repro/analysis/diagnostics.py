"""Diagnostic value objects: stable codes, severities, reports.

Every check in :mod:`repro.analysis` -- program lint, config/plan lint, the
AST codebase lint -- emits :class:`Diagnostic` instances with a *stable*
``RPAxxx`` code, so tooling (CI gates, editor integrations, the table-driven
test suite) can pin behaviour per code instead of parsing prose.  The full
code table lives in :data:`DIAGNOSTIC_CODES`; constructing a diagnostic with
an unregistered code is a programming error and raises immediately.

Code ranges, by analysis layer:

* ``RPA0xx`` -- program lint (circuit / template IR, no execution);
* ``RPA1xx`` -- config/plan lint (cross-field :class:`ExecutionConfig`
  checks beyond per-field validation; ``RPA11x`` covers the serving
  layer's :class:`ServeConfig`);
* ``RPA3xx`` -- codebase lint (repo invariants enforced over source ASTs
  by :mod:`repro.analysis.astlint`).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "DIAGNOSTIC_CODES",
    "CodeSpec",
    "Diagnostic",
    "DiagnosticReport",
]

#: Severity levels, most severe first.  Plain strings (not an enum) so
#: diagnostics JSON-serialize without custom encoders and compare cheaply.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class CodeSpec:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    default_severity: str


def _registry(*specs: CodeSpec) -> dict[str, CodeSpec]:
    table: dict[str, CodeSpec] = {}
    for spec in specs:
        if spec.code in table:
            raise ValueError(f"duplicate diagnostic code {spec.code}")
        if spec.default_severity not in SEVERITIES:
            raise ValueError(f"bad severity for {spec.code}")
        table[spec.code] = spec
    return table


#: The stable code table.  Codes are append-only: retiring a check keeps its
#: code reserved (never recycle a number for a different meaning).
DIAGNOSTIC_CODES: dict[str, CodeSpec] = _registry(
    # ------------------------------------------------- program lint (RPA0xx)
    CodeSpec("RPA001", "operation wires out of range or duplicated", ERROR),
    CodeSpec("RPA002", "malformed operation (unknown gate / wrong arity / bad parameter)", ERROR),
    CodeSpec("RPA003", "template defeats batched vectorized execution", WARNING),
    CodeSpec("RPA004", "gate outside the sharded fast-gate table (dense fallback)", WARNING),
    CodeSpec("RPA005", "noise channel can never fire on this circuit", WARNING),
    CodeSpec("RPA006", "Kraus set is not trace-preserving", ERROR),
    # -------------------------------------------- config/plan lint (RPA1xx)
    CodeSpec("RPA101", "shards exceed the statevector register", ERROR),
    CodeSpec("RPA102", "stochastic estimator forces device->host round-trips", WARNING),
    CodeSpec("RPA103", "config cannot cross a process pool / serialize", WARNING),
    CodeSpec("RPA104", "chunk size below the dispatch-overhead crossover", WARNING),
    CodeSpec("RPA105", "vectorize requested but backend runs per-sample", WARNING),
    CodeSpec("RPA106", "stochastic estimator with a zero measurement budget", ERROR),
    CodeSpec("RPA107", "sharded execution without the grouped compiled engine", INFO),
    # ------------------------------------------- serve-plan lint (RPA11x)
    CodeSpec("RPA110", "micro-batch window is zero or negative", WARNING),
    CodeSpec("RPA111", "result caching enabled with a zero-entry cache", WARNING),
    CodeSpec("RPA112", "tenant fairness weight starves a tenant", ERROR),
    CodeSpec("RPA113", "micro-batching without vectorized execution", WARNING),
    CodeSpec("RPA114", "request deadline shorter than the batch window", WARNING),
    CodeSpec("RPA115", "max_frame_bytes cannot carry one feature row", ERROR),
    CodeSpec("RPA116", "stream threshold set on a non-streaming transport", WARNING),
    # ------------------------------------------------ codebase lint (RPA3xx)
    CodeSpec("RPA301", "xp-parameterized kernel hardwires NumPy ops", ERROR),
    CodeSpec("RPA302", "frozen-dataclass mutation outside __post_init__", ERROR),
    CodeSpec("RPA303", "public API function missing complete type annotations", ERROR),
    CodeSpec("RPA304", "kernel module imports an accelerator library directly", ERROR),
    CodeSpec("RPA305", "kernel module draws randomness in a hot path", ERROR),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, human message, actionable hint.

    ``location`` is free-form context (``"path.py:12"`` for source checks,
    ``"circuit 'encode' op 3"`` for IR checks, ``""`` for whole-config
    findings).  ``severity`` defaults to the code's registered severity.
    """

    code: str
    message: str
    severity: str = ""
    fix_hint: str = ""
    location: str = ""

    def __post_init__(self) -> None:
        spec = DIAGNOSTIC_CODES.get(self.code)
        if spec is None:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", spec.default_severity)
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def title(self) -> str:
        """The registered one-line title of this diagnostic's code."""
        return DIAGNOSTIC_CODES[self.code].title

    def render(self) -> str:
        """One human-readable line (the ``repro lint`` text format)."""
        where = f"{self.location}: " if self.location else ""
        hint = f"  [fix: {self.fix_hint}]" if self.fix_hint else ""
        return f"{self.code} {self.severity}: {where}{self.message}{hint}"

    def to_dict(self) -> dict[str, str]:
        """JSON-safe representation (the ``repro lint --json`` format)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "location": self.location,
        }


_SEVERITY_ORDER = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class DiagnosticReport:
    """An immutable batch of diagnostics with severity accessors.

    Reports merge with ``+`` so each analysis layer stays independently
    testable while callers (CLI, preflight, ``QuantumDevice.check``) combine
    them into one verdict.  ``ok`` is the admission decision: no
    error-severity findings (warnings and infos do not reject a job).
    """

    diagnostics: tuple[Diagnostic, ...] = ()

    @classmethod
    def collect(cls, items: Iterable[Diagnostic]) -> DiagnosticReport:
        """A report over ``items``, sorted most-severe first (stable)."""
        ordered = sorted(items, key=lambda d: (_SEVERITY_ORDER[d.severity], d.code))
        return cls(tuple(ordered))

    # ------------------------------------------------------------- accessors
    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == INFO)

    @property
    def ok(self) -> bool:
        """True when nothing at error severity was found."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was found (the ``--strict`` bar)."""
        return not self.diagnostics

    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, sorted (test/table ergonomics)."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __add__(self, other: DiagnosticReport) -> DiagnosticReport:
        return DiagnosticReport.collect(self.diagnostics + other.diagnostics)

    # -------------------------------------------------------------- renderers
    def render(self) -> str:
        """The text report: one line per diagnostic plus a summary line."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def to_json(self, indent: int | None = None) -> str:
        """JSON array of :meth:`Diagnostic.to_dict` entries."""
        return json.dumps([d.to_dict() for d in self.diagnostics], indent=indent)
