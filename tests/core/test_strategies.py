"""Strategy (Sec. IV) tests: ensemble sizes, observables, Definition 1."""

import numpy as np
import pytest

from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
    strategy_from_name,
)
from repro.quantum.observables import PauliString


def test_ansatz_expansion_counts():
    s = AnsatzExpansion(order=1)
    assert s.num_ansatze == 17  # Eq. 16 at k=8, R=1
    assert s.num_observables == 1
    assert s.num_features == 17
    s2 = AnsatzExpansion(order=2)
    assert s2.num_features == 129


def test_ansatz_expansion_default_observable():
    s = AnsatzExpansion(order=0)
    assert s.observables() == [PauliString("ZIII")]
    assert s.max_locality() == 1


def test_ansatz_expansion_custom_observable_width_check():
    with pytest.raises(ValueError):
        AnsatzExpansion(order=1, observable=PauliString("Z"))


def test_observable_construction_counts():
    for locality, expected in [(0, 1), (1, 13), (2, 67), (3, 175)]:
        s = ObservableConstruction(qubits=4, locality=locality)
        assert s.num_observables == expected  # Eq. 18
        assert s.num_ansatze == 1
        assert s.ansatz is None


def test_observable_construction_includes_identity():
    s = ObservableConstruction(qubits=4, locality=1)
    assert s.observables()[0].is_identity


def test_hybrid_counts_definition1():
    """m = p * q with p from Eq. 16 and q from Eq. 18."""
    s = HybridStrategy(order=1, locality=1)
    assert (s.num_ansatze, s.num_observables, s.num_features) == (17, 13, 221)
    s = HybridStrategy(order=2, locality=1)
    assert s.num_features == 129 * 13
    s = HybridStrategy(order=1, locality=2)
    assert s.num_features == 17 * 67


def test_parameter_sets_are_shift_vectors():
    s = AnsatzExpansion(order=1)
    sets = s.parameter_sets()
    assert np.allclose(sets[0], np.zeros(8))  # base config
    # Every non-base set has exactly one entry at +-pi/2.
    for vec in sets[1:]:
        nonzero = vec[vec != 0]
        assert nonzero.size == 1
        assert abs(abs(nonzero[0]) - np.pi / 2) < 1e-12


def test_base_parameters_offset():
    base = np.full(8, 0.3)
    s = AnsatzExpansion(order=1, base_parameters=base)
    sets = s.parameter_sets()
    assert np.allclose(sets[0], base)


def test_max_locality():
    assert HybridStrategy(order=1, locality=2).max_locality() == 2
    assert ObservableConstruction(qubits=4, locality=3).max_locality() == 3


def test_describe():
    text = HybridStrategy(order=1, locality=1).describe()
    assert "p=17" in text and "q=13" in text and "m=221" in text


def test_factory():
    assert strategy_from_name("ansatz", order=1).num_features == 17
    assert strategy_from_name("observable", locality=2).num_features == 67
    assert strategy_from_name("hybrid", order=1, locality=1).num_features == 221
    with pytest.raises(ValueError):
        strategy_from_name("bogus")


def test_validation():
    with pytest.raises(ValueError):
        AnsatzExpansion(order=-1)
    with pytest.raises(ValueError):
        ObservableConstruction(qubits=0)
    with pytest.raises(ValueError):
        HybridStrategy(order=-1)
