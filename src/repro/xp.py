"""Array-namespace shim: one tensor abstraction over NumPy / CuPy / torch.

Every hot kernel (fused-block tensordots, the batched structure-shared
engine, Kraus application, the stacked density walker) takes an optional
``xp`` namespace.  With ``xp=None`` -- or the native NumPy namespace -- the
kernels run their original NumPy bodies, bit-identical to the pre-shim
behaviour.  Any other namespace routes the same contractions through that
library's ops (``torch.tensordot``, ``cupy.einsum``, ...), with device
transfer at the edges: constant gate matrices move host->device once per
namespace via an id-keyed memo (:meth:`ArrayNamespace.to_device_cached`),
angles move once per chunk at the job boundary, and results come back as
NumPy so the rest of the pipeline never sees a foreign array.

Backend selection is a config knob
(``ExecutionConfig(array_backend="numpy"|"cupy"|"torch"|"auto")``,
``--array-backend``), validated at config construction
(:func:`validate_array_backend`: unknown names and not-installed libraries
raise ``ValueError`` before any worker starts).  ``"auto"`` prefers CuPy,
then torch *with* CUDA, else NumPy -- a CPU-only torch install is not
faster than NumPy, so auto never picks it
(:func:`resolve_array_backend`).

CuPy and torch are detected lazily and imported only when actually
selected; the shim itself depends on nothing beyond NumPy.
:func:`generic_numpy_namespace` returns a NumPy-backed namespace with
``native=False`` -- it drives the kernels' generic (device) code path on
plain CPU NumPy, which is how the equivalence suite covers that path even
where CuPy/torch are absent.
"""

from __future__ import annotations

import importlib.util
from collections import OrderedDict
from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = [
    "ARRAY_BACKENDS",
    "ArrayNamespace",
    "backend_available",
    "generic_numpy_namespace",
    "get_namespace",
    "resolve_array_backend",
    "validate_array_backend",
]

#: Legal values of the ``array_backend`` knob, in documentation order.
ARRAY_BACKENDS = ("auto", "numpy", "cupy", "torch")

#: Entries kept in each namespace's host->device constant-matrix memo.
#: Compiled programs hold at most a few hundred distinct gate matrices;
#: strong references to the source arrays keep ids stable (an id-keyed
#: cache on a dead object could alias a new one).
_DEVICE_CACHE_SIZE = 512


def backend_available(name: str) -> bool:
    """Whether ``name``'s library is importable (cheap: spec lookup only)."""
    if name == "numpy":
        return True
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def validate_array_backend(knob: Any) -> str:
    """Validate the ``array_backend`` config knob (raises ``ValueError``).

    Runs at :class:`~repro.api.config.ExecutionConfig` construction so an
    unknown name or a not-installed explicit backend fails at the call
    site, not deep inside a worker process.
    """
    if not isinstance(knob, str) or knob not in ARRAY_BACKENDS:
        raise ValueError(
            f"array_backend must be one of {ARRAY_BACKENDS}, got {knob!r}"
        )
    if knob in ("cupy", "torch") and not backend_available(knob):
        raise ValueError(
            f"array_backend={knob!r} requested but {knob} is not installed "
            f"(install it, or use \"auto\" to fall back to numpy)"
        )
    return knob


def _torch_has_cuda() -> bool:
    try:
        import torch

        return bool(torch.cuda.is_available())
    except Exception:  # pragma: no cover - import/runtime probe failure
        return False


def resolve_array_backend(knob: Any) -> str:
    """Resolve the knob to a concrete namespace name.

    ``"auto"`` prefers CuPy (GPU by construction), then torch when it can
    reach a CUDA device, else NumPy.  Resolution happens once in the parent
    process and the concrete *name* ships to workers, so a pool never mixes
    namespaces within one sweep.
    """
    knob = validate_array_backend(knob)
    if knob != "auto":
        return knob
    if backend_available("cupy"):
        return "cupy"
    if backend_available("torch") and _torch_has_cuda():
        return "torch"
    return "numpy"


class ArrayNamespace:
    """Minimal array-API surface the quantum kernels contract against.

    Concrete subclasses adapt one library.  ``native`` is True only for
    the NumPy namespace that backs plain ``np.ndarray`` inputs directly --
    kernels use it to keep their original (bit-identical) NumPy fast path.
    """

    name: str
    native: bool

    def __init__(
        self, name: str, native: bool, device_cache_size: int = _DEVICE_CACHE_SIZE
    ) -> None:
        if device_cache_size < 1:
            raise ValueError(
                f"device_cache_size={device_cache_size} must be >= 1"
            )
        self.name = name
        self.native = native
        self.device_cache_size = int(device_cache_size)
        self._device_cache: OrderedDict[int, tuple[Any, Any]] = OrderedDict()

    # ------------------------------------------------------------ transfer
    def to_device(self, array: Any) -> Any:
        raise NotImplementedError

    def to_numpy(self, array: Any) -> np.ndarray:
        raise NotImplementedError

    def to_device_cached(self, array: np.ndarray) -> Any:
        """Memoized host->device transfer for constant matrices.

        Keyed by ``id`` with a strong reference to the source array and an
        identity re-check on hit, so a recycled id can never serve a stale
        device copy.  NumPy arrays are unhashable and must not be compared
        by value here (that would cost the copy we are avoiding).
        """
        key = id(array)
        hit = self._device_cache.get(key)
        if hit is not None and hit[0] is array:
            self._device_cache.move_to_end(key)
            return hit[1]
        device = self.to_device(array)
        self._device_cache[key] = (array, device)
        self._device_cache.move_to_end(key)
        while len(self._device_cache) > self.device_cache_size:
            self._device_cache.popitem(last=False)
        return device

    # ------------------------------------------------------------ dtype/alloc
    def ascomplex(self, array: Any) -> Any:
        """``array`` as a complex128 tensor of this namespace."""
        raise NotImplementedError

    def zeros(self, shape: Sequence[int]) -> Any:
        """Complex128 zeros of ``shape`` on this namespace's device."""
        raise NotImplementedError

    # ------------------------------------------------------------ kernels
    def einsum(self, subscripts: str, *operands: Any) -> Any:
        raise NotImplementedError

    def tensordot(self, a: Any, b: Any, axes: Any) -> Any:
        raise NotImplementedError

    def moveaxis(self, array: Any, source: Any, destination: Any) -> Any:
        raise NotImplementedError

    def matmul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def conj(self, array: Any) -> Any:
        raise NotImplementedError

    def stack(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        raise NotImplementedError

    def ascontiguous(self, array: Any) -> Any:
        raise NotImplementedError

    def cos(self, array: Any) -> Any:
        raise NotImplementedError

    def sin(self, array: Any) -> Any:
        raise NotImplementedError

    def exp(self, array: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayNamespace({self.name!r}, native={self.native})"


class _NumpyNamespace(ArrayNamespace):
    """NumPy adapter.  ``native=True`` is the kernel fast-path marker; the
    ``native=False`` variant exists to exercise the generic device path on
    CPU (:func:`generic_numpy_namespace`)."""

    def __init__(
        self, native: bool = True, device_cache_size: int = _DEVICE_CACHE_SIZE
    ) -> None:
        super().__init__("numpy", native, device_cache_size)

    def to_device(self, array):
        return np.asarray(array)

    def to_numpy(self, array):
        return np.asarray(array)

    def ascomplex(self, array):
        return np.asarray(array, dtype=np.complex128)

    def zeros(self, shape):
        return np.zeros(tuple(shape), dtype=np.complex128)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        return np.tensordot(a, b, axes=axes)

    def moveaxis(self, array, source, destination):
        return np.moveaxis(array, source, destination)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def conj(self, array):
        return np.conj(array)

    def stack(self, arrays, axis=0):
        return np.stack(arrays, axis=axis)

    def ascontiguous(self, array):
        return np.ascontiguousarray(array)

    def cos(self, array):
        return np.cos(array)

    def sin(self, array):
        return np.sin(array)

    def exp(self, array):
        return np.exp(array)


class _CupyNamespace(ArrayNamespace):
    """CuPy adapter: NumPy-compatible API, arrays live on the GPU."""

    def __init__(self) -> None:
        import cupy

        super().__init__("cupy", False)
        self._cp = cupy

    def to_device(self, array):
        return self._cp.asarray(array)

    def to_numpy(self, array):
        return self._cp.asnumpy(array)

    def ascomplex(self, array):
        return self._cp.asarray(array, dtype=self._cp.complex128)

    def zeros(self, shape):
        return self._cp.zeros(tuple(shape), dtype=self._cp.complex128)

    def einsum(self, subscripts, *operands):
        return self._cp.einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        return self._cp.tensordot(a, b, axes=axes)

    def moveaxis(self, array, source, destination):
        return self._cp.moveaxis(array, source, destination)

    def matmul(self, a, b):
        return self._cp.matmul(a, b)

    def conj(self, array):
        return self._cp.conj(array)

    def stack(self, arrays, axis=0):
        return self._cp.stack(arrays, axis=axis)

    def ascontiguous(self, array):
        return self._cp.ascontiguousarray(array)

    def cos(self, array):
        return self._cp.cos(array)

    def sin(self, array):
        return self._cp.sin(array)

    def exp(self, array):
        return self._cp.exp(array)


class _TorchNamespace(ArrayNamespace):
    """Torch adapter (CUDA when available, else CPU tensors).

    Differences papered over here so kernels stay library-agnostic:
    ``tensordot(dims=)`` / ``movedim`` / ``stack(dim=)`` spellings, and
    conjugation via the lazy conj bit (``resolve_conj`` before handing a
    tensor back to NumPy).
    """

    def __init__(self) -> None:
        import torch

        super().__init__("torch", False)
        self._torch = torch
        self._device = torch.device("cuda" if torch.cuda.is_available() else "cpu")

    def to_device(self, array):
        return self._torch.as_tensor(
            np.ascontiguousarray(array), device=self._device
        )

    def to_numpy(self, array):
        return array.resolve_conj().cpu().numpy()

    def ascomplex(self, array):
        if not self._torch.is_tensor(array):
            array = self.to_device(np.asarray(array))
        return array.to(self._torch.complex128)

    def zeros(self, shape):
        return self._torch.zeros(
            tuple(shape), dtype=self._torch.complex128, device=self._device
        )

    def einsum(self, subscripts, *operands):
        return self._torch.einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        if isinstance(axes, tuple):
            axes = (list(axes[0]), list(axes[1]))
        return self._torch.tensordot(a, b, dims=axes)

    def moveaxis(self, array, source, destination):
        if not isinstance(source, int):
            source, destination = tuple(source), tuple(destination)
        return self._torch.movedim(array, source, destination)

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def conj(self, array):
        return self._torch.conj(array)

    def stack(self, arrays, axis=0):
        return self._torch.stack(list(arrays), dim=axis)

    def ascontiguous(self, array):
        return array.contiguous()

    def cos(self, array):
        return self._torch.cos(array)

    def sin(self, array):
        return self._torch.sin(array)

    def exp(self, array):
        return self._torch.exp(array)


_NAMESPACES: dict[str, ArrayNamespace] = {}


def get_namespace(name: str) -> ArrayNamespace:
    """The process-wide namespace for ``name`` (resolving ``"auto"``).

    One instance per library per process, so the device-constant memo is
    shared by every kernel call on that backend.
    """
    name = resolve_array_backend(name)
    namespace = _NAMESPACES.get(name)
    if namespace is None:
        if name == "numpy":
            namespace = _NumpyNamespace()
        elif name == "cupy":
            namespace = _CupyNamespace()
        else:
            namespace = _TorchNamespace()
        _NAMESPACES[name] = namespace
    return namespace


def generic_numpy_namespace() -> ArrayNamespace:
    """A fresh NumPy-backed namespace with ``native=False``.

    Forces the kernels' generic device path (transfer memo, xp ops) while
    staying on CPU NumPy -- the equivalence suite runs it everywhere, so
    the path CuPy/torch exercise is covered even when neither is
    installed.
    """
    return _NumpyNamespace(native=False)
