"""Acceptance property suite for the persistent async runtime.

Pins the schedule-independence contract with streaming assembly on:

* ``exact``  -- bit-for-bit identical Q matrices across every
  {serial, thread, process} backend x {block, cyclic, lpt, work_stealing}
  dispatch policy combination;
* ``shots``/``shadows`` -- seed-deterministic matrices: identical for a
  fixed seed regardless of backend/policy, different under a different
  seed.

Per-task RNG streams are derived from the task *index*, so neither the
submission order (policy) nor the completion order (backend) may leak into
the numbers.  Process pools are created once per backend fixture and
reused across every sweep -- exercising pool persistence along the way.
"""

import numpy as np
import pytest

from repro.core.features import evaluate_features
from repro.core.strategies import HybridStrategy
from repro.data.encoding import encode_batch
from repro.hpc.executor import ParallelExecutor
from repro.hpc.scheduler import SCHEDULING_POLICIES

CHUNK = 2  # 6 samples -> 3 chunks per Ansatz: real multi-task schedules


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    angles = rng.uniform(0, 2 * np.pi, size=(6, 4, 4))
    return HybridStrategy(order=1, locality=1), encode_batch(angles)


@pytest.fixture(scope="module", params=["serial", "thread", "process"])
def executor(request):
    workers = 1 if request.param == "serial" else 2
    with ParallelExecutor(request.param, workers) as ex:
        yield ex


@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
def test_exact_bit_for_bit_across_backends_and_policies(workload, executor, policy):
    strategy, states = workload
    reference = evaluate_features(strategy, states, chunk_size=CHUNK)
    q = evaluate_features(
        strategy,
        states,
        executor=executor,
        chunk_size=CHUNK,
        dispatch_policy=policy,
    )
    assert np.array_equal(q, reference)


@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
@pytest.mark.parametrize(
    "estimator,kwargs",
    [("shots", {"shots": 32}), ("shadows", {"snapshots": 16})],
    ids=["shots", "shadows"],
)
def test_stochastic_seed_deterministic_across_schedules(
    workload, executor, policy, estimator, kwargs
):
    strategy, states = workload
    reference = evaluate_features(
        strategy, states, estimator=estimator, seed=7, chunk_size=CHUNK, **kwargs
    )
    q = evaluate_features(
        strategy,
        states,
        estimator=estimator,
        seed=7,
        chunk_size=CHUNK,
        executor=executor,
        dispatch_policy=policy,
        **kwargs,
    )
    assert np.array_equal(q, reference)


def test_different_seed_changes_stochastic_matrix(workload):
    strategy, states = workload
    a = evaluate_features(strategy, states, estimator="shots", shots=32, seed=7, chunk_size=CHUNK)
    b = evaluate_features(strategy, states, estimator="shots", shots=32, seed=8, chunk_size=CHUNK)
    assert not np.array_equal(a, b)


def test_process_pool_persisted_across_property_sweeps(workload, executor):
    """The module-scoped executor must have built at most one pool."""
    strategy, states = workload
    evaluate_features(strategy, states, executor=executor, chunk_size=CHUNK)
    if executor.backend != "serial":
        assert executor.runtime.pools_created == 1
