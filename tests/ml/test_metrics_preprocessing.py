"""Metrics and preprocessing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import accuracy, confusion_matrix, one_hot
from repro.ml.optimizers import SGD, Adam
from repro.ml.preprocessing import (
    flatten_images,
    max_pool,
    preprocess_images,
    rescale_to_angle,
)


def test_accuracy():
    assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy([1], [1, 2])
    with pytest.raises(ValueError):
        accuracy([], [])


def test_confusion_matrix():
    cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], 2)
    assert cm.tolist() == [[1, 1], [0, 2]]
    assert cm.sum() == 4


def test_one_hot():
    oh = one_hot([0, 2, 1], 3)
    assert oh.shape == (3, 3)
    assert np.array_equal(oh.argmax(axis=1), [0, 2, 1])
    with pytest.raises(ValueError):
        one_hot([3], 3)


def test_max_pool_correctness():
    img = np.arange(16).reshape(4, 4).astype(float)
    pooled = max_pool(img, 2)
    assert pooled.tolist() == [[5, 7], [13, 15]]


def test_max_pool_batch_and_validation():
    batch = np.random.default_rng(0).uniform(size=(3, 28, 28))
    pooled = max_pool(batch, 7)
    assert pooled.shape == (3, 4, 4)
    with pytest.raises(ValueError):
        max_pool(batch, 5)  # 28 not divisible by 5


def test_max_pool_dominance():
    """Each pooled value equals the max of its patch (spot check)."""
    rng = np.random.default_rng(1)
    img = rng.uniform(size=(28, 28))
    pooled = max_pool(img, 7)
    assert pooled[0, 0] == img[:7, :7].max()
    assert pooled[3, 2] == img[21:, 14:21].max()


@given(lo=st.floats(-5, 5), span=st.floats(0.1, 10))
@settings(max_examples=40)
def test_rescale_range(lo, span):
    rng = np.random.default_rng(0)
    data = rng.uniform(lo, lo + span, size=(4, 4))
    out = rescale_to_angle(data)
    assert out.min() >= 0.0
    assert out.max() < 2 * np.pi


def test_rescale_constant_input():
    out = rescale_to_angle(np.full((2, 2), 3.0))
    assert np.all(out == 0.0)


def test_rescale_monotone():
    data = np.array([0.0, 1.0, 2.0])
    out = rescale_to_angle(data)
    assert out[0] < out[1] < out[2]


def test_preprocess_pipeline():
    rng = np.random.default_rng(2)
    out = preprocess_images(rng.uniform(size=(5, 28, 28)))
    assert out.shape == (5, 4, 4)
    assert out.min() >= 0 and out.max() < 2 * np.pi


def test_flatten():
    batch = np.zeros((3, 4, 4))
    assert flatten_images(batch).shape == (3, 16)
    with pytest.raises(ValueError):
        flatten_images(np.zeros((4, 4)))


# ------------------------------------------------------------- optimisers
def test_sgd_step_direction():
    opt = SGD(lr=0.1)
    p = np.array([1.0, 1.0])
    g = np.array([1.0, -1.0])
    out = opt.step(p, g)
    assert np.allclose(out, [0.9, 1.1])


def test_sgd_momentum_accumulates():
    opt = SGD(lr=0.1, momentum=0.9)
    p = np.zeros(1)
    g = np.ones(1)
    p1 = opt.step(p, g, key="p")
    p2 = opt.step(p1, g, key="p")
    # Second step is larger in magnitude than the first.
    assert abs(p2 - p1) > abs(p1 - p)


def test_adam_converges_on_quadratic():
    opt = Adam(lr=0.1)
    p = np.array([5.0])
    for _ in range(300):
        p = opt.step(p, 2 * p, key="x")  # f = p^2
    assert abs(p[0]) < 0.05


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD(lr=0.0)
    with pytest.raises(ValueError):
        SGD(momentum=1.0)
    with pytest.raises(ValueError):
        Adam(lr=-1.0)
    with pytest.raises(ValueError):
        Adam(beta1=1.0)
