"""SPSA -- simultaneous perturbation stochastic approximation.

The hardware-standard optimiser for variational circuits: two function
evaluations per step regardless of dimension (vs 2k for parameter shift),
tolerant of shot noise.  Included so the variational baseline can be run
under realistic NISQ optimisation and compared against the post-variational
ensemble's zero-iteration training.

Implements the canonical Spall gain sequences ``a_k = a/(k+1+A)^alpha``,
``c_k = c/(k+1)^gamma`` with the usual defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["SPSA"]


@dataclass
class SPSA:
    """Minimise ``f(theta)`` with simultaneous random perturbations."""

    a: float = 0.2
    c: float = 0.1
    big_a: float = 10.0
    alpha: float = 0.602
    gamma: float = 0.101
    seed: int | np.random.Generator | None = 0
    history_: list[float] = field(default_factory=list, repr=False)

    def minimize(
        self,
        f: Callable[[np.ndarray], float],
        theta0: np.ndarray,
        iterations: int = 100,
    ) -> np.ndarray:
        """Run ``iterations`` SPSA steps from ``theta0``; returns the iterate
        with the best *recorded* objective (evaluated once per step)."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        rng = as_rng(self.seed)
        theta = np.array(theta0, dtype=float)
        best = theta.copy()
        best_val = f(theta)
        self.history_ = [best_val]
        for k in range(iterations):
            ak = self.a / (k + 1 + self.big_a) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=theta.size)
            plus = f(theta + ck * delta)
            minus = f(theta - ck * delta)
            gradient_estimate = (plus - minus) / (2.0 * ck) * (1.0 / delta)
            theta = theta - ak * gradient_estimate
            value = f(theta)
            self.history_.append(value)
            if value < best_val:
                best_val = value
                best = theta.copy()
        return best
