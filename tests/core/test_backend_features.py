"""Backend-unified feature pipeline: regression pins + acceptance criteria.

Pins the PR's contract:

* ``generate_features(..., backend=DensityMatrixBackend(noise_model))``
  reproduces the retired ``generate_features_noisy`` fork (re-implemented
  inline here as the oracle) while streaming through the
  :class:`~repro.hpc.runtime.ExecutionRuntime` under all four scheduler
  policies;
* a parameterless-but-non-empty Ansatz (fixed CZ ladder) is no longer
  silently dropped: its features differ from encoder-only features on
  every backend;
* the mitigated backend lands closer to ideal than raw noisy features;
* the deprecation shim warns and matches the backend path exactly.
"""

import numpy as np
import pytest

from repro.core.features import evaluate_features, generate_features, iter_feature_blocks
from repro.core.noisy_features import generate_features_noisy
from repro.core.pipeline import HybridPipeline
from repro.core.strategies import AnsatzExpansion, ObservableConstruction
from repro.data.encoding import encoding_circuit
from repro.hpc.runtime import ExecutionRuntime
from repro.hpc.scheduler import SCHEDULING_POLICIES
from repro.quantum.backends import DensityMatrixBackend, MitigatedBackend
from repro.quantum.circuit import Circuit
from repro.quantum.density import expectation_density, run_circuit_density
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import PauliString


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(5, 4, 4))


@pytest.fixture(scope="module")
def noise():
    return NoiseModel.depolarizing(0.02)


def legacy_noisy_features(strategy, angles, noise_model):
    """The retired fork's algorithm, verbatim: per-sample full-circuit
    (encoder + bound Ansatz) Kraus evolution.  The regression oracle."""
    observables = strategy.observables()
    parameter_sets = strategy.parameter_sets()
    q = len(observables)
    out = np.empty((len(angles), len(parameter_sets) * q))
    for i, a in enumerate(angles):
        circuit = encoding_circuit(a)
        for j, params in enumerate(parameter_sets):
            full = circuit
            ansatz = strategy.ansatz
            if ansatz is not None and ansatz.num_gates:
                full = circuit.compose(ansatz.bind(params))
            rho = run_circuit_density(full, noise_model=noise_model)
            for b, obs in enumerate(observables):
                out[i, j * q + b] = expectation_density(rho, obs)
    return out


def cz_ladder_strategy():
    """Order-0 expansion over a gate-having, parameter-free Ansatz."""
    cz = Circuit(4, name="cz-ladder")
    cz.append("cz", (0, 1)).append("cz", (1, 2)).append("cz", (2, 3))
    return AnsatzExpansion(circuit=cz, order=0, observable=PauliString("XXII"))


def encoder_only_strategy():
    return AnsatzExpansion(circuit=Circuit(4), order=0, observable=PauliString("XXII"))


# ------------------------------------------------------- fork regression
def test_density_backend_reproduces_legacy_noisy_fork(angles, noise):
    strategy = ObservableConstruction(qubits=4, locality=1)
    expected = legacy_noisy_features(strategy, angles, noise)
    q = generate_features(strategy, angles, backend=DensityMatrixBackend(noise))
    assert np.allclose(q, expected, atol=1e-12)


def test_deprecated_shim_warns_and_matches_backend_path(angles, noise):
    strategy = ObservableConstruction(qubits=4, locality=1)
    q_backend = generate_features(strategy, angles, backend=DensityMatrixBackend(noise))
    with pytest.warns(DeprecationWarning):
        q_shim = generate_features_noisy(strategy, angles, noise)
    assert np.array_equal(q_shim, q_backend)


@pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
def test_noisy_sweep_streams_through_runtime_under_every_policy(angles, noise, policy):
    """Acceptance: the density backend runs the same FeatureJob grid through
    live policy-ordered dispatch and stays bit-identical to serial."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    reference = generate_features(
        strategy, angles, backend=DensityMatrixBackend(noise), chunk_size=2
    )
    with ExecutionRuntime("thread", 2) as runtime:
        q = generate_features(
            strategy,
            angles,
            backend=DensityMatrixBackend(noise),
            executor=runtime,
            dispatch_policy=policy,
            chunk_size=2,
        )
    assert np.array_equal(q, reference)


def test_iter_feature_blocks_tiles_noisy_matrix(angles, noise):
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DensityMatrixBackend(noise)
    full = generate_features(strategy, angles, backend=backend, chunk_size=2)
    states = backend.prepare(angles)
    assembled = np.full_like(full, np.nan)
    q = strategy.num_observables
    for job, block in iter_feature_blocks(
        strategy, states, chunk_size=2, backend=backend
    ):
        assembled[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
    assert np.array_equal(assembled, full)


# -------------------------------------------- parameterless-Ansatz bugfix
@pytest.mark.parametrize(
    "backend_factory",
    [
        lambda noise: None,  # ideal statevector
        lambda noise: DensityMatrixBackend(noise),
        lambda noise: MitigatedBackend(DensityMatrixBackend(noise), scales=(1, 3)),
    ],
    ids=["statevector", "density", "mitigated"],
)
def test_parameterless_ansatz_is_not_dropped(angles, noise, backend_factory):
    """Regression: a CZ-ladder Ansatz with gates but zero parameters used to
    be silently skipped, yielding encoder-only features on every path."""
    backend = backend_factory(noise)
    q_ladder = generate_features(cz_ladder_strategy(), angles, backend=backend)
    q_encoder = generate_features(encoder_only_strategy(), angles, backend=backend)
    assert not np.allclose(q_ladder, q_encoder)


def test_parameterless_ansatz_matches_explicit_composition(angles, noise):
    """The un-dropped Ansatz computes the right thing, not just a different
    thing: compare against explicit encoder+ladder density evolution."""
    strategy = cz_ladder_strategy()
    expected = legacy_noisy_features(strategy, angles, noise)
    q = generate_features(strategy, angles, backend=DensityMatrixBackend(noise))
    assert np.allclose(q, expected, atol=1e-12)


# --------------------------------------------------- estimators & errors
def test_noisy_shots_estimator_is_seed_deterministic(angles, noise):
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DensityMatrixBackend(noise)
    kwargs = dict(estimator="shots", shots=64, chunk_size=2, backend=backend)
    a = generate_features(strategy, angles, seed=3, **kwargs)
    b = generate_features(strategy, angles, seed=3, **kwargs)
    c = generate_features(strategy, angles, seed=4, **kwargs)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_shadows_estimator_rejected_on_density_backend(angles, noise):
    strategy = ObservableConstruction(qubits=4, locality=1)
    with pytest.raises(ValueError, match="pure-state"):
        generate_features(
            strategy,
            angles,
            estimator="shadows",
            backend=DensityMatrixBackend(noise),
        )


def test_compile_knob_validated_even_where_ignored(angles, noise):
    """Density backends never fuse, but a typo'd compile value must fail
    identically on every backend instead of passing silently."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    with pytest.raises(ValueError, match="compile"):
        generate_features(
            strategy, angles, compile="atuo", backend=DensityMatrixBackend(noise)
        )


def test_evaluate_features_lifts_pre_encoded_statevectors(angles):
    """Pre-encoded statevectors enter a density sweep noiselessly, so with
    no noise model the result equals the ideal matrix."""
    from repro.data.encoding import encode_batch

    strategy = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    ideal = evaluate_features(strategy, states)
    lifted = evaluate_features(strategy, states, backend=DensityMatrixBackend(None))
    assert np.allclose(lifted, ideal, atol=1e-10)


def test_mitigated_features_closer_to_ideal_than_noisy(angles):
    strategy = ObservableConstruction(qubits=4, locality=1)
    noise = NoiseModel.depolarizing(0.02)
    ideal = generate_features(strategy, angles)
    noisy = generate_features(strategy, angles, backend=DensityMatrixBackend(noise))
    mitigated = generate_features(
        strategy, angles, backend=MitigatedBackend(DensityMatrixBackend(noise))
    )
    assert np.abs(mitigated - ideal).max() < np.abs(noisy - ideal).max()


def test_default_chunking_is_fine_grained_for_noisy_backends(noise):
    """With chunk_size left unset, expensive backends split the grid finely
    (8 rows/job) so small noisy datasets still occupy a worker pool, while
    the statevector default stays coarse (128 rows/job)."""
    rng = np.random.default_rng(5)
    many = rng.uniform(0, 2 * np.pi, size=(24, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    _, ideal_report = generate_features(strategy, many, return_report=True)
    _, noisy_report = generate_features(
        strategy, many, backend=DensityMatrixBackend(noise), return_report=True
    )
    assert ideal_report.num_tasks == 1  # 24 rows < 128
    assert noisy_report.num_tasks == 3  # ceil(24 / 8)


def test_noisy_prepare_parallelises_without_changing_numbers(angles, noise):
    """Encoder-stage Kraus evolution fans out over the sweep's executor
    (chunked like the job grid) and stays bit-identical to serial."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DensityMatrixBackend(noise)
    reference = generate_features(strategy, angles, backend=backend, chunk_size=2)
    with ExecutionRuntime("thread", 2) as runtime:
        q = generate_features(
            strategy, angles, backend=backend, executor=runtime, chunk_size=2
        )
    assert np.array_equal(q, reference)


# ----------------------------------------------------------- pipeline
def test_hybrid_pipeline_runs_noisy_backend_end_to_end(angles, noise):
    y = (angles[:, 0, 0] > np.pi).astype(int)
    with HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        backend=DensityMatrixBackend(noise),
        chunk_size=2,
    ) as pipe:
        pipe.fit(angles, y)
        preds = pipe.predict(angles)
        assert preds.shape == y.shape
        assert pipe.report_.dispatch is not None
        # The projection prices density tasks through the same backend.
        assert len(pipe.circuit_tasks(len(angles))) > 0


def test_pipeline_counters_scale_with_mitigation(angles, noise):
    """Resource accounting counts one execution (and shot draw) per fold
    scale for mitigated sweeps."""
    y = (angles[:, 0, 0] > np.pi).astype(int)
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = MitigatedBackend(DensityMatrixBackend(noise), scales=(1, 3, 5))
    pipe = HybridPipeline(
        strategy=strategy, backend=backend, estimator="shots", shots=16, chunk_size=2
    ).fit(angles, y)
    d, p, m = len(angles), strategy.num_ansatze, strategy.num_features
    assert pipe.report_.counter.get("circuits_executed") == p * d * 3
    assert pipe.report_.counter.get("shots_fired") == 16 * d * m * 3


def test_pipeline_cost_projection_prices_density_above_statevector(angles, noise):
    from repro.hpc.cluster import task_costs

    ideal = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    noisy = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        backend=DensityMatrixBackend(noise),
    )
    cost_ideal = task_costs(ideal.circuit_tasks(8)).sum()
    cost_noisy = task_costs(noisy.circuit_tasks(8)).sum()
    assert cost_noisy > cost_ideal
