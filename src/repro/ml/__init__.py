"""Classical ML substrate: losses, linear/logistic/MLP models, convex solvers."""

from repro.ml.losses import (
    bce_loss,
    cross_entropy_loss,
    mae_loss,
    rmse_loss,
    sigmoid,
    softmax,
)
from repro.ml.linear import LinearRegression, RidgeRegression, lstsq_pinv
from repro.ml.convex import ConstrainedLeastSquares, ConstrainedLogistic, project_l2_ball
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.optimizers import SGD, Adam
from repro.ml.spsa import SPSA
from repro.ml.metrics import accuracy, confusion_matrix, one_hot
from repro.ml.preprocessing import (
    flatten_images,
    max_pool,
    preprocess_images,
    rescale_to_angle,
)

__all__ = [
    "bce_loss",
    "cross_entropy_loss",
    "mae_loss",
    "rmse_loss",
    "sigmoid",
    "softmax",
    "LinearRegression",
    "RidgeRegression",
    "lstsq_pinv",
    "ConstrainedLeastSquares",
    "ConstrainedLogistic",
    "project_l2_ball",
    "LogisticRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "SGD",
    "Adam",
    "SPSA",
    "accuracy",
    "confusion_matrix",
    "one_hot",
    "max_pool",
    "preprocess_images",
    "rescale_to_angle",
    "flatten_images",
]
