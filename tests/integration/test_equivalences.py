"""Mathematical identities from the paper, verified numerically."""

import numpy as np
import pytest

from repro.core.ansatz import fig8_ansatz
from repro.quantum.observables import (
    PauliString,
    expectation,
    local_pauli_strings,
)
from repro.quantum.statevector import run_circuit

from tests.conftest import random_state


def pauli_decompose(matrix: np.ndarray, n: int) -> dict[str, complex]:
    """Coefficients of a 2^n x 2^n matrix in the Pauli basis."""
    coeffs = {}
    for p in local_pauli_strings(n, n):
        c = np.trace(p.to_matrix() @ matrix) / 2**n
        if abs(c) > 1e-12:
            coeffs[p.string] = c
    return coeffs


def test_cqo_heisenberg_equivalence():
    """Sec. III.D: tr(O rho(theta,x)) = tr(O(theta) rho(x)) with
    O(theta) = U^dag(theta) O U(theta) -- the Heisenberg-picture move that
    defines the whole post-variational framework."""
    rng = np.random.default_rng(0)
    circuit = fig8_ansatz()
    theta = rng.uniform(-np.pi, np.pi, 8)
    bound = circuit.bind(theta)
    psi = random_state(4, rng)
    o = PauliString("ZXIY")

    # Schroedinger picture.
    evolved = run_circuit(bound, state=psi)
    schroedinger = expectation(evolved, o)

    # Heisenberg picture: decompose U^dag O U in the Pauli basis (Eq. 3 /
    # Appendix A: at most 4^n terms) and combine expectations on rho(x).
    u = np.eye(16, dtype=complex)
    for op in bound:
        from repro.quantum.gates import gate_matrix

        from tests.quantum.test_statevector import dense_embed

        u = dense_embed(gate_matrix(op.gate, op.param), list(op.qubits), 4) @ u
    o_theta = u.conj().T @ o.to_matrix() @ u
    coeffs = pauli_decompose(o_theta, 4)
    heisenberg = sum(
        c.real * expectation(psi, PauliString(s)) for s, c in coeffs.items()
    )
    assert heisenberg == pytest.approx(schroedinger, abs=1e-9)


def test_appendix_a_decomposition_is_real():
    """U^dag O U is Hermitian, so its Pauli coefficients are real."""
    rng = np.random.default_rng(1)
    bound = fig8_ansatz().bind(rng.uniform(-1, 1, 8))
    from repro.quantum.gates import gate_matrix

    from tests.quantum.test_statevector import dense_embed

    u = np.eye(16, dtype=complex)
    for op in bound:
        u = dense_embed(gate_matrix(op.gate, op.param), list(op.qubits), 4) @ u
    o_theta = u.conj().T @ PauliString("ZIII").to_matrix() @ u
    for c in pauli_decompose(o_theta, 4).values():
        assert abs(c.imag) < 1e-10


def test_parameter_shift_spans_gradient():
    """Sec. IV.A: the +-pi/2 shifted circuits *linearly combine* to the
    gradient -- the gradient is in the span of the enumerated ensemble."""
    rng = np.random.default_rng(2)
    circuit = fig8_ansatz()
    psi = random_state(4, rng)
    o = PauliString("ZIII")

    def f(theta):
        return expectation(run_circuit(circuit.bind(theta), state=psi), o)

    from repro.core.shifts import enumerate_shift_configurations

    configs = enumerate_shift_configurations(8, 1)
    values = {c.label: f(c.vector()) for c in configs}
    # Gradient on parameter u = (f(+e_u) - f(-e_u)) / 2 using only ensemble values.
    eps = 1e-6
    for u in (0, 3, 7):
        plus = next(c for c in configs if c.subset == (u,) and c.signs == (1,))
        minus = next(c for c in configs if c.subset == (u,) and c.signs == (-1,))
        from_ensemble = 0.5 * (values[plus.label] - values[minus.label])
        e = np.zeros(8)
        e[u] = eps
        fd = (f(e) - f(-e)) / (2 * eps)
        assert from_ensemble == pytest.approx(fd, abs=1e-5)


def test_trace_distance_bound_eq_23_25():
    """Eqs. 23-25: |tr(P (rho1 - rho2))|^2 <= 4 (1 - F(rho1, rho2)) for
    pure states and Pauli P."""
    rng = np.random.default_rng(3)
    for _ in range(20):
        a = random_state(3, rng)
        b = random_state(3, rng)
        f = abs(np.vdot(a, b)) ** 2
        for s in ("ZII", "XYZ", "IZX"):
            p = PauliString(s)
            diff = expectation(a, p) - expectation(b, p)
            assert diff**2 <= 4.0 * (1.0 - f) + 1e-9


def test_fidelity_circuit_evaluation():
    """Sec. IV.C: F = |<0|S^dag U1^dag U2 S|0>|^2 computed as the 0...0
    outcome probability of the compound circuit."""
    rng = np.random.default_rng(4)
    angles = rng.uniform(0, 2 * np.pi, (1, 4, 4))
    from repro.data.encoding import encode_batch

    psi = encode_batch(angles)[0]
    circuit = fig8_ansatz()
    t1 = np.zeros(8)
    t1[2] = np.pi / 2
    t2 = np.zeros(8)
    t2[2] = -np.pi / 2
    s1 = run_circuit(circuit.bind(t1), state=psi)
    s2 = run_circuit(circuit.bind(t2), state=psi)
    direct = abs(np.vdot(s1, s2)) ** 2

    # Compound-circuit evaluation: U(t1)^dag U(t2) applied to the encoded
    # state; probability of measuring the *encoded* state back == overlap
    # with s1 after undoing.  Implemented as run U(t2) then inverse U(t1).
    compound = run_circuit(circuit.bind(t1).inverse(), state=s2)
    prob = abs(np.vdot(psi, compound)) ** 2
    assert prob == pytest.approx(direct, abs=1e-10)
