"""Loss functions exactly as defined in paper Sec. II.A.

* RMSE:  ``(1/sqrt(d)) ||y - yhat||_2``
* MAE:   ``(1/d) ||y - yhat||_1``
* BCE:   ``(1/d) sum_i -y_i log(yhat_i) - (1-y_i) log(1-yhat_i)``
* CE:    multiclass cross-entropy (softmax targets one-hot)

Gradients are provided where the optimisers need them; the BCE/sigmoid pair
exposes the 1-Lipschitz property Theorem 4's extension relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rmse_loss",
    "mae_loss",
    "bce_loss",
    "cross_entropy_loss",
    "sigmoid",
    "softmax",
]

_EPS = 1e-12


def rmse_loss(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root-mean-square error, paper's L_RMSE."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    d = y_true.size
    return float(np.linalg.norm(y_true - y_pred) / np.sqrt(d))


def mae_loss(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error, paper's L_MAE."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(np.abs(y_true - y_pred)))


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def bce_loss(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Binary cross-entropy with probability clipping for stability."""
    y_true = np.asarray(y_true, dtype=float)
    y_prob = np.clip(np.asarray(y_prob, dtype=float), _EPS, 1.0 - _EPS)
    if y_true.shape != y_prob.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_prob.shape}")
    return float(np.mean(-y_true * np.log(y_prob) - (1 - y_true) * np.log(1 - y_prob)))


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction stabilisation."""
    z = np.asarray(z, dtype=float)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy_loss(y_true_onehot: np.ndarray, y_prob: np.ndarray) -> float:
    """Multiclass cross-entropy; ``y_true_onehot`` is (d, C)."""
    y_true_onehot = np.asarray(y_true_onehot, dtype=float)
    y_prob = np.clip(np.asarray(y_prob, dtype=float), _EPS, 1.0)
    if y_true_onehot.shape != y_prob.shape:
        raise ValueError("shape mismatch in cross-entropy")
    return float(-np.mean(np.sum(y_true_onehot * np.log(y_prob), axis=1)))
