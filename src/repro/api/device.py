"""``QuantumDevice`` -- a context-managed execution session.

A device binds an :class:`~repro.api.config.ExecutionConfig` (what to run)
to a long-lived :class:`~repro.hpc.runtime.ExecutionRuntime` (where to run
it): the worker pool is created once, reused across every ``run`` /
``evaluate`` / ``stream`` sweep, and released by ``close()`` or the
``with`` block.  This is the session layer the paper's hybrid HPC-QC
deployment implies -- one QPU-driving process per allocation, many sweeps
-- without each sweep re-negotiating nine keyword arguments.

Every feature entry point accepts ``device=`` directly, so a device also
serves as the single argument threading a session through pipelines and
models::

    cfg = ExecutionConfig(estimator="shots", shots=256, dispatch_policy="lpt",
                          vectorize="auto")  # batched structure-shared sweeps
    with QuantumDevice(cfg, pool="thread", max_workers=8) as dev:
        q, report = dev.run(strategy, angles)
        clf = PostVariationalClassifier(strategy=strategy, device=dev).fit(x, y)
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.config import ExecutionConfig
from repro.hpc.executor import ParallelExecutor
from repro.hpc.runtime import DispatchReport, ExecutionRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticReport

__all__ = ["QuantumDevice"]


class QuantumDevice:
    """Session facade: one config + one persistent runtime.

    ``pool`` / ``max_workers`` / ``start_method`` build an owned
    :class:`ExecutionRuntime` (``max_workers=None`` resolves to 1 for the
    serial pool and ``"auto"`` otherwise).  Alternatively pass ``runtime=``
    (a bare :class:`ExecutionRuntime` or a :class:`ParallelExecutor`
    facade) to bind an existing, possibly shared, pool -- the device then
    follows the library-wide ownership rule and never shuts it down.

    A device is **thread-safe**: ``run`` / ``evaluate`` / ``stream`` may be
    called concurrently from multiple threads (the serving layer drives one
    shared device from many coroutines).  Results are bit-equal to
    sequential execution -- per-task RNG streams are derived from the task
    *index*, never from shared mutable state -- and the runtime serializes
    pool management under its own lock.  ``close()`` is idempotent and safe
    to race against in-flight sweeps: the session flips closed exactly once
    and late sweeps fail with the ordinary closed-session ``RuntimeError``.
    """

    def __init__(
        self,
        config: ExecutionConfig | None = None,
        *,
        pool: str = "serial",
        max_workers: int | str | None = None,
        start_method: str | None = None,
        runtime: ExecutionRuntime | ParallelExecutor | None = None,
    ) -> None:
        if config is None:
            config = ExecutionConfig()
        if not isinstance(config, ExecutionConfig):
            raise TypeError(f"config must be an ExecutionConfig, got {config!r}")
        self.config = config
        if runtime is not None:
            if pool != "serial" or max_workers is not None or start_method is not None:
                raise TypeError(
                    "runtime= binds an existing pool; pool=/max_workers=/"
                    "start_method= describe a new one -- pass one or the other"
                )
            if isinstance(runtime, ParallelExecutor):
                runtime = runtime.runtime
            if not isinstance(runtime, ExecutionRuntime):
                raise TypeError(
                    f"runtime must be an ExecutionRuntime or ParallelExecutor, "
                    f"got {runtime!r}"
                )
            self._runtime = runtime
            self._owns_runtime = False
        else:
            if max_workers is None:
                max_workers = 1 if pool == "serial" else "auto"
            self._runtime = ExecutionRuntime(
                backend=pool, max_workers=max_workers, start_method=start_method
            )
            self._owns_runtime = True
        self._closed = False
        # Serializes the closed-flag transition only: concurrent close()
        # calls (or close racing a sweep's _check_open) must tear the owned
        # pool down exactly once.  Sweeps themselves never take this lock;
        # the runtime has its own for pool management.
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------ properties
    @property
    def runtime(self) -> ExecutionRuntime:
        """The persistent runtime backing this session."""
        return self._runtime

    @property
    def closed(self) -> bool:
        return self._closed or self._runtime.closed

    # ------------------------------------------------------------- lifecycle
    def warm(self) -> QuantumDevice:
        """Spawn the worker pool now instead of on the first sweep."""
        self._check_open()
        self._runtime.warm()
        return self

    def close(self) -> None:
        """End the session; an *owned* runtime's pool is shut down.

        Idempotent and thread-safe: exactly one caller performs the
        shutdown, every other (concurrent or repeated) call returns
        immediately.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if self._owns_runtime:
            self._runtime.shutdown()

    def __enter__(self) -> QuantumDevice:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("device session is closed; create a new QuantumDevice")

    # ----------------------------------------------------------- combinators
    def reconfigured(self, **overrides: Any) -> QuantumDevice:
        """A device with ``config.merged(**overrides)`` sharing this runtime.

        The new device does not own the pool, so closing it never tears the
        session down -- the pattern for sweeping a knob grid on one pool.
        """
        self._check_open()
        return QuantumDevice(self.config.merged(**overrides), runtime=self._runtime)

    # -------------------------------------------------------------- analysis
    def check(
        self, program: Any = None, *, num_qubits: int | None = None
    ) -> DiagnosticReport:
        """Static pre-flight report for this session (no execution).

        Lints the bound config (:func:`~repro.analysis.plan.lint_config`)
        and, when ``program`` is given, the circuit under this config's
        plan -- sharding table, batched-template admissibility, the
        backend's noise channels
        (:func:`~repro.analysis.program.lint_circuit`).  Always returns
        the report regardless of the config's ``preflight`` knob; raising
        is the knob's job at job-build time, not this inspector's.
        """
        from repro.analysis.plan import lint_config
        from repro.analysis.preflight import _backend_noise_model
        from repro.analysis.program import lint_circuit

        if program is not None and num_qubits is None:
            num_qubits = program.num_qubits
        report = lint_config(self.config, num_qubits=num_qubits)
        if program is not None:
            report = report + lint_circuit(
                program,
                shards=self.config.shards,
                noise_model=_backend_noise_model(self.config),
            )
        return report

    # ------------------------------------------------------------- execution
    def prepare(self, angles: np.ndarray) -> np.ndarray:
        """Encode ``(d, rows, cols)`` angles into backend-prepared states.

        Expensive preparations (density / mitigated Kraus evolution) fan
        out over the session pool, chunked like the sweep's job grid.
        """
        from repro.core.features import prepare_states

        self._check_open()
        return prepare_states(
            self.config.backend,
            np.asarray(angles, dtype=float),
            executor=self._runtime,
            chunk_size=self.config.chunk_size,
        )

    def run(
        self,
        strategy: Any,
        angles: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, DispatchReport]:
        """Algorithm 1 under this session: ``(Q, DispatchReport)``.

        ``angles`` is the raw ``(d, rows, cols)`` batch; encoding, dispatch
        and streaming assembly all follow the bound config.
        """
        from repro.core.features import generate_features

        self._check_open()
        return generate_features(
            strategy,
            angles,
            executor=self._runtime,
            out=out,
            return_report=True,
            config=self.config,
        )

    def evaluate(
        self,
        strategy: Any,
        states: np.ndarray,
        *,
        out: np.ndarray | None = None,
        return_report: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, DispatchReport]:
        """Q matrix from already-prepared states (see :meth:`prepare`)."""
        from repro.core.features import evaluate_features

        self._check_open()
        return evaluate_features(
            strategy,
            states,
            executor=self._runtime,
            out=out,
            return_report=return_report,
            config=self.config,
        )

    def stream(self, strategy: Any, states: np.ndarray) -> Iterator[tuple]:
        """Q-blocks as ``(FeatureJob, block)`` pairs in completion order."""
        from repro.core.features import iter_feature_blocks

        self._check_open()
        return iter_feature_blocks(
            strategy, states, executor=self._runtime, config=self.config
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"QuantumDevice({self.config.backend.name}, "
            f"estimator={self.config.estimator!r}, "
            f"pool={self._runtime.backend}x{self._runtime.max_workers}, {state})"
        )
