"""Tests for the shared utility layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.combinatorics import (
    bounded_subsets,
    count_bounded_subsets,
    signed_assignments,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_power_of_two,
    check_probability,
    check_square,
    require,
)


# ---------------------------------------------------------------------- rng
def test_as_rng_identity_on_generator():
    gen = np.random.default_rng(0)
    assert as_rng(gen) is gen


def test_as_rng_deterministic_from_seed():
    a = as_rng(5).integers(0, 1000, 10)
    b = as_rng(5).integers(0, 1000, 10)
    assert np.array_equal(a, b)


def test_spawn_rngs_independent_and_deterministic():
    children_a = spawn_rngs(7, 4)
    children_b = spawn_rngs(7, 4)
    draws_a = [c.integers(0, 2**31) for c in children_a]
    draws_b = [c.integers(0, 2**31) for c in children_b]
    assert draws_a == draws_b  # deterministic fan-out
    assert len(set(draws_a)) == 4  # streams differ from each other


def test_spawn_rngs_validation():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
    assert spawn_rngs(0, 0) == []


# ------------------------------------------------------------ combinatorics
@given(n=st.integers(0, 10), k=st.integers(0, 5))
@settings(max_examples=60)
def test_bounded_subsets_count_and_uniqueness(n, k):
    subsets = list(bounded_subsets(n, k))
    assert len(set(subsets)) == len(subsets)
    assert len(subsets) == count_bounded_subsets(n, k, 1)
    assert subsets[0] == ()
    sizes = [len(s) for s in subsets]
    assert sizes == sorted(sizes)


@given(n=st.integers(0, 8), k=st.integers(0, 4), branching=st.integers(1, 4))
@settings(max_examples=60)
def test_count_matches_explicit_enumeration(n, k, branching):
    total = sum(
        len(list(signed_assignments(s, tuple(range(branching)))))
        for s in bounded_subsets(n, k)
    )
    assert total == count_bounded_subsets(n, k, branching)


def test_signed_assignments_empty_subset():
    assert list(signed_assignments((), (1, -1))) == [()]


def test_signed_assignments_cartesian():
    out = list(signed_assignments((0, 1), "ab"))
    assert out == [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]


def test_combinatorics_validation():
    with pytest.raises(ValueError):
        list(bounded_subsets(3, -1))
    with pytest.raises(ValueError):
        count_bounded_subsets(3, -1, 2)


# --------------------------------------------------------------- validation
def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_power_of_two():
    assert check_power_of_two(1) == 0
    assert check_power_of_two(16) == 4
    for bad in (0, -4, 3, 12):
        with pytest.raises(ValueError):
            check_power_of_two(bad)


def test_check_probability():
    assert check_probability(0.5) == 0.5
    for bad in (-0.1, 1.1):
        with pytest.raises(ValueError):
            check_probability(bad)


def test_check_square():
    m = check_square(np.eye(3))
    assert m.shape == (3, 3)
    with pytest.raises(ValueError):
        check_square(np.ones((2, 3)))
    with pytest.raises(ValueError):
        check_square(np.ones(4))
