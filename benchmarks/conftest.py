"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one paper artifact (table or figure); see
DESIGN.md's experiment index.  Session-scoped dataset fixtures keep the
suite's wall time dominated by the experiments themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import binary_coat_vs_shirt, multiclass_fashion


@pytest.fixture(scope="session")
def table3_split():
    """The exact Sec. VII.B binary task: 200 train + 50 test per class."""
    return binary_coat_vs_shirt()


@pytest.fixture(scope="session")
def table4_split():
    """The Table IV task: 400 train samples evenly over ten classes."""
    return multiclass_fashion()


@pytest.fixture(scope="session")
def small_split():
    """Reduced split for the ablation benches (pruning, shots)."""
    return binary_coat_vs_shirt(train_per_class=60, test_per_class=20, seed=5)


def flatten_angles(x: np.ndarray) -> np.ndarray:
    """Angles -> unit-scaled design matrix for the classical baselines."""
    return x.reshape(x.shape[0], -1) / (2 * np.pi)
